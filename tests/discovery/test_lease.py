"""Unit tests for lease records, stamps, merging and the config."""

import pytest

from repro.discovery import LeaseConfig, LeaseRecord, merge
from repro.errors import DiscoveryError
from repro.net import NodeAddress

A = NodeAddress("caltech.edu", 2000)
B = NodeAddress("rice.edu", 2000)


def rec(**overrides):
    base = dict(name="w", address=A, kind="worker", epoch=1, version=0,
                alive=True, expires_at=10.0)
    base.update(overrides)
    return LeaseRecord(**base)


# -- config ---------------------------------------------------------------

def test_config_defaults_are_valid():
    cfg = LeaseConfig()
    assert 0 < cfg.renew_interval < cfg.ttl


@pytest.mark.parametrize("bad", [
    dict(ttl=0.0),
    dict(ttl=-1.0),
    dict(sweep_interval=0.0),
    dict(gossip_interval=-0.1),
    dict(tombstone_ttl=0.0),
    dict(request_timeout=0.0),
    dict(renew_interval=0.0),
    dict(renew_interval=4.0),       # == ttl
    dict(renew_interval=5.0),       # > ttl
    dict(cache_ttl=-0.5),
])
def test_config_rejects_bad_timings(bad):
    with pytest.raises(DiscoveryError):
        LeaseConfig(**bad)


def test_config_cache_ttl_zero_is_allowed():
    assert LeaseConfig(cache_ttl=0.0).cache_ttl == 0.0


def test_staleness_bound_grows_with_replica_count():
    cfg = LeaseConfig()
    bounds = [cfg.staleness_bound(n) for n in (1, 2, 3, 5)]
    assert bounds == sorted(bounds)
    assert bounds[0] == cfg.ttl + cfg.sweep_interval + cfg.cache_ttl
    assert bounds[2] - bounds[0] == pytest.approx(2 * cfg.gossip_interval)


# -- stamps ---------------------------------------------------------------

def test_stamp_orders_epoch_then_version_then_tombstone():
    assert rec(epoch=2, version=0).stamp > rec(epoch=1, version=9).stamp
    assert rec(epoch=1, version=3).stamp > rec(epoch=1, version=2).stamp
    # A tombstone wins a tie at identical (epoch, version): a detected
    # death must never be un-detected by a concurrent equal write.
    assert rec(alive=False).stamp > rec(alive=True).stamp


def test_live_at_and_expired():
    r = rec(expires_at=10.0)
    assert r.live_at(9.99)
    assert not r.live_at(10.0)
    tomb = r.expired(10.0, tombstone_ttl=5.0)
    assert not tomb.alive
    assert tomb.version == r.version + 1
    assert tomb.expires_at == 15.0
    assert not tomb.live_at(0.0)


# -- merging --------------------------------------------------------------

def test_merge_prefers_newer_stamp():
    old = rec(epoch=1, version=2)
    new = rec(epoch=2, version=0, address=B)
    assert merge(old, new) is new
    assert merge(new, old) is None
    assert merge(None, old) is old


def test_merge_equal_stamp_keeps_later_expiry():
    held = rec(expires_at=10.0)
    fresher = rec(expires_at=12.0)
    merged = merge(held, fresher)
    assert merged is not None
    assert merged.expires_at == 12.0
    # The reverse direction must not roll the expiry back.
    assert merge(fresher, held) is None


def test_merge_tombstone_beats_live_at_same_version():
    live = rec(alive=True)
    tomb = rec(alive=False)
    assert merge(live, tomb) is tomb
    assert merge(tomb, live) is None


# -- wire form ------------------------------------------------------------

def test_wire_roundtrip_rebases_expiry_on_receiver_clock():
    r = rec(expires_at=10.0)
    wire = r.to_wire(now=7.0)          # 3 seconds of TTL left
    assert wire["tl"] == pytest.approx(3.0)
    back = LeaseRecord.from_wire(wire, now=100.0)
    assert back.expires_at == pytest.approx(103.0)
    assert (back.name, back.address, back.kind) == (r.name, r.address, r.kind)
    assert back.stamp == r.stamp


def test_wire_roundtrip_preserves_tombstones():
    tomb = rec(alive=False, version=4)
    back = LeaseRecord.from_wire(tomb.to_wire(now=0.0), now=0.0)
    assert not back.alive
    assert back.stamp == tomb.stamp
