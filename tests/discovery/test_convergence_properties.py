"""Property tests: gossip convergence and bounded staleness.

Under random registration/kill schedules and a random replica-replica
partition window, once the system is quiescent:

* every surviving replica holds **identical** live directory contents
  (anti-entropy converged);
* every surviving worker resolves to its correct address;
* every killed worker's name raises :class:`~repro.errors.LeaseExpired`;
* no resolver ever returned a killed worker later than the config's
  :meth:`~repro.discovery.LeaseConfig.staleness_bound` after the kill
  (the lease TTL, plus gossip lag, plus one sweep, plus the cache).

Partition windows are kept shorter than the transport's retry budget so
reliable channels stall and recover rather than break — a broken channel
never heals, which is the transport's contract, not a discovery bug
(and the replica's send path rebinds if one does break).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import AsyncioSubstrate, LeaseConfig, LeaseExpired, World
from repro.net import ConstantLatency, FaultPlan

from tests.discovery.conftest import Worker, drain, fast_config

N_REPLICAS = 3

#: Which of 4 workers die mid-run (at least one survives, so the
#: "survivors still resolve" half of the property is never vacuous).
kill_masks = st.lists(st.booleans(), min_size=4, max_size=4).filter(
    lambda m: not all(m))

#: A replica-replica partition window: (start, duration). Bounded well
#: under the transport's ~break threshold at rto_initial defaults.
partitions = st.one_of(
    st.none(),
    st.tuples(st.floats(min_value=0.5, max_value=1.5),
              st.floats(min_value=0.3, max_value=1.5)))


def quiesce_and_check(world, replicas, cfg, workers, killed, probe_log):
    """Post-churn assertions shared by both substrates."""
    live = [r for r in replicas if not r.stopped]
    assert live
    contents = [r.live_entries() for r in live]
    for other in contents[1:]:
        assert other == contents[0]
    for name, worker in workers.items():
        if name in killed:
            assert name not in contents[0]
        else:
            assert contents[0][name] == (worker.address, "worker")
    # Staleness: no successful resolve of a killed name later than the
    # bound after its kill instant.
    bound = cfg.staleness_bound(N_REPLICAS)
    for name, kill_t, resolve_t in probe_log:
        assert resolve_t - kill_t <= bound + 1e-6, (
            f"{name} still resolved {resolve_t - kill_t:.2f}s after its "
            f"kill; bound is {bound:.2f}s")


def churn_run(world, replicas, cfg, kill_mask, partition, *, step=0.2):
    """Drive the schedule; returns (workers, killed, probe_log, done)."""
    workers = {f"w{i}": world.dapplet(Worker, f"h{i}.edu", f"w{i}")
               for i in range(len(kill_mask))}
    killed = {f"w{i}" for i, dead in enumerate(kill_mask) if dead}
    prober = world.dapplet(Worker, "probe.edu", "probe")
    resolver = world.resolver_for(prober)
    probe_log = []
    kill_times = {}
    done = world.kernel.event()

    def director():
        yield world.kernel.timeout(2 * cfg.renew_interval)
        if partition is not None:
            start, duration = partition
            yield world.kernel.timeout(start)
            a, b = replicas[0].address, replicas[1].address
            world.network.faults.partition(a, b)
            yield world.kernel.timeout(duration)
            world.network.faults.heal(a, b)
        for name in sorted(killed):
            workers[name].stop()
            kill_times[name] = world.kernel.now
        # Probe killed names through the churn window: every success is
        # checked against the staleness bound afterwards.
        until = world.kernel.now + cfg.staleness_bound(N_REPLICAS) + 1.0
        while world.kernel.now < until:
            yield world.kernel.timeout(step)
            resolver.invalidate()
            for name in sorted(killed):
                try:
                    yield from resolver.resolve(name)
                    probe_log.append((name, kill_times[name],
                                      world.kernel.now))
                except LeaseExpired:
                    pass
        # A few extra gossip rounds so anti-entropy fully reconciles
        # whatever the partition delayed.
        yield world.kernel.timeout(4 * cfg.gossip_interval)
        done.succeed(None)

    world.process(director())
    return workers, killed, probe_log, done


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**31),
       kill_mask=kill_masks, partition=partitions)
def test_replicas_converge_after_churn_on_sim(seed, kill_mask, partition):
    cfg = fast_config()
    world = World(seed=seed, latency=ConstantLatency(0.01),
                  faults=FaultPlan())
    replicas = world.host_directory(N_REPLICAS, config=cfg)
    workers, killed, probe_log, done = churn_run(
        world, replicas, cfg, kill_mask, partition)
    world.run(until=done)
    quiesce_and_check(world, replicas, cfg, workers, killed, probe_log)
    drain(world)


@settings(max_examples=3, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**31),
       kill_mask=kill_masks)
def test_replicas_converge_after_churn_on_asyncio(seed, kill_mask):
    # Real sockets and wall-clock time: a tiny config so a full lease
    # lifecycle fits in a couple of seconds, few examples, no partition
    # (loopback UDP supplies its own timing noise).
    cfg = LeaseConfig(ttl=0.6, renew_interval=0.15, sweep_interval=0.1,
                      gossip_interval=0.15, cache_ttl=0.1,
                      request_timeout=0.4, tombstone_ttl=10.0)
    world = World(substrate=AsyncioSubstrate(seed=seed))
    try:
        replicas = world.host_directory(N_REPLICAS, config=cfg)
        workers, killed, probe_log, done = churn_run(
            world, replicas, cfg, kill_mask, None, step=0.1)
        world.run(until=done, wall_timeout=60)
        quiesce_and_check(world, replicas, cfg, workers, killed, probe_log)
    finally:
        world.close()
