"""Integration tests for replicas, agents and resolvers on the simulator."""

import pytest

from repro import Initiator, LeaseExpired, World
from repro.discovery import RegistrationAgent
from repro.errors import DappletError
from repro.net import ConstantLatency

from tests.discovery.conftest import Worker, drain, fast_config


def make_world(seed=7, n_replicas=3, cfg=None):
    cfg = cfg or fast_config()
    world = World(seed=seed, latency=ConstantLatency(0.01))
    replicas = world.host_directory(n_replicas, config=cfg)
    return world, replicas, cfg


def run_director(world, body):
    done = world.kernel.event()

    def wrapper():
        yield from body
        done.succeed(None)

    world.process(wrapper())
    world.run(until=done)


def test_registration_gossips_to_every_replica():
    world, replicas, cfg = make_world()
    for i in range(3):
        world.dapplet(Worker, f"host{i}.edu", f"w{i}")

    def director():
        yield world.kernel.timeout(1.5)
        for r in replicas:
            assert r.names() == ["w0", "w1", "w2"]
            assert r.names(kind="worker") == ["w0", "w1", "w2"]
        # Load is spread: no single replica granted all the leases.
        grants = [r.stats.grants for r in replicas]
        assert sum(grants) == 3

    run_director(world, director())
    drain(world)


def test_renewals_keep_a_lease_alive_past_its_ttl():
    world, replicas, cfg = make_world()
    w = world.dapplet(Worker, "host.edu", "alice")

    def director():
        yield world.kernel.timeout(3 * cfg.ttl)
        assert w.lease_agent.renewals > 0
        for r in replicas:
            assert "alice" in r.names()

    run_director(world, director())
    drain(world)


def test_silent_death_expires_on_every_replica():
    world, replicas, cfg = make_world()
    w = world.dapplet(Worker, "host.edu", "alice")

    def director():
        yield world.kernel.timeout(1.0)
        w.stop()  # silent: no unregister, heartbeats just cease
        yield world.kernel.timeout(cfg.staleness_bound(len(replicas)) + 0.5)
        for r in replicas:
            assert "alice" not in r.names()
            assert not r.store["alice"].alive  # tombstoned, not forgotten
            assert r.stats.expiries >= 0
        assert sum(r.stats.expiries for r in replicas) >= 1

    run_director(world, director())
    drain(world)


def test_deregister_tombstones_without_waiting_out_the_ttl():
    world, replicas, cfg = make_world()
    w = world.dapplet(Worker, "host.edu", "alice")

    def director():
        yield world.kernel.timeout(1.0)
        w.lease_agent.deregister()
        # Far sooner than ttl + sweep: one delivery + gossip round.
        yield world.kernel.timeout(3 * cfg.gossip_interval)
        for r in replicas:
            assert "alice" not in r.names()

    run_director(world, director())
    drain(world)


def test_tombstones_are_garbage_collected():
    cfg = fast_config(tombstone_ttl=1.0)
    world, replicas, _ = make_world(cfg=cfg)
    w = world.dapplet(Worker, "host.edu", "alice")

    def director():
        yield world.kernel.timeout(0.5)
        w.stop()
        yield world.kernel.timeout(cfg.staleness_bound(3)
                                   + cfg.tombstone_ttl + 3 * cfg.gossip_interval)
        for r in replicas:
            assert "alice" not in r.store

    run_director(world, director())
    drain(world)


def test_registering_a_taken_name_is_denied_until_the_lease_expires():
    world, replicas, cfg = make_world()
    alice = world.dapplet(Worker, "host.edu", "alice")
    usurper = world.dapplet(Worker, "other.edu", "mallory")
    # A second agent claiming "alice" from a different address.
    claim = RegistrationAgent(usurper, world.replica_addresses(),
                              config=cfg, name="alice")

    def director():
        yield world.kernel.timeout(2 * cfg.ttl)
        # As long as the real alice renews, the claim is refused.
        assert not claim.registered.triggered
        assert sum(r.stats.denials for r in replicas) >= 1
        home = next(r for r in replicas
                    if "alice" in r.store and r.store["alice"].alive)
        assert home.store["alice"].address == alice.address
        # Once alice goes silent, her lease expires and the claim wins.
        alice.stop()
        yield claim.registered
        # The new lease carries a higher epoch; give gossip a few rounds
        # to supersede the stale record on the other replicas.
        yield world.kernel.timeout(4 * cfg.gossip_interval)
        entries = [r.store["alice"] for r in replicas
                   if "alice" in r.store and r.store["alice"].alive]
        assert entries
        assert all(e.address == usurper.address for e in entries)

    run_director(world, director())
    drain(world)


def test_agent_fails_over_when_its_home_replica_crashes():
    world, replicas, cfg = make_world()
    w = world.dapplet(Worker, "host.edu", "alice")

    def director():
        yield w.lease_agent.registered
        home = w.lease_agent.replica
        victim = next(r for r in replicas if r.address == home)
        victim.stop()
        yield world.kernel.timeout(cfg.ttl + 4 * cfg.request_timeout)
        assert w.lease_agent.failovers >= 1
        # The re-registration carries a higher epoch, so gossip makes it
        # supersede the stale lease on every survivor.
        assert w.lease_agent.epoch >= 2
        for r in replicas:
            if not r.stopped:
                assert "alice" in r.names()

    run_director(world, director())
    drain(world)


def test_resolver_caches_within_ttl_and_refreshes_after():
    world, replicas, cfg = make_world()
    world.dapplet(Worker, "host.edu", "alice")
    probe = world.dapplet(Worker, "probe.edu", "probe")
    resolver = world.resolver_for(probe)

    def director():
        yield world.kernel.timeout(1.0)
        a1 = yield from resolver.resolve("alice")
        a2 = yield from resolver.resolve("alice")  # immediate: cached
        assert a1 == a2
        assert resolver.stats.hits == 1
        assert resolver.stats.misses == 1
        lookups_before = sum(r.stats.lookups for r in replicas)
        yield world.kernel.timeout(cfg.cache_ttl + 0.1)
        yield from resolver.resolve("alice")       # stale: refreshed
        assert resolver.stats.misses == 2
        assert sum(r.stats.lookups for r in replicas) == lookups_before + 1

    run_director(world, director())
    drain(world)


def test_cache_ttl_zero_disables_caching():
    cfg = fast_config(cache_ttl=0.0)
    world, replicas, _ = make_world(cfg=cfg)
    world.dapplet(Worker, "host.edu", "alice")
    probe = world.dapplet(Worker, "probe.edu", "probe")
    resolver = world.resolver_for(probe)

    def director():
        yield world.kernel.timeout(1.0)
        yield from resolver.resolve("alice")
        yield from resolver.resolve("alice")
        assert resolver.stats.hits == 0
        assert resolver.stats.misses == 2

    run_director(world, director())
    drain(world)


def test_resolver_raises_lease_expired_for_unknown_names():
    world, replicas, cfg = make_world()
    probe = world.dapplet(Worker, "probe.edu", "probe")
    resolver = world.resolver_for(probe)

    def director():
        yield world.kernel.timeout(0.5)
        with pytest.raises(LeaseExpired) as info:
            yield from resolver.resolve("ghost")
        assert info.value.name == "ghost"

    run_director(world, director())
    drain(world)


def test_initiator_gets_a_resolver_automatically():
    world, replicas, cfg = make_world()
    init = world.dapplet(Initiator, "cern.ch", "init")
    assert init.resolver is not None
    assert init.resolver.replicas == tuple(world.replica_addresses())
    drain(world)


def test_host_directory_guards():
    world, replicas, cfg = make_world()
    with pytest.raises(DappletError):
        world.host_directory(2)  # already hosted
    drain(world)

    bare = World(seed=1)
    w = bare.dapplet(Worker, "host.edu", "w")
    with pytest.raises(DappletError):
        bare.enroll(w)
    with pytest.raises(DappletError):
        bare.resolver_for(w)
    with pytest.raises(DappletError):
        World(seed=2).host_directory([])
