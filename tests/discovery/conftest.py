"""Shared fixtures for the discovery-subsystem tests."""

from repro import Dapplet, LeaseConfig


class Worker(Dapplet):
    """A minimal session-capable dapplet to register and resolve."""

    kind = "worker"

    def setup(self):
        self.data = self.create_inbox()


#: Tight timings so whole lease lifecycles fit in a few virtual seconds.
def fast_config(**overrides) -> LeaseConfig:
    base = dict(ttl=1.0, renew_interval=0.25, sweep_interval=0.2,
                gossip_interval=0.3, cache_ttl=0.3, request_timeout=0.5,
                tombstone_ttl=10.0)
    base.update(overrides)
    return LeaseConfig(**base)


def drain(world):
    """Stop every dapplet and run the substrate to quiescence."""
    for dapplet in list(world.dapplets()):
        dapplet.stop()
    world.run()
