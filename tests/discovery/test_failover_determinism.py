"""The issue's acceptance scenario, as a deterministic regression test.

Three directory replicas; one replica crashes and one registered dapplet
dies silently. The initiator must still set up a session among the
survivors — resolution fails over to a live replica — while the dead
dapplet's lease has expired everywhere, surfacing as
:class:`~repro.errors.LeaseExpired` rather than a hang. And because the
whole discovery protocol runs on the simulated substrate, two runs of
the scenario produce **byte-identical** traces.
"""

from repro import (Binding, Initiator, LeaseExpired, MemberSpec, SessionSpec,
                   Tracer, World)
from repro.net import ConstantLatency

from tests.discovery.conftest import Worker, drain, fast_config


def session_spec(members):
    spec = SessionSpec("acceptance")
    for m in members:
        spec.members[m] = MemberSpec(m, inboxes=("in",))
    ms = sorted(members)
    spec.bindings.append(Binding(ms[0], "out", ms[1], "in"))
    return spec


def run_scenario(seed):
    """One full run; returns (trace_jsonl, facts) for comparison."""
    cfg = fast_config()
    tracer = Tracer(categories=("dir", "session"))
    world = World(seed=seed, latency=ConstantLatency(0.01), tracer=tracer)
    replicas = world.host_directory(3, config=cfg)
    alice = world.dapplet(Worker, "caltech.edu", "alice")
    bob = world.dapplet(Worker, "rice.edu", "bob")
    carol = world.dapplet(Worker, "anl.gov", "carol")
    init = world.dapplet(Initiator, "cern.ch", "init")
    facts = {}
    done = world.kernel.event()

    def director():
        yield world.kernel.timeout(1.0)
        # Crash exactly the replica the initiator's resolver points at,
        # so resolution *must* fail over; and kill carol silently.
        victim = next(r for r in replicas
                      if r.address == init.resolver.replica)
        victim.stop()
        carol.stop()
        facts["victim"] = victim.name
        yield world.kernel.timeout(cfg.staleness_bound(3) + 1.0)

        session = yield from init.establish(session_spec(["alice", "bob"]),
                                            timeout=10.0)
        facts["members"] = sorted(session.members)

        init.resolver.invalidate()
        try:
            yield from init.resolver.resolve("carol")
            facts["carol"] = "resolved"
        except LeaseExpired:
            facts["carol"] = "expired"
        try:
            yield from init.establish(session_spec(["alice", "carol"]),
                                      timeout=10.0)
            facts["carol_session"] = "established"
        except LeaseExpired:
            facts["carol_session"] = "refused"

        yield from session.terminate()
        facts["failovers"] = init.resolver.stats.failovers
        facts["survivor_stores"] = {
            r.name: sorted(r.names()) for r in replicas if not r.stopped}
        facts["carol_tombstoned"] = all(
            not r.store["carol"].alive
            for r in replicas if not r.stopped)
        done.succeed(None)

    world.process(director())
    world.run(until=done)
    drain(world)
    return tracer.to_jsonl(), facts


def test_session_forms_despite_crashed_replica_and_dead_member():
    _, facts = run_scenario(seed=11)
    assert facts["members"] == ["alice", "bob"]
    assert facts["carol"] == "expired"
    assert facts["carol_session"] == "refused"
    assert facts["failovers"] >= 1
    assert facts["carol_tombstoned"]
    assert len(facts["survivor_stores"]) == 2
    for names in facts["survivor_stores"].values():
        assert "alice" in names and "bob" in names
        assert "carol" not in names


def test_scenario_is_byte_identical_across_runs():
    trace1, facts1 = run_scenario(seed=11)
    trace2, facts2 = run_scenario(seed=11)
    assert facts1 == facts2
    assert trace1 == trace2
    assert trace1.count("\n") > 50  # a real trace, not an empty file


def test_different_seeds_still_reach_the_same_outcome():
    for seed in (3, 23):
        _, facts = run_scenario(seed=seed)
        assert facts["members"] == ["alice", "bob"]
        assert facts["carol"] == "expired"
