"""Tests for the collaboration-pattern library."""

import pytest

from repro.dapplet import Dapplet
from repro.messages import Blob, Text
from repro.net import ConstantLatency
from repro.patterns import (
    CoordinatorRounds,
    chain_spec,
    mesh_spec,
    participant_loop,
    ring_spec,
    star_spec,
    stage_loop,
)
from repro.patterns.pipeline import collect, feed
from repro.session import Initiator
from repro.world import World


class Echoer(Dapplet):
    """A participant whose sequential part upper-cases text."""

    kind = "echoer"

    def on_session_start(self, ctx):
        self.ctx = ctx
        if ctx.member == ctx.params.get("hub"):
            return None
        return participant_loop(ctx, lambda body: Text(body.text.upper()))


class Stage(Dapplet):
    kind = "stage"

    def on_session_start(self, ctx):
        self.ctx = ctx
        role = ctx.params["roles"][ctx.member]
        if role == "double":
            return stage_loop(ctx, lambda b: Blob({"v": b.data["v"] * 2}))
        if role == "drop-odd":
            return stage_loop(
                ctx, lambda b: b if b.data["v"] % 2 == 0 else None)
        return None  # source and sink are driven externally


@pytest.fixture
def world():
    return World(seed=21, latency=ConstantLatency(0.01))


def test_star_spec_shape():
    spec = star_spec("s", "hub", ["a", "b"])
    spec.validate()
    assert set(spec.outboxes_of("hub")) == {"to:a", "to:b", "bcast"}
    assert set(spec.outboxes_of("a")) == {"out"}


def test_ring_spec_shape():
    spec = ring_spec("r", ["a", "b", "c"])
    spec.validate()
    assert [ (b.src_member, b.dst_member) for b in spec.bindings ] == [
        ("a", "b"), ("b", "c"), ("c", "a")]
    bidir = ring_spec("r", ["a", "b", "c"], bidirectional=True)
    bidir.validate()
    assert len(bidir.bindings) == 6
    with pytest.raises(ValueError):
        ring_spec("r", ["only"])


def test_mesh_spec_shape():
    spec = mesh_spec("m", ["a", "b", "c"])
    spec.validate()
    assert set(spec.outboxes_of("a")) == {"bcast", "to:b", "to:c"}
    assert len(spec.outboxes_of("a")["bcast"]) == 2


def test_chain_spec_shape():
    spec = chain_spec("c", ["s1", "s2", "s3"])
    spec.validate()
    assert set(spec.outboxes_of("s1")) == {"out"}
    assert spec.outboxes_of("s3") == {}
    with pytest.raises(ValueError):
        chain_spec("c", ["solo"])


def test_coordinator_scatter_gather(world):
    hub = world.dapplet(Echoer, "caltech.edu", "hub")
    for i, host in enumerate(["rice.edu", "utk.edu", "mit.edu"]):
        world.dapplet(Echoer, host, f"w{i}")
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    spec = star_spec("echo", "hub", ["w0", "w1", "w2"],
                     params={"hub": "hub"})
    results = []

    def director():
        session = yield from initiator.establish(spec)
        coord = CoordinatorRounds(hub.ctx, ["w0", "w1", "w2"])
        replies = yield from coord.round(lambda m: Text(f"hello {m}"))
        results.append({m: r.text for m, r in replies.items()})
        # A second round reuses the same channels.
        replies = yield from coord.round(lambda m: Text("again"))
        results.append(len(replies))
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    assert results[0] == {"w0": "HELLO W0", "w1": "HELLO W1",
                          "w2": "HELLO W2"}
    assert results[1] == 3


def test_coordinator_round_timeout_tolerates_stragglers(world):
    hub = world.dapplet(Echoer, "caltech.edu", "hub")
    w0 = world.dapplet(Echoer, "rice.edu", "w0")
    w1 = world.dapplet(Echoer, "utk.edu", "w1")
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    spec = star_spec("echo", "hub", ["w0", "w1"], params={"hub": "hub"})
    results = []

    def director():
        session = yield from initiator.establish(spec)
        w1.stop()  # w1 will never reply
        coord = CoordinatorRounds(hub.ctx, ["w0", "w1"])
        replies = yield from coord.round(lambda m: Text("ping"),
                                         timeout=2.0)
        results.append(sorted(replies))
        yield from session.terminate(timeout=2.0)

    p = world.process(director())
    world.run(until=p)
    assert results == [["w0"]]


def test_sequential_round_equals_parallel_result_but_slower(world):
    """Both rounds produce the same answers; the traditional
    (sequential) one takes ~N times the round trips."""
    latency = 0.1
    world = World(seed=22, latency=ConstantLatency(latency))
    hub = world.dapplet(Echoer, "caltech.edu", "hub")
    members = [f"w{i}" for i in range(4)]
    for i, m in enumerate(members):
        world.dapplet(Echoer, "rice.edu", m)
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    spec = star_spec("echo", "hub", members, params={"hub": "hub"})
    durations = {}

    def director():
        session = yield from initiator.establish(spec)
        coord = CoordinatorRounds(hub.ctx, members)
        t0 = world.now
        par = yield from coord.round(lambda m: Text("x"))
        durations["parallel"] = world.now - t0
        t0 = world.now
        seq = yield from coord.sequential_round(lambda m: Text("x"))
        durations["sequential"] = world.now - t0
        assert {m: r.text for m, r in par.items()} == \
               {m: r.text for m, r in seq.items()}
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    assert durations["sequential"] > 3 * durations["parallel"]


def test_pipeline_end_to_end(world):
    stages = ["source", "double", "dropper", "sink"]
    hosts = ["caltech.edu", "rice.edu", "utk.edu", "mit.edu"]
    dapplets = {s: world.dapplet(Stage, h, s) for s, h in zip(stages, hosts)}
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    roles = {"source": "source", "double": "double",
             "dropper": "drop-odd", "sink": "sink"}
    spec = chain_spec("pipe", stages, params={"roles": roles})
    out = []

    def director():
        session = yield from initiator.establish(spec)
        feed(dapplets["source"].ctx,
             [Blob({"v": i}) for i in range(6)])
        results = yield from collect(dapplets["sink"].ctx)
        out.append([b.data["v"] for b in results])
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    # doubled: 0 2 4 6 8 10 — all even, none dropped.
    assert out == [[0, 2, 4, 6, 8, 10]]
