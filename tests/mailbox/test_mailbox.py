"""Unit tests for the inbox/outbox port layer."""

import pytest

from repro.errors import BindingError, DeliveryTimeout, ReceiveTimeout
from repro.mailbox import Inbox, Outbox
from repro.messages import Text
from repro.net import (
    ConstantLatency,
    DatagramNetwork,
    Endpoint,
    FaultPlan,
    NodeAddress,
)
from repro.sim import Kernel

A = NodeAddress("caltech.edu", 5000)
B = NodeAddress("rice.edu", 5000)


def world(seed=0, *, faults=None, latency=None):
    k = Kernel(seed=seed)
    net = DatagramNetwork(k, latency=latency or ConstantLatency(0.02),
                          faults=faults)
    ea = Endpoint(k, net, A, rto_initial=0.1)
    eb = Endpoint(k, net, B, rto_initial=0.1)
    return k, ea, eb


def test_send_receive_roundtrip():
    k, ea, eb = world()
    inbox = Inbox(k, eb, 0)
    outbox = Outbox(k, ea, 0)
    outbox.add(inbox.address)
    got = []

    def receiver():
        msg = yield inbox.receive()
        got.append((msg.text, k.now))

    k.process(receiver())
    outbox.send(Text("hello"))
    k.run()
    assert got == [("hello", 0.02)]
    assert inbox.messages_received == 1
    assert outbox.messages_sent == 1


def test_is_empty_and_await_nonempty():
    k, ea, eb = world()
    inbox = Inbox(k, eb, 0)
    outbox = Outbox(k, ea, 0)
    outbox.add(inbox.address)
    assert inbox.is_empty
    log = []

    def watcher():
        yield inbox.await_nonempty()
        log.append(("nonempty", len(inbox)))
        # awaiting again on a non-empty inbox returns immediately
        yield inbox.await_nonempty()
        log.append(("again", k.now))

    k.process(watcher())
    k.call_later(1.0, lambda: outbox.send(Text("x")))
    k.run()
    assert log == [("nonempty", 1), ("again", 1.02)]
    assert not inbox.is_empty
    assert inbox.peek().text == "x"


def test_fanout_copies_to_all_bound_inboxes():
    """Figure 3: one outbox bound to inboxes of dapplets 3, 4 and 5."""
    k, ea, eb = world()
    inboxes = [Inbox(k, eb, i) for i in range(3)]
    outbox = Outbox(k, ea, 0)
    for ib in inboxes:
        outbox.add(ib.address)
    result = outbox.send(Text("multi"))
    assert result.copies == 3
    k.run()
    assert all(len(ib) == 1 for ib in inboxes)


def test_fanin_many_outboxes_one_inbox():
    k, ea, eb = world()
    inbox = Inbox(k, eb, 0)
    out1 = Outbox(k, ea, 0)
    out2 = Outbox(k, eb, 1)  # local sender too
    out1.add(inbox.address)
    out2.add(inbox.address)
    out1.send(Text("from-a"))
    out2.send(Text("from-b"))
    k.run()
    assert len(inbox) == 2


def test_add_is_idempotent_delete_raises_when_absent():
    k, ea, eb = world()
    inbox = Inbox(k, eb, 0)
    outbox = Outbox(k, ea, 0)
    outbox.add(inbox.address)
    outbox.add(inbox.address)  # idempotent per the paper
    assert outbox.destinations() == (inbox.address,)
    outbox.delete(inbox.address)
    assert outbox.destinations() == ()
    with pytest.raises(BindingError):
        outbox.delete(inbox.address)


def test_add_accepts_inbox_object_and_address():
    k, ea, eb = world()
    inbox = Inbox(k, eb, 0)
    outbox = Outbox(k, ea, 0)
    outbox.add(inbox)  # object form
    assert outbox.is_bound_to(inbox.address)
    outbox.delete(inbox)  # object form for delete too
    with pytest.raises(TypeError):
        outbox.add("rice.edu:5000/0")  # type: ignore[arg-type]


def test_named_inbox_binding():
    """The paper: bind to the 'students' inbox of a professor dapplet."""
    k, ea, eb = world()
    inbox = Inbox(k, eb, 7, name="students")
    outbox = Outbox(k, ea, 0)
    outbox.add(inbox.named_address)
    outbox.send(Text("enroll"))
    k.run()
    assert len(inbox) == 1
    # The named and numbered addresses reach the same queue.
    out2 = Outbox(k, ea, 1)
    out2.add(inbox.address)
    out2.send(Text("by-ref"))
    k.run()
    assert len(inbox) == 2


def test_unnamed_inbox_has_no_named_address():
    k, ea, eb = world()
    inbox = Inbox(k, eb, 0)
    with pytest.raises(ValueError):
        _ = inbox.named_address


def test_fifo_per_channel_under_reordering():
    k, ea, eb = world(seed=13, faults=FaultPlan(reorder_jitter=0.4),
                      latency=ConstantLatency(0.01))
    inbox = Inbox(k, eb, 0)
    outbox = Outbox(k, ea, 0)
    outbox.add(inbox.address)
    for i in range(40):
        outbox.send(Text(str(i)))
    received = []

    def drain():
        for _ in range(40):
            msg = yield inbox.receive()
            received.append(int(msg.text))

    p = k.process(drain())
    k.run(until=p)
    assert received == list(range(40))


def test_receive_timeout_raises_and_preserves_messages():
    k, ea, eb = world()
    inbox = Inbox(k, eb, 0)
    outcomes = []

    def receiver():
        try:
            yield inbox.receive(timeout=0.5)
        except ReceiveTimeout as exc:
            outcomes.append(("timeout", exc.timeout))

    k.process(receiver())
    k.run()
    assert outcomes == [("timeout", 0.5)]
    # A message arriving later is not lost to the dead receive.
    outbox = Outbox(k, ea, 0)
    outbox.add(inbox.address)
    outbox.send(Text("late"))
    k.run()
    assert len(inbox) == 1


def test_receive_with_timeout_succeeds_when_in_time():
    k, ea, eb = world()
    inbox = Inbox(k, eb, 0)
    outbox = Outbox(k, ea, 0)
    outbox.add(inbox.address)
    got = []

    def receiver():
        msg = yield inbox.receive(timeout=5.0)
        got.append(msg.text)

    k.process(receiver())
    outbox.send(Text("quick"))
    k.run()
    assert got == ["quick"]


def test_send_confirmed_blocks_until_all_acked():
    k, ea, eb = world()
    inboxes = [Inbox(k, eb, i) for i in range(3)]
    outbox = Outbox(k, ea, 0)
    for ib in inboxes:
        outbox.add(ib.address)
    done = []

    def sender():
        yield outbox.send_confirmed(Text("m"), timeout=10.0)
        done.append(k.now)

    k.process(sender())
    k.run()
    assert done and done[0] == pytest.approx(0.04)  # one RTT


def test_send_confirmed_raises_delivery_timeout():
    k, ea, eb = world(faults=FaultPlan(drop_prob=1.0))
    inbox = Inbox(k, eb, 0)
    outbox = Outbox(k, ea, 0)
    outbox.add(inbox.address)
    failures = []

    def sender():
        try:
            yield outbox.send_confirmed(Text("m"), timeout=0.3)
        except DeliveryTimeout:
            failures.append(k.now)

    k.process(sender())
    k.run(until=30.0)
    assert len(failures) == 1


def test_send_confirmed_requires_bindings():
    k, ea, eb = world()
    outbox = Outbox(k, ea, 0)
    with pytest.raises(BindingError):
        outbox.send_confirmed(Text("m"), timeout=1.0)


def test_send_with_no_bindings_is_noop():
    k, ea, eb = world()
    outbox = Outbox(k, ea, 0)
    result = outbox.send(Text("void"))
    assert result.copies == 0
    k.run()


def test_hooks_transform_messages():
    k, ea, eb = world()
    inbox = Inbox(k, eb, 0)
    outbox = Outbox(k, ea, 0)
    outbox.add(inbox.address)
    outbox.send_hooks.append(lambda m: Text(m.text + "+sent"))
    inbox.delivery_hooks.append(lambda m: Text(m.text + "+recv"))
    got = []

    def receiver():
        msg = yield inbox.receive()
        got.append(msg.text)

    k.process(receiver())
    outbox.send(Text("m"))
    k.run()
    assert got == ["m+sent+recv"]


def test_closed_inbox_stops_receiving_new_messages():
    k, ea, eb = world()
    inbox = Inbox(k, eb, 0)
    outbox = Outbox(k, ea, 0)
    outbox.add(inbox.address)
    outbox.send(Text("first"))
    k.run()
    inbox.close()
    outbox.send(Text("second"))
    k.run()
    assert len(inbox) == 1  # 'second' was dropped at the endpoint
    assert eb.stats.no_such_inbox == 1


def test_channel_counters():
    k, ea, eb = world()
    inbox = Inbox(k, eb, 0)
    outbox = Outbox(k, ea, 0)
    outbox.add(inbox.address)
    outbox.send(Text("x"))
    outbox.send(Text("y"))
    chan = outbox._channels[inbox.address]
    assert chan.copies_sent == 2
    assert chan.bytes_sent > 0
