"""Edge-case tests for mailbox ports and RPC plumbing."""

import pytest

from repro.dapplet import Dapplet
from repro.errors import BindingError, ReceiveTimeout, RpcTimeout
from repro.mailbox import Inbox, Outbox
from repro.messages import Text
from repro.net import ConstantLatency, DatagramNetwork, Endpoint, NodeAddress
from repro.rpc import RemoteProxy, export
from repro.sim import Kernel
from repro.world import World

A = NodeAddress("a.edu", 1000)
B = NodeAddress("b.edu", 1000)


class Plain(Dapplet):
    kind = "plain"


def world_pair():
    k = Kernel(seed=0)
    net = DatagramNetwork(k, latency=ConstantLatency(0.02))
    return k, Endpoint(k, net, A), Endpoint(k, net, B)


def test_send_result_confirmed_with_no_receipts_fires_immediately():
    k, ea, eb = world_pair()
    out = Outbox(k, ea, 0)
    result = out.send(Text("void"))  # no bindings
    fired = []

    def waiter():
        yield result.confirmed()
        fired.append(k.now)

    k.process(waiter())
    k.run()
    assert fired == [0.0]


def test_send_with_timeout_and_no_bindings_raises():
    """A timed send on an unbound outbox is a wiring bug, not a silent
    instant success: it raises BindingError exactly like send_confirmed."""
    k, ea, eb = world_pair()
    out = Outbox(k, ea, 0)
    with pytest.raises(BindingError):
        out.send(Text("void"), timeout=1.0)
    # The untimed fan-out-of-zero stays legal (vacuous confirmation).
    assert out.send(Text("void")).copies == 0


def test_receive_timeout_same_instant_arrival_puts_message_back():
    """The race the receive() timeout guards against: the pending take
    resolves in the very instant the timeout already fired. The message
    must go back to the head of the queue, never be lost."""
    k, ea, eb = world_pair()
    inbox = Inbox(k, eb, 0)
    ev = inbox.receive(timeout=0.05)
    take = inbox._store._getters[0]  # the take backing the timed receive
    with pytest.raises(ReceiveTimeout):
        k.run(until=ev)
    # Resolve the withdrawn take anyway, as a store implementation that
    # lost the cancellation race would: same-instant delivery + timeout.
    take.succeed(Text("racer"))
    k.run()
    assert not inbox.is_empty
    assert inbox.peek().text == "racer"
    got = k.run(until=inbox.receive())
    assert got.text == "racer"


def test_transform_queued_rewrites_and_drops():
    k, ea, eb = world_pair()
    inbox = Inbox(k, eb, 0)
    out = Outbox(k, ea, 0)
    out.add(inbox.address)
    for i in range(4):
        out.send(Text(str(i)))
    k.run()
    inbox.transform_queued(
        lambda m: None if int(m.text) % 2 else Text("x" + m.text))
    assert [m.text for m in inbox.queued()] == ["x0", "x2"]


def test_queued_returns_copy():
    k, ea, eb = world_pair()
    inbox = Inbox(k, eb, 0)
    out = Outbox(k, ea, 0)
    out.add(inbox.address)
    out.send(Text("m"))
    k.run()
    snapshot = inbox.queued()
    snapshot.clear()
    assert len(inbox) == 1


def test_receive_timeout_zero_like_behaviour():
    """A receive with a very short timeout on an empty inbox fails; on a
    non-empty inbox it succeeds immediately."""
    k, ea, eb = world_pair()
    inbox = Inbox(k, eb, 0)
    inbox.deliver_local(Text("ready"))
    got = []

    def reader():
        msg = yield inbox.receive(timeout=0.001)
        got.append(msg.text)

    k.process(reader())
    k.run()
    assert got == ["ready"]


def test_proxy_close_stops_dispatching():
    world = World(seed=1, latency=ConstantLatency(0.01))
    server = world.dapplet(Plain, "caltech.edu", "server")
    client = world.dapplet(Plain, "rice.edu", "client")

    class Svc:
        def ping(self):
            return "pong"

    remote = export(server, Svc(), name="svc")
    proxy = RemoteProxy(client, remote.pointer)
    outcomes = []

    def run():
        first = yield proxy.call("ping")
        outcomes.append(first)
        proxy.close()
        try:
            yield proxy.call("ping", timeout=0.5)
        except RpcTimeout:
            outcomes.append("timeout-after-close")

    world.run(until=world.process(run()))
    world.run()
    assert outcomes == ["pong", "timeout-after-close"]


def test_outbox_send_hooks_apply_per_send_not_per_copy():
    """One stamp per send: all copies carry identical hook output."""
    k, ea, eb = world_pair()
    in1 = Inbox(k, eb, 0)
    in2 = Inbox(k, eb, 1)
    out = Outbox(k, ea, 0)
    out.add(in1.address)
    out.add(in2.address)
    calls = []
    out.send_hooks.append(lambda m: (calls.append(1), m)[1])
    out.send(Text("m"))
    assert len(calls) == 1
    k.run()
    assert len(in1) == len(in2) == 1


def test_inbox_counts_messages_received():
    k, ea, eb = world_pair()
    inbox = Inbox(k, eb, 0)
    for i in range(3):
        inbox.deliver_local(Text(str(i)))
    assert inbox.messages_received == 3
    # Hook-swallowed messages are not counted as received.
    inbox.delivery_hooks.append(lambda m: None)
    inbox.deliver_local(Text("swallowed"))
    assert inbox.messages_received == 3
