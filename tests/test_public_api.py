"""Public API conformance: every re-export in ``repro.__init__`` stays
importable and ``__all__`` is complete and accurate."""

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, (
            f"repro.__all__ lists {name!r} but it does not resolve")


def test_all_is_sorted_and_unique():
    public = [n for n in repro.__all__ if not n.startswith("_")]
    assert public == sorted(public)
    assert len(set(repro.__all__)) == len(repro.__all__)


def test_public_attributes_are_in_all():
    # Everything importable from the top level that is not a module or a
    # private name must be declared in __all__.
    import types
    exported = set(repro.__all__)
    for name, value in vars(repro).items():
        if name.startswith("_") or isinstance(value, types.ModuleType):
            continue
        assert name in exported, (
            f"repro.{name} is public but missing from __all__")


def test_headline_classes_present():
    for name in ("World", "Dapplet", "Inbox", "Outbox", "Substrate",
                 "SimSubstrate", "AsyncioSubstrate"):
        assert name in repro.__all__


def test_discovery_exports_present():
    for name in ("DirectoryReplica", "Resolver", "RegistrationAgent",
                 "LeaseConfig", "LeaseExpired", "DiscoveryError"):
        assert name in repro.__all__
    # The lease knobs clients tune must exist on the exported config.
    cfg = repro.LeaseConfig()
    for field in ("ttl", "renew_interval", "gossip_interval", "cache_ttl"):
        assert hasattr(cfg, field)
    assert cfg.staleness_bound(3) > cfg.ttl
