"""One session mixing all three delivery classes over one socket pair.

The spec binds a control link (RELIABLE), a telemetry link (UNRELIABLE)
and an updates link (RELIABLE_SKIP) between the same two dapplets; the
session protocol carries the classes to the remote members' outboxes.
Run under simulated loss the classes behave per contract — and the
whole mixed run is byte-deterministic. The same session also runs over
real UDP on the asyncio substrate.
"""

from repro import AsyncioSubstrate, Dapplet, Initiator, SessionSpec, Tracer, World
from repro.messages import Text
from repro.net import RELIABLE_SKIP, UNRELIABLE, ConstantLatency, FaultPlan

N = 8


class Producer(Dapplet):
    kind = "mixed-producer"

    def on_session_start(self, ctx):
        self.ctx = ctx
        return None


class Consumer(Dapplet):
    kind = "mixed-consumer"

    def on_session_start(self, ctx):
        self.got = {"ctl": [], "telemetry": [], "updates": []}

        def pump(port):
            while ctx.active:
                msg = yield ctx.inbox(port).receive()
                self.got[port].append(msg.text)

        for port in self.got:
            self.spawn(pump(port), name=f"pump-{port}")
        return None


def mixed_spec():
    spec = SessionSpec("mixed")
    spec.add_member("producer")
    spec.add_member("consumer", inboxes=("ctl", "telemetry", "updates"))
    spec.bind("producer", "ctl", "consumer", "ctl")
    spec.bind("producer", "tele", "consumer", "telemetry",
              delivery=UNRELIABLE)
    spec.bind("producer", "upd", "consumer", "updates",
              delivery=RELIABLE_SKIP)
    return spec


def drive(world, producer, initiator, *, settle=1.0, **run_kwargs):
    def director():
        session = yield from initiator.establish(mixed_spec(), timeout=120.0)
        ctx = producer.ctx
        for i in range(N):
            ctx.outbox("ctl").send(Text(f"ctl {i}"))
            ctx.outbox("tele").send(Text(f"tele {i}"))
            ctx.outbox("upd").send(Text(f"upd {i}"))
            yield world.substrate.timeout(0.03)
        yield world.substrate.timeout(settle)  # let skips and rtx resolve
        yield from session.terminate()

    world.run(until=world.process(director()), **run_kwargs)


def run_sim(seed):
    tracer = Tracer()
    world = World(seed=seed, latency=ConstantLatency(0.02),
                  faults=FaultPlan(drop_prob=0.15),
                  endpoint_options={"rto_initial": 0.1, "max_retries": 80,
                                    "skip_timeout": 0.05},
                  tracer=tracer)
    producer = world.dapplet(Producer, "caltech.edu", "producer")
    consumer = world.dapplet(Consumer, "sydney.edu.au", "consumer")
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    drive(world, producer, initiator)
    world.run()  # drain trailing timers so the exported trace is complete
    return consumer.got, tracer.to_jsonl()


def indices(texts, prefix):
    assert all(t.startswith(prefix) for t in texts)
    return [int(t.split()[1]) for t in texts]


def test_mixed_classes_behave_per_contract_under_loss():
    got, _ = run_sim(seed=2)
    # RELIABLE: exactly once, in order, despite 15% loss.
    assert got["ctl"] == [f"ctl {i}" for i in range(N)]
    # UNRELIABLE: a strictly increasing subsequence — losses stay lost,
    # nothing is duplicated or delivered stale.
    tele = indices(got["telemetry"], "tele")
    assert tele == sorted(set(tele)) and set(tele) <= set(range(N))
    assert len(tele) < N  # seed 2 drops telemetry frames
    # RELIABLE_SKIP: in order with holes where the sender abandoned.
    upd = indices(got["updates"], "upd")
    assert upd == sorted(set(upd)) and set(upd) <= set(range(N))
    assert len(upd) < N  # seed 2 abandons a couple of updates


def test_mixed_class_session_is_byte_deterministic():
    """Two identical mixed-class runs export byte-identical traces —
    the delivery-class machinery (skip timers, stale drops, SKIP
    retransmissions) introduces no hidden nondeterminism."""
    got1, trace1 = run_sim(seed=2)
    got2, trace2 = run_sim(seed=2)
    assert got1 == got2
    assert trace1 == trace2


def test_mixed_class_session_over_real_udp():
    """The same spec runs over real loopback UDP sockets: classes are
    carried by the session protocol, not by simulator hooks. Loopback
    loses nothing, so even UNRELIABLE and RELIABLE_SKIP links deliver
    everything — the point is that the frames (class bits, SKIP wire
    kind) survive the binary codec end to end."""
    world = World(substrate=AsyncioSubstrate(seed=3))
    try:
        producer = world.dapplet(Producer, "caltech.edu", "producer")
        consumer = world.dapplet(Consumer, "sydney.edu.au", "consumer")
        initiator = world.dapplet(Initiator, "caltech.edu", "init")
        drive(world, producer, initiator, settle=0.3, wall_timeout=30)
        got = consumer.got
    finally:
        world.close()
    assert got["ctl"] == [f"ctl {i}" for i in range(N)]
    tele = indices(got["telemetry"], "tele")
    assert tele == sorted(set(tele)) and set(tele) <= set(range(N))
    upd = indices(got["updates"], "upd")
    assert upd == sorted(set(upd)) and set(upd) <= set(range(N))
