"""Regression: failed growth rolls back cleanly."""

import pytest

from repro.errors import SessionError, SessionRejected
from repro.net import ConstantLatency, PerLinkLatency
from repro.session import Binding, Initiator, MemberSpec, SessionSpec
from repro.world import World

from tests.session.conftest import PassiveDapplet, pair_spec


def test_grow_timeout_aborts_late_accepter():
    latency = PerLinkLatency(ConstantLatency(0.01))
    latency.set_link("caltech.edu", "slow.edu", ConstantLatency(3.0))
    world = World(seed=101, latency=latency)
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    world.dapplet(PassiveDapplet, "caltech.edu", "a")
    world.dapplet(PassiveDapplet, "rice.edu", "b")
    c = world.dapplet(PassiveDapplet, "slow.edu", "c")
    outcomes = []

    def director():
        session = yield from initiator.establish(pair_spec())
        try:
            yield from session.add_member(
                MemberSpec("c", inboxes=("in",), regions={"r": "rw"}),
                [Binding("a", "to_c", "c", "in")], timeout=1.0)
        except SessionError:
            outcomes.append("timeout")
        assert "c" not in session.members
        assert "c" not in session.ports
        # Let the slow accept and the abort both land.
        yield world.kernel.timeout(10.0)
        # c holds nothing: a fresh conflicting-region session succeeds.
        solo = SessionSpec("solo")
        solo.add_member("c", regions={"r": "rw"})
        s2 = yield from initiator.establish(solo)
        outcomes.append("clean")
        yield from s2.terminate()
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    world.run()
    assert outcomes == ["timeout", "clean"]
    assert c.sessions._entries == {}


def test_grow_rejection_rolls_back_spec():
    world = World(seed=102, latency=ConstantLatency(0.01))
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    world.dapplet(PassiveDapplet, "rice.edu", "b")
    c = world.dapplet(PassiveDapplet, "utk.edu", "c")
    c.acl.deny(initiator.address)
    outcomes = []

    def director():
        session = yield from initiator.establish(pair_spec())
        bindings_before = list(session.spec.bindings)
        try:
            yield from session.add_member(
                MemberSpec("c", inboxes=("in",)),
                [Binding("a", "to_c", "c", "in")])
        except SessionRejected as exc:
            outcomes.append(exc.reason)
        assert session.spec.bindings == bindings_before
        assert "c" not in session.spec.members
        # The existing members' channels are untouched; the session
        # still works end to end.
        from repro.messages import Text
        a.last_ctx.outbox("out").send(Text("still alive"))
        import tests.session.conftest  # noqa: F401 (b defined there)
        b = world.get("b")
        msg = yield b.last_ctx.inbox("in").receive()
        outcomes.append(msg.text)
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    world.run()
    assert outcomes == ["acl", "still alive"]
