"""Shared fixtures for session-layer tests."""

import pytest

from repro.dapplet import Dapplet
from repro.messages import Text
from repro.net import ConstantLatency
from repro.session import Initiator, SessionSpec
from repro.world import World


class EchoDapplet(Dapplet):
    """Replies to every message on its 'in' port via its 'out' outbox."""

    kind = "echo"

    def on_session_start(self, ctx):
        self.started = getattr(self, "started", 0) + 1

        def serve():
            while ctx.active:
                msg = yield ctx.inbox("in").receive()
                ctx.outbox("out").send(Text("echo:" + msg.text))

        return serve()

    def on_session_end(self, ctx):
        self.ended = getattr(self, "ended", 0) + 1


class PassiveDapplet(Dapplet):
    """Joins sessions but runs no session process."""

    kind = "passive"

    def on_session_start(self, ctx):
        self.last_ctx = ctx
        return None

    def on_session_end(self, ctx):
        self.ended = getattr(self, "ended", 0) + 1


@pytest.fixture
def world():
    return World(seed=1, latency=ConstantLatency(0.01))


@pytest.fixture
def initiator(world):
    return world.dapplet(Initiator, "caltech.edu", "init")


def pair_spec(app="test", regions_a=None, regions_b=None):
    """A two-member spec: a.out -> b.in and b.out -> a.in."""
    spec = SessionSpec(app)
    spec.add_member("a", inboxes=("in",), regions=regions_a or {})
    spec.add_member("b", inboxes=("in",), regions=regions_b or {})
    spec.bind("a", "out", "b", "in")
    spec.bind("b", "out", "a", "in")
    return spec
