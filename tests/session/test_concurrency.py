"""Concurrency edge cases: one initiator running several protocols at
once; overlapping establishes; sessions racing with termination."""

import pytest

from repro.errors import SessionRejected
from repro.messages import Text
from repro.session import SessionSpec

from tests.session.conftest import PassiveDapplet, pair_spec


def test_one_initiator_many_concurrent_establishes(world, initiator):
    """Concurrent establishes from one initiator must not cross wires
    (each has its own control inbox)."""
    for i in range(6):
        world.dapplet(PassiveDapplet, f"s{i}.edu", f"m{i}")
    sessions = []

    def establish_pair(i, j):
        spec = SessionSpec(f"app{i}")
        spec.add_member(f"m{i}", inboxes=("in",))
        spec.add_member(f"m{j}", inboxes=("in",))
        spec.bind(f"m{i}", "out", f"m{j}", "in")
        session = yield from initiator.establish(spec)
        sessions.append(session)

    procs = [world.process(establish_pair(i, i + 3)) for i in range(3)]
    world.run()
    assert len(sessions) == 3
    assert len({s.session_id for s in sessions}) == 3

    def teardown():
        for s in sessions:
            yield from s.terminate()

    world.run(until=world.process(teardown()))
    world.run()
    assert all(s.terminated for s in sessions)


def test_same_dapplet_in_two_disjoint_sessions(world, initiator):
    """A dapplet participates in two sessions at once when their
    regions do not conflict; its ports are namespaced per session."""
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b")
    contexts = []

    orig = a.on_session_start

    def capture(ctx):
        contexts.append(ctx)
        return orig(ctx)

    a.on_session_start = capture

    def director():
        s1 = yield from initiator.establish(pair_spec())
        s2 = yield from initiator.establish(pair_spec())
        # a now holds two live contexts with distinct inboxes.
        assert len(contexts) == 2
        assert contexts[0].inbox("in") is not contexts[1].inbox("in")
        # Traffic addressed to one session does not leak to the other.
        b.last_ctx.outbox("out").send(Text("to-second"))
        msg = yield contexts[1].inbox("in").receive()
        assert msg.text == "to-second"
        assert contexts[0].inbox("in").is_empty
        yield from s1.terminate()
        yield from s2.terminate()

    p = world.process(director())
    world.run(until=p)
    world.run()


def test_establish_racing_rejection_leaves_managers_clean(world, initiator):
    """Two establishes race for a conflicting region: exactly one wins;
    after terminating it, the loser can retry successfully; no manager
    entry leaks."""
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b")
    outcomes = []

    def contender(tag):
        spec = pair_spec(regions_a={"cal": "rw"})
        try:
            session = yield from initiator.establish(spec)
            outcomes.append((tag, "won"))
            yield world.kernel.timeout(0.5)
            yield from session.terminate()
        except SessionRejected:
            outcomes.append((tag, "rejected"))

    world.process(contender("x"))
    world.process(contender("y"))
    world.run()
    assert sorted(o[1] for o in outcomes) == ["rejected", "won"]
    assert a.sessions.active_sessions() == []
    assert b.sessions.active_sessions() == []
    # All session inboxes were cleaned up: only the control inbox and
    # the clock-free defaults remain registered.
    leftover = [ib for ib in a.inboxes.values()
                if ib.name and ib.name.startswith("init#")]
    assert leftover == []
