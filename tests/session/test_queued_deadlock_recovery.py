"""The wait-instead-of-reject hazard: two establishments queued at each
other's members deadlock; the establish timeout + automatic abort must
recover, and retries must eventually succeed."""

from repro.errors import SessionError
from repro.net import ConstantLatency, PerLinkLatency
from repro.session import Initiator, SessionSpec
from repro.world import World

from tests.session.conftest import PassiveDapplet


def test_cross_member_queue_deadlock_recovers_via_timeout():
    # Adversarial latencies force opposite arrival orders at the two
    # members: initiator 1 reaches A first, initiator 2 reaches B first.
    latency = PerLinkLatency(ConstantLatency(0.05))
    latency.set_link("i1.edu", "a.edu", ConstantLatency(0.01))
    latency.set_link("i1.edu", "b.edu", ConstantLatency(0.50))
    latency.set_link("i2.edu", "a.edu", ConstantLatency(0.50))
    latency.set_link("i2.edu", "b.edu", ConstantLatency(0.01))
    world = World(seed=121, latency=latency)
    a = world.dapplet(PassiveDapplet, "a.edu", "a")
    b = world.dapplet(PassiveDapplet, "b.edu", "b")
    init1 = world.dapplet(Initiator, "i1.edu", "init1")
    init2 = world.dapplet(Initiator, "i2.edu", "init2")
    log = []

    def spec():
        s = SessionSpec("t")
        s.add_member("a", regions={"shared": "rw"})
        s.add_member("b", regions={"shared": "rw"})
        return s

    def contender(tag, initiator, backoff):
        attempts = 0
        while True:
            attempts += 1
            try:
                session = yield from initiator.establish(
                    spec(), timeout=3.0, wait_for_regions=True)
                break
            except SessionError:
                log.append((tag, "timed-out"))
                yield world.kernel.timeout(backoff)
        yield world.kernel.timeout(0.5)
        yield from session.terminate()
        log.append((tag, "done", attempts))

    # Different backoffs break the symmetry on retry.
    world.process(contender("x", init1, 0.9))
    world.process(contender("y", init2, 2.1))
    world.run(until=120.0)
    done = [e for e in log if e[1] == "done"]
    assert len(done) == 2, log
    # The deadlock actually occurred at least once.
    assert any(e[1] == "timed-out" for e in log)
    # Everything is clean afterwards.
    for d in (a, b):
        assert d.sessions.active_sessions() == []
        assert d.sessions._admission_queue == []
        assert d.sessions._entries == {}
