"""Unit tests for session specifications."""

import pytest

from repro.errors import SessionError
from repro.session import Binding, SessionSpec


def test_spec_builds_members_and_bindings():
    spec = SessionSpec("calendar", params={"days": 5})
    spec.add_member("mani", inboxes=("in",), regions={"cal": "rw"})
    spec.add_member("sec", inboxes=("requests", "replies"))
    spec.bind("mani", "out", "sec", "requests")
    spec.validate()
    assert spec.params == {"days": 5}
    assert spec.members["mani"].regions == {"cal": "rw"}
    assert spec.outboxes_of("mani") == {
        "out": [Binding("mani", "out", "sec", "requests")]}
    assert spec.outboxes_of("sec") == {}


def test_duplicate_member_rejected():
    spec = SessionSpec("x")
    spec.add_member("a")
    with pytest.raises(SessionError):
        spec.add_member("a")


def test_default_directory_name_is_member_name():
    spec = SessionSpec("x")
    m = spec.add_member("alice")
    assert m.directory_name == "alice"
    m2 = spec.add_member("bob", directory_name="robert")
    assert m2.directory_name == "robert"


def test_invalid_region_mode_rejected():
    spec = SessionSpec("x")
    with pytest.raises(SessionError):
        spec.add_member("a", regions={"cal": "write"})


def test_validate_catches_unknown_members():
    spec = SessionSpec("x")
    spec.add_member("a", inboxes=("in",))
    spec.bind("a", "out", "ghost", "in")
    with pytest.raises(SessionError, match="ghost"):
        spec.validate()


def test_validate_catches_undeclared_inbox():
    spec = SessionSpec("x")
    spec.add_member("a", inboxes=("in",))
    spec.add_member("b")  # declares no inboxes
    spec.bind("a", "out", "b", "in")
    with pytest.raises(SessionError, match="does not declare"):
        spec.validate()


def test_validate_catches_self_loop():
    spec = SessionSpec("x")
    spec.add_member("a", inboxes=("in",))
    spec.add_member("b", inboxes=("in",))
    spec.bind("a", "out", "a", "in")
    with pytest.raises(SessionError, match="self-loop"):
        spec.validate()


def test_validate_requires_members():
    with pytest.raises(SessionError, match="no members"):
        SessionSpec("x").validate()


def test_multi_target_outbox():
    """One outbox bound to several inboxes (Figure 3 fan-out)."""
    spec = SessionSpec("x")
    spec.add_member("hub")
    for name in ("s1", "s2", "s3"):
        spec.add_member(name, inboxes=("in",))
        spec.bind("hub", "bcast", name, "in")
    spec.validate()
    assert len(spec.outboxes_of("hub")["bcast"]) == 3
