"""Long-lived dapplets must not leak ports across many sessions."""

from tests.session.conftest import PassiveDapplet, pair_spec


def test_ports_do_not_accumulate_across_sessions(world, initiator):
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b")

    def run_one():
        session = yield from initiator.establish(pair_spec())
        yield from session.terminate()

    def warmup_and_measure():
        # One full cycle to populate steady-state structures.
        yield from run_one()
        counts = (len(a.inboxes), len(a.outboxes),
                  len(initiator.inboxes), len(initiator.outboxes))
        for _ in range(5):
            yield from run_one()
        after = (len(a.inboxes), len(a.outboxes),
                 len(initiator.inboxes), len(initiator.outboxes))
        assert after == counts, (counts, after)

    p = world.process(warmup_and_measure())
    world.run(until=p)
    world.run()


def test_manager_entries_do_not_accumulate(world, initiator):
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b")

    def run_many():
        for _ in range(4):
            session = yield from initiator.establish(pair_spec())
            yield from session.terminate()

    p = world.process(run_many())
    world.run(until=p)
    world.run()
    assert a.sessions.active_sessions() == []
    assert len(a.sessions._entries) == 0
    assert len(a.sessions._reply_outboxes) == 0
    assert len(initiator._records) == 0
