"""Regression: aborted establishment must clean up slow accepters too."""

from repro.errors import SessionRejected
from repro.net import ConstantLatency, PerLinkLatency

from tests.session.conftest import PassiveDapplet, pair_spec
from repro.session import Initiator
from repro.world import World


def test_slow_accepter_is_aborted_after_rejection():
    """b rejects instantly; a's accept is still in flight when the
    initiator gives up. a must not stay 'prepared' holding its regions."""
    latency = PerLinkLatency(ConstantLatency(0.01))
    # a is very far away: its accept arrives long after b's rejection.
    latency.set_link("caltech.edu", "slow.edu", ConstantLatency(2.0))
    world = World(seed=97, latency=latency)
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    a = world.dapplet(PassiveDapplet, "slow.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b")
    b.acl.deny(initiator.address)
    outcomes = []

    def director():
        try:
            yield from initiator.establish(
                pair_spec(regions_a={"cal": "rw"}))
        except SessionRejected as exc:
            outcomes.append(exc.reason)
        # Wait out the WAN so a's accept and our abort both land.
        yield world.kernel.timeout(10.0)
        # a released everything: a fresh session with the same region
        # must now be accepted.
        b.acl.clear()
        session = yield from initiator.establish(
            pair_spec(regions_a={"cal": "rw"}))
        outcomes.append("second-ok")
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    world.run()
    assert outcomes == ["acl", "second-ok"]
    assert a.sessions._entries == {}
    assert a.sessions.stats.aborts == 1


def test_timeout_aborts_all_prepared_members():
    """Establishment times out on a silent member; the responsive ones
    are aborted and hold nothing afterwards."""
    latency = PerLinkLatency(ConstantLatency(0.01))
    latency.set_link("caltech.edu", "dead.edu", ConstantLatency(60.0))
    world = World(seed=98, latency=latency,
                  endpoint_options={"rto_initial": 0.5})
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    a = world.dapplet(PassiveDapplet, "rice.edu", "a")
    b = world.dapplet(PassiveDapplet, "dead.edu", "b")
    outcomes = []

    def director():
        try:
            yield from initiator.establish(
                pair_spec(regions_a={"cal": "rw"}), timeout=2.0)
        except Exception as exc:
            outcomes.append(type(exc).__name__)

    p = world.process(director())
    world.run(until=p)
    world.run(until=world.now + 5.0)
    assert outcomes == ["SessionError"]
    assert a.sessions._entries == {}
    assert a.sessions.stats.aborts == 1
