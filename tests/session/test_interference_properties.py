"""Property-based tests for the interference relation."""

from hypothesis import given, strategies as st

from repro.session import regions_conflict

region_names = st.sampled_from(["cal", "docs", "mail", "prefs"])
modes = st.sampled_from(["r", "rw"])
region_maps = st.dictionaries(region_names, modes, max_size=4)


@given(region_maps, region_maps)
def test_conflict_is_symmetric(a, b):
    assert regions_conflict(a, b) == regions_conflict(b, a)


@given(region_maps)
def test_empty_never_conflicts(a):
    assert not regions_conflict(a, {})
    assert not regions_conflict({}, a)


@given(region_maps)
def test_read_only_self_overlap_is_safe(a):
    readonly = {k: "r" for k in a}
    assert not regions_conflict(readonly, readonly)


@given(region_maps)
def test_any_write_self_overlap_conflicts(a):
    if any(m == "rw" for m in a.values()):
        assert regions_conflict(a, a)
    else:
        assert not regions_conflict(a, a)


@given(region_maps, region_maps, region_names)
def test_adding_a_write_is_monotone(a, b, region):
    """Escalating a region to write access never removes a conflict."""
    if regions_conflict(a, b):
        widened = dict(a)
        widened[region] = "rw"
        assert regions_conflict(widened, b)


@given(region_maps, region_maps)
def test_conflict_requires_shared_region(a, b):
    if not (a.keys() & b.keys()):
        assert not regions_conflict(a, b)
