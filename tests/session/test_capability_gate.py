"""Unit tests: the registry capability gate in the session manager.

Enforcement is opt-in per dapplet: only members stamped with an
``owner=`` principal consult the world registry on Prepare. A denial
surfaces as ``SessionRejected(reason="capability:<verb>")`` carrying
the exact verb the initiating principal lacks, and bumps the member's
``SessionStats.rejects_capability`` counter.
"""

from repro.errors import SessionRejected

from tests.session.conftest import PassiveDapplet, pair_spec


def establish_outcome(world, initiator, spec=None):
    """Drive one establishment; returns ("ok", session) or the
    (participant, reason) of the rejection."""
    outcome = []

    def director():
        try:
            session = yield from initiator.establish(spec or pair_spec())
            outcome.append(("ok", session))
        except SessionRejected as exc:
            outcome.append((exc.participant, exc.reason))

    p = world.process(director())
    world.run(until=p)
    world.run()  # let any in-flight abort land
    return outcome[0]


def test_unowned_world_needs_no_grants(world, initiator):
    """With no owners anywhere the registry is never consulted."""
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b")
    status, _ = establish_outcome(world, initiator)
    assert status == "ok"
    assert a.sessions.stats.rejects_capability == 0
    assert b.sessions.stats.rejects_capability == 0
    assert world.registry.stats.allows == world.registry.stats.denies == 0


def test_owned_member_rejects_ungrant_principal(world):
    """An owned member denies a principal holding no grant; the reason
    carries the denied verb and the counter ticks."""
    from repro.session import Initiator

    alice = world.registry.principal("alice", org="acme")
    mallory = world.registry.principal("mallory", org="evil")
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b", owner=alice)
    init = world.dapplet(Initiator, "caltech.edu", "init", owner=mallory)

    participant, reason = establish_outcome(world, init)
    assert (participant, reason) == ("b", "capability:session.establish")
    assert b.sessions.stats.rejects_capability == 1
    assert b.sessions.stats.rejects_acl == 0
    # The unowned member accepted, then was aborted: nothing half-linked.
    assert a.sessions.active_sessions() == []
    assert a.sessions.stats.aborts == 1


def test_granted_principal_establishes(world):
    from repro.session import Initiator

    alice = world.registry.principal("alice", org="acme")
    bob = world.registry.principal("bob", org="acme")
    world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b", owner=alice)
    init = world.dapplet(Initiator, "caltech.edu", "init", owner=bob)
    world.registry.grant(bob, "acme/**", ("session.establish",))

    status, session = establish_outcome(world, init)
    assert status == "ok"
    assert b.sessions.stats.rejects_capability == 0


def test_manifest_required_verb_lands_in_reason(world):
    """``requires=`` verbs are gated alongside session.establish, and
    the first missing one names the rejection."""
    from repro.session import Initiator

    alice = world.registry.principal("alice", org="acme")
    bob = world.registry.principal("bob", org="acme")
    world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b", owner=alice,
                      requires=("rpc.call:read",))
    init = world.dapplet(Initiator, "caltech.edu", "init", owner=bob)
    world.registry.grant(bob, "acme/**", ("session.establish",))

    participant, reason = establish_outcome(world, init)
    assert (participant, reason) == ("b", "capability:rpc.call:read")
    assert b.sessions.stats.rejects_capability == 1

    world.registry.grant(bob, "acme/**", ("rpc.call:read",))
    status, _ = establish_outcome(world, init)
    assert status == "ok"
    assert b.sessions.stats.rejects_capability == 1  # unchanged


def test_owner_always_passes_own_dapplets(world):
    from repro.session import Initiator

    alice = world.registry.principal("alice", org="acme")
    world.dapplet(PassiveDapplet, "caltech.edu", "a")
    world.dapplet(PassiveDapplet, "rice.edu", "b", owner=alice,
                  requires=("rpc.call:admin",))
    init = world.dapplet(Initiator, "caltech.edu", "init", owner=alice)

    status, _ = establish_outcome(world, init)
    assert status == "ok"


def test_revocation_denies_the_next_establish(world):
    """Revoking clears the decision cache: the very next Prepare is
    denied, and the denial is audited as a ``reg`` deny event."""
    from repro import Tracer
    from repro.session import Initiator

    tracer = world.attach_tracer(Tracer())
    alice = world.registry.principal("alice", org="acme")
    bob = world.registry.principal("bob", org="acme")
    world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b", owner=alice)
    init = world.dapplet(Initiator, "caltech.edu", "init", owner=bob)
    world.registry.grant(bob, "acme/**", ("session.establish",))

    status, session = establish_outcome(world, init)
    assert status == "ok"

    def teardown():
        yield from session.terminate()

    world.run(until=world.process(teardown()))
    world.registry.revoke(bob)

    participant, reason = establish_outcome(world, init)
    assert (participant, reason) == ("b", "capability:session.establish")
    assert b.sessions.stats.rejects_capability == 1
    denies = [e for e in tracer.events
              if e.cat == "reg" and e.name == "deny"]
    assert denies and denies[-1].fields["principal"] == "bob"
    assert denies[-1].fields["verb"] == "session.establish"


def test_unowned_initiator_denied_at_owned_member(world):
    """An ownerless initiator stamps principal="" — owned members
    reject it (no anonymous access to owned dapplets)."""
    alice = world.registry.principal("alice", org="acme")
    from repro.session import Initiator

    world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b", owner=alice)
    init = world.dapplet(Initiator, "caltech.edu", "init")

    participant, reason = establish_outcome(world, init)
    assert (participant, reason) == ("b", "capability:session.establish")
    assert b.sessions.stats.rejects_capability == 1
