"""Integration tests: session growth, shrinkage, leave, termination."""

import pytest

from repro.errors import SessionError, SessionRejected
from repro.messages import Text
from repro.session import Binding, MemberSpec, SessionSpec

from tests.session.conftest import PassiveDapplet, pair_spec


def test_grow_session_adds_member_and_channels(world, initiator):
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b")
    c = world.dapplet(PassiveDapplet, "utk.edu", "c")
    got = []

    def director():
        session = yield from initiator.establish(pair_spec())
        assert session.members == {"a", "b"}
        yield from session.add_member(
            MemberSpec("c", inboxes=("in",)),
            [Binding("a", "to_c", "c", "in"),
             Binding("c", "out", "a", "in")])
        assert session.members == {"a", "b", "c"}
        # a -> c over the new channel added by BindAdd.
        a.last_ctx.outbox("to_c").send(Text("welcome"))
        msg = yield c.last_ctx.inbox("in").receive()
        got.append(msg.text)
        # c -> a over c's committed outbox.
        c.last_ctx.outbox("out").send(Text("thanks"))
        msg = yield a.last_ctx.inbox("in").receive()
        got.append(msg.text)
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    assert got == ["welcome", "thanks"]
    assert c.ended == 1


def test_grow_validates_membership(world, initiator):
    world.dapplet(PassiveDapplet, "caltech.edu", "a")
    world.dapplet(PassiveDapplet, "rice.edu", "b")
    world.dapplet(PassiveDapplet, "utk.edu", "c")
    errors = []

    def director():
        session = yield from initiator.establish(pair_spec())
        try:
            yield from session.add_member(
                MemberSpec("a", inboxes=("in",)), [])
        except SessionError as exc:
            errors.append("dup")
        try:
            yield from session.add_member(
                MemberSpec("c", inboxes=("in",)),
                [Binding("a", "o", "b", "in")])  # does not involve c
        except SessionError:
            errors.append("uninvolved")
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    assert errors == ["dup", "uninvolved"]


def test_grow_rejected_by_interference(world, initiator):
    world.dapplet(PassiveDapplet, "caltech.edu", "a")
    world.dapplet(PassiveDapplet, "rice.edu", "b")
    c = world.dapplet(PassiveDapplet, "utk.edu", "c")
    outcome = []

    def director():
        # c is already in a session writing its 'docs' region.
        solo = SessionSpec("solo")
        solo.add_member("c", regions={"docs": "rw"})
        s1 = yield from initiator.establish(solo)
        s2 = yield from initiator.establish(pair_spec())
        try:
            yield from s2.add_member(
                MemberSpec("c", inboxes=("in",), regions={"docs": "r"}),
                [Binding("a", "to_c", "c", "in")])
        except SessionRejected as exc:
            outcome.append(exc.reason)
        yield from s1.terminate()
        yield from s2.terminate()

    p = world.process(director())
    world.run(until=p)
    assert outcome == ["interference"]


def test_shrink_removes_member_and_channels(world, initiator):
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b")
    logs = []

    def director():
        session = yield from initiator.establish(pair_spec())
        a_out = a.last_ctx.outbox("out")
        assert len(a_out.destinations()) == 1
        yield from session.remove_member("b")
        assert session.members == {"a"}
        # The channel a -> b was removed by BindRemove.
        assert a_out.destinations() == ()
        logs.append(b.ended)
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    assert logs == [1]
    assert a.ended == 1


def test_shrink_unknown_member_raises(world, initiator):
    world.dapplet(PassiveDapplet, "caltech.edu", "a")
    world.dapplet(PassiveDapplet, "rice.edu", "b")
    errors = []

    def director():
        session = yield from initiator.establish(pair_spec())
        try:
            yield from session.remove_member("ghost")
        except SessionError:
            errors.append("unknown")
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    assert errors == ["unknown"]


def test_member_leave_notifies_initiator(world, initiator):
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b")
    log = []

    def director():
        session = yield from initiator.establish(pair_spec())
        # b leaves unilaterally.
        b.last_ctx.leave(reason="done early")
        yield world.kernel.timeout(1.0)
        # Termination then only waits for the remaining member.
        yield from session.terminate()
        log.append(sorted(session.members))

    p = world.process(director())
    world.run(until=p)
    assert b.ended == 1 and a.ended == 1
    assert log == [["a", "b"]]  # membership record retained at terminate


def test_terminate_is_idempotent(world, initiator):
    world.dapplet(PassiveDapplet, "caltech.edu", "a")
    world.dapplet(PassiveDapplet, "rice.edu", "b")
    done = []

    def director():
        session = yield from initiator.establish(pair_spec())
        yield from session.terminate()
        yield from session.terminate()  # second call is a no-op
        done.append(True)

    p = world.process(director())
    world.run(until=p)
    assert done == [True]


def test_terminate_tolerates_dead_member(world, initiator):
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b")
    done = []

    def director():
        session = yield from initiator.establish(pair_spec())
        b.stop()  # b crashes; no UnlinkAck will come
        yield from session.terminate(timeout=2.0)
        done.append(session.terminated)

    p = world.process(director())
    world.run(until=p)
    assert done == [True]
    assert a.ended == 1


def test_grow_after_terminate_raises(world, initiator):
    world.dapplet(PassiveDapplet, "caltech.edu", "a")
    world.dapplet(PassiveDapplet, "rice.edu", "b")
    world.dapplet(PassiveDapplet, "utk.edu", "c")
    errors = []

    def director():
        session = yield from initiator.establish(pair_spec())
        yield from session.terminate()
        try:
            yield from session.add_member(
                MemberSpec("c", inboxes=("in",)), [])
        except SessionError:
            errors.append("terminated")

    p = world.process(director())
    world.run(until=p)
    assert errors == ["terminated"]
