"""Unit tests for SessionManager protocol edge cases, driven by raw
protocol messages (no initiator)."""

import pytest

from repro.net import ConstantLatency
from repro.session import messages as sm
from repro.session.manager import CONTROL_INBOX
from repro.world import World

from tests.session.conftest import PassiveDapplet


@pytest.fixture
def rig():
    world = World(seed=91, latency=ConstantLatency(0.01))
    target = world.dapplet(PassiveDapplet, "caltech.edu", "target")
    probe = world.dapplet(PassiveDapplet, "rice.edu", "probe")
    control = probe.create_inbox(name="ctl")
    out = probe.create_outbox()
    out.add(target.address.inbox(CONTROL_INBOX))
    return world, target, probe, control, out


def prepare(probe, control, sid="s#1", member="m", inboxes=("in",),
            regions=None):
    return sm.Prepare(session_id=sid, app="t", member=member,
                      initiator=probe.address,
                      reply_to=control.named_address,
                      inboxes=inboxes, regions=regions or {})


def drain(world, control, n=1):
    got = []

    def reader():
        for _ in range(n):
            got.append((yield control.receive(timeout=5.0)))

    p = world.process(reader())
    world.run(until=p)
    return got


def test_commit_for_unknown_session_is_dropped(rig):
    world, target, probe, control, out = rig
    out.send(sm.Commit("ghost#1", "m", outboxes={}, params={}))
    world.run()
    assert target.sessions.stats.commits == 0
    assert target.sessions.active_sessions() == []


def test_commit_after_abort_is_dropped(rig):
    world, target, probe, control, out = rig
    out.send(prepare(probe, control))
    accept, = drain(world, control)
    assert isinstance(accept, sm.Accept)
    out.send(sm.Abort("s#1", "m"))
    world.run()
    out.send(sm.Commit("s#1", "m", outboxes={}, params={}))
    world.run()
    assert target.sessions.active_sessions() == []
    assert not hasattr(target, "last_ctx")


def test_duplicate_commit_re_acks_ready(rig):
    world, target, probe, control, out = rig
    out.send(prepare(probe, control))
    drain(world, control)
    out.send(sm.Commit("s#1", "m", outboxes={}, params={}))
    ready1, = drain(world, control)
    out.send(sm.Commit("s#1", "m", outboxes={}, params={}))
    ready2, = drain(world, control)
    assert isinstance(ready1, sm.Ready) and isinstance(ready2, sm.Ready)
    assert target.sessions.stats.commits == 1  # only counted once
    # on_session_start ran once.
    assert target.last_ctx is not None


def test_unlink_of_unknown_session_with_known_reply_acks(rig):
    world, target, probe, control, out = rig
    out.send(prepare(probe, control))
    drain(world, control)
    out.send(sm.Unlink("s#1", "m"))
    ack1, = drain(world, control)
    assert isinstance(ack1, sm.UnlinkAck)
    # A second unlink (duplicate terminate) still gets acknowledged.
    out.send(sm.Unlink("s#1", "m"))
    ack2, = drain(world, control)
    assert isinstance(ack2, sm.UnlinkAck)


def test_unlink_of_never_seen_session_is_silent(rig):
    world, target, probe, control, out = rig
    out.send(sm.Unlink("never#1", "m"))
    world.run()
    assert control.is_empty  # nowhere to reply; dropped quietly


def test_bind_add_before_commit_is_dropped(rig):
    world, target, probe, control, out = rig
    out.send(prepare(probe, control))
    drain(world, control)
    out.send(sm.BindAdd("s#1", "m", "out",
                        targets=(probe.address.inbox("ctl"),)))
    world.run()
    # Not committed: no ctx, no ack.
    assert control.is_empty


def test_bind_remove_is_idempotent(rig):
    world, target, probe, control, out = rig
    out.send(prepare(probe, control))
    drain(world, control)
    target_addr = probe.address.inbox("ctl")
    out.send(sm.Commit("s#1", "m",
                       outboxes={"out": (target_addr,)}, params={}))
    drain(world, control)  # Ready
    ctx = target.last_ctx
    assert ctx.outbox("out").destinations() == (target_addr,)
    out.send(sm.BindRemove("s#1", "m", "out", targets=(target_addr,)))
    world.run()
    assert ctx.outbox("out").destinations() == ()
    # Removing again (or an unknown outbox) is harmless.
    out.send(sm.BindRemove("s#1", "m", "out", targets=(target_addr,)))
    out.send(sm.BindRemove("s#1", "m", "nope", targets=(target_addr,)))
    world.run()


def test_unknown_control_message_is_ignored(rig):
    world, target, probe, control, out = rig
    from repro.messages import Text
    out.send(Text("not a control message"))
    world.run()
    assert target.sessions.active_sessions() == []


def test_prepare_with_unwritable_port_name_collision(rig):
    """Two different sessions create same-named ports: namespacing by
    session id keeps them distinct."""
    world, target, probe, control, out = rig
    out.send(prepare(probe, control, sid="s#1"))
    out.send(prepare(probe, control, sid="s#2"))
    a1, a2 = drain(world, control, n=2)
    assert a1.ports["in"] != a2.ports["in"]
