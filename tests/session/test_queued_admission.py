"""Tests for queued admission (establish(wait_for_regions=True))."""

import pytest

from repro.errors import SessionError, SessionRejected
from repro.session import InterferenceMonitor

from tests.session.conftest import PassiveDapplet, pair_spec


def test_waiting_establish_blocks_until_region_free(world, initiator):
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b")
    world.interference_monitor = InterferenceMonitor()
    times = {}

    def director():
        s1 = yield from initiator.establish(pair_spec(regions_a={"cal": "rw"}))
        t0 = world.now

        def second():
            s2 = yield from initiator.establish(
                pair_spec(regions_a={"cal": "rw"}), timeout=60.0,
                wait_for_regions=True)
            times["established"] = world.now
            yield from s2.terminate()

        p2 = world.process(second())
        yield world.kernel.timeout(3.0)
        times["released"] = world.now
        yield from s1.terminate()
        yield p2

    p = world.process(director())
    world.run(until=p)
    world.run()
    # The second session waited for the first to end.
    assert times["established"] >= times["released"]
    assert a.sessions.stats.queued == 1
    assert a.sessions.stats.rejects_interference == 0


def test_queued_admissions_are_fifo(world, initiator):
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b")
    order = []

    def director():
        s1 = yield from initiator.establish(pair_spec(regions_a={"cal": "rw"}))

        def waiter(tag, delay):
            yield world.kernel.timeout(delay)
            s = yield from initiator.establish(
                pair_spec(regions_a={"cal": "rw"}), timeout=60.0,
                wait_for_regions=True)
            order.append((tag, world.now))
            yield from s.terminate()

        w1 = world.process(waiter("first", 0.1))
        w2 = world.process(waiter("second", 0.5))
        yield world.kernel.timeout(2.0)
        yield from s1.terminate()
        yield w1 & w2

    p = world.process(director())
    world.run(until=p)
    world.run()
    assert [tag for tag, _ in order] == ["first", "second"]


def test_reject_mode_unaffected(world, initiator):
    """Default establishes still reject rather than queue."""
    world.dapplet(PassiveDapplet, "caltech.edu", "a")
    world.dapplet(PassiveDapplet, "rice.edu", "b")
    outcomes = []

    def director():
        s1 = yield from initiator.establish(pair_spec(regions_a={"cal": "rw"}))
        try:
            yield from initiator.establish(
                pair_spec(regions_a={"cal": "rw"}))
        except SessionRejected as exc:
            outcomes.append(exc.reason)
        yield from s1.terminate()

    p = world.process(director())
    world.run(until=p)
    world.run()
    assert outcomes == ["interference"]


def test_queued_establish_times_out_and_cleans_up(world, initiator):
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    world.dapplet(PassiveDapplet, "rice.edu", "b")
    outcomes = []

    def director():
        s1 = yield from initiator.establish(pair_spec(regions_a={"cal": "rw"}))
        try:
            yield from initiator.establish(
                pair_spec(regions_a={"cal": "rw"}), timeout=1.0,
                wait_for_regions=True)
        except SessionError:
            outcomes.append("timeout")
        yield world.kernel.timeout(1.0)
        # The abort purged the queue; s1 still runs undisturbed.
        assert a.sessions._admission_queue == []
        assert a.sessions.active_sessions() == [s1.session_id]
        yield from s1.terminate()
        # And afterwards a fresh session is admitted instantly.
        s3 = yield from initiator.establish(
            pair_spec(regions_a={"cal": "rw"}))
        outcomes.append("fresh-ok")
        yield from s3.terminate()

    p = world.process(director())
    world.run(until=p)
    world.run()
    assert outcomes == ["timeout", "fresh-ok"]
