"""Integration tests: the two-phase session link-up protocol."""

import pytest

from repro.errors import SessionError, SessionRejected
from repro.messages import Text
from repro.session import InterferenceMonitor, SessionSpec
from repro.session.manager import CONTROL_INBOX

from tests.session.conftest import EchoDapplet, PassiveDapplet, pair_spec


def test_establish_two_member_session(world, initiator):
    a = world.dapplet(EchoDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b")
    results = []

    def director():
        session = yield from initiator.establish(pair_spec())
        results.append(session)
        # b can now talk to a through its session ports.
        ctx = b.last_ctx
        ctx.outbox("out").send(Text("ping"))
        reply = yield ctx.inbox("in").receive()
        results.append(reply.text)
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    session = results[0]
    assert session.members == {"a", "b"}
    assert results[1] == "echo:ping"
    assert session.terminated
    assert a.started == 1 and a.ended == 1
    assert b.ended == 1


def test_ports_are_namespaced_by_session(world, initiator):
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b")
    sessions = []

    def director():
        s1 = yield from initiator.establish(pair_spec())
        s2 = yield from initiator.establish(pair_spec())
        sessions.extend([s1, s2])

    p = world.process(director())
    world.run(until=p)
    s1, s2 = sessions
    assert s1.session_id != s2.session_id
    assert s1.port("a", "in") != s2.port("a", "in")


def test_acl_rejection_aborts_cleanly(world, initiator):
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b")
    b.acl.deny(initiator.address)
    outcome = []

    def director():
        try:
            yield from initiator.establish(pair_spec())
        except SessionRejected as exc:
            outcome.append((exc.participant, exc.reason))

    p = world.process(director())
    world.run(until=p)
    world.run()  # let the in-flight abort land
    assert outcome == [("b", "acl")]
    # The accepting member was aborted: no active sessions anywhere.
    assert a.sessions.active_sessions() == []
    assert a.sessions.stats.aborts == 1
    assert not hasattr(a, "last_ctx")  # never committed


def test_interference_rejection(world, initiator):
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b")
    outcome = []

    def director():
        spec1 = pair_spec(regions_a={"cal": "rw"})
        s1 = yield from initiator.establish(spec1)
        try:
            yield from initiator.establish(pair_spec(regions_a={"cal": "r"}))
        except SessionRejected as exc:
            outcome.append(exc.reason)
        # After terminating the first session the second succeeds.
        yield from s1.terminate()
        s2 = yield from initiator.establish(
            pair_spec(regions_a={"cal": "r"}))
        outcome.append(s2.session_id)
        yield from s2.terminate()

    p = world.process(director())
    world.run(until=p)
    assert outcome[0] == "interference"
    assert outcome[1]  # second establishment succeeded
    assert b.sessions.stats.rejects_interference == 0
    assert a.sessions.stats.rejects_interference == 1


def test_read_read_sessions_coexist(world, initiator):
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b")
    monitor = InterferenceMonitor()
    world.interference_monitor = monitor
    done = []

    def director():
        s1 = yield from initiator.establish(pair_spec(regions_a={"cal": "r"}))
        s2 = yield from initiator.establish(pair_spec(regions_a={"cal": "r"}))
        done.append((s1, s2))
        yield from s1.terminate()
        yield from s2.terminate()

    p = world.process(director())
    world.run(until=p)
    assert done
    assert monitor.max_concurrent == 2


def test_establish_timeout_when_member_missing(world, initiator):
    # 'b' exists in the directory but its dapplet is stopped.
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b")
    address = b.address
    b.stop()
    world.directory.register("b", address)  # stale directory entry
    outcome = []

    def director():
        try:
            yield from initiator.establish(pair_spec(), timeout=2.0)
        except SessionError as exc:
            outcome.append(str(exc))

    p = world.process(director())
    world.run(until=p)
    assert outcome and "no reply" in outcome[0]
    assert a.sessions.active_sessions() == []


def test_session_context_region_views(world, initiator):
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    b = world.dapplet(PassiveDapplet, "rice.edu", "b")
    a.state.region("cal").set("monday", "free")

    def director():
        spec = pair_spec(regions_a={"cal": "rw"}, regions_b={"cal": "r"})
        session = yield from initiator.establish(spec)
        yield from session.terminate()

    p = world.process(director())

    # Check region views while the session is active.
    def checker():
        while not hasattr(a, "last_ctx"):
            yield world.kernel.timeout(0.01)
        ctx_a = a.last_ctx
        assert ctx_a.region("cal").get("monday") == "free"
        ctx_a.region("cal").set("tuesday", "busy")
        ctx_b = b.last_ctx
        assert not ctx_b.region("cal").writable
        with pytest.raises(PermissionError):
            ctx_b.region("cal").set("x", 1)
        with pytest.raises(SessionError):
            ctx_a.region("undeclared")

    world.process(checker())
    world.run(until=p)
    # State persists after the session ends (the paper's requirement).
    assert a.state.region("cal").get("tuesday") == "busy"


def test_fanout_session_topology(world, initiator):
    """A star: one hub outbox bound to three member inboxes."""
    hub = world.dapplet(PassiveDapplet, "caltech.edu", "hub")
    spokes = [world.dapplet(PassiveDapplet, "rice.edu", f"s{i}")
              for i in range(3)]
    spec = SessionSpec("star")
    spec.add_member("hub")
    for i in range(3):
        spec.add_member(f"s{i}", inboxes=("in",))
        spec.bind("hub", "bcast", f"s{i}", "in")
    got = []

    def director():
        session = yield from initiator.establish(spec)
        hub.last_ctx.outbox("bcast").send(Text("fan"))
        for s in spokes:
            msg = yield s.last_ctx.inbox("in").receive()
            got.append(msg.text)
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    assert got == ["fan", "fan", "fan"]


def test_duplicate_prepare_is_idempotent(world, initiator):
    """A retried prepare gets the same ports back."""
    a = world.dapplet(PassiveDapplet, "caltech.edu", "a")
    from repro.session import messages as sm

    ports = []

    def poke():
        control = initiator.create_inbox(name="probe")
        out = initiator.create_outbox()
        out.add(a.address.inbox(CONTROL_INBOX))
        msg = sm.Prepare(session_id="dup#1", app="x", member="a",
                         initiator=initiator.address,
                         reply_to=control.named_address,
                         inboxes=("in",), regions={})
        out.send(msg)
        first = yield control.receive()
        out.send(msg)  # initiator retry
        second = yield control.receive()
        ports.append((first.ports, second.ports))

    p = world.process(poke())
    world.run(until=p)
    first, second = ports[0]
    assert first == second
    assert a.sessions.stats.prepares == 2
    assert a.sessions.stats.accepts == 2
