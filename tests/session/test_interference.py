"""Unit tests for the interference relation and monitor."""

import pytest

from repro.errors import InterferenceError
from repro.session import InterferenceMonitor, regions_conflict


def test_disjoint_regions_do_not_conflict():
    assert not regions_conflict({"a": "rw"}, {"b": "rw"})


def test_read_read_does_not_conflict():
    assert not regions_conflict({"a": "r"}, {"a": "r"})


def test_write_read_conflicts():
    assert regions_conflict({"a": "rw"}, {"a": "r"})
    assert regions_conflict({"a": "r"}, {"a": "rw"})


def test_write_write_conflicts():
    assert regions_conflict({"a": "rw"}, {"a": "rw"})


def test_empty_maps_never_conflict():
    assert not regions_conflict({}, {"a": "rw"})
    assert not regions_conflict({}, {})


def test_monitor_allows_compatible_sessions():
    mon = InterferenceMonitor()
    mon.activated("d1", "s1", {"cal": "r"})
    mon.activated("d1", "s2", {"cal": "r"})
    mon.activated("d1", "s3", {"docs": "rw"})
    assert mon.concurrently_active("d1") == 3
    assert mon.max_concurrent == 3
    mon.deactivated("d1", "s2")
    assert mon.concurrently_active("d1") == 2


def test_monitor_raises_on_conflict():
    mon = InterferenceMonitor()
    mon.activated("d1", "s1", {"cal": "rw"})
    with pytest.raises(InterferenceError):
        mon.activated("d1", "s2", {"cal": "r"})


def test_monitor_scopes_by_dapplet():
    mon = InterferenceMonitor()
    mon.activated("d1", "s1", {"cal": "rw"})
    # The same regions on a different dapplet are a different calendar.
    mon.activated("d2", "s2", {"cal": "rw"})
    assert mon.activations == 2
