"""Spec tests: one test per checkable sentence of the paper.

Each test quotes the claim it verifies (abridged). Most of these
behaviours are also covered in the per-module suites; this file is the
reproduction's conformance checklist, organized by the paper's
sections.
"""

import pytest

from repro import (
    Dapplet,
    DeliveryTimeout,
    Initiator,
    SessionRejected,
    SessionSpec,
    World,
)
from repro.errors import BindingError, DeadlockDetected, TokenError
from repro.messages import Text, dumps, loads, message_type
from repro.net import ConstantLatency, FaultPlan, UniformLatency
from repro.services.tokens import TokenAgent, TokenCoordinator


class Plain(Dapplet):
    kind = "plain"


class CtxKeeper(Dapplet):
    kind = "keeper"

    def on_session_start(self, ctx):
        self.ctx = ctx


@pytest.fixture
def world():
    return World(seed=99, latency=ConstantLatency(0.01))


# -- §3.1: intended system use ------------------------------------------------

def test_dapplet_has_internet_address(world):
    """'Associated with each dapplet is an Internet address (i.e. IP
    address and port id).'"""
    d = world.dapplet(Plain, "caltech.edu", "d")
    assert d.address.host == "caltech.edu"
    assert 0 < d.address.port < 65536


def test_rejection_reasons_are_acl_and_interference(world):
    """'it may reject the request because the requesting dapplet was not
    on its access control list, or because ... another concurrent
    session would cause interference.'"""
    a = world.dapplet(Plain, "caltech.edu", "a")
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    reasons = []

    def director():
        a.acl.deny(initiator.address)
        spec = SessionSpec("t")
        spec.add_member("a")
        try:
            yield from initiator.establish(spec)
        except SessionRejected as exc:
            reasons.append(exc.reason)
        a.acl.clear()
        spec1 = SessionSpec("t")
        spec1.add_member("a", regions={"r": "rw"})
        s1 = yield from initiator.establish(spec1)
        spec2 = SessionSpec("t")
        spec2.add_member("a", regions={"r": "rw"})
        try:
            yield from initiator.establish(spec2)
        except SessionRejected as exc:
            reasons.append(exc.reason)
        yield from s1.terminate()

    world.run(until=world.process(director()))
    world.run()
    assert reasons == ["acl", "interference"]


def test_unlink_on_termination(world):
    """'When a session terminates, component dapplets unlink themselves
    from each other.'"""
    a = world.dapplet(CtxKeeper, "caltech.edu", "a")
    b = world.dapplet(CtxKeeper, "rice.edu", "b")
    initiator = world.dapplet(Initiator, "caltech.edu", "init")

    def director():
        spec = SessionSpec("t")
        spec.add_member("a", inboxes=("in",))
        spec.add_member("b", inboxes=("in",))
        spec.bind("a", "out", "b", "in")
        session = yield from initiator.establish(spec)
        assert a.ctx.outbox("out").destinations()  # linked
        yield from session.terminate()

    world.run(until=world.process(director()))
    world.run()
    assert not a.ctx.active
    assert a.sessions.active_sessions() == []
    assert b.sessions.active_sessions() == []


# -- §3.2: messages, inboxes, outboxes, channels ----------------------------------

def test_messages_are_subclasses_converted_to_strings():
    """'Objects that are sent ... are subclasses of a message class. An
    object ... is converted into a string ... and then reconstructed
    back into its original type.'"""
    with pytest.raises(TypeError):
        @message_type("claims.custom")
        class _Probe:  # not a Message subclass -> rejected
            pass


def test_message_string_roundtrip_type_identity():
    wire = dumps(Text("x"))
    assert isinstance(wire, str)
    back = loads(wire)
    assert type(back) is Text and back.text == "x"


def test_messages_are_subclasses_enforced():
    from repro.errors import SerializationError
    with pytest.raises(SerializationError):
        dumps("a bare string")  # type: ignore[arg-type]


def test_channel_is_one_outbox_to_one_inbox_fifo(world):
    """'Each message channel is directed from exactly one outbox to
    exactly one inbox. Messages sent along a channel are delivered in
    the order sent.'"""
    world = World(seed=99, latency=UniformLatency(0.01, 0.3),
                  faults=FaultPlan(reorder_jitter=0.2))
    a = world.dapplet(Plain, "caltech.edu", "a")
    b = world.dapplet(Plain, "rice.edu", "b")
    inbox = b.create_inbox(name="in")
    out = a.create_outbox()
    out.add(inbox.named_address)
    for i in range(30):
        out.send(Text(str(i)))
    world.run()
    assert [m.text for m in inbox.queued()] == [str(i) for i in range(30)]


def test_outbox_can_bind_to_arbitrarily_many_inboxes(world):
    """'an outbox can be bound to an arbitrary number of inboxes.
    Likewise, an inbox can be bound to an arbitrary number of
    outboxes.'"""
    hub = world.dapplet(Plain, "caltech.edu", "hub")
    outbox = hub.create_outbox()
    shared_inbox = hub.create_inbox(name="shared")
    for i in range(10):
        d = world.dapplet(Plain, f"s{i}.edu", f"d{i}")
        outbox.add(d.create_inbox(name="in").named_address)
        ob = d.create_outbox()
        ob.add(shared_inbox.named_address)
        ob.send(Text(f"from d{i}"))
    outbox.send(Text("fanout"))
    world.run()
    assert len(shared_inbox) == 10
    assert outbox.destinations() and len(outbox.destinations()) == 10


def test_send_copies_along_each_channel(world):
    """'send(msg) ... sends a copy of the object msg along each output
    channel connected to the outbox.'"""
    a = world.dapplet(Plain, "caltech.edu", "a")
    receivers = [world.dapplet(Plain, f"s{i}.edu", f"r{i}") for i in range(3)]
    inboxes = [r.create_inbox(name="in") for r in receivers]
    out = a.create_outbox()
    for ib in inboxes:
        out.add(ib.named_address)
    result = out.send(Text("copy"))
    assert result.copies == 3
    world.run()
    received = [ib.queued()[0] for ib in inboxes]
    # Reconstructed objects are equal but independent instances.
    assert all(m.text == "copy" for m in received)
    assert len({id(m) for m in received}) == 3


def test_undelivered_message_raises_within_specified_time():
    """'if a message is not delivered within a specified time, an
    exception is raised.'"""
    world = World(seed=99, latency=ConstantLatency(0.01),
                  faults=FaultPlan(drop_prob=1.0),
                  endpoint_options={"rto_initial": 0.05})
    a = world.dapplet(Plain, "caltech.edu", "a")
    b = world.dapplet(Plain, "rice.edu", "b")
    out = a.create_outbox()
    out.add(b.create_inbox(name="in").named_address)
    raised = []

    def sender():
        try:
            yield out.send_confirmed(Text("m"), timeout=0.5)
        except DeliveryTimeout:
            raised.append(world.now)

    world.run(until=world.process(sender()))
    world.run()
    assert raised and raised[0] >= 0.5


def test_delete_of_unbound_address_throws(world):
    """'delete(ipa) removes the specified global address ... and
    otherwise throws an exception.'"""
    a = world.dapplet(Plain, "caltech.edu", "a")
    out = a.create_outbox()
    with pytest.raises(BindingError):
        out.delete(a.create_inbox().address)


def test_add_is_conditional_on_not_already_bound(world):
    """'add(ipa) ... appends the specified inbox to the list inboxes if
    it is not already on the list.'"""
    a = world.dapplet(Plain, "caltech.edu", "a")
    inbox = a.create_inbox()
    out = a.create_outbox()
    out.add(inbox.address)
    out.add(inbox.address)
    assert out.destinations() == (inbox.address,)


def test_polymorphic_inbox_addressing(world):
    """'The add and delete methods ... are polymorphic: an inbox can be
    either specified by a global address ... or by a dapplet address
    and string.'"""
    prof = world.dapplet(Plain, "caltech.edu", "prof")
    students = prof.create_inbox(name="students")
    out = world.dapplet(Plain, "rice.edu", "ta").create_outbox()
    out.add(students.named_address)   # (address, string) form
    out.delete(students.named_address)
    out.add(students.address)          # (address, local id) form
    out.delete(students.address)
    assert out.destinations() == ()


def test_inbox_api_is_empty_await_receive(world):
    """'isEmpty() ... awaitNonEmpty() ... receive() suspends execution
    until the inbox is nonempty and then returns the object at the head
    of the inbox, deleting the object.'"""
    a = world.dapplet(Plain, "caltech.edu", "a")
    inbox = a.create_inbox(name="in")
    out = a.create_outbox()
    out.add(inbox.named_address)
    assert inbox.is_empty
    log = []

    def reader():
        yield inbox.await_nonempty()
        log.append(("nonempty", len(inbox)))
        msg = yield inbox.receive()
        log.append(("received", msg.text, len(inbox)))

    world.process(reader())
    out.send(Text("head"))
    world.run()
    assert log == [("nonempty", 1), ("received", "head", 0)]


# -- §4.1: tokens ---------------------------------------------------------------

def test_tokens_conserved_and_colored(world):
    """'Tokens are objects that are neither created nor destroyed ...
    tokens of one color cannot be transmuted into tokens of another
    color.'"""
    host = world.dapplet(Plain, "caltech.edu", "host")
    coordinator = TokenCoordinator(host, {"file-a": 1, "file-b": 2})
    agent = TokenAgent(world.dapplet(Plain, "s.edu", "d"),
                       coordinator.pointer)

    def run():
        yield agent.request({"file-a": 1})
        with pytest.raises(TokenError):
            agent.release({"file-b": 1})  # no transmutation
        agent.release({"file-a": 1})

    world.run(until=world.process(run()))
    world.run()
    coordinator.check_conservation()


def test_deadlock_raises_exception(world):
    """'If the token managers detect a deadlock, an exception is
    raised.'"""
    host = world.dapplet(Plain, "caltech.edu", "host")
    coordinator = TokenCoordinator(host, {"x": 1, "y": 1})
    a = TokenAgent(world.dapplet(Plain, "s0.edu", "d0"), coordinator.pointer)
    b = TokenAgent(world.dapplet(Plain, "s1.edu", "d1"), coordinator.pointer)
    outcome = []

    def left():
        yield a.request({"x": 1})
        yield world.kernel.timeout(0.5)
        try:
            yield a.request({"y": 1})
        except DeadlockDetected:
            outcome.append("deadlock")

    def right():
        yield b.request({"y": 1})
        yield world.kernel.timeout(0.5)
        try:
            yield b.request({"x": 1})
        except DeadlockDetected:
            outcome.append("deadlock")

    world.process(left())
    world.process(right())
    world.run(until=5.0)
    assert "deadlock" in outcome


# -- §4.2: clocks -----------------------------------------------------------------

def test_snapshot_criterion_quote(world):
    """'every message that is sent when the sender's clock is T is
    received when the receiver's clock exceeds T.'"""
    a = world.dapplet(Plain, "caltech.edu", "a")
    b = world.dapplet(Plain, "rice.edu", "b")
    inbox = b.create_inbox(name="in")
    out = a.create_outbox()
    out.add(inbox.named_address)
    stamps = []
    inbox.delivery_hooks.append(
        lambda m: (stamps.append((b.clock.last_received_ts, b.clock.time)),
                   m)[1])
    for _ in range(20):
        a.clock.tick()
        out.send(Text("m"))
    world.run()
    assert stamps and all(now > ts for ts, now in stamps)
