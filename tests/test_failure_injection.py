"""Failure-injection tests: crashes and partitions at awkward moments.

The paper's target environment "must also cope with faults in the
network, such as undelivered messages"; these tests exercise the
system-level consequences: half-dead sessions, partitions during
link-up, crashed coordinators, and services facing silence.
"""

import pytest

from repro.dapplet import Dapplet
from repro.errors import (
    DeliveryTimeout,
    ReceiveTimeout,
    RpcTimeout,
    SessionError,
)
from repro.messages import Text
from repro.net import ConstantLatency, FaultPlan
from repro.rpc import RemoteProxy, export
from repro.services.tokens import TokenAgent, TokenCoordinator
from repro.session import Initiator, SessionSpec
from repro.world import World


class Plain(Dapplet):
    kind = "plain"


class Tracker(Dapplet):
    kind = "tracker"

    def on_session_start(self, ctx):
        self.ctx = ctx

    def on_session_end(self, ctx):
        self.ended = getattr(self, "ended", 0) + 1


def pair_spec():
    spec = SessionSpec("t")
    spec.add_member("a", inboxes=("in",))
    spec.add_member("b", inboxes=("in",))
    spec.bind("a", "out", "b", "in")
    return spec


def test_partition_during_establish_times_out_cleanly():
    faults = FaultPlan()
    world = World(seed=61, latency=ConstantLatency(0.01), faults=faults,
                  endpoint_options={"rto_initial": 0.05, "max_retries": 5})
    a = world.dapplet(Tracker, "caltech.edu", "a")
    b = world.dapplet(Tracker, "rice.edu", "b")
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    faults.partition(initiator.address, b.address)
    outcome = []

    def director():
        try:
            yield from initiator.establish(pair_spec(), timeout=2.0)
        except SessionError as exc:
            outcome.append("timeout")

    world.run(until=world.process(director()))
    world.run()
    assert outcome == ["timeout"]
    # a was prepared then aborted; neither side has an active session.
    assert a.sessions.active_sessions() == []
    assert b.sessions.active_sessions() == []


def test_partition_heals_and_session_establishes():
    faults = FaultPlan()
    world = World(seed=62, latency=ConstantLatency(0.01), faults=faults,
                  endpoint_options={"rto_initial": 0.05, "max_retries": 60})
    world.dapplet(Tracker, "caltech.edu", "a")
    b = world.dapplet(Tracker, "rice.edu", "b")
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    faults.partition(initiator.address, b.address)
    world.kernel.call_later(1.0, lambda: faults.heal(initiator.address,
                                                     b.address))
    done = []

    def director():
        # Long timeout: the retransmission layer rides out the partition.
        session = yield from initiator.establish(pair_spec(), timeout=30.0)
        done.append(world.now)
        yield from session.terminate()

    world.run(until=world.process(director()))
    world.run()
    assert done and done[0] > 1.0


def test_member_crash_mid_session_terminate_still_succeeds():
    world = World(seed=63, latency=ConstantLatency(0.01))
    a = world.dapplet(Tracker, "caltech.edu", "a")
    b = world.dapplet(Tracker, "rice.edu", "b")
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    log = []

    def director():
        session = yield from initiator.establish(pair_spec())
        b.stop()  # crash after establishment
        # Messages to the dead member vanish; sender's channel breaks
        # after retries but the sender is not crashed.
        a.ctx.outbox("out").send(Text("into the void"))
        yield from session.terminate(timeout=1.0)
        log.append(session.terminated)

    world.run(until=world.process(director()))
    world.run()
    assert log == [True]
    assert a.ended == 1  # the live member was unlinked properly


def test_rpc_server_crash_times_out_client():
    world = World(seed=64, latency=ConstantLatency(0.01))
    server = world.dapplet(Plain, "caltech.edu", "server")
    client = world.dapplet(Plain, "rice.edu", "client")

    class Svc:
        def ping(self):
            return "pong"

    remote = export(server, Svc(), name="svc")
    proxy = RemoteProxy(client, remote.pointer)
    log = []

    def caller():
        first = yield proxy.call("ping", timeout=5.0)
        log.append(first)
        server.stop()
        try:
            yield proxy.call("ping", timeout=1.0)
        except RpcTimeout:
            log.append("timeout")

    world.run(until=world.process(caller()))
    world.run()
    assert log == ["pong", "timeout"]


def test_token_holder_crash_coordinator_keeps_accounting():
    """A crashed holder's tokens stay checked out — the coordinator's
    books remain consistent (recovery policy is the application's
    business; the invariant is that nothing is double-granted)."""
    world = World(seed=65, latency=ConstantLatency(0.01))
    host = world.dapplet(Plain, "caltech.edu", "host")
    coordinator = TokenCoordinator(host, {"obj": 1})
    d0 = world.dapplet(Plain, "s0.edu", "d0")
    d1 = world.dapplet(Plain, "s1.edu", "d1")
    a0 = TokenAgent(d0, coordinator.pointer)
    a1 = TokenAgent(d1, coordinator.pointer)
    waited = []

    def holder():
        yield a0.request({"obj": 1})
        d0.stop()  # crash while holding the token

    def waiter():
        ev = a1.request({"obj": 1})
        got = yield ev | world.kernel.timeout(3.0)
        waited.append(ev.triggered)

    world.run(until=world.process(holder()))
    world.run(until=world.process(waiter()))
    world.run()
    assert waited == [False]  # never granted: the token is genuinely held
    coordinator.check_conservation()
    assert coordinator.holders.get("d0") == {"obj": 1}


def test_receive_timeout_under_total_silence():
    world = World(seed=66, latency=ConstantLatency(0.01))
    d = world.dapplet(Plain, "caltech.edu", "d")
    inbox = d.create_inbox(name="in")
    outcomes = []

    def listener():
        try:
            yield inbox.receive(timeout=2.0)
        except ReceiveTimeout:
            outcomes.append(world.now)

    world.run(until=world.process(listener()))
    assert outcomes == [2.0]


def test_send_confirmed_to_crashed_peer_raises():
    world = World(seed=67, latency=ConstantLatency(0.01),
                  endpoint_options={"rto_initial": 0.05, "max_retries": 4})
    a = world.dapplet(Plain, "caltech.edu", "a")
    b = world.dapplet(Plain, "rice.edu", "b")
    inbox = b.create_inbox(name="in")
    out = a.create_outbox()
    out.add(inbox.named_address)
    b.stop()
    caught = []

    def sender():
        try:
            yield out.send_confirmed(Text("x"), timeout=1.0)
        except DeliveryTimeout:
            caught.append("timeout")

    world.run(until=world.process(sender()))
    world.run()
    assert caught == ["timeout"]


def test_interference_state_released_after_crash_teardown():
    """After a member crash + terminate, new sessions on the survivors
    are not blocked by stale interference entries."""
    world = World(seed=68, latency=ConstantLatency(0.01))
    a = world.dapplet(Tracker, "caltech.edu", "a")
    b = world.dapplet(Tracker, "rice.edu", "b")
    c = world.dapplet(Tracker, "utk.edu", "c")
    initiator = world.dapplet(Initiator, "caltech.edu", "init")

    def spec_with_regions(members):
        spec = SessionSpec("t")
        for m in members:
            spec.add_member(m, regions={"shared": "rw"})
        return spec

    done = []

    def director():
        s1 = yield from initiator.establish(spec_with_regions(["a", "b"]))
        b.stop()
        yield from s1.terminate(timeout=1.0)
        # 'a' must accept a new conflicting-region session now.
        s2 = yield from initiator.establish(spec_with_regions(["a", "c"]))
        done.append(True)
        yield from s2.terminate()

    world.run(until=world.process(director()))
    world.run()
    assert done == [True]
