"""Failure-injection tests: crashes and partitions at awkward moments.

The paper's target environment "must also cope with faults in the
network, such as undelivered messages"; these tests exercise the
system-level consequences: half-dead sessions, partitions during
link-up, crashed coordinators, and services facing silence.
"""

import pytest

from repro.dapplet import Dapplet
from repro.errors import (
    DeliveryTimeout,
    ReceiveTimeout,
    RpcTimeout,
    SessionError,
    SessionRejected,
)
from repro.messages import Text
from repro.net import ConstantLatency, FaultPlan
from repro.rpc import RemoteProxy, export
from repro.runtime import AsyncioSubstrate
from repro.services.clocks import CheckpointService
from repro.services.tokens import TokenAgent, TokenCoordinator
from repro.session import Initiator, SessionSpec
from repro.store import FileBackend, MemoryBackend
from repro.world import World


class Plain(Dapplet):
    kind = "plain"


class Tracker(Dapplet):
    kind = "tracker"

    def on_session_start(self, ctx):
        self.ctx = ctx

    def on_session_end(self, ctx):
        self.ended = getattr(self, "ended", 0) + 1


def pair_spec():
    spec = SessionSpec("t")
    spec.add_member("a", inboxes=("in",))
    spec.add_member("b", inboxes=("in",))
    spec.bind("a", "out", "b", "in")
    return spec


def test_partition_during_establish_times_out_cleanly():
    faults = FaultPlan()
    world = World(seed=61, latency=ConstantLatency(0.01), faults=faults,
                  endpoint_options={"rto_initial": 0.05, "max_retries": 5})
    a = world.dapplet(Tracker, "caltech.edu", "a")
    b = world.dapplet(Tracker, "rice.edu", "b")
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    faults.partition(initiator.address, b.address)
    outcome = []

    def director():
        try:
            yield from initiator.establish(pair_spec(), timeout=2.0)
        except SessionError as exc:
            outcome.append("timeout")

    world.run(until=world.process(director()))
    world.run()
    assert outcome == ["timeout"]
    # a was prepared then aborted; neither side has an active session.
    assert a.sessions.active_sessions() == []
    assert b.sessions.active_sessions() == []


def test_partition_heals_and_session_establishes():
    faults = FaultPlan()
    world = World(seed=62, latency=ConstantLatency(0.01), faults=faults,
                  endpoint_options={"rto_initial": 0.05, "max_retries": 60})
    world.dapplet(Tracker, "caltech.edu", "a")
    b = world.dapplet(Tracker, "rice.edu", "b")
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    faults.partition(initiator.address, b.address)
    world.kernel.call_later(1.0, lambda: faults.heal(initiator.address,
                                                     b.address))
    done = []

    def director():
        # Long timeout: the retransmission layer rides out the partition.
        session = yield from initiator.establish(pair_spec(), timeout=30.0)
        done.append(world.now)
        yield from session.terminate()

    world.run(until=world.process(director()))
    world.run()
    assert done and done[0] > 1.0


def test_member_crash_mid_session_terminate_still_succeeds():
    world = World(seed=63, latency=ConstantLatency(0.01))
    a = world.dapplet(Tracker, "caltech.edu", "a")
    b = world.dapplet(Tracker, "rice.edu", "b")
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    log = []

    def director():
        session = yield from initiator.establish(pair_spec())
        b.stop()  # crash after establishment
        # Messages to the dead member vanish; sender's channel breaks
        # after retries but the sender is not crashed.
        a.ctx.outbox("out").send(Text("into the void"))
        yield from session.terminate(timeout=1.0)
        log.append(session.terminated)

    world.run(until=world.process(director()))
    world.run()
    assert log == [True]
    assert a.ended == 1  # the live member was unlinked properly


def test_rpc_server_crash_times_out_client():
    world = World(seed=64, latency=ConstantLatency(0.01))
    server = world.dapplet(Plain, "caltech.edu", "server")
    client = world.dapplet(Plain, "rice.edu", "client")

    class Svc:
        def ping(self):
            return "pong"

    remote = export(server, Svc(), name="svc")
    proxy = RemoteProxy(client, remote.pointer)
    log = []

    def caller():
        first = yield proxy.call("ping", timeout=5.0)
        log.append(first)
        server.stop()
        try:
            yield proxy.call("ping", timeout=1.0)
        except RpcTimeout:
            log.append("timeout")

    world.run(until=world.process(caller()))
    world.run()
    assert log == ["pong", "timeout"]


def test_token_holder_crash_coordinator_keeps_accounting():
    """A crashed holder's tokens stay checked out — the coordinator's
    books remain consistent (recovery policy is the application's
    business; the invariant is that nothing is double-granted)."""
    world = World(seed=65, latency=ConstantLatency(0.01))
    host = world.dapplet(Plain, "caltech.edu", "host")
    coordinator = TokenCoordinator(host, {"obj": 1})
    d0 = world.dapplet(Plain, "s0.edu", "d0")
    d1 = world.dapplet(Plain, "s1.edu", "d1")
    a0 = TokenAgent(d0, coordinator.pointer)
    a1 = TokenAgent(d1, coordinator.pointer)
    waited = []

    def holder():
        yield a0.request({"obj": 1})
        d0.stop()  # crash while holding the token

    def waiter():
        ev = a1.request({"obj": 1})
        got = yield ev | world.kernel.timeout(3.0)
        waited.append(ev.triggered)

    world.run(until=world.process(holder()))
    world.run(until=world.process(waiter()))
    world.run()
    assert waited == [False]  # never granted: the token is genuinely held
    coordinator.check_conservation()
    assert coordinator.holders.get("d0") == {"obj": 1}


def test_receive_timeout_under_total_silence():
    world = World(seed=66, latency=ConstantLatency(0.01))
    d = world.dapplet(Plain, "caltech.edu", "d")
    inbox = d.create_inbox(name="in")
    outcomes = []

    def listener():
        try:
            yield inbox.receive(timeout=2.0)
        except ReceiveTimeout:
            outcomes.append(world.now)

    world.run(until=world.process(listener()))
    assert outcomes == [2.0]


def test_send_confirmed_to_crashed_peer_raises():
    world = World(seed=67, latency=ConstantLatency(0.01),
                  endpoint_options={"rto_initial": 0.05, "max_retries": 4})
    a = world.dapplet(Plain, "caltech.edu", "a")
    b = world.dapplet(Plain, "rice.edu", "b")
    inbox = b.create_inbox(name="in")
    out = a.create_outbox()
    out.add(inbox.named_address)
    b.stop()
    caught = []

    def sender():
        try:
            yield out.send_confirmed(Text("x"), timeout=1.0)
        except DeliveryTimeout:
            caught.append("timeout")

    world.run(until=world.process(sender()))
    world.run()
    assert caught == ["timeout"]


class DurableCounter(Dapplet):
    """Tallies received messages into durable state."""

    kind = "durable-counter"

    def on_session_start(self, ctx):
        self.ctx = ctx

        def count():
            while ctx.active:
                msg = yield ctx.inbox("in").receive()
                tally = self.state.region("tally")
                tally.set("count", tally.get("count", 0) + 1)
                tally.set("last", msg.text)

        self.spawn(count(), name="count")
        return None


def _crash_restart_scenario(world, *, checkpoint_delta=None):
    """Kill the receiver mid-session, restart it from its durable
    store (optionally rolled back to the time-T checkpoint cut), then
    re-establish the session and prove traffic flows again. Returns
    ``(state_at_restart, outcome_log)`` for the caller to assert on."""
    sender = world.dapplet(Tracker, "caltech.edu", "a")
    receiver = world.dapplet(DurableCounter, "rice.edu", "b")
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    log = []

    def director():
        session = yield from initiator.establish(pair_spec(), timeout=60.0)
        # T is relative to the post-establishment clock (the session
        # protocol itself advances Lamport time), so the cut lands a
        # few data messages in.
        service = at_time = None
        if checkpoint_delta is not None:
            at_time = receiver.clock.time + checkpoint_delta
            service = CheckpointService(receiver, at_time)
        for i in range(6):
            sender.ctx.outbox("out").send(Text(f"m{i}"))
            yield world.substrate.timeout(0.05)
        # Wait until the receiver has tallied everything, then crash it.
        while receiver.state.region("tally").get("count", 0) < 6:
            yield world.substrate.timeout(0.05)
        live_state = receiver.state.snapshot()
        receiver.stop()  # in-memory state is gone; the journal is not
        sender.ctx.outbox("out").send(Text("into the void"))
        yield from session.terminate(timeout=5.0)

        if service is not None:
            log.append(("cut", service.taken.state))
            reborn = world.restart_dapplet("b", from_checkpoint=at_time)
        else:
            reborn = world.restart_dapplet("b")
        log.append(("recovered", reborn.state.snapshot(), live_state))

        # The session re-establishes against the reborn member (fresh
        # port, re-registered in the directory) and traffic flows.
        session2 = yield from initiator.establish(pair_spec(), timeout=60.0)
        before = reborn.state.region("tally").get("count", 0)
        sender.ctx.outbox("out").send(Text("after the restart"))
        while reborn.state.region("tally").get("count", 0) == before:
            yield world.substrate.timeout(0.05)
        log.append(("resumed",
                    reborn.state.region("tally").get("last"),
                    reborn.state.region("tally").get("count", 0), before))
        yield from session2.terminate()

    return director, log


def _assert_crash_restart_outcome(log, *, checkpointed):
    if checkpointed:
        (tag0, cut), (tag1, recovered, live), (tag2, last, after, before) \
            = log
        # Rolled back to the time-T cut, not the state at the crash.
        assert recovered == cut
        assert cut["tally"]["count"] < live["tally"]["count"]
    else:
        (tag1, recovered, live), (tag2, last, after, before) = log
        # Recovered exactly the state at the moment of the crash: the
        # "into the void" message never reached the journal.
        assert recovered == live
        assert recovered["tally"]["count"] == 6
    assert last == "after the restart"
    assert after == before + 1


def test_kill_mid_session_restart_reestablish_sim():
    world = World(seed=71, latency=ConstantLatency(0.01),
                  store=MemoryBackend())
    director, log = _crash_restart_scenario(world)
    world.run(until=world.process(director()))
    world.run()
    _assert_crash_restart_outcome(log, checkpointed=False)


def test_kill_mid_session_restart_from_checkpoint_sim():
    world = World(seed=72, latency=ConstantLatency(0.01),
                  store=MemoryBackend())
    director, log = _crash_restart_scenario(world, checkpoint_delta=3)
    world.run(until=world.process(director()))
    world.run()
    _assert_crash_restart_outcome(log, checkpointed=True)


def test_kill_mid_session_restart_reestablish_real_udp(tmp_path):
    """The same crash/restart cycle over real loopback UDP sockets,
    with the journal on a real filesystem."""
    backend = FileBackend(tmp_path / "store")
    world = World(substrate=AsyncioSubstrate(seed=73), store=backend)
    try:
        director, log = _crash_restart_scenario(world)
        world.run(until=world.process(director()), wall_timeout=60)
    finally:
        backend.close()
        world.close()
    _assert_crash_restart_outcome(log, checkpointed=False)


def test_kill_mid_session_restart_from_checkpoint_real_udp(tmp_path):
    backend = FileBackend(tmp_path / "store")
    world = World(substrate=AsyncioSubstrate(seed=74), store=backend)
    try:
        director, log = _crash_restart_scenario(world, checkpoint_delta=3)
        world.run(until=world.process(director()), wall_timeout=60)
    finally:
        backend.close()
        world.close()
    _assert_crash_restart_outcome(log, checkpointed=True)


def test_restart_from_checkpoint_retains_owner_grants_and_manifest():
    """Crash + ``restart_dapplet(from_checkpoint=T)`` in an owned world:
    the reborn dapplet keeps its owning principal and DAppStore name,
    its manifest is re-published with a fresh lease, existing grants
    keep working, and the capability gate still denies the ungranted."""
    world = World(seed=76, latency=ConstantLatency(0.01),
                  store=MemoryBackend())
    alice = world.registry.principal("alice", org="acme")
    bob = world.registry.principal("bob", org="acme")
    mallory = world.registry.principal("mallory", org="evil")
    world.host_dappstore(2)
    world.registry.grant(bob, "acme/**", ("session.establish",))
    sender = world.dapplet(Tracker, "caltech.edu", "a")
    receiver = world.dapplet(DurableCounter, "rice.edu", "b", owner=alice)
    initiator = world.dapplet(Initiator, "caltech.edu", "init", owner=bob)
    intruder = world.dapplet(Initiator, "caltech.edu", "mall-init",
                             owner=mallory)
    store_name = receiver.manifest_name
    assert store_name == "acme/durable-counter/b"
    log = []

    def director():
        session = yield from initiator.establish(pair_spec(), timeout=60.0)
        at_time = receiver.clock.time + 3
        service = CheckpointService(receiver, at_time)
        for i in range(6):
            sender.ctx.outbox("out").send(Text(f"m{i}"))
            yield world.substrate.timeout(0.05)
        while receiver.state.region("tally").get("count", 0) < 6:
            yield world.substrate.timeout(0.05)
        live_count = receiver.state.region("tally").get("count")
        receiver.stop()
        yield from session.terminate(timeout=5.0)

        reborn = world.restart_dapplet("b", from_checkpoint=at_time)
        log.append(("rollback",
                    reborn.state.region("tally").get("count", 0),
                    live_count))
        # Ownership and the hierarchical store name survive the restart.
        assert reborn.owner is alice
        assert reborn.manifest_name == store_name

        # bob's grant still admits him against the recovered member...
        session2 = yield from initiator.establish(pair_spec(), timeout=60.0)
        log.append(("reestablished", session2.session_id))
        # ...while mallory is still denied at the capability gate.
        try:
            yield from intruder.establish(pair_spec(), timeout=60.0)
        except SessionRejected as exc:
            log.append(("denied", exc.participant, exc.reason))
        yield from session2.terminate()

        # The manifest was re-enrolled under a live lease (the reborn's
        # publish agent waits out the predecessor's lease, at most one
        # TTL): a catalog lookup resolves it to the reborn instance.
        yield reborn.manifest_agent.published
        client = world.store_client_for(sender)
        manifest = None
        while manifest is None:  # anti-entropy reaches every replica
            manifest = yield from client.lookup(store_name)
            if manifest is None:
                yield world.substrate.timeout(0.5)
        log.append(("manifest", manifest.owner, manifest.dapplet))

    # No trailing bare run(): store replicas gossip/sweep forever, so
    # the simulator would never quiesce.
    world.run(until=world.process(director()))
    (_, recovered_count, live_count), (tag, _), denied, manifest_row = log
    assert recovered_count < live_count  # rolled back to the time-T cut
    assert tag == "reestablished"
    assert denied == ("denied", "b", "capability:session.establish")
    assert receiver.sessions.stats.rejects_capability == 0  # old instance
    reborn = next(d for d in world.dapplets() if d.name == "b")
    assert reborn.sessions.stats.rejects_capability == 1
    assert manifest_row == ("manifest", "alice", "b")
    assert world.registry.grants_for(bob)  # grants outlive the crash


def test_interference_state_released_after_crash_teardown():
    """After a member crash + terminate, new sessions on the survivors
    are not blocked by stale interference entries."""
    world = World(seed=68, latency=ConstantLatency(0.01))
    a = world.dapplet(Tracker, "caltech.edu", "a")
    b = world.dapplet(Tracker, "rice.edu", "b")
    c = world.dapplet(Tracker, "utk.edu", "c")
    initiator = world.dapplet(Initiator, "caltech.edu", "init")

    def spec_with_regions(members):
        spec = SessionSpec("t")
        for m in members:
            spec.add_member(m, regions={"shared": "rw"})
        return spec

    done = []

    def director():
        s1 = yield from initiator.establish(spec_with_regions(["a", "b"]))
        b.stop()
        yield from s1.terminate(timeout=1.0)
        # 'a' must accept a new conflicting-region session now.
        s2 = yield from initiator.establish(spec_with_regions(["a", "c"]))
        done.append(True)
        yield from s2.terminate()

    world.run(until=world.process(director()))
    world.run()
    assert done == [True]
