"""AsyncioSubstrate teardown: World.close() must leak nothing.

After close, no asyncio task may remain, no armed timer may still be
able to fire into the loop, and no UDP socket may stay bound — whether
the substrate owns its loop or schedules on one the caller owns.
"""

import asyncio
import gc
import socket

from repro import AsyncioSubstrate, Tracer, World
from repro.net import NodeAddress
from repro.net.transport import Endpoint

A = NodeAddress("a.edu", 1000)
B = NodeAddress("b.edu", 1000)


def open_udp_sockets():
    gc.collect()
    return [obj for obj in gc.get_objects()
            if isinstance(obj, socket.socket)
            and obj.type == socket.SOCK_DGRAM and obj.fileno() >= 0]


def run_some_traffic(substrate):
    ea = Endpoint(substrate, substrate.datagrams, A, rto_initial=0.05)
    eb = Endpoint(substrate, substrate.datagrams, B, rto_initial=0.05)
    got = []
    eb.register_inbox(0, lambda p, a: got.append(p))
    receipts = [ea.send(B.inbox(0), f"m{i}", "ch") for i in range(5)]
    substrate.run(substrate.all_of([r.confirmed for r in receipts]),
                  wall_timeout=20)
    assert got == [f"m{i}" for i in range(5)]


def test_world_close_releases_tasks_timers_and_sockets():
    before = len(open_udp_sockets())
    world = World(substrate=AsyncioSubstrate())
    substrate = world.substrate
    run_some_traffic(substrate)
    # Traffic leaves armed timers behind (delayed acks, rto timers).
    world.close()

    assert substrate.closed
    assert substrate._handles == set()            # no armed timers
    assert substrate.datagrams._socks == {}       # no bound node sockets
    assert substrate.datagrams._tx_sock is None   # no shared tx socket
    assert substrate.loop.is_closed()             # owned loop released
    assert len(open_udp_sockets()) <= before      # nothing OS-level leaked


def test_close_on_caller_owned_loop_disarms_timers():
    """A closed substrate must never fire work into a loop it does not
    own — the caller may keep running that loop for years."""
    loop = asyncio.new_event_loop()
    try:
        substrate = AsyncioSubstrate(loop=loop)
        tracer = Tracer().attach(substrate)
        run_some_traffic(substrate)
        # Schedule far-future work, then close before it can fire.
        fired = []
        substrate.call_later(0.05, lambda: fired.append("boom"))
        assert substrate._handles
        substrate.close()
        assert not loop.is_closed()  # caller's loop untouched...

        events_at_close = len(tracer.events)
        loop.run_until_complete(asyncio.sleep(0.2))
        assert fired == []                            # ...but disarmed
        assert len(tracer.events) == events_at_close  # and silent
        assert asyncio.all_tasks(loop) == set()       # and no tasks left
    finally:
        loop.close()


def test_close_is_idempotent_and_stops_runs():
    import pytest

    from repro.errors import SimulationError

    substrate = AsyncioSubstrate()
    substrate.close()
    substrate.close()  # second close is a no-op
    with pytest.raises(SimulationError, match="closed"):
        substrate.run(wall_timeout=1)
