"""The quickstart example, traced: every protocol action the endpoints
and mailboxes counted must appear in the exported JSONL with time and
Lamport-clock stamps — the acceptance check for trace completeness."""

import importlib.util
import json
import pathlib

REPO = pathlib.Path(__file__).resolve().parents[2]


def load_quickstart():
    spec = importlib.util.spec_from_file_location(
        "quickstart", REPO / "examples" / "quickstart.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart_trace_is_complete(tmp_path, capsys):
    trace_path = tmp_path / "quickstart.jsonl"
    world = load_quickstart().main(trace=str(trace_path))
    assert "session terminated" in capsys.readouterr().out

    records = [json.loads(line)
               for line in trace_path.read_text().splitlines()]
    assert records

    def count(cat, ev):
        return sum(1 for r in records if r["cat"] == cat and r["ev"] == ev)

    # Every counted protocol action appears in the trace...
    stats = [d.endpoint.stats for d in world.dapplets()]
    assert count("ep", "data") == sum(s.data_sent for s in stats)
    assert count("ep", "rtx") == sum(s.data_retransmitted for s in stats)
    wire_acks = [r for r in records if r["cat"] == "ep" and r["ev"] == "ack"
                 and r["mode"] == "wire"]
    piggyback = [r for r in records if r["cat"] == "ep" and r["ev"] == "ack"
                 and r["mode"] == "piggyback"]
    assert len(wire_acks) == sum(s.acks_sent for s in stats)
    assert len(piggyback) == sum(s.acks_piggybacked for s in stats)
    assert count("ep", "deliver") == sum(s.delivered for s in stats)
    assert count("ep", "sack_suppress") == sum(s.sacked_suppressed
                                               for s in stats)

    # ...as does every mailbox hand-off (enqueues >= dequeues: the
    # quickstart leaves nothing queued, so here they are equal)...
    enq, deq = count("mbox", "enqueue"), count("mbox", "dequeue")
    assert enq > 0 and enq == deq

    # ...and everything a dapplet did is stamped with its Lamport clock.
    nodes = {str(d.address) for d in world.dapplets()}
    for r in records:
        assert "t" in r and "i" in r
        if r["cat"] in ("ep", "mbox", "session") and r.get("node") in nodes:
            assert isinstance(r["clk"], int), f"unstamped event: {r}"

    # The ping/pong payload round trips are all visible as deliveries:
    # 3 pings + 3 pongs on the session's two data channels.
    data_channels = {r["ch"] for r in records
                     if r["cat"] == "ep" and r["ev"] == "deliver"
                     and str(r["ch"]).endswith(":in")}
    assert len(data_channels) == 2
