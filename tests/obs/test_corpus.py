"""Trace-replay regression corpus: recorded fault schedules as oracles.

Each ``tests/obs/corpus/<name>.json`` describes one run of the canonical
scenario (seed, message count, fault schedule, trace categories); the
committed ``<name>.golden.jsonl`` is the trace that run produced when
the golden was recorded. Re-running the case must reproduce the golden
byte for byte — any diff is a behaviour change somewhere in the stack.

After an *intentional* protocol change, regenerate with::

    PYTHONPATH=src python -m repro.obs.replay tests/obs/corpus
"""

import json
import pathlib

import pytest

from repro.obs.replay import corpus_cases, diff_traces, run_case

CORPUS = pathlib.Path(__file__).parent / "corpus"
CASES = list(corpus_cases(CORPUS))


def test_corpus_is_populated():
    assert len(CASES) >= 10
    for case_path, golden_path in CASES:
        assert golden_path.exists(), f"missing golden for {case_path.name}"


@pytest.mark.parametrize(
    "case_path,golden_path", CASES,
    ids=[case_path.stem for case_path, _ in CASES])
def test_replay_matches_golden(case_path, golden_path):
    case = json.loads(case_path.read_text())
    actual = run_case(case).to_jsonl()
    diff = diff_traces(golden_path.read_text(), actual,
                       label=case_path.stem)
    assert diff == "", (
        f"replayed trace for {case_path.name} diverged from its golden "
        f"(regenerate with `python -m repro.obs.replay tests/obs/corpus` "
        f"if the change is intentional):\n{diff}")


@pytest.mark.parametrize(
    "case_path,golden_path", CASES,
    ids=[case_path.stem for case_path, _ in CASES])
def test_encoded_replay_matches_same_golden(case_path, golden_path):
    """Byte-parity proof for the binary wire codec: replaying a case
    with every datagram round-tripped through ``encode_frame`` /
    ``decode_frame`` at the network boundary (the simulator's
    ``encoded`` mode — the exact boundary the UDP substrate uses) must
    reproduce the *same* golden trace byte for byte. Any divergence
    means the codec is not faithful for some frame the corpus
    exercises."""
    case = json.loads(case_path.read_text())
    actual = run_case({**case, "encoded": True}).to_jsonl()
    diff = diff_traces(golden_path.read_text(), actual,
                       label=f"{case_path.stem}+encoded")
    assert diff == "", (
        f"encoded-mode trace for {case_path.name} diverged from the "
        f"unencoded golden — the binary codec is not byte-faithful:\n{diff}")
