"""Same seed, same program => byte-identical trace JSONL.

The acceptance test for trace determinism on the simulated substrate:
the full canonical scenario (sessions, reliable channels under faults,
mailboxes, clocks) is run twice with identical inputs and the exported
JSONL must match byte for byte — which is exactly what makes recorded
traces usable as regression oracles (tests/obs/test_corpus.py).
"""

import json

from repro.obs.replay import diff_traces, run_case

CASE = {"seed": 11, "messages": 6,
        "faults": {"drop_prob": 0.2, "duplicate_prob": 0.1,
                   "reorder_jitter": 0.05}}


def test_same_seed_runs_are_byte_identical():
    first = run_case(CASE).to_jsonl()
    second = run_case(CASE).to_jsonl()
    assert first == second
    assert first  # and not vacuously so

    on_disk_roundtrip = "".join(
        json.dumps(json.loads(line), sort_keys=True, separators=(",", ":"))
        + "\n" for line in first.splitlines())
    assert on_disk_roundtrip == first  # the format is self-canonical


def test_different_seed_changes_the_trace():
    base = run_case(CASE).to_jsonl()
    other = run_case({**CASE, "seed": 12}).to_jsonl()
    assert base != other
    assert diff_traces(base, other) != ""


def test_trace_covers_every_instrumented_layer():
    tracer = run_case(CASE)
    cats = {ev.cat for ev in tracer.events}
    assert {"kernel", "net", "ep", "mbox", "session"} <= cats
    # Under 20% loss the run must show the full recovery vocabulary.
    for name in ("data", "ack", "rtx", "confirm", "deliver"):
        assert tracer.select("ep", name), f"missing ep/{name}"
    assert tracer.select("net", "drop")
    assert tracer.select("session", "join") and tracer.select("session",
                                                              "leave")


def test_diff_traces_reports_and_bounds_differences():
    assert diff_traces("a\nb\n", "a\nb\n") == ""
    out = diff_traces("a\n" * 100, "b\n" * 100, max_lines=10)
    assert out != "" and "more diff lines" in out
