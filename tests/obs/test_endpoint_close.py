"""Endpoint.close() under tracing: closing mid-protocol must emit one
final ep/close event and then go silent — armed timers that fire later
must not raise, retransmit, ack, or record further endpoint events."""

import pytest

from repro.errors import AddressError, DeliveryTimeout
from repro.net import (ConstantLatency, DatagramNetwork, Endpoint,
                       FaultPlan, NodeAddress)
from repro.obs import Tracer
from repro.sim import Kernel

A = NodeAddress("a.edu", 1000)
B = NodeAddress("b.edu", 1000)


def make_stack(*, faults=None, seed=5, **opts):
    kernel = Kernel(seed=seed)
    tracer = Tracer().attach(kernel)
    net = DatagramNetwork(kernel, latency=ConstantLatency(0.01),
                          faults=faults)
    ea = Endpoint(kernel, net, A, rto_initial=0.05, **opts)
    eb = Endpoint(kernel, net, B, rto_initial=0.05, **opts)
    return kernel, tracer, net, ea, eb


def events_from(tracer, node, *, cat="ep", after=None):
    return [ev for ev in tracer.select(cat)
            if ev.node == str(node)
            and (after is None or ev.t > after)]


def test_close_with_unacked_data_emits_close_then_goes_silent():
    # 100% loss: nothing is ever acknowledged, rto timers stay armed.
    kernel, tracer, _net, ea, eb = make_stack(
        faults=FaultPlan(drop_prob=1.0))
    eb.register_inbox(0, lambda p, a: None)
    receipts = [ea.send(B.inbox(0), f"m{i}", "ch") for i in range(4)]
    kernel.run(until=0.12)  # let a couple of retransmissions happen
    assert ea.stats.data_retransmitted > 0

    ea.close()
    closed_at = kernel.now
    close_events = tracer.select("ep", "close")
    assert [ev.node for ev in close_events] == [str(A)]
    assert close_events[0].fields["unacked"] == 4
    for receipt in receipts:
        assert receipt.is_failed
        with pytest.raises(DeliveryTimeout):
            raise receipt.confirmed.value

    # Drain every armed timer: the closed endpoint must stay silent.
    kernel.run()
    assert events_from(tracer, A, after=closed_at) == []
    assert ea.stats.data_retransmitted <= 4 * 3  # no growth after close

    ea.close()  # idempotent: no second close event
    assert len(tracer.select("ep", "close")) == 1


def test_close_with_armed_delayed_ack_does_not_ack_later():
    kernel, tracer, _net, ea, eb = make_stack(ack_delay=0.5)
    eb.register_inbox(0, lambda p, a: None)
    ea.send(B.inbox(0), "first", "ch")
    kernel.run(until=0.011)  # delivered; delayed-ack timer armed at B
    acks_before = eb.stats.acks_sent
    eb.close()
    closed_at = kernel.now
    kernel.run()  # delayed-ack timer fires after close
    assert eb.stats.acks_sent == acks_before
    assert events_from(tracer, B, after=closed_at) == []


def test_datagrams_arriving_after_close_do_not_raise():
    kernel, tracer, _net, ea, eb = make_stack()
    eb.register_inbox(0, lambda p, a: None)
    ea.send(B.inbox(0), "in-flight", "ch")
    eb.close()  # with the DATA datagram still on the wire
    kernel.run()  # arrival finds no handler: counted, never raised
    assert tracer.select("net", "undeliverable")
    assert eb.stats.delivered == 0


def test_send_on_closed_endpoint_raises_without_tracing_data():
    kernel, tracer, _net, ea, _eb = make_stack()
    ea.close()
    with pytest.raises(AddressError, match="closed"):
        ea.send(B.inbox(0), "nope", "ch")
    assert tracer.select("ep", "data") == []
    assert kernel.tracer.metrics.counters.get("ep.data", 0) == 0
