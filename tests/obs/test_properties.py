"""Property tests: FIFO + no-duplicate delivery per channel, as seen by
the tracer, under randomized fault schedules — on both substrates.

These complement tests/net/test_transport_properties.py: there the
invariant is checked on the delivered payloads; here it is checked on
the *trace*, which must tell the same story (per-channel ep/deliver
sequence numbers are exactly 0..n-1, in order, without duplicates) —
so the observability layer is itself covered by the invariant.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.net import ConstantLatency, FaultPlan, NodeAddress
from repro.net.transport import Endpoint
from repro.obs import Tracer
from repro.runtime import AsyncioSubstrate, SimSubstrate

A = NodeAddress("a.edu", 1000)
B = NodeAddress("b.edu", 1000)

fault_plans = st.builds(
    FaultPlan,
    drop_prob=st.floats(min_value=0.0, max_value=0.5),
    duplicate_prob=st.floats(min_value=0.0, max_value=0.4),
    reorder_jitter=st.floats(min_value=0.0, max_value=0.3),
)


def run_stream(substrate, n_messages, n_channels, *, wall_timeout=None):
    """Send ``n_messages`` per channel A->B; return (received, tracer)."""
    tracer = Tracer(categories=["ep", "net"]).attach(substrate)
    try:
        ea = Endpoint(substrate, substrate.datagrams, A,
                      rto_initial=0.05, max_retries=80)
        eb = Endpoint(substrate, substrate.datagrams, B,
                      rto_initial=0.05, max_retries=80)
        received = {f"c{c}": [] for c in range(n_channels)}
        eb.register_inbox(0, lambda payload, addr: received[
            payload.split("|")[0]].append(payload))
        receipts = []
        for i in range(n_messages):
            for c in range(n_channels):
                receipts.append(ea.send(B.inbox(0), f"c{c}|{i}",
                                        channel=f"c{c}"))
        done = substrate.all_of([r.confirmed for r in receipts])
        if wall_timeout is not None:
            substrate.run(done, wall_timeout=wall_timeout)
            substrate.run(wall_timeout=wall_timeout)  # drain stray acks
        else:
            substrate.run()
        return received, tracer
    finally:
        substrate.close()


def assert_fifo_no_duplicates(received, tracer, n_messages, n_channels):
    for c in range(n_channels):
        # The application saw per-channel FIFO, exactly once...
        assert received[f"c{c}"] == [f"c{c}|{i}" for i in range(n_messages)]
    # ...and the trace tells the same story: per channel, delivery events
    # carry exactly the sequence numbers 0..n-1 in increasing order.
    per_channel = {}
    for ev in tracer.select("ep", "deliver"):
        per_channel.setdefault(ev.fields["ch"], []).append(ev.fields["seq"])
    for c in range(n_channels):
        assert per_channel[f"c{c}"] == list(range(n_messages))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31),
       faults=fault_plans,
       n_messages=st.integers(min_value=1, max_value=30),
       n_channels=st.integers(min_value=1, max_value=3))
def test_fifo_no_duplicates_on_sim(seed, faults, n_messages, n_channels):
    substrate = SimSubstrate(seed=seed, latency=ConstantLatency(0.01),
                             faults=faults)
    received, tracer = run_stream(substrate, n_messages, n_channels)
    assert_fifo_no_duplicates(received, tracer, n_messages, n_channels)


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**31),
       drop=st.floats(min_value=0.0, max_value=0.3),
       duplicate=st.floats(min_value=0.0, max_value=0.3),
       n_messages=st.integers(min_value=1, max_value=10))
def test_fifo_no_duplicates_on_asyncio(seed, drop, duplicate, n_messages):
    # Real sockets: fewer examples and smaller streams — each example
    # costs real wall-clock time — plus a wall timeout so a lost ACK
    # can never hang the test.
    substrate = AsyncioSubstrate(
        seed=seed, faults=FaultPlan(drop_prob=drop, duplicate_prob=duplicate))
    received, tracer = run_stream(substrate, n_messages, n_channels=2,
                                  wall_timeout=30)
    assert_fifo_no_duplicates(received, tracer, n_messages, n_channels=2)
