"""Unit tests for the tracing/metrics core: repro.obs."""

import json

import pytest

from repro.net import ConstantLatency, DatagramNetwork, Endpoint, NodeAddress
from repro.obs import CATEGORIES, Histogram, MetricsRegistry, Tracer
from repro.sim import Kernel

A = NodeAddress("a.edu", 1000)
B = NodeAddress("b.edu", 1000)


def traced_pair(tracer, *, faults=None, seed=3, **endpoint_options):
    kernel = Kernel(seed=seed)
    tracer.attach(kernel)
    net = DatagramNetwork(kernel, latency=ConstantLatency(0.01),
                          faults=faults)
    ea = Endpoint(kernel, net, A, rto_initial=0.05, **endpoint_options)
    eb = Endpoint(kernel, net, B, rto_initial=0.05, **endpoint_options)
    return kernel, net, ea, eb


class TestTracer:
    def test_records_protocol_events_with_time(self):
        tracer = Tracer()
        kernel, _net, ea, eb = traced_pair(tracer)
        got = []
        eb.register_inbox(0, lambda p, a: got.append(p))
        ea.send(B.inbox(0), "hello", channel="c")
        kernel.run()
        assert got == ["hello"]
        for cat, name in [("ep", "data"), ("net", "send"), ("net", "deliver"),
                          ("ep", "deliver"), ("ep", "ack"), ("ep", "confirm"),
                          ("kernel", "schedule"), ("kernel", "fire")]:
            assert tracer.select(cat, name), f"missing {cat}/{name}"
        data = tracer.select("ep", "data")[0]
        assert data.node == str(A)
        assert data.fields["ch"] == "c" and data.fields["seq"] == 0
        confirm = tracer.select("ep", "confirm")[0]
        assert confirm.t > 0 and confirm.fields["rtt"] > 0

    def test_category_filter_rejects_at_emit(self):
        tracer = Tracer(categories=["ep"])
        kernel, _net, ea, eb = traced_pair(tracer)
        eb.register_inbox(0, lambda p, a: None)
        ea.send(B.inbox(0), "x", channel="c")
        kernel.run()
        assert tracer.events
        assert {ev.cat for ev in tracer.events} == {"ep"}
        # Filtered categories do not even reach the metrics.
        assert not any(k.startswith("net.") or k.startswith("kernel.")
                       for k in tracer.metrics.counters)

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError, match="unknown trace categories"):
            Tracer(categories=["ep", "nope"])

    def test_metrics_only_keeps_counters_not_events(self):
        tracer = Tracer(metrics_only=True)
        kernel, _net, ea, eb = traced_pair(tracer)
        eb.register_inbox(0, lambda p, a: None)
        for i in range(5):
            ea.send(B.inbox(0), f"m{i}", channel="c")
        kernel.run()
        assert tracer.events == []
        assert tracer.metrics.counters["ep.data"] == 5
        summary = tracer.summary()
        assert summary["counters"]["ep.deliver"] == 5
        assert summary["histograms"]["ep.rtt"]["count"] == 5

    def test_max_events_caps_trace_but_not_metrics(self):
        tracer = Tracer(max_events=10)
        kernel, _net, ea, eb = traced_pair(tracer)
        eb.register_inbox(0, lambda p, a: None)
        for i in range(5):
            ea.send(B.inbox(0), f"m{i}", channel="c")
        kernel.run()
        assert len(tracer.events) == 10
        assert tracer.dropped_events > 0
        assert tracer.metrics.counters["ep.data"] == 5
        assert tracer.summary()["dropped_events"] == tracer.dropped_events

    def test_clock_stamps_come_from_registered_clocks(self):
        class FakeClock:
            time = 41

        tracer = Tracer()
        kernel, _net, ea, eb = traced_pair(tracer)
        tracer.register_clock(A, FakeClock())
        eb.register_inbox(0, lambda p, a: None)
        ea.send(B.inbox(0), "x", channel="c")
        kernel.run()
        data = tracer.select("ep", "data")[0]
        assert data.clk == 41
        # B has no registered clock: stamped None, serialized without clk.
        deliver = tracer.select("ep", "deliver")[0]
        assert deliver.clk is None
        assert "clk" not in deliver.to_dict()

    def test_ordinal_key_does_not_collide_with_protocol_seq(self):
        tracer = Tracer()
        kernel, _net, ea, eb = traced_pair(tracer)
        eb.register_inbox(0, lambda p, a: None)
        for i in range(3):
            ea.send(B.inbox(0), f"m{i}", channel="c")
        kernel.run()
        records = [json.loads(line) for line in
                   tracer.to_jsonl().splitlines()]
        assert [r["i"] for r in records] == list(range(len(records)))
        data = [r for r in records if r["cat"] == "ep" and r["ev"] == "data"]
        assert [r["seq"] for r in data] == [0, 1, 2]

    def test_per_node_and_per_channel_breakdowns(self):
        tracer = Tracer()
        kernel, _net, ea, eb = traced_pair(tracer)
        eb.register_inbox(0, lambda p, a: None)
        ea.send(B.inbox(0), "x", channel="c1")
        ea.send(B.inbox(0), "y", channel="c2")
        kernel.run()
        summary = tracer.summary()
        assert summary["per_node"][str(A)]["ep.data"] == 2
        assert summary["per_channel"]["c1"]["ep.data"] == 1
        assert summary["per_channel"]["c2"]["ep.data"] == 1

    def test_detach_stops_recording(self):
        tracer = Tracer()
        kernel, _net, ea, eb = traced_pair(tracer)
        eb.register_inbox(0, lambda p, a: None)
        tracer.detach(kernel)
        assert kernel.tracer is None
        ea.send(B.inbox(0), "x", channel="c")
        kernel.run()
        assert tracer.events == []

    def test_export_jsonl_writes_the_trace(self, tmp_path):
        tracer = Tracer()
        kernel, _net, ea, eb = traced_pair(tracer)
        eb.register_inbox(0, lambda p, a: None)
        ea.send(B.inbox(0), "x", channel="c")
        kernel.run()
        path = tracer.export_jsonl(tmp_path / "t.jsonl")
        assert path.read_text() == tracer.to_jsonl()
        for line in path.read_text().splitlines():
            json.loads(line)  # every line is a standalone JSON object

    def test_all_categories_are_known(self):
        assert set(CATEGORIES) == {"kernel", "net", "ep", "mbox",
                                   "session", "tokens", "dir", "store",
                                   "reg"}


class TestHistogram:
    def test_observe_and_summary(self):
        h = Histogram()
        for v in [0.001, 0.002, 0.004, 0.1]:
            h.observe(v)
        assert h.count == 4
        assert h.min == 0.001 and h.max == 0.1
        assert h.mean == pytest.approx(0.02675)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert sum(snap["buckets"].values()) == 4

    def test_quantiles_are_bucket_upper_bounds(self):
        h = Histogram()
        for _ in range(100):
            h.observe(0.01)
        q = h.quantile(0.5)
        assert 0.01 <= q <= 0.02  # the enclosing power-of-two bucket

    def test_empty_histogram(self):
        h = Histogram()
        assert h.count == 0 and h.mean == 0.0

    def test_registry_summary_is_sorted_and_plain(self):
        reg = MetricsRegistry()
        reg.count("z.last", None, None)
        reg.count("a.first", "n1", "ch1")
        reg.observe("lat", 0.5)
        summary = reg.summary()
        assert list(summary["counters"]) == sorted(summary["counters"])
        json.dumps(summary)  # JSON-serializable throughout
