"""Realtime pacing: with ``realtime=True`` the kernel slows virtual time
to the wall clock (scaled by ``realtime_factor``) instead of jumping
event-to-event."""

import time

from repro.sim import Kernel


def test_realtime_paces_virtual_time_to_wall_clock():
    # 0.2 virtual seconds at 4x speed should take >= ~0.05 wall seconds.
    k = Kernel(realtime=True, realtime_factor=4.0)
    for i in range(1, 5):
        k.timeout(0.05 * i)
    start = time.monotonic()
    k.run()
    elapsed = time.monotonic() - start
    assert k.now == 0.2
    # Generous lower bound: pacing happened at all (sleeps can be lax).
    assert elapsed >= 0.2 / 4.0 * 0.5, elapsed


def test_realtime_never_outruns_the_wall_clock():
    k = Kernel(realtime=True, realtime_factor=10.0)
    observed = []
    start = time.monotonic()
    k.trace_hooks.append(
        lambda now, ev: observed.append((now, time.monotonic() - start)))
    for i in range(1, 6):
        k.timeout(0.1 * i)
    k.run()
    assert observed, "trace hooks saw no events"
    for virtual, wall in observed:
        # Virtual time may never be ahead of scaled wall-clock time
        # (tolerance for scheduler coarseness).
        assert virtual <= (wall * 10.0) + 0.05, (virtual, wall)


def test_non_realtime_runs_faster_than_wall_clock():
    k = Kernel()
    for i in range(1, 101):
        k.timeout(1.0 * i)
    start = time.monotonic()
    k.run()
    elapsed = time.monotonic() - start
    assert k.now == 100.0
    assert elapsed < 1.0  # 100 virtual seconds in well under one real one
