"""Stateful property test: Store behaves like a FIFO queue model."""

from collections import deque

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.sim import Kernel, Store


class StoreModel(RuleBasedStateMachine):
    """Drives a Store against a plain deque model.

    The kernel is stepped after every operation so drain events settle;
    consumed values must come out in exactly model order.
    """

    def __init__(self):
        super().__init__()
        self.kernel = Kernel()
        self.store = Store(self.kernel)
        self.model: deque = deque()
        self.consumed: list = []
        self.expected: list = []
        self._counter = 0

    def _settle(self):
        self.kernel.run()

    @rule(n=st.integers(min_value=1, max_value=5))
    def put_items(self, n):
        for _ in range(n):
            self._counter += 1
            self.store.put(self._counter)
            self.model.append(self._counter)
        self._settle()

    @rule()
    def put_front_item(self):
        self._counter += 1
        self.store.put_front(self._counter)
        self.model.appendleft(self._counter)
        self._settle()

    @precondition(lambda self: len(self.model) > 0)
    @rule()
    def get_item(self):
        ev = self.store.get()
        ev.callbacks.append(lambda e: self.consumed.append(e.value))
        self.expected.append(self.model.popleft())
        self._settle()

    @rule()
    def blocking_get_then_put(self):
        """A getter that arrives before its item."""
        ev = self.store.get()
        ev.callbacks.append(lambda e: self.consumed.append(e.value))
        self._counter += 1
        self.store.put(self._counter)
        # The pending getter takes the OLDEST item; model accordingly.
        self.model.append(self._counter)
        self.expected.append(self.model.popleft())
        self._settle()

    @invariant()
    def consumption_matches_model(self):
        assert self.consumed == self.expected

    @invariant()
    def length_matches_model(self):
        assert len(self.store) == len(self.model)
        assert self.store.is_empty == (len(self.model) == 0)


TestStoreModel = StoreModel.TestCase
TestStoreModel.settings = settings(max_examples=60,
                                   stateful_step_count=30,
                                   deadline=None)
