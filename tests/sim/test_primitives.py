"""Unit tests for Store and Gate primitives."""

import pytest

from repro.sim import Gate, Kernel, Store


def test_store_put_then_get_is_fifo():
    k = Kernel()
    s = Store(k)
    for i in range(3):
        s.put(i)
    got = []

    def body():
        for _ in range(3):
            got.append((yield s.get()))

    k.process(body())
    k.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_put():
    k = Kernel()
    s = Store(k)
    got = []

    def consumer():
        v = yield s.get()
        got.append((v, k.now))

    k.process(consumer())
    k.call_later(5.0, lambda: s.put("x"))
    k.run()
    assert got == [("x", 5.0)]


def test_store_waiting_getters_served_in_order():
    k = Kernel()
    s = Store(k)
    got = []

    def consumer(i):
        v = yield s.get()
        got.append((i, v))

    for i in range(3):
        k.process(consumer(i))
    k.call_later(1.0, lambda: [s.put(c) for c in "abc"])
    k.run()
    assert got == [(0, "a"), (1, "b"), (2, "c")]


def test_store_len_and_empty():
    k = Kernel()
    s = Store(k)
    assert s.is_empty and len(s) == 0
    s.put(1)
    assert not s.is_empty and len(s) == 1


def test_store_peek():
    k = Kernel()
    s = Store(k)
    with pytest.raises(LookupError):
        s.peek()
    s.put("head")
    s.put("tail")
    assert s.peek() == "head"
    assert len(s) == 2  # peek does not consume


def test_store_cancel_withdraws_pending_get():
    k = Kernel()
    s = Store(k)
    ev = s.get()
    s.cancel(ev)
    s.put("x")
    # The cancelled getter must not have consumed the item.
    assert len(s) == 1
    s.cancel(ev)  # cancelling twice is harmless


def test_gate_broadcasts_to_all_waiters():
    k = Kernel()
    g = Gate(k)
    woken = []

    def waiter(i):
        v = yield g.wait()
        woken.append((i, v, k.now))

    for i in range(3):
        k.process(waiter(i))
    k.call_later(2.0, lambda: g.open("go"))
    k.run()
    assert woken == [(0, "go", 2.0), (1, "go", 2.0), (2, "go", 2.0)]


def test_gate_stays_open_until_reset():
    k = Kernel()
    g = Gate(k)
    g.open("v")
    assert g.is_open
    log = []

    def late_waiter():
        log.append((yield g.wait()))

    k.process(late_waiter())
    k.run()
    assert log == ["v"]
    g.reset()
    assert not g.is_open


def test_gate_double_open_is_idempotent():
    k = Kernel()
    g = Gate(k)
    g.open(1)
    g.open(2)  # ignored

    log = []

    def waiter():
        log.append((yield g.wait()))

    k.process(waiter())
    k.run()
    assert log == [1]
