"""Edge-case tests for the kernel: realtime pacing, trace hooks,
interrupts interacting with composite events."""

import time

import pytest

from repro.errors import InterruptError
from repro.sim import Kernel


def test_realtime_mode_paces_wall_clock():
    k = Kernel(realtime=True, realtime_factor=100.0)  # 100x fast-forward
    k.timeout(5.0)  # 5 virtual seconds ~ 50 ms wall
    start = time.monotonic()
    k.run()
    elapsed = time.monotonic() - start
    assert k.now == 5.0
    assert elapsed >= 0.04  # paced, allowing scheduler slop


def test_realtime_factor_scales():
    k = Kernel(realtime=True, realtime_factor=1000.0)
    k.timeout(5.0)
    start = time.monotonic()
    k.run()
    assert time.monotonic() - start < 0.5


def test_trace_hooks_observe_every_event():
    k = Kernel()
    seen = []
    k.trace_hooks.append(lambda t, ev: seen.append(t))
    k.timeout(1.0)
    k.timeout(2.0)
    k.run()
    assert seen == [1.0, 2.0]


def test_interrupt_during_any_of():
    k = Kernel()
    log = []

    def sleeper():
        try:
            yield k.timeout(10.0) | k.timeout(20.0)
        except InterruptError:
            log.append(("interrupted", k.now))

    p = k.process(sleeper())
    k.call_later(1.0, lambda: p.interrupt())
    k.run()
    assert log == [("interrupted", 1.0)]


def test_interrupted_process_can_wait_again():
    k = Kernel()
    log = []

    def body():
        try:
            yield k.timeout(100.0)
        except InterruptError:
            pass
        yield k.timeout(1.0)  # a fresh wait works after interruption
        log.append(k.now)

    p = k.process(body())
    k.call_later(2.0, lambda: p.interrupt())
    k.run()
    assert log == [3.0]


def test_interrupt_unwaiting_process_raises():
    k = Kernel()

    def body():
        yield k.timeout(1.0)

    p = k.process(body())
    k.run()
    with pytest.raises(RuntimeError):
        p.interrupt()  # finished


def test_process_yielding_processed_event_resumes_same_instant():
    k = Kernel()
    ev = k.event()
    ev.succeed("v")
    log = []

    def late():
        yield k.timeout(3.0)
        value = yield ev  # long since processed
        log.append((value, k.now))

    k.process(late())
    k.run()
    assert log == [("v", 3.0)]


def test_process_yielding_failed_processed_event_gets_exception():
    k = Kernel()
    ev = k.event()
    ev.fail(ValueError("old failure"))
    ev.defused = True
    k.run()  # process the failure (defused: no crash)
    caught = []

    def late():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    k.process(late())
    k.run()
    assert caught == ["old failure"]


def test_nested_any_all_composition():
    k = Kernel()
    log = []

    def body():
        fast = k.timeout(1.0, "fast")
        slow = k.timeout(9.0, "slow")
        other = k.timeout(2.0, "other")
        got = yield (fast | slow) & other
        log.append((sorted(str(v) for v in got.values()), k.now))

    k.process(body())
    k.run()
    # The AnyOf fires at 1.0; the AllOf completes at 2.0.
    assert log[0][1] == 2.0


def test_call_later_returns_cancelable_looking_event():
    k = Kernel()
    fired = []
    ev = k.call_later(1.5, lambda: fired.append(k.now))
    # Timeouts are triggered at creation (value fixed) but not yet
    # processed (callbacks pending).
    assert ev.triggered and not ev.processed
    k.run()
    assert fired == [1.5]
    assert ev.processed
