"""Unit tests for processes (generator coroutines)."""

import pytest

from repro.errors import InterruptError, ProcessCrashed
from repro.sim import Kernel


def test_process_runs_and_returns_value():
    k = Kernel()

    def body():
        yield k.timeout(1.0)
        yield k.timeout(2.0)
        return "done"

    p = k.process(body())
    assert p.is_alive
    assert k.run(until=p) == "done"
    assert not p.is_alive
    assert k.now == 3.0


def test_process_receives_event_values():
    k = Kernel()
    got = []

    def body():
        v = yield k.timeout(1.0, value=99)
        got.append(v)

    k.process(body())
    k.run()
    assert got == [99]


def test_process_requires_generator():
    k = Kernel()
    with pytest.raises(TypeError):
        k.process(lambda: None)  # type: ignore[arg-type]


def test_yielding_non_event_crashes_process():
    k = Kernel()

    def body():
        yield 42  # type: ignore[misc]

    p = k.process(body())
    with pytest.raises(TypeError):
        k.run(until=p)


def test_join_another_process():
    k = Kernel()
    log = []

    def child():
        yield k.timeout(2.0)
        log.append("child")
        return 7

    def parent():
        value = yield k.process(child(), name="child")
        log.append(("parent", value))

    k.process(parent())
    k.run()
    assert log == ["child", ("parent", 7)]


def test_join_already_finished_process():
    k = Kernel()
    log = []

    def child():
        return 5
        yield  # pragma: no cover

    def parent(c):
        yield k.timeout(3.0)
        value = yield c
        log.append(value)

    c = k.process(child())
    k.process(parent(c))
    k.run()
    assert log == [5]


def test_process_exception_propagates_to_joiner():
    k = Kernel()
    caught = []

    def child():
        yield k.timeout(1.0)
        raise LookupError("inner")

    def parent():
        try:
            yield k.process(child())
        except LookupError as exc:
            caught.append(str(exc))

    k.process(parent())
    k.run()
    assert caught == ["inner"]


def test_unjoined_crash_surfaces_at_run():
    k = Kernel()

    def body():
        yield k.timeout(1.0)
        raise ValueError("unobserved")

    k.process(body())
    with pytest.raises(ProcessCrashed):
        k.run()


def test_interrupt_wakes_blocked_process():
    k = Kernel()
    log = []

    def sleeper():
        try:
            yield k.timeout(100.0)
        except InterruptError as exc:
            log.append(("interrupted", exc.cause, k.now))

    p = k.process(sleeper())
    k.call_later(2.0, lambda: p.interrupt("wake up"))
    k.run(until=p)
    assert log == [("interrupted", "wake up", 2.0)]


def test_interrupt_finished_process_raises():
    k = Kernel()

    def body():
        return None
        yield  # pragma: no cover

    p = k.process(body())
    k.run(until=p)
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_active_process_count_tracks_lifecycle():
    k = Kernel()

    def body():
        yield k.timeout(1.0)

    k.process(body())
    k.process(body())
    assert k.active_process_count == 2
    k.run()
    assert k.active_process_count == 0


def test_process_chain_same_instant():
    """Processes resuming at the same instant retain FIFO order."""
    k = Kernel()
    order = []

    def body(i):
        yield k.timeout(1.0)
        order.append(i)

    for i in range(5):
        k.process(body(i))
    k.run()
    assert order == [0, 1, 2, 3, 4]
