"""Unit tests for the discrete-event kernel and events."""

import pytest

from repro.errors import ProcessCrashed, SimulationError
from repro.sim import Kernel


def test_time_starts_at_zero():
    k = Kernel()
    assert k.now == 0.0
    assert k.idle


def test_timeout_advances_clock():
    k = Kernel()
    k.timeout(5.0)
    k.run()
    assert k.now == 5.0


def test_timeout_rejects_negative_delay():
    k = Kernel()
    with pytest.raises(ValueError):
        k.timeout(-1.0)


def test_run_until_time_stops_exactly():
    k = Kernel()
    fired = []
    k.call_later(1.0, lambda: fired.append(1))
    k.call_later(3.0, lambda: fired.append(3))
    k.run(until=2.0)
    assert fired == [1]
    assert k.now == 2.0
    k.run(until=4.0)
    assert fired == [1, 3]


def test_run_until_past_time_raises():
    k = Kernel()
    k.run(until=5.0)
    with pytest.raises(ValueError):
        k.run(until=1.0)


def test_events_at_same_instant_fire_in_scheduling_order():
    k = Kernel()
    order = []
    for i in range(10):
        k.call_later(1.0, lambda i=i: order.append(i))
    k.run()
    assert order == list(range(10))


def test_event_succeed_delivers_value():
    k = Kernel()
    ev = k.event()
    seen = []
    ev.callbacks.append(lambda e: seen.append(e.value))
    ev.succeed("hello")
    k.run()
    assert seen == ["hello"]
    assert ev.ok and ev.processed


def test_event_cannot_trigger_twice():
    k = Kernel()
    ev = k.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError("no"))


def test_event_value_before_trigger_raises():
    k = Kernel()
    ev = k.event()
    with pytest.raises(RuntimeError):
        _ = ev.value
    with pytest.raises(RuntimeError):
        _ = ev.ok


def test_fail_requires_exception():
    k = Kernel()
    with pytest.raises(TypeError):
        k.event().fail("not an exception")


def test_unhandled_event_failure_surfaces_at_run():
    k = Kernel()
    k.event().fail(ValueError("boom"))
    with pytest.raises(ProcessCrashed):
        k.run()


def test_run_until_event_returns_value():
    k = Kernel()

    def body():
        yield k.timeout(2.0)
        return 42

    proc = k.process(body())
    assert k.run(until=proc) == 42
    assert k.now == 2.0


def test_run_until_event_raises_process_exception():
    k = Kernel()

    def body():
        yield k.timeout(1.0)
        raise KeyError("nope")

    proc = k.process(body())
    with pytest.raises(KeyError):
        k.run(until=proc)


def test_run_until_unfireable_event_reports_deadlock():
    k = Kernel()
    ev = k.event()  # never triggered

    def waiter():
        yield ev

    k.process(waiter())
    with pytest.raises(SimulationError, match="deadlock"):
        k.run(until=ev)


def test_deterministic_rng_streams():
    a = Kernel(seed=7).rng.get("x")
    b = Kernel(seed=7).rng.get("x")
    c = Kernel(seed=8).rng.get("x")
    seq_a = [a.random() for _ in range(5)]
    seq_b = [b.random() for _ in range(5)]
    seq_c = [c.random() for _ in range(5)]
    assert seq_a == seq_b
    assert seq_a != seq_c


def test_rng_streams_are_independent_by_name():
    k = Kernel(seed=7)
    x = k.rng.get("x")
    y = k.rng.get("y")
    assert [x.random() for _ in range(3)] != [y.random() for _ in range(3)]
    # Same name returns the same underlying generator.
    assert k.rng.get("x") is x


def test_rng_fork_gives_independent_tree():
    k = Kernel(seed=7)
    child = k.rng.fork("apps")
    assert child.get("x").random() != k.rng.get("x").random()


def test_peek_reports_next_event_time():
    k = Kernel()
    assert k.peek() == float("inf")
    k.timeout(3.5)
    assert k.peek() == 3.5


def test_any_of_fires_on_first():
    k = Kernel()
    results = []

    def body():
        t1 = k.timeout(1.0, "fast")
        t2 = k.timeout(5.0, "slow")
        got = yield t1 | t2
        results.append(list(got.values()))

    k.process(body())
    k.run()
    assert results == [["fast"]]
    assert k.now == 5.0  # slow timeout still pops, harmlessly


def test_all_of_waits_for_all():
    k = Kernel()
    results = []

    def body():
        t1 = k.timeout(1.0, "a")
        t2 = k.timeout(5.0, "b")
        got = yield t1 & t2
        results.append(sorted(got.values()))

    k.process(body())
    k.run()
    assert results == [["a", "b"]]


def test_all_of_empty_fires_immediately():
    k = Kernel()
    done = []

    def body():
        yield k.all_of([])
        done.append(k.now)

    k.process(body())
    k.run()
    assert done == [0.0]


def test_condition_rejects_foreign_events():
    k1, k2 = Kernel(), Kernel()
    with pytest.raises(ValueError):
        k1.any_of([k1.event(), k2.event()])


def test_condition_propagates_child_failure():
    k = Kernel()
    caught = []

    def body():
        bad = k.event()
        k.call_later(1.0, lambda: bad.fail(RuntimeError("child failed")))
        try:
            yield bad & k.timeout(10.0)
        except RuntimeError as exc:
            caught.append(str(exc))

    k.process(body())
    k.run()
    assert caught == ["child failed"]
