"""Layering enforcement: upper layers depend only on the substrate
interface, never on the concrete simulator classes.

The substrate refactor's whole point is that ``mailbox``, ``dapplet``,
``session`` and ``services`` run unchanged on any runtime. Importing
``repro.sim.kernel`` or ``repro.net.datagram`` from those packages would
silently re-couple them to the simulator, so this test greps the import
statements of every module in the restricted packages.

(The substrate-agnostic event/process machinery in ``repro.sim.events``
etc. and the endpoint in ``repro.net.endpoint`` remain fair game — they
run on every scheduler.)

A second scan keeps ``repro.net.transport`` a pure facade: it exists
only for external callers' backward compatibility, so nothing under
``src/`` may import it — in-repo code goes straight to
``repro.net.endpoint`` (or ``repro.net``).
"""

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent.parent / "src" / "repro"

#: Packages that must stay substrate-agnostic.
RESTRICTED = ("mailbox", "dapplet", "session", "services")

#: Modules that pin the code to the simulated runtime.
BANNED = ("repro.sim.kernel", "repro.net.datagram")


def _imported_modules(path: pathlib.Path) -> set[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    mods: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            mods.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module:
            mods.add(node.module)
    return mods


def _restricted_files():
    for package in RESTRICTED:
        for path in sorted((SRC / package).rglob("*.py")):
            yield pytest.param(path, id=str(path.relative_to(SRC)))


@pytest.mark.parametrize("path", _restricted_files())
def test_no_direct_simulator_imports(path):
    offending = _imported_modules(path).intersection(BANNED)
    assert not offending, (
        f"{path.relative_to(SRC)} imports {sorted(offending)}; upper "
        "layers must depend on repro.runtime.substrate interfaces only")


def test_restriction_covers_something():
    # Guard against the scan silently matching zero files.
    assert sum(1 for _ in _restricted_files()) >= 10


def _all_src_files():
    for path in sorted(SRC.rglob("*.py")):
        yield pytest.param(path, id=str(path.relative_to(SRC)))


@pytest.mark.parametrize("path", _all_src_files())
def test_nothing_in_src_imports_the_transport_facade(path):
    if path == SRC / "net" / "transport.py":
        return
    assert "repro.net.transport" not in _imported_modules(path), (
        f"{path.relative_to(SRC)} imports the repro.net.transport facade; "
        "in-repo code must import repro.net.endpoint (or repro.net) directly")
