"""Smoke test: the real-UDP quickstart exchanges FIFO-ordered messages
over actual loopback sockets within a hard wall-clock bound."""

import os
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def test_real_udp_quickstart_runs():
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    result = subprocess.run(
        [sys.executable, str(ROOT / "examples" / "real_udp_quickstart.py")],
        capture_output=True, text=True, timeout=30, env=env)
    assert result.returncode == 0, result.stderr[-2000:]
    assert "FIFO order verified over real UDP: 20 messages" in result.stdout
