"""One transport test suite, two substrates.

The acceptance test for the substrate abstraction: the same FIFO-order
and loss-recovery scenarios run against the deterministic simulator and
against real UDP loopback sockets, driven through the identical
``Endpoint`` API. Only the substrate construction differs.
"""

import pytest

from repro.net.address import InboxAddress, NodeAddress
from repro.net.faults import FaultPlan
from repro.net.transport import Endpoint
from repro.runtime import (AsyncioSubstrate, DatagramService, Scheduler,
                           SimSubstrate, Substrate, UdpDatagramService)

A = NodeAddress("alice.host", 2000)
B = NodeAddress("bob.host", 2000)


def make_substrate(kind, *, faults=None):
    if kind == "sim":
        return SimSubstrate(seed=7, faults=faults)
    return AsyncioSubstrate(seed=7, faults=faults)


def run_until(substrate, event, wall_timeout):
    """Drive either substrate until ``event``; bound real runs in time."""
    if isinstance(substrate, AsyncioSubstrate):
        return substrate.run(event, wall_timeout=wall_timeout)
    return substrate.run(event)


@pytest.fixture(params=["sim", "asyncio"])
def kind(request):
    return request.param


def test_fifo_order_across_substrates(kind):
    substrate = make_substrate(kind)
    try:
        sender = Endpoint(substrate, substrate.datagrams, A)
        receiver = Endpoint(substrate, substrate.datagrams, B)
        got = []
        receiver.register_inbox(0, lambda payload, src: got.append(payload))

        receipts = [sender.send(InboxAddress(B, 0), f"msg-{i}", "ch")
                    for i in range(25)]
        run_until(substrate, substrate.all_of([r.confirmed
                                               for r in receipts]),
                  wall_timeout=20)
        assert got == [f"msg-{i}" for i in range(25)]
        assert sender.stats.data_sent >= 25
    finally:
        substrate.close()


def test_retransmission_recovers_loss_across_substrates(kind):
    substrate = make_substrate(kind, faults=FaultPlan(drop_prob=0.3))
    try:
        sender = Endpoint(substrate, substrate.datagrams, A,
                          rto_initial=0.05)
        receiver = Endpoint(substrate, substrate.datagrams, B,
                            rto_initial=0.05)
        got = []
        receiver.register_inbox(0, lambda payload, src: got.append(payload))

        receipts = [sender.send(InboxAddress(B, 0), f"m{i}", "ch")
                    for i in range(20)]
        run_until(substrate, substrate.all_of([r.confirmed
                                               for r in receipts]),
                  wall_timeout=30)
        assert got == [f"m{i}" for i in range(20)]
        # With 30% loss over 20 packets, recovery must have kicked in.
        assert sender.stats.data_retransmitted > 0
    finally:
        substrate.close()


def test_both_substrates_satisfy_the_protocols(kind):
    substrate = make_substrate(kind)
    try:
        assert isinstance(substrate, Scheduler)
        assert isinstance(substrate.datagrams, DatagramService)
        # Substrate itself is not runtime_checkable (non-method member);
        # shape-check the one structural addition instead.
        assert hasattr(substrate, "datagrams") and hasattr(substrate, "close")
    finally:
        substrate.close()


def test_asyncio_quiescence_and_wall_timeout():
    substrate = AsyncioSubstrate(seed=1)
    try:
        fired = []
        substrate.call_later(0.05, lambda: fired.append("a"))
        substrate.run(wall_timeout=10)  # quiescence: returns once idle
        assert fired == ["a"]

        from repro.errors import SimulationError
        hang = substrate.event()  # never fires
        with pytest.raises(SimulationError):
            substrate.run(hang, wall_timeout=0.2)
    finally:
        substrate.close()


def test_asyncio_crash_propagates_like_kernel():
    from repro.errors import ProcessCrashed

    substrate = AsyncioSubstrate(seed=1)
    try:
        def boom():
            yield substrate.timeout(0.01)
            raise RuntimeError("kaboom")

        substrate.process(boom())
        with pytest.raises(ProcessCrashed):
            substrate.run(wall_timeout=10)
    finally:
        substrate.close()


def test_udp_service_routes_by_virtual_address():
    substrate = AsyncioSubstrate(seed=1)
    try:
        service = substrate.datagrams
        assert isinstance(service, UdpDatagramService)
        seen = []
        service.register(A, seen.append)
        host, port = service.real_address(A)
        assert host == "127.0.0.1" and port > 0
        assert service.is_registered(A)
        service.unregister(A)
        assert not service.is_registered(A)
    finally:
        substrate.close()
