"""Smoke tests: every example script runs to completion and prints the
expected headline output."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", "session terminated"),
    ("calendar_meeting.py", "executive committee"),
    ("collaborative_design.py", "token conservation invariant holds"),
    ("card_game.py", "winner:"),
    ("global_snapshot.py", "consistent?"),
    ("lossy_wan.py", "DeliveryTimeout raised"),
    ("discovery_churn.py", "session formed despite replica crash"),
    ("marketplace.py", "bob's session survived the revocation"),
]


@pytest.mark.parametrize("script,expected", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(script, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=180)
    assert result.returncode == 0, result.stderr[-2000:]
    assert expected in result.stdout
    # No consistency failure slipped through (global_snapshot prints
    # 'NO!' on an inconsistent cut).
    assert "NO!" not in result.stdout
