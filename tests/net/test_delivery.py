"""Delivery-class tests: RELIABLE / UNRELIABLE / RELIABLE_SKIP.

The reliable path has its own battery in ``test_transport*.py``; this
file covers the class machinery itself — the UNRELIABLE fast path (the
legacy raw mode's new home, including its edge cases), the
RELIABLE_SKIP abandon protocol, per-message overrides, and the
rejection of the retired ``reliable=`` constructor shim.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AddressError, DeliveryTimeout, PayloadTooLarge
from repro.net import (
    RELIABLE,
    RELIABLE_SKIP,
    UNRELIABLE,
    ConstantLatency,
    DatagramNetwork,
    Endpoint,
    FaultPlan,
    NodeAddress,
)
from repro.net.delivery import DELIVERY_CLASSES, validate_delivery
from repro.net.wire import KIND_DATA, KIND_SKIP, MAX_FRAME_BYTES
from repro.sim import Kernel

A = NodeAddress("a.edu", 1000)
B = NodeAddress("b.edu", 1000)


def make_pair(seed=0, *, latency=None, faults=None, **epkw):
    k = Kernel(seed=seed)
    net = DatagramNetwork(k, latency=latency or ConstantLatency(0.02),
                          faults=faults)
    ea = Endpoint(k, net, A, **epkw)
    eb = Endpoint(k, net, B, **epkw)
    return k, net, ea, eb


def collect_inbox(endpoint, ref=0):
    got = []
    endpoint.register_inbox(ref, lambda payload, addr: got.append(payload))
    return got


# -- the class vocabulary ---------------------------------------------------


def test_validate_delivery():
    for cls in DELIVERY_CLASSES:
        assert validate_delivery(cls) == cls
    with pytest.raises(ValueError, match="delivery class"):
        validate_delivery("best_effort")


def test_endpoint_rejects_unknown_class():
    k = Kernel(seed=0)
    net = DatagramNetwork(k, latency=ConstantLatency(0.01))
    with pytest.raises(ValueError, match="delivery class"):
        Endpoint(k, net, A, delivery="bogus")


def test_send_rejects_unknown_class_override():
    k, net, ea, eb = make_pair()
    with pytest.raises(ValueError, match="delivery class"):
        ea.send(B.inbox(0), "x", channel="c", delivery="bogus")


def test_reliable_shim_is_gone():
    """The retired ``reliable=`` boolean is a hard TypeError, not a
    silently-ignored kwarg; the default class stays RELIABLE."""
    k = Kernel(seed=0)
    net = DatagramNetwork(k, latency=ConstantLatency(0.01))
    with pytest.raises(TypeError):
        Endpoint(k, net, A, reliable=False)
    rel = Endpoint(k, net, B)
    assert rel.delivery == RELIABLE
    assert not hasattr(rel, "reliable")
    skip = Endpoint(k, net, NodeAddress("c.edu", 1000),
                    delivery=RELIABLE_SKIP)
    assert skip.delivery == RELIABLE_SKIP


# -- UNRELIABLE -------------------------------------------------------------


def test_unreliable_send_returns_no_receipt():
    k, net, ea, eb = make_pair(delivery=UNRELIABLE)
    got = collect_inbox(eb)
    assert ea.send(B.inbox(0), "hello", channel="c1") is None
    k.run()
    assert got == ["hello"]
    assert ea.stats.unreliable_sent == 1
    assert eb.stats.unreliable_delivered == 1


def test_unreliable_never_retransmits_under_loss():
    k, net, ea, eb = make_pair(seed=3, faults=FaultPlan(drop_prob=0.4),
                               delivery=UNRELIABLE)
    got = collect_inbox(eb)
    n = 80
    for i in range(n):
        ea.send(B.inbox(0), str(i), channel="c1")
    k.run()
    assert 0 < len(got) < n  # the net lost some, nobody repaired them
    assert ea.stats.data_retransmitted == 0
    assert ea.stats.acks_sent == 0 and eb.stats.acks_sent == 0


def test_unreliable_rejects_delivery_timeout():
    """The legacy raw-mode edge case, verbatim error included: a
    timeout needs acknowledgements, which UNRELIABLE never gets."""
    k, net, ea, eb = make_pair(delivery=UNRELIABLE)
    with pytest.raises(ValueError,
                       match="delivery timeout requires a reliable endpoint"):
        ea.send(B.inbox(0), "x", channel="c1", timeout=1.0)


def test_unreliable_oversized_payload_raises_at_send():
    k, net, ea, eb = make_pair(delivery=UNRELIABLE)
    with pytest.raises(PayloadTooLarge):
        ea.send(B.inbox(0), "x" * (MAX_FRAME_BYTES + 1), channel="c1")
    assert ea.stats.unreliable_sent == 0


def test_closed_endpoint_rejects_unreliable_sends():
    k, net, ea, eb = make_pair(delivery=UNRELIABLE)
    ea.send(B.inbox(0), "one", channel="c1")
    ea.close()
    with pytest.raises(AddressError, match="closed"):
        ea.send(B.inbox(0), "two", channel="c1")


def test_close_with_queued_reliable_sends_fails_receipts():
    """The other legacy close edge case: reliable receipts queued behind
    the window (or in flight) fail with DeliveryTimeout at close."""
    k, net, ea, eb = make_pair(faults=FaultPlan(drop_prob=1.0))
    collect_inbox(eb)
    receipts = [ea.send(B.inbox(0), str(i), channel="c1") for i in range(5)]
    k.run(until=0.01)
    ea.close()
    for r in receipts:
        assert r.is_failed
        assert isinstance(r.confirmed.value, DeliveryTimeout)


def test_unreliable_drops_duplicates_and_stale():
    """Duplicated frames arrive with an already-seen stamp and are
    dropped; reordered older-than-latest frames are dropped as stale."""
    k, net, ea, eb = make_pair(
        seed=9, faults=FaultPlan(duplicate_prob=0.5, reorder_jitter=0.2),
        delivery=UNRELIABLE)
    got = collect_inbox(eb)
    n = 60
    for i in range(n):
        ea.send(B.inbox(0), str(i), channel="c1")
    k.run()
    assert len(got) == len(set(got))  # no duplicates reach the app
    seqs = [int(p) for p in got]
    assert seqs == sorted(seqs)  # never older than the latest delivered
    assert eb.stats.stale_dropped > 0


def test_unreliable_channels_are_independent():
    k, net, ea, eb = make_pair(delivery=UNRELIABLE)
    got = collect_inbox(eb)
    ea.send(B.inbox(0), "a0", channel="ca")
    ea.send(B.inbox(0), "b0", channel="cb")
    ea.send(B.inbox(0), "a1", channel="ca")
    k.run()
    assert sorted(got) == ["a0", "a1", "b0"]
    assert ea._unreliable_seq[(B, "ca")] == 2
    assert ea._unreliable_seq[(B, "cb")] == 1


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       drop=st.floats(min_value=0.0, max_value=0.5),
       dup=st.floats(min_value=0.0, max_value=0.5),
       jitter=st.floats(min_value=0.0, max_value=0.3))
def test_unreliable_no_dup_no_stale_property(seed, drop, dup, jitter):
    """Under any fault schedule, each UNRELIABLE channel delivers a
    strictly increasing subsequence of what was sent: no duplicate and
    nothing older than the latest already delivered."""
    k = Kernel(seed=seed)
    net = DatagramNetwork(
        k, latency=ConstantLatency(0.01),
        faults=FaultPlan(drop_prob=drop, duplicate_prob=dup,
                         reorder_jitter=jitter))
    ea = Endpoint(k, net, A, delivery=UNRELIABLE)
    eb = Endpoint(k, net, B, delivery=UNRELIABLE)
    per_channel: dict[str, list[int]] = {"ca": [], "cb": []}
    eb.register_inbox(0, lambda payload, addr: per_channel[
        payload.split(":")[0]].append(int(payload.split(":")[1])))
    n = 40
    for i in range(n):
        ea.send(B.inbox(0), f"ca:{i}", channel="ca")
        ea.send(B.inbox(0), f"cb:{i}", channel="cb")
    k.run()
    for ch, seqs in per_channel.items():
        assert seqs == sorted(set(seqs)), (
            f"channel {ch} saw a duplicate or stale delivery: {seqs}")


# -- RELIABLE_SKIP ----------------------------------------------------------


def drop_first_data(seqs):
    """A drop filter losing the first transmission of the given DATA seqs."""
    seen = set()
    def flt(datagram):
        h = datagram.header
        if h.get("kind") == KIND_DATA and h.get("seq") in seqs \
                and h["seq"] not in seen:
            seen.add(h["seq"])
            return True
        return False
    return flt


def test_skip_abandons_lost_packet_and_receiver_advances():
    """Lose seq 1 forever (drop every copy): the sender abandons it at
    the skip deadline and the receiver delivers around the hole."""
    k, net, ea, eb = make_pair(
        faults=FaultPlan(drop_filter=lambda d:
                         d.header.get("kind") == KIND_DATA
                         and d.header.get("seq") == 1),
        delivery=RELIABLE_SKIP, skip_timeout=0.06, rto_initial=0.5)
    got = collect_inbox(eb)
    receipts = [ea.send(B.inbox(0), str(i), channel="c1") for i in range(4)]
    k.run()
    assert got == ["0", "2", "3"]
    assert receipts[1].is_skipped
    assert receipts[1].outcome == "skipped"
    assert receipts[1].is_confirmed  # skipped resolves, not fails
    for i in (0, 2, 3):
        assert receipts[i].outcome == "delivered"
        assert not receipts[i].is_skipped
    assert ea.stats.skipped == 1
    assert ea.stats.skips_sent >= 1
    assert eb.stats.holes_skipped == 1


def test_retransmit_beats_skip_deadline():
    """With the RTO shorter than the skip timeout, a retransmission can
    still repair the loss — the receipt then resolves delivered, not
    skipped, and nothing is abandoned."""
    k, net, ea, eb = make_pair(
        faults=FaultPlan(drop_filter=drop_first_data({1})),
        delivery=RELIABLE_SKIP, skip_timeout=1.0, rto_initial=0.05)
    got = collect_inbox(eb)
    receipts = [ea.send(B.inbox(0), str(i), channel="c1") for i in range(3)]
    k.run()
    assert got == ["0", "1", "2"]
    assert all(r.outcome == "delivered" for r in receipts)
    assert ea.stats.skipped == 0
    assert ea.stats.data_retransmitted >= 1


def test_skip_frame_loss_is_repaired_by_retransmission():
    """SKIP frames are themselves best-effort: lose the first few and
    the sender's skip-retransmit timer still converges the receiver."""
    lost = [0]
    def flt(d):
        h = d.header
        if h.get("kind") == KIND_DATA and h.get("seq") == 0:
            return True  # seq 0 never arrives
        if h.get("kind") == KIND_SKIP and lost[0] < 3:
            lost[0] += 1
            return True  # ...and neither do the first three SKIPs
        return False
    k, net, ea, eb = make_pair(
        faults=FaultPlan(drop_filter=flt),
        delivery=RELIABLE_SKIP, skip_timeout=0.05, rto_initial=0.08)
    got = collect_inbox(eb)
    ea.send(B.inbox(0), "zero", channel="c1")
    ea.send(B.inbox(0), "one", channel="c1")
    k.run()
    assert got == ["one"]
    assert lost[0] == 3
    assert ea.stats.skips_sent >= 4
    stream = ea._send_streams[(B, "c1")]
    assert stream.last_cum >= stream.skip_upto - 1  # rtx timer disarmed


def test_skip_never_abandons_a_live_reliable_packet():
    """RELIABLE and RELIABLE_SKIP share one FIFO stream. Abandoning a
    skip-class packet advances only to the next *outstanding* seq, so a
    still-retransmitting RELIABLE packet behind it is never skipped."""
    k, net, ea, eb = make_pair(
        faults=FaultPlan(drop_filter=drop_first_data({0, 1})),
        skip_timeout=0.05, rto_initial=0.2)
    got = collect_inbox(eb)
    r0 = ea.send(B.inbox(0), "skip-me", channel="c1", delivery=RELIABLE_SKIP)
    r1 = ea.send(B.inbox(0), "keep-me", channel="c1")  # RELIABLE
    k.run()
    # seq 0 was abandoned at t=0.05; seq 1's retransmission at t=0.2
    # must still be delivered, not skipped over.
    assert got == ["keep-me"]
    assert r0.is_skipped
    assert r1.outcome == "delivered"
    assert ea.stats.skipped == 1


def test_per_message_delivery_overrides():
    """One RELIABLE endpoint, three classes on three sends."""
    k, net, ea, eb = make_pair(skip_timeout=0.1)
    got = collect_inbox(eb)
    r_rel = ea.send(B.inbox(0), "rel", channel="c1")
    r_skip = ea.send(B.inbox(0), "skip", channel="c1",
                     delivery=RELIABLE_SKIP)
    r_unrel = ea.send(B.inbox(0), "unrel", channel="c-fast",
                      delivery=UNRELIABLE)
    assert r_unrel is None
    k.run()
    assert sorted(got) == ["rel", "skip", "unrel"]
    assert r_rel.outcome == "delivered"
    assert r_skip.outcome == "delivered"  # nothing was lost
    assert ea.stats.unreliable_sent == 1


def test_skip_timeout_validation():
    k, net, ea, eb = make_pair()
    with pytest.raises(ValueError, match="skip_timeout"):
        Endpoint(Kernel(seed=0), DatagramNetwork(Kernel(seed=0)),
                 NodeAddress("x.edu", 1), skip_timeout=0.0)
    with pytest.raises(ValueError, match="skip_timeout"):
        ea.send(B.inbox(0), "x", channel="c1", delivery=RELIABLE_SKIP,
                skip_timeout=-1.0)
