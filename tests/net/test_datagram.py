"""Unit tests for the unreliable datagram network."""

import pytest

from repro.errors import AddressError
from repro.net import (
    ConstantLatency,
    Datagram,
    DatagramNetwork,
    FaultPlan,
    NodeAddress,
    UniformLatency,
)
from repro.sim import Kernel

A = NodeAddress("a.edu", 1000)
B = NodeAddress("b.edu", 1000)


def make_net(kernel, **kw):
    return DatagramNetwork(kernel, **kw)


def dgram(payload="hi", src=A, dst=B):
    return Datagram(src, dst, {"kind": "RAW", "to": 0, "ch": "c"}, payload)


def test_delivery_with_constant_latency():
    k = Kernel()
    net = make_net(k, latency=ConstantLatency(0.25))
    got = []
    net.register(B, lambda d: got.append((k.now, d.payload)))
    net.send(dgram("x"))
    k.run()
    assert got == [(0.25, "x")]
    assert net.stats.sent == net.stats.delivered == 1


def test_unregistered_destination_is_dropped_silently():
    k = Kernel()
    net = make_net(k)
    net.send(dgram())
    k.run()
    assert net.stats.undeliverable == 1
    assert net.stats.delivered == 0


def test_double_registration_rejected():
    k = Kernel()
    net = make_net(k)
    net.register(B, lambda d: None)
    with pytest.raises(AddressError):
        net.register(B, lambda d: None)
    net.unregister(B)
    net.register(B, lambda d: None)  # re-register after unregister is fine
    assert net.is_registered(B)


def test_drop_faults_counted():
    k = Kernel()
    net = make_net(k, faults=FaultPlan(drop_prob=1.0))
    net.register(B, lambda d: pytest.fail("must not deliver"))
    for _ in range(10):
        net.send(dgram())
    k.run()
    assert net.stats.dropped == 10
    assert net.stats.delivered == 0


def test_duplicate_faults_deliver_twice():
    k = Kernel()
    net = make_net(k, faults=FaultPlan(duplicate_prob=1.0))
    got = []
    net.register(B, lambda d: got.append(d.payload))
    net.send(dgram("x"))
    k.run()
    assert got == ["x", "x"]
    assert net.stats.duplicated == 1


def test_reordering_possible_with_jitter():
    """With reorder jitter, later sends can overtake earlier ones."""
    k = Kernel(seed=3)
    net = make_net(k, latency=ConstantLatency(0.01),
                   faults=FaultPlan(reorder_jitter=0.5))
    got = []
    net.register(B, lambda d: got.append(int(d.payload)))

    def sender():
        for i in range(30):
            net.send(dgram(str(i)))
            yield k.timeout(0.001)

    k.process(sender())
    k.run()
    assert sorted(got) == list(range(30))
    assert got != sorted(got)  # at least one inversion occurred


def test_latency_independent_per_link_direction():
    """Each (src,dst) pair gets its own random stream."""
    k = Kernel(seed=1)
    net = make_net(k, latency=UniformLatency(0.0, 1.0))
    times = {}
    net.register(B, lambda d: times.setdefault("ab", k.now))
    net.register(A, lambda d: times.setdefault("ba", k.now))
    net.send(dgram(src=A, dst=B))
    net.send(dgram(src=B, dst=A))
    k.run()
    assert times["ab"] != times["ba"]


def test_wire_taps_observe_sends():
    k = Kernel()
    net = make_net(k)
    seen = []
    net.wire_taps.append(lambda t, d: seen.append(d.payload))
    net.register(B, lambda d: None)
    net.send(dgram("x"))
    assert seen == ["x"]


def test_datagram_size_includes_overhead():
    d = dgram("12345")
    assert d.size == 64 + 5


def test_byte_counters():
    k = Kernel()
    net = make_net(k)
    net.register(B, lambda d: None)
    net.send(dgram("12345"))
    k.run()
    assert net.stats.bytes_sent == 69
    assert net.stats.bytes_delivered == 69
