"""Unit tests for latency models."""

import random

import pytest

from repro.net import (
    ConstantLatency,
    GeoLatency,
    LogNormalLatency,
    PerLinkLatency,
    UniformLatency,
    WAN_SITES,
)
from repro.net.latency import great_circle_km


def rng():
    return random.Random(42)


def test_constant_latency():
    m = ConstantLatency(0.1)
    assert m.sample(rng(), "a", "b", 100) == 0.1
    with pytest.raises(ValueError):
        ConstantLatency(-1)


def test_uniform_latency_within_bounds():
    m = UniformLatency(0.01, 0.02)
    r = rng()
    for _ in range(100):
        assert 0.01 <= m.sample(r, "a", "b", 0) <= 0.02
    with pytest.raises(ValueError):
        UniformLatency(0.5, 0.1)


def test_lognormal_latency_positive_and_floored():
    m = LogNormalLatency(median=0.05, sigma=1.0, floor=0.002)
    r = rng()
    samples = [m.sample(r, "a", "b", 0) for _ in range(200)]
    assert all(s >= 0.002 for s in samples)
    # Median should be in the right ballpark.
    samples.sort()
    assert 0.02 < samples[100] < 0.15
    with pytest.raises(ValueError):
        LogNormalLatency(median=0)


def test_great_circle_sanity():
    # Pasadena -> Houston is roughly 2200 km.
    km = great_circle_km(WAN_SITES["caltech.edu"], WAN_SITES["rice.edu"])
    assert 2000 < km < 2500
    assert great_circle_km(WAN_SITES["caltech.edu"],
                           WAN_SITES["caltech.edu"]) == 0


def test_geo_latency_orders_by_distance():
    m = GeoLatency(jitter_median=0.0)  # deterministic
    r = rng()
    lan = m.sample(r, "caltech.edu", "caltech.edu", 100)
    near = m.sample(r, "caltech.edu", "rice.edu", 100)
    far = m.sample(r, "caltech.edu", "sydney.edu.au", 100)
    assert lan < near < far
    # Sydney is > 50ms away one-way at physical limits.
    assert far > 0.05


def test_geo_latency_suffix_host_matching():
    m = GeoLatency(jitter_median=0.0)
    direct = m.propagation("caltech.edu", "rice.edu")
    sub = m.propagation("cs.caltech.edu", "owlnet.rice.edu")
    assert direct == sub


def test_geo_latency_unknown_host():
    m = GeoLatency()
    with pytest.raises(KeyError):
        m.sample(rng(), "caltech.edu", "unknown.example", 0)


def test_geo_latency_charges_transmission_for_size():
    m = GeoLatency(jitter_median=0.0, bandwidth_bytes_per_s=1e6)
    r = rng()
    small = m.sample(r, "caltech.edu", "rice.edu", 100)
    big = m.sample(r, "caltech.edu", "rice.edu", 100_000)
    assert big - small == pytest.approx(99_900 / 1e6)


def test_per_link_latency_overrides():
    default = ConstantLatency(0.5)
    fast = ConstantLatency(0.001)
    m = PerLinkLatency(default)
    m.set_link("a.edu", "b.edu", fast)
    r = rng()
    assert m.sample(r, "a.edu", "b.edu", 0) == 0.001
    assert m.sample(r, "b.edu", "a.edu", 0) == 0.001  # symmetric
    assert m.sample(r, "a.edu", "c.edu", 0) == 0.5


def test_per_link_latency_asymmetric():
    m = PerLinkLatency(ConstantLatency(0.5))
    m.set_link("a.edu", "b.edu", ConstantLatency(0.001), symmetric=False)
    r = rng()
    assert m.sample(r, "a.edu", "b.edu", 0) == 0.001
    assert m.sample(r, "b.edu", "a.edu", 0) == 0.5


def test_mean_estimate():
    assert ConstantLatency(0.2).mean_estimate("a", "b") == pytest.approx(0.2)
