"""Unit tests for adaptive RTO (Jacobson + echo timestamps)."""

import pytest

from repro.net import (
    ConstantLatency,
    DatagramNetwork,
    Endpoint,
    FaultPlan,
    NodeAddress,
)
from repro.sim import Kernel

A = NodeAddress("a.edu", 1000)
B = NodeAddress("b.edu", 1000)


def make_pair(seed=0, *, latency=None, faults=None, **kw):
    k = Kernel(seed=seed)
    net = DatagramNetwork(k, latency=latency or ConstantLatency(0.05),
                          faults=faults)
    ea = Endpoint(k, net, A, rto_mode="adaptive", **kw)
    eb = Endpoint(k, net, B, rto_mode="adaptive", **kw)
    return k, ea, eb


def test_mode_validation():
    k = Kernel()
    net = DatagramNetwork(k)
    with pytest.raises(ValueError):
        Endpoint(k, net, A, rto_mode="magic")


def test_srtt_converges_to_rtt():
    k, ea, eb = make_pair(latency=ConstantLatency(0.05))
    got = []
    eb.register_inbox(0, lambda p, a: got.append(p))

    def sender():
        for i in range(10):
            ea.send(B.inbox(0), str(i), channel="c")
            yield k.timeout(0.2)

    k.process(sender())
    k.run()
    stream = ea._send_streams[(B, "c")]
    assert stream.srtt == pytest.approx(0.1, rel=0.05)  # data+ack RTT
    # The derived RTO is srtt + 4*rttvar, near the true RTT.
    assert 0.09 < stream.current_rto() < 0.2


def test_adaptive_rto_reduces_spurious_retransmits():
    """With a deliberately huge static seed RTO vs a tiny one, adaptive
    converges toward the truth from either side."""
    def run(rto_initial):
        k, ea, eb = make_pair(latency=ConstantLatency(0.05),
                              rto_initial=rto_initial)
        eb.register_inbox(0, lambda p, a: None)

        def sender():
            for i in range(30):
                ea.send(B.inbox(0), str(i), channel="c")
                yield k.timeout(0.12)

        k.process(sender())
        k.run()
        return ea.stats.data_retransmitted, ea._send_streams[(B, "c")]

    rtx_from_tiny, stream_tiny = run(0.01)
    rtx_from_huge, stream_huge = run(10.0)
    # Both seeds converge to the same estimate...
    assert stream_tiny.current_rto() == pytest.approx(
        stream_huge.current_rto(), rel=0.1)
    # ...and the tiny seed stops retransmitting after the first samples.
    assert rtx_from_tiny < 5


def test_adaptive_survives_loss():
    k, ea, eb = make_pair(seed=7, latency=ConstantLatency(0.03),
                          faults=FaultPlan(drop_prob=0.3),
                          rto_initial=0.1, max_retries=60)
    got = []
    eb.register_inbox(0, lambda p, a: got.append(p))

    def sender():
        for i in range(40):
            ea.send(B.inbox(0), str(i), channel="c")
            yield k.timeout(0.05)

    k.process(sender())
    k.run()
    assert got == [str(i) for i in range(40)]
    stream = ea._send_streams[(B, "c")]
    # Loss-delayed echo samples must not blow the estimate up by orders
    # of magnitude (the failure mode of naive sampling).
    assert stream.current_rto() < 1.0
