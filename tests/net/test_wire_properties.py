"""Property-based tests for the binary wire codec.

Two invariants:

* **Round trip** — for every well-formed frame of every kind,
  ``decode_frame(encode_frame(d)) == d`` (header, payload and batched
  parts payloads all byte-exact).
* **Total decode** — arbitrary bytes, and valid frames arbitrarily
  truncated or mutated, either decode to *some* datagram or raise
  :class:`~repro.net.wire.FrameError`. Never ``struct.error``,
  ``KeyError``, ``IndexError``, ``UnicodeDecodeError`` or any other
  leak from the parser internals: receive loops drop-and-count on
  exactly one exception type.
"""

from hypothesis import given, settings, strategies as st

from repro.net.address import NodeAddress
from repro.net.datagram import Datagram
from repro.net.wire import (FrameError, KIND_ACK, KIND_DATA, KIND_PROBE,
                            KIND_SKIP, decode_frame, encode_frame)

hosts = st.text(
    st.characters(codec="utf-8", exclude_characters=":"),
    min_size=1, max_size=24)
addresses = st.builds(NodeAddress, host=hosts,
                      port=st.integers(min_value=1, max_value=65535))
channels = st.text(max_size=24)
refs = st.one_of(st.integers(min_value=0, max_value=(1 << 32) - 1),
                 st.text(min_size=1, max_size=24))
payloads = st.text(max_size=200)
#: f64 round-trips exactly for every finite float.
timestamps = st.floats(allow_nan=False, allow_infinity=False)

sack_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=(1 << 32) - 1),
              st.integers(min_value=0, max_value=(1 << 32) - 1)).map(list),
    min_size=1, max_size=5)


def ack_fields(with_ch):
    """Ack field dicts as `_ack_fields`/`_collect_piggyback` produce
    them: `ets` always present (possibly None), `sack`/`rwnd` optional
    and only ever present non-empty."""
    base = {
        "cum": st.integers(min_value=-1, max_value=(1 << 48)),
        "ets": st.one_of(st.none(), timestamps),
    }
    if with_ch:
        base["ch"] = channels
    return st.fixed_dictionaries(
        base,
        optional={
            "sack": sack_lists,
            "rwnd": st.integers(min_value=0, max_value=(1 << 48)),
        })


data_headers = st.fixed_dictionaries(
    {"kind": st.just(KIND_DATA), "to": refs, "ch": channels,
     "seq": st.integers(min_value=0, max_value=(1 << 32) - 1),
     "ts": timestamps},
    optional={"pack": st.lists(ack_fields(with_ch=True),
                               min_size=1, max_size=4)})

ack_headers = ack_fields(with_ch=True).map(
    lambda f: {"kind": KIND_ACK, **f})

skip_headers = st.fixed_dictionaries(
    {"kind": st.just(KIND_SKIP), "ch": channels,
     "upto": st.integers(min_value=0, max_value=(1 << 32) - 1)})

probe_headers = st.fixed_dictionaries(
    {"kind": st.just(KIND_PROBE), "ch": channels})


@st.composite
def datagrams(draw):
    kind = draw(st.sampled_from([KIND_DATA, KIND_ACK, KIND_SKIP, KIND_PROBE]))
    src = draw(addresses)
    dst = draw(addresses)
    if kind == KIND_DATA:
        header = dict(draw(data_headers))
        if draw(st.booleans()):  # batched form
            parts = draw(st.lists(refs, min_size=1, max_size=6))
            header["parts"] = parts
            body = draw(st.lists(payloads, min_size=len(parts),
                                 max_size=len(parts)))
            return Datagram(src, dst, header, "",
                            parts_payloads=tuple(body))
        return Datagram(src, dst, header, draw(payloads))
    if kind == KIND_ACK:
        return Datagram(src, dst, draw(ack_headers), "")
    if kind == KIND_SKIP:
        return Datagram(src, dst, draw(skip_headers), "")
    return Datagram(src, dst, draw(probe_headers), "")


@settings(max_examples=300, deadline=None)
@given(datagram=datagrams())
def test_every_frame_kind_round_trips(datagram):
    data = encode_frame(datagram)
    assert isinstance(data, bytes)
    assert decode_frame(data) == datagram


@settings(max_examples=300, deadline=None)
@given(data=st.binary(max_size=400))
def test_decode_of_arbitrary_bytes_is_total(data):
    try:
        decode_frame(data)
    except FrameError:
        pass  # the single permitted failure mode


@settings(max_examples=300, deadline=None)
@given(datagram=datagrams(), cut=st.integers(min_value=0, max_value=10**6))
def test_decode_of_truncated_frames_is_total(datagram, cut):
    data = encode_frame(datagram)
    try:
        decode_frame(data[:cut % (len(data) + 1)])
    except FrameError:
        pass


@settings(max_examples=300, deadline=None)
@given(datagram=datagrams(), pos=st.integers(min_value=0, max_value=10**6),
       bit=st.integers(min_value=0, max_value=7))
def test_decode_of_mutated_frames_is_total(datagram, pos, bit):
    data = bytearray(encode_frame(datagram))
    data[pos % len(data)] ^= 1 << bit
    try:
        decode_frame(bytes(data))
    except FrameError:
        pass
