"""Unit tests for the sliding-window layer of the ordering protocol:
congestion-window gating, receiver-advertised windows, batched DATA
frames, zero-window persist probes, window-update ACKs, backpressure
events — and the close-while-blocked regression (a queued send must
fail promptly, not hang, when the endpoint or substrate goes away)."""

from repro.errors import AddressError, DeliveryTimeout
from repro.mailbox import Inbox, Outbox
from repro.messages import Text
from repro.net import (
    ConstantLatency,
    DatagramNetwork,
    Endpoint,
    FaultPlan,
    NodeAddress,
)
from repro.net.datagram import HEADER_OVERHEAD
from repro.net.transport import KIND_ACK, KIND_DATA, KIND_PROBE
from repro.runtime import AsyncioSubstrate
from repro.sim import Kernel

A = NodeAddress("a.edu", 1000)
B = NodeAddress("b.edu", 1000)

#: 100-byte payloads -> 164 wire bytes each given the 64-byte header.
PAYLOAD = "x" * 100
PACKET = HEADER_OVERHEAD + len(PAYLOAD)


def make_pair(seed=0, *, latency=None, faults=None, **epkw):
    k = Kernel(seed=seed)
    net = DatagramNetwork(k, latency=latency or ConstantLatency(0.02),
                          faults=faults)
    ea = Endpoint(k, net, A, **epkw)
    eb = Endpoint(k, net, B, **epkw)
    return k, net, ea, eb


def collect_inbox(endpoint, ref=0, backlog=None):
    got = []
    endpoint.register_inbox(ref, lambda payload, addr: got.append(payload),
                            backlog=backlog)
    return got


def wire_log(net):
    log = []
    net.wire_taps.append(lambda t, d: log.append((t, d)))
    return log


def drop_first_tx(*seqs):
    remaining = list(seqs)

    def flt(d):
        if d.header.get("kind") == KIND_DATA and d.header["seq"] in remaining:
            remaining.remove(d.header["seq"])
            return True
        return False

    return flt


def data_frames(log):
    return [d for _, d in log if d.header.get("kind") == KIND_DATA]


# -- window gating -----------------------------------------------------------


def test_small_window_queues_excess_and_preserves_fifo():
    """With cwnd fitting one packet, only one DATA frame leaves at t=0;
    the rest queue behind the window, stall exactly once, resume exactly
    once, and still arrive in order with every receipt confirmed."""
    k, net, ea, eb = make_pair(rto_initial=0.5, cwnd_initial=PACKET + 10)
    got = collect_inbox(eb)
    log = wire_log(net)
    receipts = [ea.send(B.inbox(0), f"{i:0100d}", channel="c")
                for i in range(6)]
    at_t0 = data_frames(log)
    assert len(at_t0) == 1 and at_t0[0].header["seq"] == 0
    assert ea.stats.window_stalls == 1
    k.run()
    assert got == [f"{i:0100d}" for i in range(6)]
    assert ea.stats.window_resumes == 1
    assert all(r.is_confirmed for r in receipts)
    stream = ea._send_streams[(B, "c")]
    assert stream.in_flight == 0 and not stream.queue


def test_send_never_exceeds_window_at_transmission():
    """Every DATA first-transmission leaves with bytes-in-flight (itself
    included) within min(cwnd, rwnd) at that instant."""
    k, net, ea, eb = make_pair(rto_initial=0.5, cwnd_initial=2 * PACKET)
    collect_inbox(eb)
    stream_box = {}
    seen = set()

    def tap(t, d):
        if d.header.get("kind") != KIND_DATA:
            return
        n = len(d.header.get("parts", ())) or 1
        first = d.header["seq"] not in seen
        seen.update(range(d.header["seq"], d.header["seq"] + n))
        if first and stream_box:
            stream = stream_box["s"]
            assert stream.in_flight <= stream.window() + 1e-9

    net.wire_taps.append(tap)
    for i in range(20):
        ea.send(B.inbox(0), PAYLOAD, channel="c")
        stream_box["s"] = ea._send_streams[(B, "c")]
    k.run()
    assert eb.stats.delivered == 20


def test_window_reopen_batches_queued_payloads():
    """Payloads queued behind a closed window coalesce into one batched
    DATA frame (``parts`` framing) when the window reopens, and the
    receiver unpacks them in order."""
    k, net, ea, eb = make_pair(rto_initial=0.5, cwnd_initial=PACKET + 10)
    got = collect_inbox(eb)
    log = wire_log(net)
    for i in range(6):
        ea.send(B.inbox(0), f"{i:0100d}", channel="c")
    k.run()
    assert got == [f"{i:0100d}" for i in range(6)]
    assert ea.stats.batches_sent >= 1
    assert ea.stats.batched_payloads >= 2
    batched = [d for d in data_frames(log) if "parts" in d.header]
    assert batched, "window reopening must have coalesced queued payloads"
    for d in batched:
        # Consecutive seqs ride implicitly: seq is the base, one part per
        # payload, and the coalesced frame respects the byte ceiling.
        assert len(d.header["parts"]) >= 2
        assert d.size <= ea.batch_bytes + HEADER_OVERHEAD


def test_batch_respects_byte_ceiling():
    """batch_bytes splits a large backlog into several frames instead of
    one jumbo datagram."""
    k, net, ea, eb = make_pair(rto_initial=0.5, cwnd_initial=PACKET + 10,
                               batch_bytes=2 * PACKET + 10)
    got = collect_inbox(eb)
    log = wire_log(net)
    for i in range(9):
        ea.send(B.inbox(0), f"{i:0100d}", channel="c")
    k.run()
    assert got == [f"{i:0100d}" for i in range(9)]
    for d in data_frames(log):
        parts = d.header.get("parts")
        if parts:
            assert len(parts) <= 2


# -- receiver-advertised window ----------------------------------------------


def test_acks_advertise_receive_window_minus_backlog():
    """ACKs carry rwnd = recv_window - inbox backlog - reorder buffer;
    the sender records the advertisement."""
    backlog = [0]
    k, net, ea, eb = make_pair(rto_initial=0.5, recv_window=1000)
    got = collect_inbox(eb, backlog=lambda: backlog[0])
    log = wire_log(net)
    eb_inboxes = got  # delivered payloads land here; backlog is ours to fake
    ea.send(B.inbox(0), PAYLOAD, channel="c")
    backlog[0] = 400
    k.run()
    acks = [d.header for _, d in log if d.header.get("kind") == KIND_ACK]
    assert acks and all("rwnd" in h for h in acks)
    assert acks[-1]["rwnd"] == 1000 - 400
    assert ea._send_streams[(B, "c")].rwnd == 600
    assert eb_inboxes == [PAYLOAD]


def test_zero_window_probes_then_resumes_on_window_update():
    """A zero advertisement halts the sender; persist probes keep asking
    and an unsolicited window-update ACK on drain reopens the stream."""
    backlog = [300]
    k, net, ea, eb = make_pair(rto_initial=0.1, recv_window=300,
                               cwnd_initial=PACKET + 10)
    got = collect_inbox(eb, backlog=lambda: backlog[0])
    log = wire_log(net)
    r0 = ea.send(B.inbox(0), PAYLOAD, channel="c")
    r1 = ea.send(B.inbox(0), PAYLOAD, channel="c")

    def drain():
        backlog[0] = 0
        eb.inbox_drained(0)

    k.call_later(1.0, drain)
    k.run()
    assert got == [PAYLOAD, PAYLOAD]
    assert r0.is_confirmed and r1.is_confirmed
    assert ea.stats.window_probes >= 1
    assert eb.stats.window_updates >= 1
    probes = [d for _, d in log if d.header.get("kind") == KIND_PROBE]
    assert probes and all(d.header["ch"] == "c" for d in probes)
    zero_acks = [d.header for _, d in log
                 if d.header.get("kind") == KIND_ACK
                 and d.header.get("rwnd") == 0]
    assert zero_acks, "the closed window must have been advertised"
    # Delivery of the second message waited for the t=1.0 drain.
    deliveries = [t for t, d in log if d.header.get("kind") == KIND_DATA
                  and d.header["seq"] == 1]
    assert deliveries and deliveries[0] >= 1.0


def test_zero_window_probe_budget_breaks_channel():
    """A receiver that never drains exhausts the persist budget: the
    channel is declared broken, queued receipts fail, later sends fail
    fast, and the run still quiesces."""
    k, net, ea, eb = make_pair(rto_initial=0.1, max_retries=3,
                               recv_window=300, cwnd_initial=PACKET + 10)
    collect_inbox(eb, backlog=lambda: 300)
    r0 = ea.send(B.inbox(0), PAYLOAD, channel="c")
    r1 = ea.send(B.inbox(0), PAYLOAD, channel="c")
    k.run()
    assert r0.is_confirmed  # transmitted before the zero advertisement
    assert r1.is_failed
    assert isinstance(r1.confirmed.value, DeliveryTimeout)
    assert ea.stats.gave_up == 1
    assert ea.stats.window_probes == 3
    r2 = ea.send(B.inbox(0), PAYLOAD, channel="c")
    assert r2.is_failed
    k.run()


# -- congestion response ------------------------------------------------------


def test_cwnd_halves_on_fast_retransmit():
    k, net, ea, eb = make_pair(
        rto_initial=5.0, faults=FaultPlan(drop_filter=drop_first_tx(0)))
    got = collect_inbox(eb)
    for i in range(8):
        ea.send(B.inbox(0), f"{i:0100d}", channel="c")
    k.run()
    assert got == [f"{i:0100d}" for i in range(8)]
    assert ea.stats.fast_retransmits == 1
    assert ea.stats.cwnd_halvings == 1
    assert ea.stats.cwnd_collapses == 0
    stream = ea._send_streams[(B, "c")]
    assert stream.cwnd < ea.cwnd_initial


def test_cwnd_collapses_on_rto():
    k, net, ea, eb = make_pair(
        rto_initial=0.1, faults=FaultPlan(drop_filter=drop_first_tx(0)))
    got = collect_inbox(eb)
    ea.send(B.inbox(0), "0" * 100, channel="c")
    ea.send(B.inbox(0), "1" * 100, channel="c")
    k.run()
    assert got == ["0" * 100, "1" * 100]
    assert ea.stats.cwnd_collapses == 1
    assert ea.stats.cwnd_halvings == 0


def test_flow_control_off_is_transmit_immediately():
    """The ablation baseline: no queueing, no stalls, no window state on
    the wire."""
    k, net, ea, eb = make_pair(rto_initial=0.5, flow_control=False)
    got = collect_inbox(eb)
    log = wire_log(net)
    for i in range(10):
        ea.send(B.inbox(0), PAYLOAD, channel="c")
    assert len(data_frames(log)) == 10  # all on the wire at t=0
    k.run()
    assert len(got) == 10
    assert ea.stats.window_stalls == 0
    assert all("rwnd" not in d.header for _, d in log
               if d.header.get("kind") == KIND_ACK)


# -- backpressure upward ------------------------------------------------------


def test_writable_fires_immediately_when_nothing_queued():
    k, net, ea, eb = make_pair(rto_initial=0.5)
    assert ea.writable(B, "c").triggered  # stream does not even exist yet
    k2, net2, ea2, eb2 = make_pair(rto_initial=0.5, flow_control=False)
    assert ea2.writable(B, "c").triggered


def test_writable_parks_until_queue_drains():
    k, net, ea, eb = make_pair(rto_initial=0.5, cwnd_initial=PACKET + 10)
    collect_inbox(eb)
    for i in range(4):
        ea.send(B.inbox(0), PAYLOAD, channel="c")
    ev = ea.writable(B, "c")
    assert not ev.triggered
    woke = []
    k.process(iter_wait(ev, woke, k))
    k.run()
    assert woke and woke[0] > 0.0


def iter_wait(ev, out, k):
    yield ev
    out.append(k.now)


# -- close-while-blocked regression ------------------------------------------


def test_close_fails_queued_receipts_immediately():
    """Endpoint.close must fail *queued* (never-transmitted) receipts as
    promptly as in-flight ones — a blocked window is not an excuse to
    hang the waiter until some timer notices."""
    k, net, ea, eb = make_pair(rto_initial=0.5, cwnd_initial=PACKET + 10)
    collect_inbox(eb)
    receipts = [ea.send(B.inbox(0), PAYLOAD, channel="c") for _ in range(4)]
    ev = ea.writable(B, "c")
    assert not ev.triggered
    ea.close()
    assert all(r.is_failed for r in receipts)
    assert ev.triggered and not ev.ok  # AddressError, pre-defused
    k.run()  # quiesces; stray timers on the closed endpoint are inert


def test_close_releases_blocked_send_flow():
    """A process parked in Outbox.send_flow behind a zero window gets
    AddressError at the instant of Endpoint.close — not after an RTO,
    not never."""
    k = Kernel(seed=0)
    net = DatagramNetwork(k, latency=ConstantLatency(0.02))
    ea = Endpoint(k, net, A, rto_initial=0.1)
    eb = Endpoint(k, net, B, rto_initial=0.1, recv_window=200)
    inbox = Inbox(k, eb, 0)  # nobody ever receives: backlog only grows
    outbox = Outbox(k, ea, 0)
    outbox.add(inbox.address)
    sent_at, failed_at = [], []

    def sender():
        try:
            while True:
                yield from outbox.send_flow(Text("x" * 300))
                sent_at.append(k.now)
        except AddressError:
            failed_at.append(k.now)

    k.process(sender())
    k.call_later(2.0, ea.close)
    k.run()
    assert sent_at, "the first sends must go through before the window closes"
    assert failed_at == [2.0]
    assert max(sent_at) < 2.0
    assert len(inbox) >= 1


def test_substrate_teardown_races_endpoint_close():
    """Closing the asyncio substrate before the endpoint must not blow
    up when close() fails the queued receipts (the loop is gone; the
    failure events are dropped, their values stay readable)."""
    substrate = AsyncioSubstrate(seed=0)
    try:
        ea = Endpoint(substrate, substrate.datagrams, A,
                      rto_initial=0.1, cwnd_initial=PACKET + 10)
        eb = Endpoint(substrate, substrate.datagrams, B, rto_initial=0.1)
        eb.register_inbox(0, lambda payload, addr: None)
        receipts = [ea.send(B.inbox(0), PAYLOAD, channel="c")
                    for _ in range(4)]
        assert any(not r.confirmed.triggered for r in receipts)
    finally:
        substrate.close()
    ea.close()  # after substrate close: must be a clean no-crash path
    assert all(r.is_failed for r in receipts)
