"""Unit tests for node and inbox addresses."""

import pytest

from repro.errors import AddressError
from repro.net import InboxAddress, NodeAddress


def test_node_address_str_roundtrip():
    a = NodeAddress("caltech.edu", 5000)
    assert str(a) == "caltech.edu:5000"
    assert NodeAddress.parse(str(a)) == a


def test_node_address_validation():
    with pytest.raises(AddressError):
        NodeAddress("", 80)
    with pytest.raises(AddressError):
        NodeAddress("host:bad", 80)
    with pytest.raises(AddressError):
        NodeAddress("ok.edu", 0)
    with pytest.raises(AddressError):
        NodeAddress("ok.edu", 70000)


def test_node_address_parse_errors():
    with pytest.raises(AddressError):
        NodeAddress.parse("no-port")
    with pytest.raises(AddressError):
        NodeAddress.parse("host:notanint")


def test_node_addresses_are_hashable_and_ordered():
    a = NodeAddress("a.edu", 1)
    b = NodeAddress("b.edu", 1)
    assert len({a, b, NodeAddress("a.edu", 1)}) == 2
    assert a < b


def test_inbox_address_with_int_ref():
    a = NodeAddress("rice.edu", 4000).inbox(3)
    assert a.ref == 3
    assert not a.is_named
    assert str(a) == "rice.edu:4000/3"
    assert InboxAddress.parse(str(a)) == a


def test_inbox_address_with_name():
    a = NodeAddress("rice.edu", 4000).inbox("students")
    assert a.is_named
    assert InboxAddress.parse("rice.edu:4000/students") == a


def test_inbox_address_wire_roundtrip():
    a = NodeAddress("utk.edu", 1234).inbox("grades")
    assert InboxAddress.from_wire(a.to_wire()) == a


def test_inbox_address_validation():
    node = NodeAddress("x.edu", 1)
    with pytest.raises(AddressError):
        InboxAddress(node, "")
    with pytest.raises(AddressError):
        InboxAddress(node, 1.5)  # type: ignore[arg-type]
    with pytest.raises(AddressError):
        InboxAddress(node, True)  # type: ignore[arg-type]
    with pytest.raises(AddressError):
        InboxAddress.parse("x.edu:1")  # missing ref
