"""Unit tests for fault injection."""

import random

import pytest

from repro.net import FaultPlan, NodeAddress

A = NodeAddress("a.edu", 1)
B = NodeAddress("b.edu", 1)


def test_default_plan_is_faultless():
    plan = FaultPlan()
    r = random.Random(0)
    for _ in range(50):
        assert plan.copies(r, A, B) == [0.0]


def test_drop_probability_respected():
    plan = FaultPlan(drop_prob=0.5)
    r = random.Random(1)
    outcomes = [plan.copies(r, A, B) for _ in range(2000)]
    dropped = sum(1 for c in outcomes if not c)
    assert 850 < dropped < 1150


def test_duplicate_probability_respected():
    plan = FaultPlan(duplicate_prob=0.3)
    r = random.Random(2)
    outcomes = [plan.copies(r, A, B) for _ in range(2000)]
    dups = sum(1 for c in outcomes if len(c) == 2)
    assert 480 < dups < 720


def test_reorder_jitter_bounds():
    plan = FaultPlan(reorder_jitter=0.25)
    r = random.Random(3)
    for _ in range(200):
        for extra in plan.copies(r, A, B):
            assert 0.0 <= extra <= 0.25


def test_partition_blocks_and_heals():
    plan = FaultPlan()
    r = random.Random(4)
    plan.partition(A, B)
    assert plan.copies(r, A, B) == []
    assert plan.copies(r, B, A) == []
    plan.heal(A, B)
    assert plan.copies(r, A, B) == [0.0]


def test_unidirectional_partition():
    plan = FaultPlan()
    r = random.Random(5)
    plan.partition(A, B, bidirectional=False)
    assert plan.copies(r, A, B) == []
    assert plan.copies(r, B, A) == [0.0]


def test_parameter_validation():
    with pytest.raises(ValueError):
        FaultPlan(drop_prob=1.5)
    with pytest.raises(ValueError):
        FaultPlan(duplicate_prob=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(reorder_jitter=-1)
