"""Property tests for the sliding-window layer, on both substrates.

Two invariants, under randomized fault schedules and window geometries:

* **Window safety** — at the instant any packet is *first* put on the
  wire, the sender's bytes-in-flight (that packet included) never
  exceed ``min(cwnd, rwnd)`` as known at that moment. Retransmissions
  are exempt: after a congestion cut, in-flight may legitimately sit
  above the freshly shrunk window until ACKs drain it (exactly as in
  TCP), so the admission check binds first transmissions only.
* **Window liveness** — flow control never costs correctness: with any
  loss/duplication/reordering schedule and any window geometry (down to
  windows smaller than a single packet), every message is still
  delivered exactly once, per-channel FIFO, and every receipt confirms.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.net import ConstantLatency, FaultPlan, NodeAddress
from repro.net.transport import KIND_DATA, Endpoint
from repro.runtime import AsyncioSubstrate, SimSubstrate

A = NodeAddress("a.edu", 1000)
B = NodeAddress("b.edu", 1000)

fault_plans = st.builds(
    FaultPlan,
    drop_prob=st.floats(min_value=0.0, max_value=0.4),
    duplicate_prob=st.floats(min_value=0.0, max_value=0.3),
    reorder_jitter=st.floats(min_value=0.0, max_value=0.2),
)

#: Window geometries from "smaller than one packet" (the cwnd floor and
#: zero-window machinery carry the stream) up to "never binds".
cwnd_sizes = st.sampled_from([64, 150, 400, 64 * 1024])
recv_windows = st.sampled_from([100, 300, 64 * 1024])


class WindowRecorder:
    """Wire tap asserting the admission invariant at first transmission."""

    def __init__(self):
        self.streams = {}
        self.first_seen = set()
        self.violations = []

    def watch(self, endpoint):
        self._sender = endpoint

    def __call__(self, t, datagram):
        header = datagram.header
        if header.get("kind") != KIND_DATA:
            return
        key = (header["ch"], header["seq"])
        n = len(header.get("parts", ())) or 1
        fresh = key not in self.first_seen
        for i in range(n):
            self.first_seen.add((header["ch"], header["seq"] + i))
        if not fresh:
            return  # retransmission: exempt (see module docstring)
        stream = self._sender._send_streams.get((datagram.dst, header["ch"]))
        if stream is None:
            return
        if stream.in_flight > stream.window() + 1e-9:
            self.violations.append(
                (t, key, stream.in_flight, stream.window()))


def run_flow_stream(substrate, n_messages, n_channels, *, cwnd, rwnd,
                    wall_timeout=None):
    """Send ``n_messages`` per channel A->B with flow control bound by
    the given window geometry; return (received, receipts, recorder)."""
    recorder = WindowRecorder()
    ea = Endpoint(substrate, substrate.datagrams, A,
                  rto_initial=0.05, max_retries=80,
                  cwnd_initial=cwnd, recv_window=rwnd)
    eb = Endpoint(substrate, substrate.datagrams, B,
                  rto_initial=0.05, max_retries=80,
                  cwnd_initial=cwnd, recv_window=rwnd)
    recorder.watch(ea)
    substrate.datagrams.wire_taps.append(recorder)
    received = {f"c{c}": [] for c in range(n_channels)}
    eb.register_inbox(0, lambda payload, addr: received[
        payload.split("|")[0]].append(payload))
    receipts = []
    for i in range(n_messages):
        for c in range(n_channels):
            receipts.append(ea.send(B.inbox(0), f"c{c}|{i}",
                                    channel=f"c{c}"))
    done = substrate.all_of([r.confirmed for r in receipts])
    if wall_timeout is not None:
        substrate.run(done, wall_timeout=wall_timeout)
        substrate.run(wall_timeout=wall_timeout)  # drain stray acks
    else:
        substrate.run()
    return received, receipts, recorder


def assert_flow_invariants(received, receipts, recorder, n_messages,
                           n_channels):
    assert recorder.violations == []
    for c in range(n_channels):
        assert received[f"c{c}"] == [f"c{c}|{i}" for i in range(n_messages)]
    assert all(r.is_confirmed for r in receipts)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31),
       faults=fault_plans,
       n_messages=st.integers(min_value=1, max_value=30),
       n_channels=st.integers(min_value=1, max_value=3),
       cwnd=cwnd_sizes, rwnd=recv_windows)
def test_window_safety_and_liveness_on_sim(seed, faults, n_messages,
                                           n_channels, cwnd, rwnd):
    substrate = SimSubstrate(seed=seed, latency=ConstantLatency(0.01),
                             faults=faults)
    try:
        received, receipts, recorder = run_flow_stream(
            substrate, n_messages, n_channels, cwnd=cwnd, rwnd=rwnd)
    finally:
        substrate.close()
    assert_flow_invariants(received, receipts, recorder, n_messages,
                           n_channels)


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**31),
       drop=st.floats(min_value=0.0, max_value=0.25),
       n_messages=st.integers(min_value=1, max_value=8),
       cwnd=st.sampled_from([150, 400]))
def test_window_safety_and_liveness_on_asyncio(seed, drop, n_messages, cwnd):
    # Real sockets: fewer/smaller examples (each costs wall-clock time),
    # a wall timeout so nothing can hang, tight windows so the stream
    # actually stalls and resumes over real UDP.
    substrate = AsyncioSubstrate(seed=seed,
                                 faults=FaultPlan(drop_prob=drop))
    try:
        received, receipts, recorder = run_flow_stream(
            substrate, n_messages, n_channels=2, cwnd=cwnd, rwnd=300,
            wall_timeout=30)
    finally:
        substrate.close()
    assert_flow_invariants(received, receipts, recorder, n_messages,
                           n_channels=2)
