"""Unit tests for the loss-recovery refinements of the ordering layer:
selective acknowledgements, fast retransmit, delayed and piggybacked
ACKs, and endpoint close semantics."""

import pytest

from repro.errors import AddressError, DeliveryTimeout
from repro.net import (
    UNRELIABLE,
    ConstantLatency,
    DatagramNetwork,
    Endpoint,
    FaultPlan,
    NodeAddress,
)
from repro.net.transport import KIND_ACK, KIND_DATA, SACK_MAX_RANGES
from repro.sim import Kernel

A = NodeAddress("a.edu", 1000)
B = NodeAddress("b.edu", 1000)


def make_pair(seed=0, *, latency=None, faults=None, **epkw):
    k = Kernel(seed=seed)
    net = DatagramNetwork(k, latency=latency or ConstantLatency(0.02),
                          faults=faults)
    ea = Endpoint(k, net, A, **epkw)
    eb = Endpoint(k, net, B, **epkw)
    return k, net, ea, eb


def collect_inbox(endpoint, ref=0):
    got = []
    endpoint.register_inbox(ref, lambda payload, addr: got.append(payload))
    return got


def wire_log(net):
    log = []
    net.wire_taps.append(lambda t, d: log.append((t, d)))
    return log


def drop_first_tx(*seqs):
    """Fault filter: lose one transmission of DATA per listed seq, in
    order of appearance (list a seq twice to also kill its first
    retransmission)."""
    remaining = list(seqs)

    def flt(d):
        if d.header.get("kind") == KIND_DATA and d.header["seq"] in remaining:
            remaining.remove(d.header["seq"])
            return True
        return False

    return flt


# -- selective acknowledgements ---------------------------------------------


def test_acks_advertise_bounded_sack_ranges():
    """An ACK behind a gap carries the reordering buffer as inclusive
    ranges, never more than SACK_MAX_RANGES of them."""
    k, net, ea, eb = make_pair(
        seed=13, latency=ConstantLatency(0.01), rto_initial=5.0,
        faults=FaultPlan(drop_prob=0.4))
    collect_inbox(eb)
    log = wire_log(net)
    for i in range(30):
        ea.send(B.inbox(0), str(i), channel="c")
    k.run(until=0.5)  # before any RTO: only first-transmissions + acks
    sacks = [d.header["sack"] for _, d in log
             if d.header.get("kind") == KIND_ACK and "sack" in d.header]
    assert sacks, "lossy run must produce out-of-order ACKs"
    for ranges in sacks:
        assert 1 <= len(ranges) <= SACK_MAX_RANGES
        for start, end in ranges:
            assert start <= end
        # Ranges are disjoint, ascending, non-adjacent (maximal runs).
        for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
            assert e1 + 1 < s2
    k.run()


def test_sack_suppresses_retransmission_of_buffered_packets():
    """With one hole persisting past the RTO (first copy and its fast
    retransmission both lost), only the hole goes back on the wire; the
    SACKed tail's timers are suppressed."""
    k, net, ea, eb = make_pair(latency=ConstantLatency(0.02),
                               rto_initial=0.2,
                               faults=FaultPlan(drop_filter=drop_first_tx(2, 2)))
    got = collect_inbox(eb)
    log = wire_log(net)
    n = 20
    for i in range(n):
        ea.send(B.inbox(0), str(i), channel="c")
    k.run()
    assert got == [str(i) for i in range(n)]
    retransmitted = {}
    for _, d in log:
        if d.header.get("kind") == KIND_DATA:
            retransmitted[d.header["seq"]] = \
                retransmitted.get(d.header["seq"], 0) + 1
    spurious = {s for s, n_tx in retransmitted.items() if n_tx > 1 and s != 2}
    assert spurious == set(), "only the dropped packet may be retransmitted"
    assert ea.stats.sacked_suppressed > 0
    assert ea.stats.data_retransmitted <= 2


def test_cumulative_only_mode_retransmits_the_whole_tail():
    """The ablation baseline (sack=False, ack_delay=0) reproduces the
    classic pathology: everything behind a hole is retransmitted."""
    def run(**epkw):
        k, net, ea, eb = make_pair(latency=ConstantLatency(0.02),
                                   rto_initial=0.2,
                                   faults=FaultPlan(drop_filter=drop_first_tx(2)), **epkw)
        got = collect_inbox(eb)
        for i in range(20):
            ea.send(B.inbox(0), str(i), channel="c")
        k.run()
        assert got == [str(i) for i in range(20)]
        return ea.stats

    cum = run(sack=False, ack_delay=0.0)
    sel = run()
    assert cum.fast_retransmits == 0 and cum.sacked_suppressed == 0
    assert cum.data_retransmitted > sel.data_retransmitted


# -- fast retransmit ---------------------------------------------------------


def test_fast_retransmit_fires_before_rto():
    """Duplicate cumulative ACKs from packets behind the hole trigger a
    retransmission long before the (huge) RTO expires."""
    k, net, ea, eb = make_pair(latency=ConstantLatency(0.01),
                               rto_initial=30.0,
                               faults=FaultPlan(drop_filter=drop_first_tx(2)))
    arrivals = []
    eb.register_inbox(0, lambda p, a: arrivals.append((k.now, p)))
    for i in range(10):
        ea.send(B.inbox(0), str(i), channel="c")
    k.run()
    assert [p for _, p in arrivals] == [str(i) for i in range(10)]
    assert arrivals[-1][0] < 1.0, "recovery must not wait for the 30s RTO"
    assert ea.stats.fast_retransmits == 1


def test_fast_retransmit_respects_dup_ack_threshold():
    k, net, ea, eb = make_pair(latency=ConstantLatency(0.01),
                               rto_initial=30.0, dup_ack_threshold=50,
                               faults=FaultPlan(drop_filter=drop_first_tx(2)))
    collect_inbox(eb)
    for i in range(10):
        ea.send(B.inbox(0), str(i), channel="c")
    k.run(until=5.0)
    # Only 7 packets follow the hole -> at most 7 dup acks: below the
    # threshold of 50, so the hole waits for its RTO.
    assert ea.stats.fast_retransmits == 0


def test_dup_ack_threshold_validation():
    k = Kernel()
    net = DatagramNetwork(k)
    with pytest.raises(ValueError):
        Endpoint(k, net, A, dup_ack_threshold=0)
    with pytest.raises(ValueError):
        Endpoint(k, net, A, ack_delay=-0.1)


def test_fifo_exactly_once_with_sack_under_heavy_faults():
    k, net, ea, eb = make_pair(
        seed=23, latency=ConstantLatency(0.01), rto_initial=0.05,
        faults=FaultPlan(drop_prob=0.3, duplicate_prob=0.2,
                         reorder_jitter=0.1))
    got = collect_inbox(eb)
    n = 80
    for i in range(n):
        ea.send(B.inbox(0), str(i), channel="c")
    k.run()
    assert got == [str(i) for i in range(n)]


# -- delayed / piggybacked acks ----------------------------------------------


def test_delayed_acks_coalesce_a_burst():
    """A same-instant burst is acknowledged with two ACK datagrams: one
    immediate, one closing the delayed-ack window."""
    k, net, ea, eb = make_pair(latency=ConstantLatency(0.02))
    got = collect_inbox(eb)
    n = 50
    for i in range(n):
        ea.send(B.inbox(0), str(i), channel="c")
    k.run()
    assert got == [str(i) for i in range(n)]
    assert eb.stats.acks_sent == 2
    assert eb.stats.acks_delayed == n - 1


def test_solitary_packet_acked_immediately():
    """Delayed acks never add latency to a lone packet: the quiet-window
    rule acks the first arrival on the spot."""
    k, net, ea, eb = make_pair(latency=ConstantLatency(0.02))
    collect_inbox(eb)
    receipt = ea.send(B.inbox(0), "m", channel="c")
    k.run()
    assert receipt.confirmed.value == pytest.approx(0.04)
    assert eb.stats.acks_delayed == 0


def test_pending_ack_piggybacks_on_reverse_data():
    """When the receiver itself sends DATA to the peer inside the
    delayed-ack window, the owed ACK rides along instead of flying
    separately."""
    k, net, ea, eb = make_pair(latency=ConstantLatency(0.02))
    got_b = collect_inbox(eb)
    got_a = collect_inbox(ea)

    def ping_pong():
        for i in range(10):
            ea.send(B.inbox(0), f"a{i}a", channel="ab")
            ea.send(B.inbox(0), f"a{i}b", channel="ab")
            yield k.timeout(0.02)
            # eb now owes a delayed ack for the second copy; its own send
            # (inside the window) must carry it.
            eb.send(A.inbox(0), f"b{i}", channel="ba")
            yield k.timeout(0.2)

    k.process(ping_pong())
    k.run()
    assert got_b == [f"a{i}{h}" for i in range(10) for h in "ab"]
    assert got_a == [f"b{i}" for i in range(10)]
    assert eb.stats.acks_piggybacked > 0


def test_ack_delay_zero_disables_coalescing():
    k, net, ea, eb = make_pair(latency=ConstantLatency(0.02), ack_delay=0.0)
    collect_inbox(eb)
    for i in range(20):
        ea.send(B.inbox(0), str(i), channel="c")
    k.run()
    assert eb.stats.acks_sent == 20
    assert eb.stats.acks_delayed == 0


# -- endpoint close -----------------------------------------------------------


def test_closed_endpoint_emits_no_further_datagrams():
    """Regression: armed retransmission timers on a closed endpoint used
    to keep injecting datagrams until max_retries exhausted."""
    k, net, ea, eb = make_pair(rto_initial=0.05, max_retries=20,
                               faults=FaultPlan(drop_prob=1.0))
    collect_inbox(eb)
    ea.send(B.inbox(0), "m", channel="c")
    k.run(until=0.12)  # a couple of retransmissions happen
    ea.close()
    closed_at = k.now
    emitted_after_close = []
    net.wire_taps.append(
        lambda t, d: emitted_after_close.append(d) if d.src == A else None)
    k.run()
    assert emitted_after_close == []
    assert k.now <= closed_at + 0.2, "no timer tail may linger after close"


def test_close_fails_outstanding_receipts():
    k, net, ea, eb = make_pair(rto_initial=1.0,
                               faults=FaultPlan(drop_prob=1.0))
    collect_inbox(eb)
    receipts = [ea.send(B.inbox(0), str(i), channel="c") for i in range(3)]
    ea.close()
    failures = []

    def waiter(r):
        try:
            yield r.confirmed
        except DeliveryTimeout as exc:
            failures.append(exc)

    for r in receipts:
        k.process(waiter(r))
    k.run()
    assert len(failures) == 3
    assert all(r.is_failed for r in receipts)


def test_send_on_closed_endpoint_raises():
    k, net, ea, eb = make_pair()
    ea.close()
    with pytest.raises(AddressError):
        ea.send(B.inbox(0), "m", channel="c")
    k2, net2, ec, ed = make_pair(delivery=UNRELIABLE)
    ec.close()
    with pytest.raises(AddressError):
        ec.send(B.inbox(0), "m", channel="c")


def test_close_is_idempotent_and_cancels_delayed_acks():
    k, net, ea, eb = make_pair(latency=ConstantLatency(0.02))
    collect_inbox(eb)
    for i in range(10):
        ea.send(B.inbox(0), str(i), channel="c")
    k.run(until=0.02)  # burst has just arrived; delayed ack armed on eb
    eb.close()
    eb.close()
    emitted_after_close = []
    net.wire_taps.append(
        lambda t, d: emitted_after_close.append(d) if d.src == B else None)
    k.run()
    assert emitted_after_close == []
