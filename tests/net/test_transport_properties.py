"""Property-based tests: FIFO exactly-once holds under arbitrary fault
schedules — the reproduction's central transport invariant."""

from hypothesis import given, settings, strategies as st

from repro.net import (
    ConstantLatency,
    DatagramNetwork,
    Endpoint,
    FaultPlan,
    LogNormalLatency,
    NodeAddress,
    UniformLatency,
)
from repro.sim import Kernel

A = NodeAddress("a.edu", 1000)
B = NodeAddress("b.edu", 1000)

fault_plans = st.builds(
    FaultPlan,
    drop_prob=st.floats(min_value=0.0, max_value=0.6),
    duplicate_prob=st.floats(min_value=0.0, max_value=0.5),
    reorder_jitter=st.floats(min_value=0.0, max_value=0.5),
)

latencies = st.one_of(
    st.floats(min_value=0.001, max_value=0.2).map(ConstantLatency),
    st.tuples(st.floats(min_value=0.001, max_value=0.05),
              st.floats(min_value=0.05, max_value=0.4)).map(
        lambda lo_hi: UniformLatency(*lo_hi)),
    st.floats(min_value=0.005, max_value=0.1).map(
        lambda m: LogNormalLatency(median=m, sigma=0.8)),
)


#: Every protocol variant the endpoint speaks: pure cumulative ACKs, the
#: SACK/fast-retransmit default, and assorted delayed-ack windows and
#: duplicate-ACK thresholds. The FIFO exactly-once invariant must be
#: indifferent to all of them.
recovery_modes = st.fixed_dictionaries({
    "sack": st.booleans(),
    "ack_delay": st.sampled_from([0.0, 0.005, 0.02, 0.1]),
    "dup_ack_threshold": st.integers(min_value=1, max_value=5),
})


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31),
       faults=fault_plans, latency=latencies,
       n_messages=st.integers(min_value=1, max_value=40),
       n_channels=st.integers(min_value=1, max_value=3),
       recovery=recovery_modes)
def test_fifo_exactly_once_under_arbitrary_faults(
        seed, faults, latency, n_messages, n_channels, recovery):
    kernel = Kernel(seed=seed)
    net = DatagramNetwork(kernel, latency=latency, faults=faults)
    ea = Endpoint(kernel, net, A, rto_initial=0.1, max_retries=80, **recovery)
    eb = Endpoint(kernel, net, B, rto_initial=0.1, max_retries=80, **recovery)
    received: dict[str, list[str]] = {f"c{c}": [] for c in range(n_channels)}
    eb.register_inbox(0, lambda payload, addr: received[
        payload.split("|")[0]].append(payload))
    for i in range(n_messages):
        for c in range(n_channels):
            ea.send(B.inbox(0), f"c{c}|{i}", channel=f"c{c}")
    kernel.run()
    for c in range(n_channels):
        expected = [f"c{c}|{i}" for i in range(n_messages)]
        assert received[f"c{c}"] == expected
    assert ea.stats.gave_up == 0


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31),
       drop=st.floats(min_value=0.0, max_value=0.5))
def test_no_phantom_messages(seed, drop):
    """The layer never delivers anything that was not sent, and never
    delivers out of thin air after duplication."""
    kernel = Kernel(seed=seed)
    net = DatagramNetwork(kernel, latency=ConstantLatency(0.01),
                          faults=FaultPlan(drop_prob=drop,
                                           duplicate_prob=0.4))
    ea = Endpoint(kernel, net, A, rto_initial=0.05)
    eb = Endpoint(kernel, net, B, rto_initial=0.05)
    sent = [f"m{i}" for i in range(20)]
    got: list[str] = []
    eb.register_inbox(0, lambda p, a: got.append(p))
    for p in sent:
        ea.send(B.inbox(0), p, channel="c")
    kernel.run()
    assert got == sent  # exactly the sent sequence, no extras, in order


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_bidirectional_independence(seed):
    """Traffic in one direction never corrupts the other."""
    kernel = Kernel(seed=seed)
    net = DatagramNetwork(kernel, latency=UniformLatency(0.01, 0.2),
                          faults=FaultPlan(drop_prob=0.25,
                                           reorder_jitter=0.1))
    ea = Endpoint(kernel, net, A, rto_initial=0.1, max_retries=80)
    eb = Endpoint(kernel, net, B, rto_initial=0.1, max_retries=80)
    got_a, got_b = [], []
    ea.register_inbox(0, lambda p, a: got_a.append(p))
    eb.register_inbox(0, lambda p, a: got_b.append(p))
    for i in range(15):
        ea.send(B.inbox(0), f"ab{i}", channel="x")
        eb.send(A.inbox(0), f"ba{i}", channel="x")
    kernel.run()
    assert got_b == [f"ab{i}" for i in range(15)]
    assert got_a == [f"ba{i}" for i in range(15)]


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31),
       faults=fault_plans,
       n_messages=st.integers(min_value=1, max_value=40))
def test_sack_mode_never_beats_exactly_once(seed, faults, n_messages):
    """SACK + fast retransmit + delayed acks change *when* packets move,
    never *what* arrives: both modes deliver the identical sequence."""
    def run(sack):
        kernel = Kernel(seed=seed)
        net = DatagramNetwork(kernel, latency=ConstantLatency(0.02),
                              faults=faults)
        ea = Endpoint(kernel, net, A, rto_initial=0.1, max_retries=80,
                      sack=sack, ack_delay=0.01 if sack else 0.0)
        eb = Endpoint(kernel, net, B, rto_initial=0.1, max_retries=80,
                      sack=sack, ack_delay=0.01 if sack else 0.0)
        got: list[str] = []
        eb.register_inbox(0, lambda p, a: got.append(p))
        for i in range(n_messages):
            ea.send(B.inbox(0), f"m{i}", channel="c")
        kernel.run()
        return got, ea.stats

    got_cum, _ = run(sack=False)
    got_sel, stats_sel = run(sack=True)
    expected = [f"m{i}" for i in range(n_messages)]
    assert got_cum == expected
    assert got_sel == expected
    if not (faults.drop_prob or faults.duplicate_prob
            or faults.reorder_jitter):
        assert stats_sel.fast_retransmits == 0  # clean net, no false alarms
