"""Unit and property tests for the reliable-FIFO transport layer."""

import pytest

from repro.errors import AddressError, DeliveryTimeout
from repro.net import (
    UNRELIABLE,
    ConstantLatency,
    DatagramNetwork,
    Endpoint,
    FaultPlan,
    NodeAddress,
    UniformLatency,
)
from repro.sim import Kernel

A = NodeAddress("a.edu", 1000)
B = NodeAddress("b.edu", 1000)


def make_pair(seed=0, *, latency=None, faults=None, **epkw):
    k = Kernel(seed=seed)
    net = DatagramNetwork(k, latency=latency or ConstantLatency(0.02),
                          faults=faults)
    ea = Endpoint(k, net, A, **epkw)
    eb = Endpoint(k, net, B, **epkw)
    return k, net, ea, eb


def collect_inbox(endpoint, ref=0, name=None):
    got = []
    endpoint.register_inbox(ref, lambda payload, addr: got.append(payload),
                            name=name)
    return got


def test_basic_delivery():
    k, net, ea, eb = make_pair()
    got = collect_inbox(eb)
    receipt = ea.send(B.inbox(0), "hello", channel="c1")
    k.run()
    assert got == ["hello"]
    assert receipt.is_confirmed
    # Confirmation takes a full round trip: data out + ack back.
    assert receipt.confirmed.value == pytest.approx(0.04)


def test_fifo_order_over_reordering_network():
    k, net, ea, eb = make_pair(
        seed=7, faults=FaultPlan(reorder_jitter=0.5),
        latency=ConstantLatency(0.01))
    got = collect_inbox(eb)
    n = 50
    for i in range(n):
        ea.send(B.inbox(0), str(i), channel="c1")
    k.run()
    assert got == [str(i) for i in range(n)]
    assert eb.stats.buffered_out_of_order > 0  # the net did reorder


def test_exactly_once_under_loss_and_duplication():
    k, net, ea, eb = make_pair(
        seed=11,
        faults=FaultPlan(drop_prob=0.3, duplicate_prob=0.2,
                         reorder_jitter=0.1),
        latency=ConstantLatency(0.01), rto_initial=0.05)
    got = collect_inbox(eb)
    n = 60
    for i in range(n):
        ea.send(B.inbox(0), str(i), channel="c1")
    k.run()
    assert got == [str(i) for i in range(n)]
    assert ea.stats.data_retransmitted > 0
    assert eb.stats.duplicates_discarded > 0


def test_channels_are_independent_fifo_streams():
    """FIFO holds per channel; cross-channel order is unconstrained."""
    k, net, ea, eb = make_pair(seed=5, faults=FaultPlan(reorder_jitter=0.3),
                               latency=ConstantLatency(0.01))
    got = collect_inbox(eb)
    for i in range(20):
        ea.send(B.inbox(0), f"x{i}", channel="cx")
        ea.send(B.inbox(0), f"y{i}", channel="cy")
    k.run()
    xs = [m for m in got if m.startswith("x")]
    ys = [m for m in got if m.startswith("y")]
    assert xs == [f"x{i}" for i in range(20)]
    assert ys == [f"y{i}" for i in range(20)]


def test_delivery_receipt_timeout_raises_in_waiter():
    k, net, ea, eb = make_pair(faults=FaultPlan(drop_prob=1.0),
                               rto_initial=0.05, max_retries=100)
    collect_inbox(eb)
    receipt = ea.send(B.inbox(0), "m", channel="c", timeout=0.3)
    failures = []

    def waiter():
        try:
            yield receipt.confirmed
        except DeliveryTimeout as exc:
            failures.append(exc)

    k.process(waiter())
    k.run(until=5.0)
    assert len(failures) == 1
    assert failures[0].timeout == pytest.approx(0.3)


def test_unobserved_timeout_does_not_crash_run():
    k, net, ea, eb = make_pair(faults=FaultPlan(drop_prob=1.0),
                               rto_initial=0.05, max_retries=3)
    collect_inbox(eb)
    ea.send(B.inbox(0), "m", channel="c", timeout=0.1)
    k.run()  # must terminate quietly
    assert ea.stats.gave_up == 1


def test_broken_channel_semantics():
    """Exhausting the retry budget breaks the channel exactly once: one
    gave_up increment, every queued receipt fails, later sends fail fast
    without touching the wire."""
    k, net, ea, eb = make_pair(faults=FaultPlan(drop_prob=1.0),
                               rto_initial=0.01, max_retries=3)
    collect_inbox(eb)
    receipts = [ea.send(B.inbox(0), str(i), channel="c") for i in range(5)]
    k.run()
    assert ea.stats.gave_up == 1  # one break for the channel, not per packet
    assert all(r.is_failed for r in receipts)
    assert all(isinstance(r.confirmed.value, DeliveryTimeout)
               for r in receipts)
    late = ea.send(B.inbox(0), "late", channel="c")
    assert late.is_failed
    sent_before = net.stats.sent
    k.run()
    assert net.stats.sent == sent_before, "fail-fast sends emit no datagrams"


def test_channel_breaks_after_retry_budget():
    k, net, ea, eb = make_pair(faults=FaultPlan(drop_prob=1.0),
                               rto_initial=0.01, max_retries=4)
    collect_inbox(eb)
    r1 = ea.send(B.inbox(0), "m", channel="c")
    k.run()
    assert r1.is_failed
    # Subsequent sends on the broken channel fail immediately.
    r2 = ea.send(B.inbox(0), "m2", channel="c")
    assert r2.is_failed
    # Other channels are unaffected (they break independently).
    r3 = ea.send(B.inbox(0), "m3", channel="other")
    assert not r3.is_failed


def test_named_inbox_delivery():
    k, net, ea, eb = make_pair()
    got = collect_inbox(eb, ref=4, name="students")
    ea.send(B.inbox("students"), "enroll", channel="c")
    ea.send(B.inbox(4), "enroll2", channel="c")
    k.run()
    assert got == ["enroll", "enroll2"]


def test_duplicate_inbox_registration_rejected():
    k, net, ea, eb = make_pair()
    eb.register_inbox(0, lambda p, a: None, name="x")
    with pytest.raises(AddressError):
        eb.register_inbox(0, lambda p, a: None)
    with pytest.raises(AddressError):
        eb.register_inbox(1, lambda p, a: None, name="x")
    eb.unregister_inbox(0, name="x")
    eb.register_inbox(0, lambda p, a: None, name="x")


def test_unknown_inbox_counted_not_crashed():
    k, net, ea, eb = make_pair()
    ea.send(B.inbox(99), "m", channel="c")
    k.run()
    assert eb.stats.no_such_inbox == 1


def test_unreliable_endpoint_loses_messages_under_loss():
    """An UNRELIABLE-default endpoint (the retired raw mode's home)."""
    k, net, ea, eb = make_pair(seed=3, delivery=UNRELIABLE,
                               faults=FaultPlan(drop_prob=0.5))
    got = collect_inbox(eb)
    for i in range(100):
        ea.send(B.inbox(0), str(i), channel="c")
    k.run()
    assert 0 < len(got) < 100  # some lost, none retransmitted
    assert ea.stats.unreliable_sent == 100
    assert ea.stats.data_retransmitted == 0
    assert eb.stats.unreliable_delivered == len(got)


def test_unreliable_endpoint_rejects_timeout():
    k, net, ea, eb = make_pair(delivery=UNRELIABLE)
    with pytest.raises(ValueError):
        ea.send(B.inbox(0), "m", channel="c", timeout=1.0)


def test_send_to_closed_endpoint_is_lost_then_gives_up():
    k, net, ea, eb = make_pair(rto_initial=0.01, max_retries=3)
    collect_inbox(eb)
    eb.close()
    r = ea.send(B.inbox(0), "m", channel="c")
    k.run()
    assert r.is_failed
    assert net.stats.undeliverable > 0


def test_bidirectional_traffic():
    k, net, ea, eb = make_pair(seed=9, faults=FaultPlan(drop_prob=0.2),
                               rto_initial=0.05)
    got_b = collect_inbox(eb)
    got_a = collect_inbox(ea)
    for i in range(20):
        ea.send(B.inbox(0), f"a{i}", channel="ab")
        eb.send(A.inbox(0), f"b{i}", channel="ba")
    k.run()
    assert got_b == [f"a{i}" for i in range(20)]
    assert got_a == [f"b{i}" for i in range(20)]


def test_deterministic_given_seed():
    def trace(seed):
        k, net, ea, eb = make_pair(
            seed=seed, faults=FaultPlan(drop_prob=0.3, reorder_jitter=0.2),
            latency=UniformLatency(0.01, 0.1), rto_initial=0.05)
        times = []
        eb.register_inbox(0, lambda p, a: times.append((k.now, p)))
        for i in range(20):
            ea.send(B.inbox(0), str(i), channel="c")
        k.run()
        return times

    assert trace(42) == trace(42)
    assert trace(42) != trace(43)
