"""Unit tests for the binary wire codec and the framing bugs it fixes.

Three regressions rode in with the codec and are pinned here:

* batch coalescing is wire-size-aware — a backlog of large payloads
  splits into several frames instead of encoding one oversized frame
  that only the UDP substrate would reject;
* a single payload that cannot fit one frame even unbatched fails its
  send with a *typed* error (:class:`~repro.errors.PayloadTooLarge`) on
  every substrate, at send time, without holing the FIFO stream;
* malformed datagrams (truncated, mutated, or not our format at all —
  including perfectly valid JSON) are dropped and counted at the
  decode boundary instead of crashing the receive path.
"""

import json
import socket

import pytest

from repro.errors import (AddressError, PayloadTooLarge, TransportError,
                          WireFormatError)
from repro.net import (ConstantLatency, DatagramNetwork, Endpoint,
                       FaultPlan, NodeAddress)
from repro.net.datagram import Datagram
from repro.net.wire import (BATCH_MAX_PAYLOADS, RELIABLE, RELIABLE_SKIP,
                            UNRELIABLE, FrameError, KIND_ACK, KIND_DATA,
                            KIND_PROBE, KIND_SKIP,
                            MAX_FRAME_BYTES, decode_frame, encode_frame,
                            encode_frame_json)
from repro.runtime import AsyncioSubstrate, SimSubstrate
from repro.sim import Kernel

A = NodeAddress("a.edu", 1000)
B = NodeAddress("b.edu", 1000)


def rt(datagram):
    """Round-trip one datagram through the binary codec."""
    return decode_frame(encode_frame(datagram))


# -- codec round trips -------------------------------------------------------


def test_data_frame_round_trips():
    d = Datagram(A, B, {"kind": KIND_DATA, "to": 3, "ch": "c0",
                        "seq": 17, "ts": 12.625}, "hello wire")
    assert rt(d) == d


def test_data_frame_with_named_ref_and_unicode_round_trips():
    d = Datagram(A, B, {"kind": KIND_DATA, "to": "réponse", "ch": "canál",
                        "seq": 0, "ts": 0.0}, "päyload ✓")
    assert rt(d) == d


def test_data_frame_with_pack_round_trips():
    pack = [{"ch": "c1", "cum": 41, "ets": 3.5, "rwnd": 1024},
            {"ch": "c2", "cum": -1, "ets": None,
             "sack": [[5, 9], [11, 11]]}]
    d = Datagram(A, B, {"kind": KIND_DATA, "to": 0, "ch": "c0",
                        "seq": 2, "ts": 1.0, "pack": pack}, "x")
    assert rt(d) == d


def test_batched_data_frame_round_trips():
    d = Datagram(A, B,
                 {"kind": KIND_DATA, "to": 1, "ch": "c", "seq": 5,
                  "ts": 2.0, "parts": [1, "named", 2]},
                 "", parts_payloads=("p0", "", "p2 ünïcode"))
    got = rt(d)
    assert got == d
    assert got.parts_payloads == ("p0", "", "p2 ünïcode")


def test_ack_frame_round_trips_with_and_without_options():
    full = Datagram(A, B, {"kind": KIND_ACK, "ch": "c", "cum": 9,
                           "ets": 0.125, "sack": [[11, 13]],
                           "rwnd": 2048}, "")
    bare = Datagram(A, B, {"kind": KIND_ACK, "ch": "c", "cum": -1,
                           "ets": None}, "")
    assert rt(full) == full
    assert rt(bare) == bare


def test_probe_frame_round_trips():
    probe = Datagram(A, B, {"kind": KIND_PROBE, "ch": "c"}, "")
    assert rt(probe) == probe


def test_retired_raw_kind_is_strict_rejected():
    """Wire id 3 (the retired RAW kind) is reserved: encoders refuse to
    emit it and decoders reject it with the typed frame error."""
    with pytest.raises(FrameError, match="unknown frame kind"):
        encode_frame(Datagram(A, B, {"kind": "RAW", "to": "svc", "ch": "c"},
                              "ping"))
    probe = bytearray(encode_frame(
        Datagram(A, B, {"kind": KIND_PROBE, "ch": "c"}, "")))
    probe[2] = 3  # overwrite the kind byte with the reserved id
    with pytest.raises(FrameError, match="reserved"):
        decode_frame(bytes(probe))


def test_data_frame_delivery_class_round_trips():
    for cls in (UNRELIABLE, RELIABLE_SKIP):
        d = Datagram(A, B, {"kind": KIND_DATA, "to": 0, "ch": "c0",
                            "seq": 2, "ts": 1.5, "cls": cls}, "payload")
        assert rt(d) == d


def test_reliable_class_is_implicit_on_the_wire():
    """``cls: RELIABLE`` encodes to the same bytes as no ``cls`` at all,
    and decodes back without the key — pre-class frames stay byte- and
    dict-identical."""
    base = {"kind": KIND_DATA, "to": 0, "ch": "c0", "seq": 2, "ts": 1.5}
    plain = Datagram(A, B, dict(base), "p")
    tagged = Datagram(A, B, {**base, "cls": RELIABLE}, "p")
    assert encode_frame(tagged) == encode_frame(plain)
    assert "cls" not in decode_frame(encode_frame(tagged)).header


def test_skip_frame_round_trips():
    d = Datagram(A, B, {"kind": KIND_SKIP, "ch": "c1", "upto": 7}, "")
    assert rt(d) == d
    big = Datagram(A, B, {"kind": KIND_SKIP, "ch": "c1",
                          "upto": 2**32 - 1}, "")
    assert rt(big) == big


def test_encode_rejects_unknown_delivery_class():
    d = Datagram(A, B, {"kind": KIND_DATA, "to": 0, "ch": "c", "seq": 0,
                        "ts": 0.0, "cls": "best_effort"}, "p")
    with pytest.raises(FrameError, match="delivery class"):
        encode_frame(d)


def test_encode_rejects_skip_upto_out_of_range():
    d = Datagram(A, B, {"kind": KIND_SKIP, "ch": "c", "upto": 2**32}, "")
    with pytest.raises(FrameError, match="upto"):
        encode_frame(d)


def test_decode_rejects_invalid_class_bits():
    d = Datagram(A, B, {"kind": KIND_DATA, "to": 0, "ch": "c", "seq": 0,
                        "ts": 0.0}, "p")
    buf = bytearray(encode_frame(d))
    buf[3] |= 0x0C  # delivery-class bits 3: reserved / invalid
    with pytest.raises(FrameError, match="delivery-class bits"):
        decode_frame(bytes(buf))


def test_decode_rejects_malformed_skip_frames():
    d = Datagram(A, B, {"kind": KIND_SKIP, "ch": "c1", "upto": 7}, "")
    buf = bytearray(encode_frame(d))
    buf[3] |= 0x01  # SKIP admits no flags
    with pytest.raises(FrameError):
        decode_frame(bytes(buf))
    with pytest.raises(FrameError):
        decode_frame(encode_frame(d)[:-2])  # truncated upto


def test_binary_frames_are_smaller_than_json():
    frames = [
        Datagram(A, B, {"kind": KIND_DATA, "to": 3, "ch": "c0",
                        "seq": 17, "ts": 12.625}, "x" * 200),
        Datagram(A, B, {"kind": KIND_ACK, "ch": "c", "cum": 9,
                        "ets": 0.125, "sack": [[11, 13]], "rwnd": 2048}, ""),
        Datagram(A, B, {"kind": KIND_DATA, "to": 1, "ch": "c", "seq": 5,
                        "ts": 2.0, "parts": [1, 2, 3]},
                 "", parts_payloads=("a" * 50, "b" * 50, "c" * 50)),
    ]
    for d in frames:
        assert len(encode_frame(d)) < len(encode_frame_json(d))


def test_encode_rejects_oversized_frame():
    d = Datagram(A, B, {"kind": KIND_PROBE, "ch": "c"},
                 "x" * (MAX_FRAME_BYTES + 1))
    with pytest.raises(FrameError):
        encode_frame(d)


def test_encode_rejects_batch_without_payloads():
    d = Datagram(A, B, {"kind": KIND_DATA, "to": 1, "ch": "c", "seq": 0,
                        "ts": 0.0, "parts": [1, 2]}, "")
    with pytest.raises(FrameError):
        encode_frame(d)


# -- decode validation -------------------------------------------------------


def test_decode_rejects_valid_json():
    """The original bug: a malformed-but-valid-JSON datagram sailed
    through decode and crashed in the endpoint. Now it is a FrameError
    at the decode boundary."""
    for doc in ({"h": "not a dict", "p": 3}, [1, 2, 3], "string", 42):
        with pytest.raises(FrameError):
            decode_frame(json.dumps(doc).encode())


def test_decode_rejects_garbage_and_truncation():
    good = encode_frame(Datagram(
        A, B, {"kind": KIND_DATA, "to": 3, "ch": "c", "seq": 1, "ts": 1.0},
        "payload"))
    with pytest.raises(FrameError):
        decode_frame(b"")
    with pytest.raises(FrameError):
        decode_frame(b"\x00" * 40)
    with pytest.raises(FrameError):
        decode_frame(good[:6])  # truncated mid-address
    with pytest.raises(FrameError):
        decode_frame(bytes([good[0] ^ 0xFF]) + good[1:])  # bad magic
    with pytest.raises(FrameError):
        decode_frame(good[:1] + b"\x7f" + good[2:])  # bad version


# -- error taxonomy ----------------------------------------------------------


def test_frame_error_taxonomy():
    assert issubclass(FrameError, WireFormatError)
    assert issubclass(WireFormatError, TransportError)
    assert issubclass(PayloadTooLarge, WireFormatError)
    # The one-release AddressError deprecation alias has expired: codec
    # failures are transport errors, not address errors.
    assert not issubclass(FrameError, AddressError)
    with pytest.raises(WireFormatError):
        decode_frame(b"junk")


# -- substrate scenarios -----------------------------------------------------


@pytest.fixture(params=["sim", "asyncio"])
def substrate(request):
    if request.param == "sim":
        sub = SimSubstrate(seed=7, latency=ConstantLatency(0.01))
    else:
        sub = AsyncioSubstrate(seed=7)
    yield sub
    sub.close()


def run_until(substrate, event, wall_timeout=30):
    if isinstance(substrate, AsyncioSubstrate):
        return substrate.run(event, wall_timeout=wall_timeout)
    return substrate.run(event)


def test_batch_filler_respects_frame_ceiling(substrate):
    """Regression: queued 20 KB payloads behind a closed window used to
    coalesce by count/batch_bytes alone — six of them made a ~120 KB
    frame the UDP encoder rejected. The filler now accounts wire bytes
    and splits; every frame stays under MAX_FRAME_BYTES and everything
    is delivered in order on both substrates."""
    payload = "y" * 20_000
    sender = Endpoint(substrate, substrate.datagrams, A, rto_initial=0.5,
                      cwnd_initial=len(payload) + 100,
                      batch_bytes=1 << 20)
    receiver = Endpoint(substrate, substrate.datagrams, B)
    got = []
    receiver.register_inbox(0, lambda p, src: got.append(p))
    oversize = []
    substrate.datagrams.wire_taps.append(
        lambda t, d: oversize.append(len(encode_frame(d)))
        if len(encode_frame(d)) > MAX_FRAME_BYTES else None)
    receipts = [sender.send(B.inbox(0), f"{i}:{payload}", "c")
                for i in range(8)]
    run_until(substrate, substrate.all_of([r.confirmed for r in receipts]))
    assert [p.split(":", 1)[0] for p in got] == [str(i) for i in range(8)]
    assert not oversize
    assert sender.stats.batches_sent >= 1


def test_single_oversized_payload_fails_typed(substrate):
    """A payload that cannot fit one frame even unbatched fails its
    receipt with PayloadTooLarge at send time — identically on both
    substrates — and the FIFO stream is not holed by it."""
    sender = Endpoint(substrate, substrate.datagrams, A, rto_initial=0.2)
    receiver = Endpoint(substrate, substrate.datagrams, B)
    got = []
    receiver.register_inbox(0, lambda p, src: got.append(p))

    r_big = sender.send(B.inbox(0), "z" * (MAX_FRAME_BYTES + 1), "c")
    assert r_big.is_failed
    exc = r_big.confirmed.value
    assert isinstance(exc, PayloadTooLarge)
    assert exc.size > exc.limit == MAX_FRAME_BYTES

    # The stream still works and skips no sequence number.
    r_ok = sender.send(B.inbox(0), "after", "c")
    run_until(substrate, r_ok.confirmed)
    assert got == ["after"]


def test_unreliable_oversized_payload_raises_typed(substrate):
    sender = Endpoint(substrate, substrate.datagrams, A,
                      delivery=UNRELIABLE)
    with pytest.raises(PayloadTooLarge):
        sender.send(B.inbox(0), "z" * (MAX_FRAME_BYTES + 1), "c")


def test_malformed_datagrams_dropped_and_counted(substrate):
    """Garbage bytes at the decode boundary are dropped with a counter
    (never an exception up the receive path) on both substrates."""
    receiver = Endpoint(substrate, substrate.datagrams, B)
    got = []
    receiver.register_inbox(0, lambda p, src: got.append(p))
    service = substrate.datagrams
    bad = [b"garbage", json.dumps({"h": {}, "p": 0}).encode(),
           encode_frame(Datagram(A, B, {"kind": KIND_DATA, "to": 0,
                                        "ch": "c", "seq": 0, "ts": 0.0},
                                 "ok"))[:-30]]
    if isinstance(substrate, AsyncioSubstrate):
        route = service.real_address(B)
        tx = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            for frame in bad:
                tx.sendto(frame, route)
        finally:
            tx.close()
        done = substrate.event()
        substrate.call_later(0.3, lambda: done.succeed(None))
        substrate.run(done, wall_timeout=10)
    else:
        for frame in bad:
            service._deliver_bytes(frame)
    assert service.stats.bad_frames == len(bad)
    assert got == []


def test_sim_encoded_mode_round_trips_traffic():
    """The simulator's opt-in encoded mode routes every datagram through
    the binary codec and still delivers everything exactly once under
    faults."""
    sub = SimSubstrate(seed=3, latency=ConstantLatency(0.02),
                       faults=FaultPlan(drop_prob=0.2, duplicate_prob=0.1),
                       encoded=True)
    sender = Endpoint(sub, sub.datagrams, A, rto_initial=0.1, max_retries=80)
    receiver = Endpoint(sub, sub.datagrams, B, rto_initial=0.1)
    got = []
    receiver.register_inbox(0, lambda p, src: got.append(p))
    receipts = [sender.send(B.inbox(0), f"m{i}", "c") for i in range(30)]
    sub.run(sub.all_of([r.confirmed for r in receipts]))
    assert got == [f"m{i}" for i in range(30)]


def test_batches_cap_payload_count():
    """The BATCH_MAX_PAYLOADS cap still bounds coalescing."""
    k = Kernel(seed=0)
    net = DatagramNetwork(k, latency=ConstantLatency(0.02))
    ea = Endpoint(k, net, A, rto_initial=0.5, cwnd_initial=200,
                  batch_bytes=1 << 20)
    eb = Endpoint(k, net, B)
    got = []
    eb.register_inbox(0, lambda p, src: got.append(p))
    sizes = []
    net.wire_taps.append(
        lambda t, d: sizes.append(len(d.header["parts"]))
        if "parts" in d.header else None)
    for i in range(2 * BATCH_MAX_PAYLOADS + 10):
        ea.send(B.inbox(0), f"{i:04d}", "c")
    k.run()
    assert len(got) == 2 * BATCH_MAX_PAYLOADS + 10
    assert sizes and max(sizes) <= BATCH_MAX_PAYLOADS
