"""Tests for global pointers and RPC."""

import pytest

from repro.dapplet import Dapplet
from repro.errors import RpcError, RpcTimeout
from repro.net import ConstantLatency, FaultPlan
from repro.rpc import RemoteProxy, export
from repro.world import World


class Counter:
    """A plain object to export."""

    def __init__(self):
        self.value = 0

    def add(self, n):
        self.value += n
        return self.value

    def get(self):
        return self.value

    def fail(self):
        raise ValueError("deliberate")

    def _private(self):
        return "secret"


class Plain(Dapplet):
    kind = "plain"


@pytest.fixture
def world():
    return World(seed=2, latency=ConstantLatency(0.01))


@pytest.fixture
def nodes(world):
    server = world.dapplet(Plain, "caltech.edu", "server")
    client = world.dapplet(Plain, "rice.edu", "client")
    return server, client


def test_sync_call_returns_value(world, nodes):
    server, client = nodes
    counter = Counter()
    remote = export(server, counter, name="counter")
    proxy = RemoteProxy(client, remote.pointer)
    results = []

    def caller():
        v1 = yield proxy.call("add", 5)
        v2 = yield proxy.call("add", 2)
        v3 = yield proxy.call("get")
        results.append((v1, v2, v3))

    p = world.process(caller())
    world.run(until=p)
    assert results == [(5, 7, 7)]
    assert counter.value == 7
    assert remote.invocations == 3


def test_async_invoke_is_one_way(world, nodes):
    server, client = nodes
    counter = Counter()
    remote = export(server, counter, name="counter")
    proxy = RemoteProxy(client, remote.pointer)
    proxy.invoke("add", 10)
    proxy.invoke("add", 1)
    world.run()
    assert counter.value == 11


def test_remote_exception_propagates(world, nodes):
    server, client = nodes
    remote = export(server, Counter(), name="counter")
    proxy = RemoteProxy(client, remote.pointer)
    caught = []

    def caller():
        try:
            yield proxy.call("fail")
        except RpcError as exc:
            caught.append((exc.remote_type, exc.remote_message))

    p = world.process(caller())
    world.run(until=p)
    assert caught == [("ValueError", "deliberate")]
    assert remote.errors == 1


def test_unknown_and_private_methods_rejected(world, nodes):
    server, client = nodes
    remote = export(server, Counter(), name="counter")
    proxy = RemoteProxy(client, remote.pointer)
    caught = []

    def caller():
        for method in ("nope", "_private", "value"):
            try:
                yield proxy.call(method)
            except RpcError as exc:
                caught.append(exc.remote_type)

    p = world.process(caller())
    world.run(until=p)
    # 'value' is an attribute, not callable -> AttributeError too.
    assert caught == ["AttributeError", "PermissionError", "AttributeError"]


def test_call_timeout(world, nodes):
    server, client = nodes
    remote = export(server, Counter(), name="counter")
    remote.unexport()  # pointer now dangles
    proxy = RemoteProxy(client, remote.pointer)
    caught = []

    def caller():
        try:
            yield proxy.call("get", timeout=1.0)
        except RpcTimeout:
            caught.append(world.now)

    p = world.process(caller())
    world.run(until=p)
    assert caught == [1.0]


def test_late_reply_after_timeout_is_dropped(world):
    """Slow network: the reply lands after the caller gave up."""
    world = World(seed=2, latency=ConstantLatency(2.0))
    server = world.dapplet(Plain, "caltech.edu", "server")
    client = world.dapplet(Plain, "rice.edu", "client")
    counter = Counter()
    remote = export(server, counter, name="counter")
    proxy = RemoteProxy(client, remote.pointer)
    caught = []

    def caller():
        try:
            yield proxy.call("add", 1, timeout=0.5)
        except RpcTimeout:
            caught.append("timeout")

    p = world.process(caller())
    world.run(until=p)
    world.run()  # the late reply arrives and must be ignored
    assert caught == ["timeout"]
    assert counter.value == 1  # the call *did* execute remotely


def test_kwargs_roundtrip(world, nodes):
    server, client = nodes

    class Greeter:
        def greet(self, name, punctuation="!"):
            return f"hello {name}{punctuation}"

    remote = export(server, Greeter(), name="greeter")
    proxy = RemoteProxy(client, remote.pointer)
    results = []

    def caller():
        r = yield proxy.call("greet", "mani", punctuation="?")
        results.append(r)

    p = world.process(caller())
    world.run(until=p)
    assert results == ["hello mani?"]


def test_rpc_reliable_over_lossy_network():
    world = World(seed=5, latency=ConstantLatency(0.01),
                  faults=FaultPlan(drop_prob=0.3),
                  endpoint_options={"rto_initial": 0.05})
    server = world.dapplet(Plain, "caltech.edu", "server")
    client = world.dapplet(Plain, "rice.edu", "client")
    counter = Counter()
    remote = export(server, counter, name="counter")
    proxy = RemoteProxy(client, remote.pointer)
    results = []

    def caller():
        for i in range(10):
            v = yield proxy.call("add", 1)
            results.append(v)

    p = world.process(caller())
    world.run(until=p)
    assert results == list(range(1, 11))


def test_two_proxies_one_object(world, nodes):
    server, client = nodes
    other = world.dapplet(Plain, "utk.edu", "other")
    counter = Counter()
    remote = export(server, counter, name="counter")
    p1 = RemoteProxy(client, remote.pointer)
    p2 = RemoteProxy(other, remote.pointer)
    results = []

    def c1():
        results.append((yield p1.call("add", 1)))

    def c2():
        results.append((yield p2.call("add", 1)))

    a, b = world.process(c1()), world.process(c2())
    world.run()
    assert sorted(results) == [1, 2]
    assert counter.value == 2
