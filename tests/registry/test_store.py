"""Integration tests: the replicated DAppStore catalog.

Manifest rows are discovery lease records: published to a home replica,
kept alive by heartbeats, spread by gossip, tombstoned by the TTL sweep
when the owner dies. Worlds hosting store replicas never quiesce
(gossip/sweep timers run forever), so every test drives the simulator
with ``run(until=...)`` only.
"""

import zlib

from repro import Dapplet, World
from repro.discovery import LeaseConfig
from repro.net import ConstantLatency
from repro.net.address import NodeAddress
from repro.registry import Manifest, ManifestRecord, PublishAgent, StoreClient

#: Sub-second lease timings so full expiry cycles fit in a short run.
CFG = LeaseConfig(ttl=1.0, renew_interval=0.25, sweep_interval=0.2,
                  gossip_interval=0.3, cache_ttl=0.3, request_timeout=0.5)


class App(Dapplet):
    kind = "app"


def owned_world(seed=31):
    world = World(seed=seed, latency=ConstantLatency(0.01))
    alice = world.registry.principal("alice", org="acme")
    world.host_dappstore(2, config=CFG)
    shop = world.dapplet(App, "shop.acme.com", "shop", owner=alice,
                         schema="shop/v1", exports=("price",),
                         requires=("rpc.call:price",))
    client_host = world.dapplet(App, "client.example.org", "viewer")
    return world, shop, client_host


def drive(world, director):
    world.run(until=world.process(director()))


def test_auto_publish_lookup_and_list():
    world, shop, viewer = owned_world()
    assert shop.manifest_name == "acme/app/shop"
    found = {}

    def director():
        yield shop.manifest_agent.published
        client = world.store_client_for(viewer)
        found["manifest"] = yield from client.lookup("acme/app/shop")
        found["names"] = yield from client.list("acme")
        found["missing"] = yield from client.lookup("acme/app/ghost")

    drive(world, director)
    manifest = found["manifest"]
    assert manifest.name == "acme/app/shop"
    assert manifest.owner == "alice"
    assert manifest.dapplet == "shop"
    assert manifest.schema == "shop/v1"
    assert manifest.methods == ("price",)
    assert manifest.requires == ("rpc.call:price",)
    assert found["names"] == ("acme/app/shop",)
    assert found["missing"] is None
    # Unowned dapplets are not published.
    assert not hasattr(viewer, "manifest_agent")


def test_manifest_record_wire_roundtrip():
    record = ManifestRecord("acme/app/shop", NodeAddress("h", 2000),
                            "alice", 3, 7, True, 14.0,
                            manifest={"name": "acme/app/shop",
                                      "owner": "alice"})
    wire = record.to_wire(now=10.0)
    assert wire["m"] == {"name": "acme/app/shop", "owner": "alice"}
    assert wire["tl"] == 4.0      # relative TTL on the wire
    back = ManifestRecord.from_wire(wire, now=20.0)
    assert back.manifest == record.manifest
    assert back.epoch == 3 and back.version == 7
    assert back.expires_at == 24.0


def test_name_taken_until_the_lease_runs_out():
    """A live lease at another address blocks the name; the squatting
    agent keeps retrying and wins once the holder's lease expires."""
    world, shop, viewer = owned_world(seed=32)
    squat_host = world.dapplet(App, "squat.evil.net", "squatter")
    manifest = Manifest(name="acme/app/shop", owner="eve",
                        dapplet="squatter")
    outcome = {}

    def director():
        yield shop.manifest_agent.published
        squatter = PublishAgent(squat_host, world.dappstore_addresses(),
                                manifest=manifest, config=CFG)
        # Several retry cycles: the name stays with its living holder.
        yield world.kernel.timeout(3 * CFG.renew_interval + 0.05)
        outcome["held"] = not squatter.published.triggered
        shop.stop()               # heartbeats stop; the lease runs out
        yield squatter.published  # granted within ttl + one retry
        yield world.kernel.timeout(CFG.gossip_interval + 0.05)
        client = world.store_client_for(viewer)
        outcome["manifest"] = yield from client.lookup("acme/app/shop")

    drive(world, director)
    assert outcome["held"]
    assert outcome["manifest"].owner == "eve"


def test_unrenewed_manifest_expires_everywhere():
    world, shop, viewer = owned_world(seed=33)
    outcome = {}

    def director():
        yield shop.manifest_agent.published
        shop.stop()
        yield world.kernel.timeout(CFG.staleness_bound(2) + 0.5)
        client = world.store_client_for(viewer)
        outcome["manifest"] = yield from client.lookup("acme/app/shop")
        outcome["names"] = yield from client.list("acme")

    drive(world, director)
    assert outcome["manifest"] is None
    assert outcome["names"] == ()


def test_gossip_spreads_records_to_the_non_home_replica():
    world, shop, viewer = owned_world(seed=34)
    addresses = world.dappstore_addresses()
    home = zlib.crc32(b"acme/app/shop") % len(addresses)
    other = addresses[1 - home]
    outcome = {}

    def director():
        yield shop.manifest_agent.published
        yield world.kernel.timeout(CFG.gossip_interval + 0.1)
        client = StoreClient(viewer, [other], config=CFG)
        outcome["manifest"] = yield from client.lookup("acme/app/shop")

    drive(world, director)
    assert outcome["manifest"].owner == "alice"


def test_store_client_fails_over_a_dead_replica():
    world, shop, viewer = owned_world(seed=35)
    outcome = {}

    def director():
        yield shop.manifest_agent.published
        yield world.kernel.timeout(CFG.gossip_interval + 0.1)
        world.dappstore_replicas[0].stop()
        client = world.store_client_for(viewer)
        outcome["manifest"] = yield from client.lookup("acme/app/shop")

    drive(world, director)
    assert outcome["manifest"] is not None
    assert outcome["manifest"].owner == "alice"
