"""Unit tests: Principal identity, pattern and verb matching, Capability."""

import pytest

from repro.registry import Capability, Principal, pattern_matches, verb_matches


class TestPrincipal:
    def test_namespace_defaults_to_own_name(self):
        assert Principal("alice").namespace == "alice"
        assert Principal("alice", "acme").namespace == "acme"

    def test_str_is_the_name(self):
        assert str(Principal("alice", "acme")) == "alice"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Principal("alice").name = "eve"


class TestPatternMatches:
    @pytest.mark.parametrize("pattern,name", [
        ("*", "acme/app/x"),
        ("*", "anything"),
        ("acme/app/x", "acme/app/x"),
        ("acme/**", "acme"),
        ("acme/**", "acme/app"),
        ("acme/**", "acme/app/x/y"),
        ("**", "acme/app/x"),
        ("acme/*/x", "acme/app/x"),
        ("*/app/*", "acme/app/x"),
    ])
    def test_matches(self, pattern, name):
        assert pattern_matches(pattern, name)

    @pytest.mark.parametrize("pattern,name", [
        ("acme/app/x", "acme/app/y"),
        ("acme/**", "evil/app/x"),
        ("acme/*", "acme/app/x"),     # * is exactly one segment
        ("acme/*", "acme"),
        ("acme/app/x", "acme/app"),
        ("acme/app", "acme/app/x"),
    ])
    def test_rejects(self, pattern, name):
        assert not pattern_matches(pattern, name)


class TestVerbMatches:
    @pytest.mark.parametrize("granted,verb", [
        ("session.establish", "session.establish"),
        ("*", "rpc.call:read"),
        ("rpc.call:*", "rpc.call:read"),
        ("token.request:*", "token.request:gold"),
    ])
    def test_matches(self, granted, verb):
        assert verb_matches(granted, verb)

    @pytest.mark.parametrize("granted,verb", [
        ("session.establish", "rpc.call:read"),
        ("rpc.call:read", "rpc.call:bump"),
        ("rpc.call:read", "rpc.call:*"),   # a grant is not a query
        ("rpc.call:*", "token.request:gold"),
    ])
    def test_rejects(self, granted, verb):
        assert not verb_matches(granted, verb)


class TestCapability:
    def test_matches_needs_pattern_and_verb(self):
        cap = Capability("bob", "acme/**", ("session.establish",
                                            "rpc.call:*"))
        assert cap.matches("acme/app/x", "session.establish")
        assert cap.matches("acme/app/x", "rpc.call:read")
        assert not cap.matches("evil/app/x", "rpc.call:read")
        assert not cap.matches("acme/app/x", "token.request:gold")

    def test_normalizes_principal_and_verbs(self):
        cap = Capability(Principal("bob", "acme"), "acme/**",
                         ["rpc.call:read"])
        assert cap.principal == "bob"
        assert cap.verbs == ("rpc.call:read",)

    def test_quota_defaults_to_unbounded(self):
        assert Capability("bob", "tokens", ("token.request:gold",)).quota \
            is None
