"""Acceptance: the capability-gated marketplace, on both substrates.

Three principals; one revoked mid-run. The revoked principal's next
session establish, next RPC and next token request must all be denied
(with ``reg`` audit events), the surviving principal's already-open
session must keep working, and token conservation must hold throughout.
Mirrors ``examples/marketplace.py`` as a test with hard assertions.
"""

from repro import Dapplet, Initiator, SessionSpec, Tracer, World
from repro.errors import CapabilityDenied, RpcError, SessionRejected
from repro.messages import Text
from repro.net import ConstantLatency
from repro.registry import TOKEN_RESOURCE
from repro.rpc import RemoteProxy, export
from repro.runtime import AsyncioSubstrate
from repro.services.tokens import TokenAgent, TokenCoordinator


class Storefront(Dapplet):
    kind = "shop"

    def on_session_start(self, ctx):
        def serve():
            while ctx.active:
                msg = yield ctx.inbox("in").receive()
                ctx.outbox("out").send(Text(f"receipt:{msg.text}"))
        return serve()


class Shopper(Dapplet):
    kind = "app"

    def on_session_start(self, ctx):
        self.ctx = ctx
        return None


class PriceList:
    def price(self, item: str) -> int:
        return {"widget": 3, "gadget": 7}.get(item, 1)


def shop_spec(member: str) -> SessionSpec:
    spec = SessionSpec("shopping")
    spec.add_member("storefront", inboxes=("in",))
    spec.add_member(member, inboxes=("in",))
    spec.bind(member, "out", "storefront", "in")
    spec.bind("storefront", "out", member, "in")
    return spec


def run_marketplace(world: World, *, with_store: bool,
                    wall_timeout: "float | None" = None) -> dict:
    """Drive the scenario in ``world``; return every observed outcome."""
    registry = world.registry
    alice = registry.principal("alice", org="acme")
    bob = registry.principal("bob", org="bobco")
    carol = registry.principal("carol", org="carolco")
    for consumer in (bob, carol):
        registry.grant(consumer, "acme/**",
                       ("session.establish", "rpc.call:price"))
        registry.grant(consumer, TOKEN_RESOURCE,
                       ("token.request:credit",), quota=2)

    if with_store:
        world.host_dappstore(2)
    shop = world.dapplet(Storefront, "shop.acme.com", "storefront",
                         owner=alice, exports=("price",),
                         schema="storefront/v1")
    bob_app = world.dapplet(Shopper, "bob.example.org", "bob-app",
                            owner=bob)
    carol_app = world.dapplet(Shopper, "carol.example.org", "carol-app",
                              owner=carol)
    bob_init = world.dapplet(Initiator, "bob.example.org", "bob-init",
                             owner=bob)
    carol_init = world.dapplet(Initiator, "carol.example.org",
                               "carol-init", owner=carol)
    bank = world.dapplet(Shopper, "bank.example.org", "bank")
    prices = export(shop, PriceList(), name="prices")
    coordinator = TokenCoordinator(bank, {"credit": 4})
    out: dict = {}

    def director():
        if with_store:
            yield shop.manifest_agent.published
            catalog = world.store_client_for(bank)
            manifest = yield from catalog.lookup(shop.manifest_name)
            out["catalog_owner"] = manifest.owner
            out["catalog_methods"] = manifest.methods

        session = yield from carol_init.establish(shop_spec("carol-app"),
                                                  timeout=30.0)
        carol_app.ctx.outbox("out").send(Text("carol:widget"))
        reply = yield carol_app.ctx.inbox("in").receive()
        out["carol_receipt"] = reply.text
        yield from session.terminate()

        bob_session = yield from bob_init.establish(shop_spec("bob-app"),
                                                    timeout=30.0)
        bob_proxy = RemoteProxy(bob_app, prices.pointer)
        carol_proxy = RemoteProxy(carol_app, prices.pointer)
        out["carol_price"] = yield carol_proxy.call("price", "gadget",
                                                    timeout=30.0)
        carol_agent = TokenAgent(carol_app, coordinator.pointer)
        granted = yield carol_agent.request({"credit": 2})
        carol_agent.release(dict(granted))

        out["dropped"] = registry.revoke(carol)
        try:
            yield from carol_init.establish(shop_spec("carol-app"),
                                            timeout=30.0)
            out["carol_establish_after"] = "allowed"
        except SessionRejected as exc:
            out["carol_establish_after"] = (exc.participant, exc.reason)
        try:
            yield carol_proxy.call("price", "widget", timeout=30.0)
            out["carol_rpc_after"] = "allowed"
        except RpcError as exc:
            out["carol_rpc_after"] = exc.remote_type
        try:
            yield carol_agent.request({"credit": 1})
            out["carol_tokens_after"] = "allowed"
        except CapabilityDenied as exc:
            out["carol_tokens_after"] = exc.verb

        # Bob's already-open session and grants are untouched.
        bob_app.ctx.outbox("out").send(Text("bob:widget"))
        reply = yield bob_app.ctx.inbox("in").receive()
        out["bob_receipt"] = reply.text
        out["bob_price"] = yield bob_proxy.call("price", "widget",
                                                timeout=30.0)
        bob_agent = TokenAgent(bob_app, coordinator.pointer)
        granted = yield bob_agent.request({"credit": 2})
        bob_agent.release(dict(granted))
        yield from bob_session.terminate()

    kwargs = {} if wall_timeout is None else {"wall_timeout": wall_timeout}
    world.run(until=world.process(director()), **kwargs)
    coordinator.check_conservation()
    out["rejects_capability"] = shop.sessions.stats.rejects_capability
    out["deny_verbs"] = {
        e.fields["verb"] for e in world.tracer.events
        if e.cat == "reg" and e.name == "deny"
        and e.fields["principal"] == "carol"}
    return out


def assert_marketplace_outcomes(out: dict) -> None:
    assert out["carol_receipt"] == "receipt:carol:widget"
    assert out["carol_price"] == 7
    assert out["dropped"] == 2
    assert out["carol_establish_after"] == \
        ("storefront", "capability:session.establish")
    assert out["carol_rpc_after"] == "PermissionError"
    assert out["carol_tokens_after"] == "token.request:credit"
    assert out["bob_receipt"] == "receipt:bob:widget"
    assert out["bob_price"] == 3
    assert out["rejects_capability"] == 1
    assert out["deny_verbs"] == {"session.establish", "rpc.call:price",
                                 "token.request:credit"}


def test_marketplace_on_the_simulator():
    world = World(seed=21, latency=ConstantLatency(0.01), tracer=Tracer())
    out = run_marketplace(world, with_store=True)
    assert out["catalog_owner"] == "alice"
    assert out["catalog_methods"] == ("price",)
    assert_marketplace_outcomes(out)
    # Drain: store replicas gossip forever until everything stops.
    for dapplet in list(world.dapplets()):
        dapplet.stop()
    world.run()


def test_marketplace_on_asyncio():
    world = World(substrate=AsyncioSubstrate(seed=22), tracer=Tracer())
    try:
        out = run_marketplace(world, with_store=False, wall_timeout=60)
        assert_marketplace_outcomes(out)
    finally:
        world.close()
