"""Unit tests: the Registry — grants, cached checks, revocation, audit."""

import pytest

from repro import Tracer
from repro.errors import RegistryError
from repro.registry import TOKEN_RESOURCE, Registry
from repro.runtime import SimSubstrate


def audited_registry():
    substrate = SimSubstrate(seed=1)
    tracer = Tracer().attach(substrate)
    return Registry(substrate), tracer


class TestPrincipals:
    def test_interned_by_name(self):
        registry = Registry()
        assert registry.principal("alice", org="acme") \
            is registry.principal("alice", org="acme")
        assert registry.principal("alice") is registry.principal("alice",
                                                                 org="acme")

    def test_org_conflict_is_an_error(self):
        registry = Registry()
        registry.principal("alice", org="acme")
        with pytest.raises(RegistryError):
            registry.principal("alice", org="evil")

    def test_listing_is_sorted(self):
        registry = Registry()
        for name in ("carol", "alice", "bob"):
            registry.principal(name)
        assert [p.name for p in registry.principals()] == \
            ["alice", "bob", "carol"]


class TestGrantsAndChecks:
    def test_no_grant_means_deny(self):
        registry = Registry()
        assert not registry.check("bob", "acme/app/x", "session.establish")
        assert registry.stats.denies == 1

    def test_grant_allows_matching_checks(self):
        registry = Registry()
        registry.grant("bob", "acme/**", ("session.establish",))
        assert registry.check("bob", "acme/app/x", "session.establish")
        assert not registry.check("bob", "evil/app/x", "session.establish")
        assert not registry.check("bob", "acme/app/x", "rpc.call:read")

    def test_empty_verbs_is_an_error(self):
        registry = Registry()
        with pytest.raises(RegistryError):
            registry.grant("bob", "acme/**", ())

    def test_owner_always_passes_own_dapplets(self):
        registry = Registry()
        assert registry.check("alice", "acme/app/x", "rpc.call:admin",
                              owner="alice")
        assert not registry.check("bob", "acme/app/x", "rpc.call:admin",
                                  owner="alice")

    def test_decisions_are_cached_until_invalidated(self):
        registry = Registry()
        registry.grant("bob", "acme/**", ("session.establish",))
        for _ in range(5):
            assert registry.check("bob", "acme/app/x", "session.establish")
        assert registry.stats.cache_misses == 1
        assert registry.stats.cache_hits == 4
        # A different owner key is a different decision.
        registry.check("bob", "acme/app/x", "session.establish",
                       owner="alice")
        assert registry.stats.cache_misses == 2

    def test_revocation_is_visible_on_the_next_check(self):
        registry = Registry()
        registry.grant("bob", "acme/**", ("session.establish",))
        assert registry.check("bob", "acme/app/x", "session.establish")
        assert registry.revoke("bob") == 1
        assert not registry.check("bob", "acme/app/x", "session.establish")

    def test_revoke_by_pattern_keeps_other_grants(self):
        registry = Registry()
        registry.grant("bob", "acme/**", ("session.establish",))
        registry.grant("bob", "rice/**", ("session.establish",))
        assert registry.revoke("bob", dapplet_pattern="acme/**") == 1
        assert not registry.check("bob", "acme/app/x", "session.establish")
        assert registry.check("bob", "rice/app/x", "session.establish")

    def test_revoke_by_verb_matches_wildcard_grants(self):
        registry = Registry()
        registry.grant("bob", "acme/**", ("rpc.call:*",))
        registry.grant("bob", "acme/**", ("session.establish",))
        assert registry.revoke("bob", verb="rpc.call:read") == 1
        assert not registry.check("bob", "acme/app/x", "rpc.call:bump")
        assert registry.check("bob", "acme/app/x", "session.establish")

    def test_revoking_nothing_returns_zero(self):
        registry = Registry()
        epoch = registry.epoch
        assert registry.revoke("nobody") == 0
        assert registry.epoch == epoch

    def test_grants_for_and_epoch(self):
        registry = Registry()
        assert registry.grants_for("bob") == ()
        e0 = registry.epoch
        cap = registry.grant("bob", "acme/**", ("session.establish",))
        assert registry.grants_for("bob") == (cap,)
        assert registry.epoch == e0 + 1
        registry.revoke("bob")
        assert registry.epoch == e0 + 2


class TestQuotas:
    def test_most_permissive_matching_quota_wins(self):
        registry = Registry()
        registry.grant("bob", TOKEN_RESOURCE, ("token.request:gold",),
                       quota=2)
        registry.grant("bob", TOKEN_RESOURCE, ("token.request:*",), quota=5)
        assert registry.quota_for("bob", TOKEN_RESOURCE,
                                  "token.request:gold") == 5
        assert registry.quota_for("bob", TOKEN_RESOURCE,
                                  "token.request:iron") == 5

    def test_no_quota_means_unbounded(self):
        registry = Registry()
        registry.grant("bob", TOKEN_RESOURCE, ("token.request:gold",))
        assert registry.quota_for("bob", TOKEN_RESOURCE,
                                  "token.request:gold") is None
        assert registry.quota_for("carol", TOKEN_RESOURCE,
                                  "token.request:gold") is None


class TestAudit:
    def test_checks_emit_allow_and_deny_events(self):
        registry, tracer = audited_registry()
        registry.grant("bob", "acme/**", ("session.establish",))
        registry.check("bob", "acme/app/x", "session.establish",
                       node="enforcer")
        registry.check("bob", "acme/app/x", "session.establish")
        registry.check("eve", "acme/app/x", "session.establish")
        events = [(e.name, e.fields.get("principal"), e.fields.get("hit"))
                  for e in tracer.events if e.cat == "reg"]
        assert events == [("grant", "bob", None),
                          ("allow", "bob", 0),
                          ("allow", "bob", 1),
                          ("deny", "eve", 0)]
        allows = [e for e in tracer.events if e.name == "allow"]
        assert allows[0].node == "enforcer"
        # Synchronous checks take zero virtual time: deterministic clat.
        assert all(e.fields["clat"] == 0.0 for e in allows)
        assert tracer.summary()["histograms"]["reg.check"]["count"] == 3

    def test_revoke_is_audited_with_drop_count(self):
        registry, tracer = audited_registry()
        registry.grant("bob", "acme/**", ("session.establish",))
        registry.grant("bob", "rice/**", ("session.establish",))
        registry.revoke("bob")
        revokes = [e for e in tracer.events
                   if e.cat == "reg" and e.name == "revoke"]
        assert len(revokes) == 1
        assert revokes[0].fields["dropped"] == 2
        assert registry.stats.revokes == 2
