"""Tests for the Chandy-Lamport marker snapshot over a session.

Validation uses the classic conservation workload: members pass
"credits" around; at any consistent cut, credits in member states plus
credits in transit must equal the initial total.
"""

import pytest

from repro.dapplet import Dapplet
from repro.messages import Blob
from repro.net import UniformLatency
from repro.services.clocks import ChandyLamportSnapshot, incoming_channels
from repro.session import Initiator, SessionSpec
from repro.world import World

TOTAL = 90


class CreditDapplet(Dapplet):
    """Holds credits; ships random amounts to its session peers."""

    kind = "credit"

    def on_session_start(self, ctx):
        self.ctx = ctx
        self.credits = ctx.params["initial"]
        def local_state():
            # Credits applied to our balance plus credits delivered to
            # the inbox queue but not yet consumed: both are process
            # state, not channel state.
            queued = sum(m.data["amount"] for m in ctx.inbox("in").queued()
                         if isinstance(m, Blob))
            return {"credits": self.credits + queued}

        self.snap = ChandyLamportSnapshot(
            ctx, incoming=ctx.params["incoming"][ctx.member],
            state_fn=local_state)
        self.rng = self.world.kernel.rng.get(f"app/{self.name}")

        def run():
            for _ in range(ctx.params["rounds"]):
                if self.credits > 0:
                    amount = self.rng.randint(1, self.credits)
                    self.credits -= amount
                    self.ctx.outbox("out").send(Blob({"amount": amount}))
                yield self.world.kernel.timeout(self.rng.uniform(0.01, 0.1))
                while not ctx.inbox("in").is_empty:
                    msg = yield ctx.inbox("in").receive()
                    self.credits += msg.data["amount"]
            # Keep draining so late credits are absorbed.
            while True:
                msg = yield ctx.inbox("in").receive()
                self.credits += msg.data["amount"]

        return run()


def build_ring(world, n, rounds=20, initial=TOTAL):
    """A ring of credit dapplets; returns (initiator process result)."""
    spec = SessionSpec("credits")
    names = [f"m{i}" for i in range(n)]
    for name in names:
        spec.add_member(name, inboxes=("in",))
    for i, name in enumerate(names):
        spec.bind(name, "out", names[(i + 1) % n], "in")
    incoming = {name: incoming_channels(spec, name) for name in names}
    per_member = initial // n
    spec.params = {"rounds": rounds, "initial": per_member,
                   "incoming": incoming}
    return spec, names, per_member * n


@pytest.fixture
def world():
    return World(seed=11, latency=UniformLatency(0.01, 0.2))


def test_snapshot_conserves_credits(world):
    hosts = ["caltech.edu", "rice.edu", "utk.edu"]
    dapplets = {f"m{i}": world.dapplet(CreditDapplet, hosts[i % 3], f"m{i}")
                for i in range(3)}
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    spec, names, total = build_ring(world, 3)
    sums = []

    def director():
        session = yield from initiator.establish(spec)
        # Let traffic flow, then snapshot mid-flight, several times.
        for gen in range(3):
            yield world.kernel.timeout(0.3)
            dapplets["m0"].snap.initiate(f"g{gen}")
            results = []
            for n in names:
                d = dapplets[n]
                while d.snap.done is None:  # marker not yet arrived
                    yield world.kernel.timeout(0.01)
                results.append((yield d.snap.done))
            in_state = sum(r.state["credits"] for r in results)
            in_transit = sum(m.data["amount"]
                             for r in results
                             for msgs in r.channels.values()
                             for m in msgs)
            sums.append(in_state + in_transit)
            for n in names:
                dapplets[n].snap.reset()
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    assert sums == [total, total, total]


def test_snapshot_records_in_transit_messages(world):
    """With slow links and eager senders, some credits must be caught
    in the channels at least once across generations."""
    world = World(seed=13, latency=UniformLatency(0.05, 0.4))
    hosts = ["caltech.edu", "rice.edu", "utk.edu", "mit.edu"]
    dapplets = {f"m{i}": world.dapplet(CreditDapplet, hosts[i], f"m{i}")
                for i in range(4)}
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    spec, names, total = build_ring(world, 4, rounds=40)
    transit_counts = []

    def director():
        session = yield from initiator.establish(spec)
        for gen in range(4):
            yield world.kernel.timeout(0.25)
            dapplets["m0"].snap.initiate(f"g{gen}")
            results = []
            for n in names:
                d = dapplets[n]
                while d.snap.done is None:
                    yield world.kernel.timeout(0.01)
                results.append((yield d.snap.done))
            in_state = sum(r.state["credits"] for r in results)
            in_transit = sum(m.data["amount"]
                             for r in results
                             for msgs in r.channels.values()
                             for m in msgs)
            assert in_state + in_transit == total
            transit_counts.append(sum(len(msgs) for r in results
                                      for msgs in r.channels.values()))
            for n in names:
                dapplets[n].snap.reset()
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    assert any(c > 0 for c in transit_counts)


def test_incoming_channels_helper():
    spec = SessionSpec("x")
    spec.add_member("a", inboxes=("in",))
    spec.add_member("b", inboxes=("in",))
    spec.add_member("c", inboxes=("in",))
    spec.bind("a", "out", "b", "in")
    spec.bind("c", "out", "b", "in")
    spec.bind("b", "out", "c", "in")
    assert incoming_channels(spec, "b") == {"in": ("a/out", "c/out")}
    assert incoming_channels(spec, "c") == {"in": ("b/out",)}
    assert incoming_channels(spec, "a") == {}


def test_member_with_no_incoming_channels_completes_immediately(world):
    """A pure source records its state and is instantly done — the
    degenerate case of step 4 (no incoming channel to wait on)."""
    from repro.session import SessionSpec

    class Quiet(Dapplet):
        kind = "quiet"

        def on_session_start(self, ctx):
            self.snap = ChandyLamportSnapshot(
                ctx, incoming=ctx.params["incoming"][ctx.member])
            if "in" in ctx.inbox_names():
                def drain():
                    while ctx.active:
                        yield ctx.inbox("in").receive()
                self.spawn(drain(), name="drain")
            return None

    spec = SessionSpec("oneway")
    spec.add_member("src")
    spec.add_member("sink", inboxes=("in",))
    spec.bind("src", "out", "sink", "in")
    incoming = {name: incoming_channels(spec, name)
                for name in ("src", "sink")}
    spec.params = {"incoming": incoming}
    hosts = {"src": "caltech.edu", "sink": "rice.edu"}
    dapplets = {m: world.dapplet(Quiet, hosts[m], m)
                for m in ("src", "sink")}
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    results = []

    def director():
        session = yield from initiator.establish(spec)
        done = dapplets["src"].snap.initiate("g0")
        assert done.triggered  # no incoming channels: done on the spot
        results.append((yield done))
        yield from session.terminate()

    world.run(until=world.process(director()))
    world.run()
    assert results[0].member == "src"
    assert results[0].channels == {}


def test_stale_generation_marker_is_ignored(world):
    """A marker from a different snap_id must not complete (or corrupt)
    the current generation's recording."""
    from repro.services.clocks.snapshot import Marker

    dapplets = {f"m{i}": world.dapplet(CreditDapplet,
                                       ["caltech.edu", "rice.edu"][i],
                                       f"m{i}") for i in range(2)}
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    spec, names, total = build_ring(world, 2, rounds=2)
    outcomes = []

    def director():
        session = yield from initiator.establish(spec)
        snap = dapplets["m0"].snap
        snap.initiate("current")
        # A marker from a stale generation arrives on the recorded
        # channel: it must not mark that channel complete.
        recording_before = set(snap._recording)
        snap._on_marker(Marker(snap_id="stale", channel="m1/out"))
        assert set(snap._recording) == recording_before
        while snap.done is None or not snap.done.triggered:
            yield world.kernel.timeout(0.01)
        outcomes.append((yield snap.done))
        yield from session.terminate()

    world.run(until=world.process(director()))
    world.run()
    assert outcomes[0].snap_id == "current"


def test_double_initiate_rejected(world):
    from repro.errors import ClockError

    d = world.dapplet(CreditDapplet, "caltech.edu", "m0")
    d2 = world.dapplet(CreditDapplet, "rice.edu", "m1")
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    spec, names, total = build_ring(world, 2, rounds=1)
    errors = []

    def director():
        session = yield from initiator.establish(spec)
        d.snap.initiate("g0")
        try:
            d.snap.initiate("g1")
        except ClockError:
            errors.append("rejected")
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    assert errors == ["rejected"]
