"""Tests for intra-dapplet synchronization constructs."""

import pytest

from repro.errors import SingleAssignmentError, SynchronizationError
from repro.services.sync import Barrier, BoundedChannel, Semaphore, SingleAssignment
from repro.sim import Kernel


def test_barrier_releases_all_at_nth_arrival():
    k = Kernel()
    barrier = Barrier(k, 3)
    released = []

    def party(i, delay):
        yield k.timeout(delay)
        gen = yield barrier.arrive()
        released.append((i, gen, k.now))

    for i, delay in enumerate([1.0, 2.0, 3.0]):
        k.process(party(i, delay))
    k.run()
    assert [r[2] for r in released] == [3.0, 3.0, 3.0]
    assert all(r[1] == 0 for r in released)


def test_barrier_is_cyclic():
    k = Kernel()
    barrier = Barrier(k, 2)
    generations = []

    def party():
        for _ in range(3):
            gen = yield barrier.arrive()
            generations.append(gen)

    k.process(party())
    k.process(party())
    k.run()
    assert sorted(generations) == [0, 0, 1, 1, 2, 2]
    assert barrier.generation == 3


def test_barrier_validation():
    with pytest.raises(SynchronizationError):
        Barrier(Kernel(), 0)


def test_semaphore_limits_concurrency():
    k = Kernel()
    sem = Semaphore(k, 2)
    inside = [0]
    peak = [0]

    def worker():
        yield sem.acquire()
        inside[0] += 1
        peak[0] = max(peak[0], inside[0])
        yield k.timeout(1.0)
        inside[0] -= 1
        sem.release()

    for _ in range(6):
        k.process(worker())
    k.run()
    assert peak[0] == 2
    assert sem.permits == 2


def test_semaphore_fifo_fairness():
    k = Kernel()
    sem = Semaphore(k, 1)
    order = []

    def worker(i):
        yield k.timeout(i * 0.001)
        yield sem.acquire()
        order.append(i)
        yield k.timeout(1.0)
        sem.release()

    for i in range(4):
        k.process(worker(i))
    k.run()
    assert order == [0, 1, 2, 3]


def test_semaphore_try_acquire():
    k = Kernel()
    sem = Semaphore(k, 1)
    assert sem.try_acquire()
    assert not sem.try_acquire()
    sem.release()
    assert sem.try_acquire()


def test_semaphore_validation():
    with pytest.raises(SynchronizationError):
        Semaphore(Kernel(), -1)


def test_single_assignment_blocks_readers_until_set():
    k = Kernel()
    var = SingleAssignment(k)
    got = []

    def reader(i):
        value = yield var.get()
        got.append((i, value, k.now))

    for i in range(3):
        k.process(reader(i))
    k.call_later(2.0, lambda: var.set(42))
    k.run()
    assert got == [(0, 42, 2.0), (1, 42, 2.0), (2, 42, 2.0)]


def test_single_assignment_write_twice_raises():
    k = Kernel()
    var = SingleAssignment(k)
    var.set(1)
    assert var.is_set
    with pytest.raises(SingleAssignmentError):
        var.set(2)


def test_single_assignment_read_after_set_is_immediate():
    k = Kernel()
    var = SingleAssignment(k)
    var.set("x")
    got = []

    def reader():
        got.append((yield var.get()))

    k.process(reader())
    k.run()
    assert got == ["x"]


def test_bounded_channel_blocks_putter_when_full():
    k = Kernel()
    chan = BoundedChannel(k, capacity=1)
    log = []

    def producer():
        for i in range(3):
            yield chan.put(i)
            log.append(("put", i, k.now))

    def consumer():
        yield k.timeout(1.0)
        for _ in range(3):
            v = yield chan.get()
            log.append(("got", v, k.now))
            yield k.timeout(1.0)

    k.process(producer())
    k.process(consumer())
    k.run()
    puts = [e for e in log if e[0] == "put"]
    # First put immediate; second waits until the consumer frees a slot.
    assert puts[0][2] == 0.0
    assert puts[1][2] == 1.0
    gets = [e for e in log if e[0] == "got"]
    assert [g[1] for g in gets] == [0, 1, 2]


def test_bounded_channel_fifo():
    k = Kernel()
    chan = BoundedChannel(k, capacity=10)
    got = []

    def producer():
        for i in range(5):
            yield chan.put(i)

    def consumer():
        for _ in range(5):
            got.append((yield chan.get()))

    k.process(producer())
    k.process(consumer())
    k.run()
    assert got == [0, 1, 2, 3, 4]


def test_bounded_channel_rendezvous_capacity_zero():
    k = Kernel()
    chan = BoundedChannel(k, capacity=0)
    log = []

    def producer():
        yield chan.put("x")
        log.append(("put-done", k.now))

    def consumer():
        yield k.timeout(3.0)
        v = yield chan.get()
        log.append(("got", v, k.now))

    k.process(producer())
    k.process(consumer())
    k.run()
    assert ("put-done", 3.0) in log
    assert ("got", "x", 3.0) in log


def test_bounded_channel_getter_blocks_when_empty():
    k = Kernel()
    chan = BoundedChannel(k, capacity=5)
    got = []

    def consumer():
        got.append((yield chan.get()))

    k.process(consumer())
    k.call_later(2.0, lambda: chan.put("late"))
    k.run()
    assert got == ["late"]


def test_bounded_channel_validation():
    with pytest.raises(SynchronizationError):
        BoundedChannel(Kernel(), capacity=-1)
