"""Property tests for the sharded token service.

Three properties, each on both substrates where it makes sense:

* **Conservation** — under arbitrary request/release/transfer schedules
  with agents joining mid-run (churn), the per-colour sum of pool +
  reserved + held over every shard equals the initial grant. The
  sharded design makes this *instantaneous* (no message carries a
  token), so the check runs at the end of a random schedule regardless
  of whether the world quiesced.
* **Liveness** — two-phase workloads (request all-at-once, hold, release
  all) always complete on every agent: every satisfiable blocked
  request is eventually granted and the probe protocol never falsely
  kills one (zero deadlocks).
* **Determinism** — on the simulator the whole sharded exchange is a
  pure function of the seed: two runs of one schedule produce
  byte-identical token traces.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import AsyncioSubstrate, World
from repro.errors import DeadlockDetected, TokenError
from repro.net import ConstantLatency
from repro.obs import Tracer
from repro.services.tokens import ALL

from tests.services.test_tokens_sharded import Plain, colors_per_shard

ROSTER = 6  # agent names d0..d5; agents join lazily (churn)

ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=ROSTER - 1),   # agent index
        st.sampled_from(["request", "request2", "release", "release_all",
                         "transfer", "totals"]),
        st.integers(min_value=0, max_value=3),            # colour index
        st.one_of(st.integers(min_value=1, max_value=3),
                  st.just(ALL)),
        st.integers(min_value=0, max_value=ROSTER - 1),   # transfer target
        st.floats(min_value=0.0, max_value=0.3),          # think time
    ),
    min_size=1, max_size=25)


def run_schedule(world, service, colors, initial, script, *, done=None):
    """Drive ``script`` against ``service``; agents join on first use."""
    agents = {}

    def get_agent(idx):
        # Lazy creation is the churn: the roster joins the world
        # mid-schedule, in script order, with requests already in flight.
        if idx not in agents:
            d = world.dapplet(Plain, f"s{idx}.edu", f"d{idx}")
            agents[idx] = service.attach(d)
        return agents[idx]

    def driver():
        for idx, op, color_i, count, target, think in script:
            agent = get_agent(idx)
            color = colors[color_i % len(colors)]
            yield world.kernel.timeout(think)
            try:
                if op == "request":
                    # Bounded wait so adversarial scripts cannot hang
                    # the property; a timeout leaves a queued prepare,
                    # which conservation must still survive.
                    ev = agent.request({color: count})
                    yield ev | world.kernel.timeout(1.0)
                elif op == "request2":
                    other = colors[(color_i + 1) % len(colors)]
                    ev = agent.request({color: count, other: 1})
                    yield ev | world.kernel.timeout(1.0)
                elif op == "release":
                    agent.release({color: count})
                elif op == "release_all":
                    if agent.holds:
                        agent.release({c: ALL for c in agent.holds})
                elif op == "transfer":
                    agent.transfer(f"d{target}", {color: count})
                elif op == "totals":
                    totals = yield agent.total_tokens()
                    assert totals == initial
            except (TokenError, DeadlockDetected):
                pass  # invalid ops and deadlocks are legitimate outcomes
        if done is not None:
            done.succeed(None)

    world.process(driver())


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31),
       n_shards=st.integers(min_value=1, max_value=4), script=ops)
def test_conservation_under_churn_on_sim(seed, n_shards, script):
    by_home = colors_per_shard(n_shards)
    colors = sorted(c for cs in by_home.values() for c in cs)
    initial = {c: 3 for c in colors}
    world = World(seed=seed, latency=ConstantLatency(0.01))
    service = world.host_token_shards(n_shards, initial)
    run_schedule(world, service, colors, initial, script)
    world.run(until=20.0)
    # Mid-flight is fine: the invariant is instantaneous by design.
    service.check_conservation()
    world.run()
    service.check_conservation()
    assert service.total_tokens() == initial
    for shard in service.shards:
        for held in shard.holders.values():
            assert all(v > 0 for v in held.values())
        for color, n in shard.pool.items():
            assert 0 <= n <= shard.totals[color]


@settings(max_examples=3, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**31),
       script=ops.filter(lambda s: len(s) <= 10))
def test_conservation_under_churn_on_asyncio(seed, script):
    # Real loopback UDP: few examples, short scripts, wall timeout.
    by_home = colors_per_shard(2)
    colors = sorted(c for cs in by_home.values() for c in cs)
    initial = {c: 3 for c in colors}
    world = World(substrate=AsyncioSubstrate(seed=seed))
    try:
        service = world.host_token_shards(2, initial)
        done = world.kernel.event()
        run_schedule(world, service, colors, initial, script, done=done)
        world.run(until=done, wall_timeout=60)
        world.run(until=world.now + 1.0, wall_timeout=30)
        service.check_conservation()
        assert service.total_tokens() == initial
    finally:
        world.close()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31),
       n_shards=st.integers(min_value=1, max_value=4),
       n_agents=st.integers(min_value=2, max_value=5),
       rounds=st.integers(min_value=1, max_value=4))
def test_two_phase_workloads_always_complete_on_sim(seed, n_shards,
                                                    n_agents, rounds):
    """Liveness: all-at-once multi-shard requests always finish — no
    lost grants, no false deadlock victims, for every ring size."""
    by_home = colors_per_shard(n_shards)
    initial = {cs[0]: 1 for cs in by_home.values()}
    world = World(seed=seed, latency=ConstantLatency(0.01))
    service = world.host_token_shards(n_shards, initial)
    completed = []

    def worker(agent, tag):
        for _ in range(rounds):
            yield agent.request(dict.fromkeys(initial, 1))
            yield world.kernel.timeout(0.05)
            agent.release(dict.fromkeys(initial, 1))
        completed.append(tag)

    for i in range(n_agents):
        agent = service.attach(world.dapplet(Plain, f"s{i}.edu", f"d{i}"))
        world.process(worker(agent, i))
    world.run()
    assert sorted(completed) == list(range(n_agents))
    assert service.deadlocks == 0
    service.check_conservation()
    assert service.quiescent


@settings(max_examples=3, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_two_phase_workloads_always_complete_on_asyncio(seed):
    by_home = colors_per_shard(2)
    initial = {cs[0]: 1 for cs in by_home.values()}
    world = World(substrate=AsyncioSubstrate(seed=seed))
    try:
        service = world.host_token_shards(2, initial)
        completed = []
        done = world.kernel.event()

        def worker(agent, tag):
            for _ in range(2):
                yield agent.request(dict.fromkeys(initial, 1))
                yield world.kernel.timeout(0.02)
                agent.release(dict.fromkeys(initial, 1))
            completed.append(tag)
            if len(completed) == 3:
                done.succeed(None)

        for i in range(3):
            agent = service.attach(world.dapplet(Plain, f"s{i}.edu", f"d{i}"))
            world.process(worker(agent, i))
        world.run(until=done, wall_timeout=60)
        assert sorted(completed) == [0, 1, 2]
        assert service.deadlocks == 0
        service.check_conservation()
    finally:
        world.close()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31),
       n_shards=st.integers(min_value=1, max_value=4), script=ops)
def test_sim_repeats_are_byte_identical(seed, n_shards, script):
    """The whole sharded exchange — forwards, probes, grants, aborts —
    is a deterministic function of the seed on the simulator."""
    def one_run():
        by_home = colors_per_shard(n_shards)
        colors = sorted(c for cs in by_home.values() for c in cs)
        initial = {c: 3 for c in colors}
        tracer = Tracer(categories=["tokens"])
        world = World(seed=seed, latency=ConstantLatency(0.01),
                      tracer=tracer)
        service = world.host_token_shards(n_shards, initial)
        run_schedule(world, service, colors, initial, script)
        world.run(until=20.0)
        world.run()
        service.check_conservation()
        return tracer.to_jsonl()

    assert one_run() == one_run()
