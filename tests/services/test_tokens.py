"""Tests for the token-manager network, deadlock detection and protocols."""

import pytest

from repro.dapplet import Dapplet
from repro.errors import DeadlockDetected, TokenError
from repro.net import ConstantLatency
from repro.services.tokens import (
    ALL,
    ReadersWriterLock,
    TokenAgent,
    TokenCoordinator,
    TokenMutex,
)
from repro.world import World


class Plain(Dapplet):
    kind = "plain"


def make_world(initial, policy="fifo", n_agents=3, seed=3):
    world = World(seed=seed, latency=ConstantLatency(0.01))
    host = world.dapplet(Plain, "caltech.edu", "host")
    coord = TokenCoordinator(host, initial, policy=policy)
    agents = []
    for i in range(n_agents):
        d = world.dapplet(Plain, f"site{i}.edu", f"d{i}")
        agents.append(TokenAgent(d, coord.pointer))
    return world, coord, agents


def test_request_and_release_roundtrip():
    world, coord, (a, b, c) = make_world({"red": 2, "blue": 1})
    log = []

    def user():
        granted = yield a.request({"red": 1, "blue": 1})
        log.append(granted)
        assert a.holds == {"red": 1, "blue": 1}
        a.release({"red": 1, "blue": 1})
        assert a.holds == {}

    p = world.process(user())
    world.run(until=p)
    world.run()
    assert log == [{"red": 1, "blue": 1}]
    coord.check_conservation()


def test_request_blocks_until_available():
    world, coord, (a, b, c) = make_world({"red": 1})
    times = {}

    def holder():
        yield a.request({"red": 1})
        times["a"] = world.now
        yield world.kernel.timeout(5.0)
        a.release({"red": 1})

    def waiter():
        yield b.request({"red": 1})
        times["b"] = world.now

    world.process(holder())
    world.process(waiter())
    world.run()
    assert times["b"] > times["a"] + 5.0
    coord.check_conservation()


def test_request_all_of_color():
    world, coord, (a, b, c) = make_world({"red": 5})
    log = []

    def user():
        granted = yield a.request({"red": ALL})
        log.append(granted)
        a.release({"red": ALL})

    p = world.process(user())
    world.run(until=p)
    world.run()
    assert log == [{"red": 5}]
    coord.check_conservation()


def test_release_unheld_tokens_raises_locally():
    world, coord, (a, b, c) = make_world({"red": 1})
    with pytest.raises(TokenError):
        a.release({"red": 1})
    with pytest.raises(TokenError):
        a.release({"nonexistent": 2})


def test_request_validation():
    world, coord, (a, b, c) = make_world({"red": 1})
    with pytest.raises(TokenError):
        a.request({})
    with pytest.raises(TokenError):
        a.request({"red": 0})
    with pytest.raises(TokenError):
        a.request({"red": -2})
    with pytest.raises(TokenError):
        a.request({"red": True})


def test_unknown_color_fails_request():
    world, coord, (a, b, c) = make_world({"red": 1})
    failures = []

    def user():
        try:
            yield a.request({"green": 1})
        except DeadlockDetected:
            failures.append("failed")

    p = world.process(user())
    world.run(until=p)
    assert failures == ["failed"]


def test_total_tokens():
    world, coord, (a, b, c) = make_world({"red": 2, "blue": 7})
    log = []

    def user():
        totals = yield a.total_tokens()
        log.append(totals)

    p = world.process(user())
    world.run(until=p)
    assert log == [{"red": 2, "blue": 7}]


def test_two_agent_deadlock_detected():
    """a holds red and wants blue; b holds blue and wants red."""
    world, coord, (a, b, c) = make_world({"red": 1, "blue": 1})
    outcomes = []

    def alpha():
        yield a.request({"red": 1})
        yield world.kernel.timeout(1.0)
        try:
            yield a.request({"blue": 1})
            outcomes.append("a-granted")
        except DeadlockDetected as exc:
            outcomes.append(("a-deadlock", exc.cycle))

    def beta():
        yield b.request({"blue": 1})
        yield world.kernel.timeout(1.0)
        try:
            yield b.request({"red": 1})
            outcomes.append("b-granted")
        except DeadlockDetected as exc:
            outcomes.append(("b-deadlock", exc.cycle))

    world.process(alpha())
    world.process(beta())
    world.run(until=10.0)
    deadlocks = [o for o in outcomes if isinstance(o, tuple)]
    assert len(deadlocks) >= 1
    # The reported cycle mentions both agents.
    cycle = deadlocks[0][1]
    assert set(cycle) >= {"d0", "d1"}
    coord.check_conservation()


def test_three_agent_cycle_detected():
    world, coord, agents = make_world({"x": 1, "y": 1, "z": 1})
    a, b, c = agents
    outcomes = []

    def grab_then_want(agent, first, second, tag):
        yield agent.request({first: 1})
        yield world.kernel.timeout(1.0)
        try:
            yield agent.request({second: 1})
            outcomes.append((tag, "granted"))
        except DeadlockDetected:
            outcomes.append((tag, "deadlock"))

    world.process(grab_then_want(a, "x", "y", "a"))
    world.process(grab_then_want(b, "y", "z", "b"))
    world.process(grab_then_want(c, "z", "x", "c"))
    world.run(until=10.0)
    assert ("a", "deadlock") in outcomes or ("b", "deadlock") in outcomes \
        or ("c", "deadlock") in outcomes
    coord.check_conservation()


def test_two_phase_use_never_deadlocks():
    """The paper: releasing all before re-requesting avoids deadlock."""
    world, coord, agents = make_world({"x": 1, "y": 1}, n_agents=3)
    completed = []

    def worker(agent, tag):
        for _ in range(5):
            yield agent.request({"x": 1, "y": 1})  # all at once
            yield world.kernel.timeout(0.1)
            agent.release({"x": 1, "y": 1})
        completed.append(tag)

    for i, agent in enumerate(agents):
        world.process(worker(agent, i))
    world.run()
    assert sorted(completed) == [0, 1, 2]
    assert coord.deadlocks == 0
    coord.check_conservation()


def test_transfer_moves_tokens_between_agents():
    world, coord, (a, b, c) = make_world({"red": 3})
    log = []

    def giver():
        yield a.request({"red": 3})
        a.transfer("d1", {"red": 2})
        assert a.holds == {"red": 1}

    def receiver():
        # b must have contacted the coordinator once to be reachable.
        yield b.total_tokens()
        while not b.holds:
            yield world.kernel.timeout(0.1)
        log.append(dict(b.holds))
        log.append(b.transfers_received[0][0])

    world.process(giver())
    world.process(receiver())
    world.run(until=10.0)
    assert log == [{"red": 2}, "d0"]
    coord.check_conservation()


def test_transfer_to_unenrolled_agent_parks_tokens():
    """A transfer to a dead or never-enrolled agent still moves the
    holding at the coordinator — the tokens are parked under the target
    name (conservation intact), there is just nobody to notify."""
    world, coord, (a, b, c) = make_world({"red": 3})

    def giver():
        yield a.request({"red": 3})
        a.transfer("ghost", {"red": 2})
        assert a.holds == {"red": 1}

    p = world.process(giver())
    world.run(until=p)
    world.run()
    assert coord.holders["ghost"] == {"red": 2}
    coord.check_conservation()


def test_transfer_exceeding_held_raises_locally():
    world, coord, (a, b, c) = make_world({"red": 3})

    def user():
        yield a.request({"red": 2})
        with pytest.raises(TokenError):
            a.transfer("d1", {"red": 3})      # more than held
        with pytest.raises(TokenError):
            a.transfer("d1", {"blue": 1})     # colour not held at all
        # 'all of nothing' moves nothing and is not an error.
        a.transfer("d1", {"blue": ALL})
        assert a.holds == {"red": 2}

    p = world.process(user())
    world.run(until=p)
    world.run()
    assert "d1" not in coord.holders
    coord.check_conservation()


def test_transfer_racing_a_release():
    """A transfer landing while the receiver is concurrently releasing
    its own holding: both apply in coordinator order, the receiver ends
    up with exactly the transferred tokens."""
    world, coord, (a, b, c) = make_world({"red": 2})

    def setup_and_race():
        yield a.request({"red": 1})
        yield b.request({"red": 1})
        # Same instant: b gives its token back while a hands b another.
        b.release({"red": 1})
        a.transfer("d1", {"red": 1})

    p = world.process(setup_and_race())
    world.run(until=p)
    world.run()
    assert a.holds == {}
    assert b.holds == {"red": 1}
    assert b.transfers_received == [("d0", {"red": 1})]
    assert coord.holders.get("d1") == {"red": 1}
    assert coord.pool["red"] == 1
    coord.check_conservation()


def test_transfer_can_unblock_deadlock_free_waiter():
    world, coord, (a, b, c) = make_world({"red": 1})
    order = []

    def holder():
        yield a.request({"red": 1})
        order.append("a-got")
        yield world.kernel.timeout(1.0)
        a.release({"red": 1})

    def waiter():
        yield b.request({"red": 1})
        order.append("b-got")

    world.process(holder())
    world.process(waiter())
    world.run()
    assert order == ["a-got", "b-got"]


def test_mutex_protocol_mutual_exclusion():
    world, coord, agents = make_world({"obj": 1}, n_agents=3)
    in_cs = [0]
    max_in_cs = [0]

    def worker(agent):
        mutex = TokenMutex(agent, "obj")
        for _ in range(4):
            yield mutex.acquire()
            in_cs[0] += 1
            max_in_cs[0] = max(max_in_cs[0], in_cs[0])
            yield world.kernel.timeout(0.05)
            in_cs[0] -= 1
            mutex.release()

    for agent in agents:
        world.process(worker(agent))
    world.run()
    assert max_in_cs[0] == 1
    coord.check_conservation()


def test_mutex_release_without_hold_raises():
    world, coord, (a, b, c) = make_world({"obj": 1})
    mutex = TokenMutex(a, "obj")
    with pytest.raises(TokenError):
        mutex.release()


def test_readers_writer_protocol():
    world, coord, agents = make_world({"doc": 4}, n_agents=3)
    readers_now = [0]
    writer_now = [0]
    violations = []

    def reader(agent):
        lock = ReadersWriterLock(agent, "doc")
        for _ in range(5):
            yield lock.acquire_read()
            readers_now[0] += 1
            if writer_now[0]:
                violations.append("read-during-write")
            yield world.kernel.timeout(0.05)
            readers_now[0] -= 1
            lock.release_read()

    def writer(agent):
        lock = ReadersWriterLock(agent, "doc")
        for _ in range(3):
            yield lock.acquire_write()
            writer_now[0] += 1
            if readers_now[0] or writer_now[0] > 1:
                violations.append("overlap")
            yield world.kernel.timeout(0.05)
            writer_now[0] -= 1
            lock.release_write()

    world.process(reader(agents[0]))
    world.process(reader(agents[1]))
    world.process(writer(agents[2]))
    world.run()
    assert violations == []
    coord.check_conservation()


def test_coordinator_validation():
    world = World(seed=0)
    host = world.dapplet(Plain, "caltech.edu", "host")
    with pytest.raises(TokenError):
        TokenCoordinator(host, {"red": -1})
    with pytest.raises(TokenError):
        TokenCoordinator(host, {"red": 1}, policy="lifo")


def test_timestamp_policy_grants_in_order():
    """Under the timestamp policy the earliest request goes first even
    if a later, smaller request is satisfiable."""
    world, coord, (a, b, c) = make_world({"red": 2}, policy="timestamp")
    order = []

    def big_then_release():
        # Take both tokens, then release after the others have queued.
        yield a.request({"red": 2})
        yield world.kernel.timeout(2.0)
        a.release({"red": 2})

    def wants_two():
        yield world.kernel.timeout(0.5)
        yield b.request({"red": 2})
        order.append("two")
        b.release({"red": 2})

    def wants_one():
        yield world.kernel.timeout(1.0)
        yield c.request({"red": 1})
        order.append("one")
        c.release({"red": 1})

    world.process(big_then_release())
    world.process(wants_two())
    world.process(wants_one())
    world.run()
    # FIFO-opportunistic would let "one" jump the queue at release time;
    # timestamp order must serve "two" (earlier request) first.
    assert order == ["two", "one"]
