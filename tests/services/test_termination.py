"""Tests for Safra's termination detection."""

import pytest

from repro.dapplet import Dapplet
from repro.messages import Blob
from repro.net import ConstantLatency, UniformLatency
from repro.services.termination import TerminationDetector
from repro.world import World


class Worker(Dapplet):
    """Passes work items around a ring; goes passive when drained."""

    kind = "worker"

    def wire(self, ring, index, peers_inbox_addr, initial_work):
        self.detector = TerminationDetector(self, "g", ring, index)
        self.inbox = self.create_inbox(name="work")
        self.out = self.create_outbox()
        self.out.add(peers_inbox_addr)
        self.detector.watch_outbox(self.out)
        self.detector.watch_inbox(self.inbox)
        self.initial_work = initial_work
        self.processed = 0
        self.rng = self.world.kernel.rng.get(f"app/{self.name}")

    def main(self):
        def run():
            for _ in range(self.initial_work):
                self.out.send(Blob({"hops": 3}))
            self.detector.set_passive()
            while True:
                msg = yield self.inbox.receive()
                self.processed += 1
                if msg.data["hops"] > 0:
                    self.out.send(Blob({"hops": msg.data["hops"] - 1}))
                self.detector.set_passive()

        return run()


def build(world, n, initial_work=2):
    workers = []
    hosts = ["caltech.edu", "rice.edu", "utk.edu", "mit.edu", "ethz.ch"]
    for i in range(n):
        workers.append(world.dapplet(Worker, hosts[i % len(hosts)], f"w{i}"))
    ring = [w.address for w in workers]
    for i, w in enumerate(workers):
        nxt = workers[(i + 1) % n]
        w.wire(ring, i, nxt.address.inbox("work"),
               initial_work if i == 0 else 0)
    for w in workers:
        w.start()
    return workers


def test_detects_after_quiescence():
    world = World(seed=6, latency=ConstantLatency(0.02))
    workers = build(world, 3, initial_work=2)
    detections = []

    def watcher():
        t = yield workers[0].detector.detected
        detections.append(t)

    p = world.process(watcher())
    world.run(until=p)
    assert detections
    # Soundness: no worker processes a message after detection.
    processed_at_detection = [w.processed for w in workers]
    world.run(until=world.now + 10.0)
    assert [w.processed for w in workers] == processed_at_detection


def test_all_members_learn_of_termination():
    world = World(seed=7, latency=ConstantLatency(0.02))
    workers = build(world, 4, initial_work=1)
    times = []

    def watcher(w):
        t = yield w.detector.detected
        times.append((w.name, t))

    procs = [world.process(watcher(w)) for w in workers]
    for p in procs:
        world.run(until=p)
    assert len(times) == 4


def test_never_announces_while_work_in_flight():
    """Soundness under messy latencies: detection only after the real
    last application message was processed."""
    world = World(seed=8, latency=UniformLatency(0.01, 0.3))
    workers = build(world, 4, initial_work=3)
    last_processing_time = [0.0]
    detect_time = [None]

    # Track the latest time any application message was processed.
    for w in workers:
        original = w.inbox.delivery_hooks

        def make_hook(w=w):
            def hook(msg):
                last_processing_time[0] = world.now
                return msg
            return hook

        w.inbox.delivery_hooks.append(make_hook())

    def watcher():
        t = yield workers[0].detector.detected
        detect_time[0] = t

    p = world.process(watcher())
    world.run(until=p)
    assert detect_time[0] is not None
    assert detect_time[0] >= last_processing_time[0]


def test_detection_latency_grows_with_ring(benchmarkless=True):
    """Liveness: detection happens within a bounded number of rounds."""
    results = {}
    for n in (3, 6):
        world = World(seed=9, latency=ConstantLatency(0.05))
        workers = build(world, n, initial_work=1)
        done = []

        def watcher():
            t = yield workers[0].detector.detected
            done.append(t)

        p = world.process(watcher())
        world.run(until=p)
        results[n] = done[0]
        assert workers[0].detector.token_rounds <= 4
    assert results[6] > results[3]


def test_ring_validation():
    world = World(seed=0)
    w = world.dapplet(Worker, "caltech.edu", "w")
    with pytest.raises(ValueError):
        TerminationDetector(w, "g", [w.address], index=5)
    other = world.dapplet(Worker, "rice.edu", "w2")
    with pytest.raises(ValueError):
        TerminationDetector(w, "g", [other.address], index=0)
