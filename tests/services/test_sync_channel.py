"""Tests for the distributed bounded channel."""

import pytest

from repro.dapplet import Dapplet
from repro.errors import SynchronizationError
from repro.net import ConstantLatency
from repro.services.sync import DistributedChannel, SyncHost
from repro.world import World


class Plain(Dapplet):
    kind = "plain"


@pytest.fixture
def setting():
    world = World(seed=77, latency=ConstantLatency(0.01))
    host = SyncHost(world.dapplet(Plain, "caltech.edu", "host"))
    producer = world.dapplet(Plain, "rice.edu", "producer")
    consumer = world.dapplet(Plain, "utk.edu", "consumer")
    return world, host, producer, consumer


def test_items_flow_fifo(setting):
    world, host, producer, consumer = setting
    got = []

    def produce():
        chan = DistributedChannel(producer, host.pointer, "c", capacity=5)
        for i in range(5):
            yield chan.put(i)

    def consume():
        chan = DistributedChannel(consumer, host.pointer, "c", capacity=5)
        for _ in range(5):
            got.append((yield chan.get()))

    world.process(produce())
    world.process(consume())
    world.run()
    assert got == [0, 1, 2, 3, 4]


def test_put_blocks_when_full(setting):
    world, host, producer, consumer = setting
    log = []

    def produce():
        chan = DistributedChannel(producer, host.pointer, "c", capacity=1)
        yield chan.put("a")
        log.append(("a-done", world.now))
        yield chan.put("b")  # blocks until the consumer takes "a"
        log.append(("b-done", world.now))

    def consume():
        chan = DistributedChannel(consumer, host.pointer, "c", capacity=1)
        yield world.kernel.timeout(1.0)
        yield chan.get()
        yield chan.get()

    world.process(produce())
    world.process(consume())
    world.run()
    assert log[0][1] < 0.5
    assert log[1][1] >= 1.0


def test_get_blocks_when_empty(setting):
    world, host, producer, consumer = setting
    got = []

    def consume():
        chan = DistributedChannel(consumer, host.pointer, "c", capacity=3)
        value = yield chan.get()
        got.append((value, world.now))

    def produce():
        chan = DistributedChannel(producer, host.pointer, "c", capacity=3)
        yield world.kernel.timeout(2.0)
        yield chan.put("late")

    world.process(consume())
    world.process(produce())
    world.run()
    assert got and got[0][0] == "late" and got[0][1] >= 2.0


def test_rendezvous_capacity_zero(setting):
    world, host, producer, consumer = setting
    log = []

    def produce():
        chan = DistributedChannel(producer, host.pointer, "r", capacity=0)
        yield chan.put("x")
        log.append(("put-done", world.now))

    def consume():
        chan = DistributedChannel(consumer, host.pointer, "r", capacity=0)
        yield world.kernel.timeout(1.5)
        value = yield chan.get()
        log.append(("got", value))

    world.process(produce())
    world.process(consume())
    world.run()
    assert ("got", "x") in log
    put_done = [t for tag, t in log if tag == "put-done"]
    assert put_done and put_done[0] >= 1.5


def test_capacity_mismatch_errors(setting):
    world, host, producer, consumer = setting
    errors = []

    def first():
        chan = DistributedChannel(producer, host.pointer, "c", capacity=2)
        yield chan.put(1)

    def second():
        yield world.kernel.timeout(0.5)
        chan = DistributedChannel(consumer, host.pointer, "c", capacity=9)
        try:
            yield chan.get()
        except SynchronizationError as exc:
            errors.append(str(exc))

    world.process(first())
    p = world.process(second())
    world.run(until=p)
    assert errors and "capacity" in errors[0]


def test_many_producers_one_consumer(setting):
    world, host, producer, consumer = setting
    extra = world.dapplet(Plain, "mit.edu", "extra")
    got = []

    def produce(d, tag):
        chan = DistributedChannel(d, host.pointer, "c", capacity=2)
        for i in range(4):
            yield chan.put(f"{tag}{i}")

    def consume():
        chan = DistributedChannel(consumer, host.pointer, "c", capacity=2)
        for _ in range(8):
            got.append((yield chan.get()))

    world.process(produce(producer, "p"))
    world.process(produce(extra, "q"))
    world.process(consume())
    world.run()
    assert sorted(got) == sorted([f"p{i}" for i in range(4)]
                                 + [f"q{i}" for i in range(4)])
    # Per-producer order is preserved (their puts are sequential).
    assert [g for g in got if g.startswith("p")] == [f"p{i}" for i in range(4)]
