"""Tests for the per-machine resource manager extension."""

import pytest

from repro.dapplet import Dapplet
from repro.errors import RpcError
from repro.net import ConstantLatency
from repro.services.resource_manager import (
    ResourceManagerClient,
    install_resource_manager,
)
from repro.services.sync import DistributedBarrier
from repro.services.tokens import TokenAgent, TokenMutex
from repro.world import World


class Plain(Dapplet):
    kind = "plain"


@pytest.fixture
def setting():
    world = World(seed=71, latency=ConstantLatency(0.01))
    rm = install_resource_manager(world, "caltech.edu")
    dapplets = [world.dapplet(Plain, "caltech.edu", f"d{i}")
                for i in range(3)]
    return world, rm, dapplets


def test_service_registry_roundtrip(setting):
    world, rm, (a, b, c) = setting
    client_a = ResourceManagerClient(a, rm.pointer)
    client_b = ResourceManagerClient(b, rm.pointer)
    log = []

    def run():
        inbox = a.create_inbox(name="printer")
        ok = yield client_a.register("printer", inbox.named_address)
        log.append(ok)
        found = yield client_b.lookup("printer")
        log.append(found == inbox.named_address)
        services = yield client_b.list_services()
        log.append("printer" in services)
        missing = yield client_b.lookup("scanner")
        log.append(missing)

    world.run(until=world.process(run()))
    assert log == [True, True, True, None]


def test_register_conflict_reports_false(setting):
    world, rm, (a, b, c) = setting
    client = ResourceManagerClient(a, rm.pointer)
    log = []

    def run():
        i1 = a.create_inbox(name="svc1")
        i2 = a.create_inbox(name="svc2")
        log.append((yield client.register("svc", i1.named_address)))
        log.append((yield client.register("svc", i1.named_address)))  # same
        log.append((yield client.register("svc", i2.named_address)))  # clash

    world.run(until=world.process(run()))
    assert log == [True, True, False]


def test_shared_token_pool_via_manager(setting):
    """Two dapplets discover the same pool and exclude each other."""
    world, rm, (a, b, c) = setting
    in_cs = [0]
    peak = [0]

    def worker(d):
        client = ResourceManagerClient(d, rm.pointer)
        pointer = yield client.token_pool("files", {"obj": 1})
        agent = TokenAgent(d, pointer)
        mutex = TokenMutex(agent, "obj")
        for _ in range(3):
            yield mutex.acquire()
            in_cs[0] += 1
            peak[0] = max(peak[0], in_cs[0])
            yield world.kernel.timeout(0.05)
            in_cs[0] -= 1
            mutex.release()

    world.process(worker(a))
    world.process(worker(b))
    world.run()
    assert peak[0] == 1
    # One pool, hosted on the manager.
    assert list(rm.coordinators) == ["files"]
    rm.coordinators["files"].check_conservation()


def test_token_pool_creation_is_idempotent(setting):
    world, rm, (a, b, c) = setting
    pointers = []

    def run(d):
        client = ResourceManagerClient(d, rm.pointer)
        p1 = yield client.token_pool("pool", {"x": 2})
        p2 = yield client.token_pool("pool", {"ignored": 99})
        pointers.append((p1, p2))

    world.run(until=world.process(run(a)))
    p1, p2 = pointers[0]
    assert p1 == p2
    assert rm.coordinators["pool"].totals == {"x": 2}


def test_bad_policy_propagates_as_rpc_error(setting):
    world, rm, (a, b, c) = setting
    client = ResourceManagerClient(a, rm.pointer)
    caught = []

    def run():
        try:
            yield client.token_pool("p", {"x": 1}, policy="bogus")
        except RpcError as exc:
            caught.append(exc.remote_type)

    world.run(until=world.process(run()))
    assert caught == ["ValueError"]


def test_shared_sync_host_via_manager(setting):
    world, rm, dapplets = setting
    released = []

    def member(d):
        client = ResourceManagerClient(d, rm.pointer)
        pointer = yield client.sync_host("main")
        barrier = DistributedBarrier(d, pointer, "b", parties=3)
        gen = yield barrier.arrive()
        released.append(gen)

    for d in dapplets:
        world.process(member(d))
    world.run()
    assert released == [0, 0, 0]
    assert list(rm.sync_hosts) == ["main"]


def test_managers_per_machine_are_independent():
    world = World(seed=72, latency=ConstantLatency(0.01))
    rm1 = install_resource_manager(world, "caltech.edu")
    rm2 = install_resource_manager(world, "rice.edu")
    a = world.dapplet(Plain, "caltech.edu", "a")
    log = []

    def run():
        c1 = ResourceManagerClient(a, rm1.pointer)
        c2 = ResourceManagerClient(a, rm2.pointer)
        yield c1.token_pool("p", {"x": 1})
        # The other machine's manager knows nothing about it.
        found = yield c2.lookup("tokens:p")
        log.append(found)

    world.run(until=world.process(run()))
    assert log == [None]
    assert "p" in rm1.coordinators and "p" not in rm2.coordinators
