"""Tests for Lamport clocks, the snapshot criterion, and checkpointing."""

import pytest

from repro.dapplet import Dapplet
from repro.messages import Text
from repro.net import ConstantLatency, FaultPlan, UniformLatency
from repro.services.clocks import CheckpointService, LamportClock
from repro.world import World


class Plain(Dapplet):
    kind = "plain"


def linked_pair(world, h1="caltech.edu", h2="rice.edu"):
    a = world.dapplet(Plain, h1, f"a{world.allocate_port('x.edu')}")
    b = world.dapplet(Plain, h2, f"b{world.allocate_port('y.edu')}")
    ia = a.create_inbox(name="in")
    ib = b.create_inbox(name="in")
    oa = a.create_outbox()
    ob = b.create_outbox()
    oa.add(ib.address)
    ob.add(ia.address)
    return a, b, ia, ib, oa, ob


def test_every_dapplet_has_a_clock():
    world = World(seed=0)
    d = world.dapplet(Plain, "caltech.edu", "d")
    assert isinstance(d.clock, LamportClock)
    assert d.clock.time == 0


def test_send_ticks_and_stamps():
    world = World(seed=0, latency=ConstantLatency(0.01))
    a, b, ia, ib, oa, ob = linked_pair(world)
    t0 = a.clock.time
    oa.send(Text("m"))
    assert a.clock.time == t0 + 1
    assert a.clock.messages_stamped >= 1


def test_receive_advances_lagging_clock():
    world = World(seed=0, latency=ConstantLatency(0.01))
    a, b, ia, ib, oa, ob = linked_pair(world)
    for _ in range(10):
        a.clock.tick()  # a races ahead
    sent_at = []

    def sender():
        oa.send(Text("m"))
        sent_at.append(a.clock.time)
        yield world.kernel.timeout(0)

    def receiver():
        msg = yield ib.receive()
        assert msg.text == "m"  # app sees the unwrapped message

    world.process(sender())
    p = world.process(receiver())
    world.run(until=p)
    # The paper's receive rule: the receiver's clock now exceeds the stamp.
    assert b.clock.time > sent_at[0]


def test_receive_does_not_regress_leading_clock():
    world = World(seed=0, latency=ConstantLatency(0.01))
    a, b, ia, ib, oa, ob = linked_pair(world)
    for _ in range(50):
        b.clock.tick()
    before = b.clock.time

    def receiver():
        yield ib.receive()

    oa.send(Text("m"))
    p = world.process(receiver())
    world.run(until=p)
    assert b.clock.time == before  # already exceeded the stamp


def test_snapshot_criterion_holds_under_arbitrary_delays():
    """Property over a chatty run: every message sent at clock T is
    received when the receiver's clock exceeds T."""
    world = World(seed=9, latency=UniformLatency(0.001, 0.3),
                  faults=FaultPlan(drop_prob=0.1, reorder_jitter=0.2),
                  endpoint_options={"rto_initial": 0.1})
    dapplets = [world.dapplet(Plain, h, f"d{i}") for i, h in enumerate(
        ["caltech.edu", "rice.edu", "utk.edu"])]
    inboxes = {}
    outboxes = {}
    for d in dapplets:
        inboxes[d.name] = d.create_inbox(name="in")
    for d in dapplets:
        ob = d.create_outbox()
        for other in dapplets:
            if other is not d:
                ob.add(inboxes[other.name].address)
        outboxes[d.name] = ob

    violations = []

    def check_criterion(dapplet):
        clock = dapplet.clock

        def hook(message):
            # Runs after the clock's unwrap hook: the receiver's clock
            # must now exceed the stamp of the message being delivered.
            ts = clock.last_received_ts
            if ts is not None and clock.time <= ts:
                violations.append((dapplet.name, ts, clock.time))
            return message

        for inbox in dapplet.inboxes.values():
            inbox.delivery_hooks.append(hook)

    for d in dapplets:
        check_criterion(d)

    def chatter(d):
        for i in range(20):
            outboxes[d.name].send(Text(f"{d.name}:{i}"))
            yield world.kernel.timeout(0.05)

    def drain(d):
        while True:
            yield inboxes[d.name].receive()

    for d in dapplets:
        world.process(chatter(d))
        world.process(drain(d))
    world.run(until=30.0)
    assert violations == []


def test_checkpoint_taken_when_clock_crosses_T():
    world = World(seed=0, latency=ConstantLatency(0.01))
    a, b, ia, ib, oa, ob = linked_pair(world)
    a.state.region("cal").set("k", "v")
    cps = [CheckpointService(d, at_time=5) for d in (a, b)]

    def worker():
        for _ in range(10):
            oa.send(Text("m"))
            yield ib.receive()

    p = world.process(worker())
    world.run(until=p)
    for cp in cps:
        assert cp.taken is not None
        assert cp.taken.clock_when_taken >= 5
    assert cps[0].taken.state == {"cal": {"k": "v"}}


def test_checkpoint_global_consistency():
    """No checkpointed state reflects a message sent after the cut:
    equivalently, every channel message logged was stamped before T."""
    world = World(seed=4, latency=UniformLatency(0.01, 0.5))
    a, b, ia, ib, oa, ob = linked_pair(world)
    T = 8
    cps = {d.name: CheckpointService(d, at_time=T) for d in (a, b)}
    received = []

    def ping(out, inbox, n):
        for i in range(n):
            out.send(Text(str(i)))
            msg = yield inbox.receive()
            received.append(msg.text)

    world.process(ping(oa, ia, 15))
    world.process(ping(ob, ib, 15))
    world.run()
    for cp in cps.values():
        assert cp.taken is not None
        # channel_messages are exactly the pre-T-stamped stragglers.
        # (They were only logged when ts < T by construction; here we
        # check the cut is complete: counting messages delivered before
        # each side's checkpoint plus logged stragglers equals sends
        # stamped < T. Indirectly: no logged message after a clock that
        # had already exceeded its stamp at T.)
        for msg in cp.taken.channel_messages:
            assert isinstance(msg, Text)


def test_checkpoint_installed_late_takes_immediately():
    world = World(seed=0)
    d = world.dapplet(Plain, "caltech.edu", "d")
    for _ in range(10):
        d.clock.tick()
    cp = CheckpointService(d, at_time=5)
    assert cp.taken is not None
    assert cp.taken.clock_when_taken == 10


def test_checkpoint_validation():
    world = World(seed=0)
    d = world.dapplet(Plain, "caltech.edu", "d")
    with pytest.raises(ValueError):
        CheckpointService(d, at_time=0)


def test_clock_observers_fire_on_advance():
    world = World(seed=0)
    d = world.dapplet(Plain, "caltech.edu", "d")
    log = []
    d.clock.observers.append(lambda old, new: log.append((old, new)))
    d.clock.tick()
    d.clock.tick()
    assert log == [(0, 1), (1, 2)]
