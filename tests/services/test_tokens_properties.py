"""Property-based tests: token conservation under arbitrary operation
sequences — the paper's defining invariant ("tokens are objects that are
neither created nor destroyed")."""

from hypothesis import given, settings, strategies as st

from repro.dapplet import Dapplet
from repro.errors import DeadlockDetected, TokenError
from repro.net import ConstantLatency
from repro.services.tokens import ALL, TokenAgent, TokenCoordinator
from repro.world import World


class Plain(Dapplet):
    kind = "plain"


COLORS = ["red", "blue"]

ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),            # agent index
        st.sampled_from(["request", "release", "release_all", "transfer",
                         "totals"]),
        st.sampled_from(COLORS),
        st.one_of(st.integers(min_value=1, max_value=3),
                  st.just(ALL)),
        st.integers(min_value=0, max_value=2),            # transfer target
        st.floats(min_value=0.0, max_value=0.3),          # think time
    ),
    min_size=1, max_size=25)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31), script=ops)
def test_conservation_under_arbitrary_schedules(seed, script):
    world = World(seed=seed, latency=ConstantLatency(0.01))
    host = world.dapplet(Plain, "caltech.edu", "host")
    coordinator = TokenCoordinator(host, {"red": 3, "blue": 2})
    agents = [TokenAgent(world.dapplet(Plain, f"s{i}.edu", f"d{i}"),
                         coordinator.pointer) for i in range(3)]

    def driver():
        for idx, op, color, count, target, think in script:
            agent = agents[idx]
            yield world.kernel.timeout(think)
            try:
                if op == "request":
                    # Bounded wait so adversarial scripts cannot hang the
                    # property; a timeout leaves a pending request, which
                    # conservation must still survive.
                    ev = agent.request({color: count})
                    yield ev | world.kernel.timeout(1.0)
                elif op == "release":
                    agent.release({color: count})
                elif op == "release_all":
                    if agent.holds:
                        agent.release({c: ALL for c in agent.holds})
                elif op == "transfer":
                    agent.transfer(f"d{target}", {color: count})
                elif op == "totals":
                    totals = yield agent.total_tokens()
                    assert totals == {"red": 3, "blue": 2}
            except (TokenError, DeadlockDetected):
                pass  # invalid ops and deadlocks are legitimate outcomes

    p = world.process(driver())
    world.run(until=20.0)
    coordinator.check_conservation()
    # Pool never exceeds totals, holdings never negative.
    for color, total in coordinator.totals.items():
        assert 0 <= coordinator.pool.get(color, 0) <= total
    for held in coordinator.holders.values():
        assert all(v > 0 for v in held.values())


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31),
       n_agents=st.integers(min_value=2, max_value=4),
       rounds=st.integers(min_value=1, max_value=4))
def test_two_phase_discipline_always_completes(seed, n_agents, rounds):
    """The paper's avoidance claim as a property: request-all/release-all
    workloads never deadlock and always finish."""
    world = World(seed=seed, latency=ConstantLatency(0.01))
    host = world.dapplet(Plain, "caltech.edu", "host")
    coordinator = TokenCoordinator(host, {"x": 1, "y": 1})
    completed = []

    def worker(agent, tag):
        for _ in range(rounds):
            yield agent.request({"x": 1, "y": 1})
            yield world.kernel.timeout(0.05)
            agent.release({"x": 1, "y": 1})
        completed.append(tag)

    for i in range(n_agents):
        agent = TokenAgent(world.dapplet(Plain, f"s{i}.edu", f"d{i}"),
                           coordinator.pointer)
        world.process(worker(agent, i))
    world.run()
    assert sorted(completed) == list(range(n_agents))
    assert coordinator.deadlocks == 0
    coordinator.check_conservation()
