"""Integration tests for the sharded token service.

The consistent-hash ring, cross-shard atomic grants, forwarded
release/transfer, directory-based shard resolution, the paper's two
protocols running unchanged over shards — and the distributed deadlock
regressions: wait cycles spanning 2 and 3 shards (invisible to any
single manager) must be broken at exactly one victim by the
edge-chasing probe protocol.
"""

import itertools

import pytest

from repro.dapplet import Dapplet
from repro.errors import DeadlockDetected, TokenError
from repro.net import ConstantLatency
from repro.services.tokens import (
    ALL,
    ReadersWriterLock,
    ShardRing,
    TokenAgent,
    TokenMutex,
    TokenShard,
    resolve_shard,
)
from repro.world import World


class Plain(Dapplet):
    kind = "plain"


def colors_per_shard(n_shards, per_shard=1, prefix="c"):
    """Colour names homed on each shard of an ``n_shards`` world.

    Returns ``{shard_name: [colour, ...]}`` with ``per_shard`` colours
    per shard, found by scanning candidates against the same ring
    :meth:`World.host_token_shards` builds.
    """
    ring = ShardRing([f"_tok{i}" for i in range(n_shards)])
    found = {name: [] for name in ring.names}
    for i in itertools.count():
        bucket = found[ring.home(f"{prefix}{i}")]
        if len(bucket) < per_shard:
            bucket.append(f"{prefix}{i}")
        if all(len(v) == per_shard for v in found.values()):
            return found


def make_sharded(initial, n_shards=4, n_agents=3, policy="fifo", seed=3):
    world = World(seed=seed, latency=ConstantLatency(0.01))
    service = world.host_token_shards(n_shards, initial, policy=policy)
    agents = [service.attach(world.dapplet(Plain, f"site{i}.edu", f"d{i}"))
              for i in range(n_agents)]
    return world, service, agents


# -- the ring ---------------------------------------------------------------


def test_ring_home_is_deterministic_and_split_ordered():
    ring = ShardRing(["_tok0", "_tok1", "_tok2"])
    again = ShardRing(["_tok2", "_tok1", "_tok0"])  # order-insensitive
    for key in ("red", "blue", "agent-17", "c99"):
        assert ring.home(key) == again.home(key)
        assert ring.home(key) in ring.names
    groups = ring.split({f"c{i}": 1 for i in range(40)})
    assert [name for name, _ in groups] == sorted(name for name, _ in groups)
    assert sum(len(g) for _, g in groups) == 40


def test_ring_growth_only_moves_keys_to_the_new_shard():
    small = ShardRing([f"_tok{i}" for i in range(3)])
    grown = ShardRing([f"_tok{i}" for i in range(4)])
    for i in range(200):
        before, after = small.home(f"k{i}"), grown.home(f"k{i}")
        assert after == before or after == "_tok3"


def test_ring_validation():
    with pytest.raises(TokenError):
        ShardRing([])


# -- routing and atomic grants ----------------------------------------------


def test_single_shard_roundtrip():
    world, service, (a, b, c) = make_sharded({"red": 2, "blue": 1},
                                             n_shards=1)
    log = []

    def user():
        granted = yield a.request({"red": 1, "blue": 1})
        log.append(granted)
        assert a.holds == {"red": 1, "blue": 1}
        a.release({"red": 1, "blue": 1})

    p = world.process(user())
    world.run(until=p)
    world.run()
    assert log == [{"red": 1, "blue": 1}]
    service.check_conservation()
    assert service.quiescent


def test_multi_shard_request_granted_atomically():
    by_home = colors_per_shard(4)
    initial = {cs[0]: 2 for cs in by_home.values()}
    world, service, (a, b, c) = make_sharded(initial, n_shards=4)
    want = {color: 1 for color in initial}
    assert len({service.ring.home(c) for c in want}) == 4
    log = []

    def user():
        granted = yield a.request(want)
        log.append(granted)
        service.check_conservation()  # mid-hold, instantaneous
        a.release(want)

    p = world.process(user())
    world.run(until=p)
    world.run()
    assert log == [want]
    assert service.grants == 1
    assert service.forwards > 0  # prepares really crossed shards
    service.check_conservation()
    assert service.quiescent


def test_any_shard_accepts_any_colour():
    """An agent talks only to its home shard; colours homed elsewhere
    are reached by manager-to-manager forwarding."""
    by_home = colors_per_shard(3)
    initial = {cs[0]: 1 for cs in by_home.values()}
    world, service, agents = make_sharded(initial, n_shards=3, n_agents=1)
    (a,) = agents
    agent_home = service.ring.home("d0")
    foreign = next(c for c in initial if service.ring.home(c) != agent_home)
    done = []

    def user():
        yield a.request({foreign: 1})
        a.release({foreign: 1})
        done.append(True)

    p = world.process(user())
    world.run(until=p)
    world.run()
    assert done == [True]
    assert service.by_name[agent_home].forwards > 0
    service.check_conservation()


def test_all_sentinel_resolved_per_home_shard():
    by_home = colors_per_shard(3)
    c_a, c_b = by_home["_tok0"][0], by_home["_tok1"][0]
    world, service, agents = make_sharded({c_a: 3, c_b: 5}, n_shards=3,
                                          n_agents=1)
    (a,) = agents
    log = []

    def user():
        granted = yield a.request({c_a: ALL, c_b: ALL})
        log.append(granted)
        a.release({c_a: ALL, c_b: ALL})

    p = world.process(user())
    world.run(until=p)
    world.run()
    assert log == [{c_a: 3, c_b: 5}]
    service.check_conservation()


def test_unknown_colour_fails_request():
    world, service, agents = make_sharded({"red": 1}, n_shards=2, n_agents=1)
    (a,) = agents
    failures = []

    def user():
        try:
            yield a.request({"green": 1})
        except DeadlockDetected:
            failures.append("failed")

    p = world.process(user())
    world.run(until=p)
    assert failures == ["failed"]


def test_total_tokens_reports_global_totals():
    by_home = colors_per_shard(4)
    initial = {cs[0]: i + 1 for i, cs in enumerate(by_home.values())}
    world, service, agents = make_sharded(initial, n_shards=4, n_agents=1)
    (a,) = agents
    log = []

    def user():
        totals = yield a.total_tokens()
        log.append(totals)

    p = world.process(user())
    world.run(until=p)
    assert log == [initial]
    assert service.total_tokens() == initial


def test_cross_shard_transfer_notifies_receiver():
    """Transferred holdings move at the colour's home shard; the notice
    is forwarded to the *receiver's* home shard, which knows its inbox."""
    world = World(seed=3, latency=ConstantLatency(0.01))
    service = world.host_token_shards(4, {"red": 3})
    # Agent names chosen to live on different home shards.
    ring = ShardRing([f"_tok{i}" for i in range(4)])
    names = ["d0"] + [f"d{i}" for i in range(1, 50)
                      if ring.home(f"d{i}") != ring.home("d0")][:1]
    giver_name, receiver_name = names
    a = service.attach(world.dapplet(Plain, "site0.edu", giver_name))
    b = service.attach(world.dapplet(Plain, "site1.edu", receiver_name))
    log = []

    def giver():
        yield a.request({"red": 3})
        a.transfer(receiver_name, {"red": 2})
        assert a.holds == {"red": 1}

    def receiver():
        yield b.total_tokens()  # registers the inbox at its home shard
        while not b.holds:
            yield world.kernel.timeout(0.1)
        log.append(dict(b.holds))
        log.append(b.transfers_received[0][0])

    world.process(giver())
    world.process(receiver())
    world.run(until=10.0)
    assert log == [{"red": 2}, giver_name]
    service.check_conservation()


# -- distributed deadlock detection -----------------------------------------


def _grab_then_want(world, agent, first, second, outcomes, tag, stagger):
    yield agent.request({first: 1})
    yield world.kernel.timeout(1.0 + stagger)
    try:
        yield agent.request({second: 1})
        outcomes.append((tag, "granted"))
        agent.release({second: 1})
    except DeadlockDetected as exc:
        outcomes.append((tag, "deadlock", exc.cycle))
    agent.release({first: 1})


def test_two_shard_cycle_detected_at_exactly_one_victim():
    """d0 holds x (home shard A) and wants y (home B); d1 holds y and
    wants x. Each shard sees one waiter and one foreign holder — no
    local cycle anywhere — so only the probe protocol can find it."""
    by_home = colors_per_shard(2)
    x, y = by_home["_tok0"][0], by_home["_tok1"][0]
    world, service, (a, b, c) = make_sharded({x: 1, y: 1}, n_shards=2)
    outcomes = []

    world.process(_grab_then_want(world, a, x, y, outcomes, "a", 0.0))
    world.process(_grab_then_want(world, b, y, x, outcomes, "b", 0.3))
    world.run(until=30.0)
    world.run()
    deadlocks = [o for o in outcomes if o[1] == "deadlock"]
    granted = [o for o in outcomes if o[1] == "granted"]
    assert len(deadlocks) == 1
    assert service.deadlocks == 1
    # The survivor's blocked request was granted once the victim aborted.
    assert len(granted) == 1
    # The reported cycle names both agents.
    assert set(deadlocks[0][2]) == {"d0", "d1"}
    service.check_conservation()
    assert service.quiescent
    assert service.total_tokens() == {x: 1, y: 1}


def test_three_shard_cycle_detected_at_exactly_one_victim():
    by_home = colors_per_shard(3)
    x, y, z = (by_home[f"_tok{i}"][0] for i in range(3))
    world, service, (a, b, c) = make_sharded({x: 1, y: 1, z: 1}, n_shards=3)
    outcomes = []

    world.process(_grab_then_want(world, a, x, y, outcomes, "a", 0.0))
    world.process(_grab_then_want(world, b, y, z, outcomes, "b", 0.3))
    world.process(_grab_then_want(world, c, z, x, outcomes, "c", 0.6))
    world.run(until=30.0)
    world.run()
    deadlocks = [o for o in outcomes if o[1] == "deadlock"]
    granted = [o for o in outcomes if o[1] == "granted"]
    assert len(deadlocks) == 1
    assert service.deadlocks == 1
    assert len(granted) == 2
    assert service.probes_sent > 0
    service.check_conservation()
    assert service.quiescent


def test_atomic_requests_never_deadlock():
    """All-at-once requests spanning shards are prepared in a global
    acquisition order, so heavy contention causes waits, not cycles."""
    by_home = colors_per_shard(3)
    initial = {cs[0]: 1 for cs in by_home.values()}
    world, service, agents = make_sharded(initial, n_shards=3, n_agents=4,
                                          seed=11)
    completed = []

    def worker(agent, tag):
        for _ in range(5):
            yield agent.request(dict.fromkeys(initial, 1))  # all at once
            yield world.kernel.timeout(0.05)
            agent.release(dict.fromkeys(initial, 1))
        completed.append(tag)

    for i, agent in enumerate(agents):
        world.process(worker(agent, i))
    world.run()
    assert sorted(completed) == [0, 1, 2, 3]
    assert service.deadlocks == 0
    service.check_conservation()
    assert service.quiescent


# -- the paper's protocols, unchanged over shards ---------------------------


def test_mutex_protocol_over_shards():
    world, service, agents = make_sharded({"obj": 1}, n_shards=4)
    in_cs = [0]
    max_in_cs = [0]

    def worker(agent):
        mutex = TokenMutex(agent, "obj")
        for _ in range(4):
            yield mutex.acquire()
            in_cs[0] += 1
            max_in_cs[0] = max(max_in_cs[0], in_cs[0])
            yield world.kernel.timeout(0.05)
            in_cs[0] -= 1
            mutex.release()

    for agent in agents:
        world.process(worker(agent))
    world.run()
    assert max_in_cs[0] == 1
    service.check_conservation()


def test_readers_writer_protocol_over_shards():
    world, service, agents = make_sharded({"doc": 4}, n_shards=4)
    readers_now = [0]
    writer_now = [0]
    violations = []

    def reader(agent):
        lock = ReadersWriterLock(agent, "doc")
        for _ in range(5):
            yield lock.acquire_read()
            readers_now[0] += 1
            if writer_now[0]:
                violations.append("read-during-write")
            yield world.kernel.timeout(0.05)
            readers_now[0] -= 1
            lock.release_read()

    def writer(agent):
        lock = ReadersWriterLock(agent, "doc")
        for _ in range(3):
            yield lock.acquire_write()
            writer_now[0] += 1
            if readers_now[0] or writer_now[0] > 1:
                violations.append("overlap")
            yield world.kernel.timeout(0.05)
            writer_now[0] -= 1
            lock.release_write()

    world.process(reader(agents[0]))
    world.process(reader(agents[1]))
    world.process(writer(agents[2]))
    world.run()
    assert violations == []
    service.check_conservation()


# -- discovery enrollment ---------------------------------------------------


def test_resolve_shard_through_directory():
    """Shard hosts enroll like any dapplet; an agent can find a colour's
    home manager by ring name through the replicated directory."""
    world = World(seed=5, latency=ConstantLatency(0.01))
    world.host_directory(2)
    service = world.host_token_shards(3, {"red": 2})
    probe = world.dapplet(Plain, "probe.edu", "probe")
    resolver = world.resolver_for(probe)
    log = []

    def user():
        yield world.kernel.timeout(2.0)  # let enrollment gossip settle
        pointer = yield from resolve_shard(resolver, service.ring, "red")
        assert pointer == service.pointer_for("red")
        agent = TokenAgent(probe, pointer)
        granted = yield agent.request({"red": 1})
        log.append(granted)
        agent.release({"red": 1})

    p = world.process(user())
    # No bare world.run() here: directory replicas gossip forever.
    world.run(until=p)
    world.run(until=world.now + 1.0)
    assert log == [{"red": 1}]
    service.check_conservation()


# -- construction guards ----------------------------------------------------


def test_shard_validation():
    world = World(seed=0)
    host = world.dapplet(Plain, "caltech.edu", "host")
    ring = ShardRing(["_tok0"])
    with pytest.raises(TokenError):
        TokenShard(host, ring, "_tok0", {"_tok0": host.address}, {"red": -1})
    with pytest.raises(TokenError):
        TokenShard(host, ring, "_tok0", {"_tok0": host.address}, {"red": 1},
                   policy="lifo")
    with pytest.raises(TokenError):
        TokenShard(host, ring, "_tok0", {}, {"red": 1})  # peers != ring


def test_timestamp_policy_orders_grants_at_the_home_shard():
    by_home = colors_per_shard(2)
    red = by_home["_tok0"][0]
    world, service, (a, b, c) = make_sharded({red: 2}, n_shards=2,
                                             policy="timestamp")
    order = []

    def big_then_release():
        yield a.request({red: 2})
        yield world.kernel.timeout(2.0)
        a.release({red: 2})

    def wants_two():
        yield world.kernel.timeout(0.5)
        yield b.request({red: 2})
        order.append("two")
        b.release({red: 2})

    def wants_one():
        yield world.kernel.timeout(1.0)
        yield c.request({red: 1})
        order.append("one")
        c.release({red: 1})

    world.process(big_then_release())
    world.process(wants_two())
    world.process(wants_one())
    world.run()
    assert order == ["two", "one"]
    service.check_conservation()
