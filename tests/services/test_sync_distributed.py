"""Tests for cross-dapplet synchronization constructs."""

import pytest

from repro.dapplet import Dapplet
from repro.errors import SingleAssignmentError, SynchronizationError
from repro.net import ConstantLatency
from repro.services.sync import (
    DistributedBarrier,
    DistributedSemaphore,
    DistributedSingleAssignment,
    SyncHost,
)
from repro.world import World


class Plain(Dapplet):
    kind = "plain"


@pytest.fixture
def setting():
    world = World(seed=4, latency=ConstantLatency(0.01))
    host_d = world.dapplet(Plain, "caltech.edu", "host")
    host = SyncHost(host_d)
    members = [world.dapplet(Plain, h, f"m{i}") for i, h in enumerate(
        ["caltech.edu", "rice.edu", "utk.edu"])]
    return world, host, members


def test_distributed_barrier(setting):
    world, host, members = setting
    released = []

    def party(d, delay):
        barrier = DistributedBarrier(d, host.pointer, "b", parties=3)
        yield world.kernel.timeout(delay)
        gen = yield barrier.arrive()
        released.append((d.name, gen, world.now))

    for d, delay in zip(members, [0.5, 1.0, 2.0]):
        world.process(party(d, delay))
    world.run()
    assert len(released) == 3
    # Nobody passes before the last arrival reaches the host.
    assert all(t > 2.0 for _, _, t in released)
    assert all(gen == 0 for _, gen, _ in released)


def test_distributed_barrier_multiple_generations(setting):
    world, host, members = setting
    log = []

    def party(d):
        barrier = DistributedBarrier(d, host.pointer, "b", parties=3)
        for _ in range(3):
            gen = yield barrier.arrive()
            log.append(gen)

    for d in members:
        world.process(party(d))
    world.run()
    assert sorted(log) == [0, 0, 0, 1, 1, 1, 2, 2, 2]


def test_distributed_barrier_party_mismatch(setting):
    world, host, members = setting
    errors = []

    def first(d):
        barrier = DistributedBarrier(d, host.pointer, "b", parties=2)
        yield barrier.arrive()

    def second(d):
        yield world.kernel.timeout(0.5)
        barrier = DistributedBarrier(d, host.pointer, "b", parties=5)
        try:
            yield barrier.arrive()
        except SynchronizationError as exc:
            errors.append(str(exc))

    world.process(first(members[0]))
    p = world.process(second(members[1]))
    world.run(until=p)
    assert errors and "parties" in errors[0]


def test_distributed_semaphore_mutual_exclusion(setting):
    world, host, members = setting
    inside = [0]
    peak = [0]

    def worker(d):
        sem = DistributedSemaphore(d, host.pointer, "s", permits=1)
        for _ in range(3):
            yield sem.acquire()
            inside[0] += 1
            peak[0] = max(peak[0], inside[0])
            yield world.kernel.timeout(0.2)
            inside[0] -= 1
            sem.release()

    for d in members:
        world.process(worker(d))
    world.run()
    assert peak[0] == 1


def test_distributed_semaphore_counts_permits(setting):
    world, host, members = setting
    inside = [0]
    peak = [0]

    def worker(d, i):
        sem = DistributedSemaphore(d, host.pointer, "s2", permits=2)
        yield sem.acquire()
        inside[0] += 1
        peak[0] = max(peak[0], inside[0])
        yield world.kernel.timeout(1.0)
        inside[0] -= 1
        sem.release()

    for i, d in enumerate(members):
        world.process(worker(d, i))
    world.run()
    assert peak[0] == 2


def test_distributed_single_assignment(setting):
    world, host, members = setting
    got = []

    def reader(d):
        var = DistributedSingleAssignment(d, host.pointer, "v")
        value = yield var.get()
        got.append((d.name, value))

    def writer(d):
        var = DistributedSingleAssignment(d, host.pointer, "v")
        yield world.kernel.timeout(1.0)
        yield var.set("answer")

    world.process(reader(members[0]))
    world.process(reader(members[1]))
    world.process(writer(members[2]))
    world.run()
    assert sorted(got) == [("m0", "answer"), ("m1", "answer")]


def test_distributed_single_assignment_double_set_fails(setting):
    world, host, members = setting
    outcomes = []

    def writer(d, value, delay):
        var = DistributedSingleAssignment(d, host.pointer, "v")
        yield world.kernel.timeout(delay)
        try:
            yield var.set(value)
            outcomes.append(("ok", value))
        except SingleAssignmentError:
            outcomes.append(("dup", value))

    world.process(writer(members[0], "first", 0.1))
    world.process(writer(members[1], "second", 0.5))
    world.run()
    assert ("ok", "first") in outcomes
    assert ("dup", "second") in outcomes


def test_single_client_interleaved_get_and_set(setting):
    """Request-id correlation: a blocked get and a later set on the same
    client handle resolve to the right callers."""
    world, host, members = setting
    log = []

    def worker(d):
        var = DistributedSingleAssignment(d, host.pointer, "v")
        get_ev = var.get()  # blocks: nothing set yet
        yield world.kernel.timeout(0.5)
        yield var.set(7)
        log.append(("set-ok", world.now))
        value = yield get_ev
        log.append(("got", value))

    p = world.process(worker(members[0]))
    world.run(until=p)
    assert log[0][0] == "set-ok"
    assert log[1] == ("got", 7)
