"""Tests for timestamp-priority conflict resolution (paper §4.2)."""

import pytest

from repro.dapplet import Dapplet
from repro.errors import TokenError
from repro.net import ConstantLatency
from repro.services.clocks import PrioritizedResources
from repro.services.tokens import TokenAgent, TokenCoordinator
from repro.world import World


class Plain(Dapplet):
    kind = "plain"


def make(policy, n=4, seed=5):
    world = World(seed=seed, latency=ConstantLatency(0.01))
    host = world.dapplet(Plain, "caltech.edu", "host")
    coord = TokenCoordinator(host, {"fork-l": 1, "fork-r": 1, "fork-m": 1},
                             policy=policy)
    agents = [TokenAgent(world.dapplet(Plain, f"s{i}.edu", f"d{i}"),
                         coord.pointer) for i in range(n)]
    return world, coord, agents


def test_two_phase_requests_all_satisfied_under_timestamp_policy():
    """The paper's guarantee: with two-phase use and finite holding,
    every request is eventually satisfied."""
    world, coord, agents = make("timestamp")
    completions = {a.name: 0 for a in agents}
    ROUNDS = 6

    def philosopher(agent, resources):
        prio = PrioritizedResources(agent, resources)
        for _ in range(ROUNDS):
            yield prio.acquire()
            yield world.kernel.timeout(0.05)
            prio.release()
            completions[agent.name] += 1

    # Everyone contends for overlapping resource pairs.
    world.process(philosopher(agents[0], {"fork-l": 1, "fork-r": 1}))
    world.process(philosopher(agents[1], {"fork-r": 1, "fork-m": 1}))
    world.process(philosopher(agents[2], {"fork-m": 1, "fork-l": 1}))
    world.process(philosopher(agents[3], {"fork-l": 1, "fork-r": 1}))
    world.run()
    assert all(c == ROUNDS for c in completions.values())
    assert coord.deadlocks == 0
    coord.check_conservation()


def test_requires_release_before_reacquire():
    world, coord, agents = make("timestamp")
    prio = PrioritizedResources(agents[0], {"fork-l": 1})
    errors = []

    def user():
        yield prio.acquire()
        try:
            prio.acquire()
        except TokenError:
            errors.append("double-acquire")
        prio.release()
        try:
            prio.release()
        except TokenError:
            errors.append("double-release")

    p = world.process(user())
    world.run(until=p)
    assert errors == ["double-acquire", "double-release"]


def test_empty_resource_set_rejected():
    world, coord, agents = make("timestamp")
    with pytest.raises(TokenError):
        PrioritizedResources(agents[0], {})


def test_wait_times_recorded():
    world, coord, agents = make("timestamp")
    prio = PrioritizedResources(agents[0], {"fork-l": 1})

    def user():
        yield prio.acquire()
        prio.release()

    p = world.process(user())
    world.run(until=p)
    assert prio.acquisitions == 1
    assert len(prio.wait_times) == 1
    assert prio.max_wait >= 0
