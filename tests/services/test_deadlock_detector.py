"""Focused tests for the coordinator's wait-for-graph deadlock detector."""

import pytest

from repro.dapplet import Dapplet
from repro.errors import DeadlockDetected
from repro.net import ConstantLatency
from repro.services.tokens import ALL, TokenAgent, TokenCoordinator
from repro.world import World


class Plain(Dapplet):
    kind = "plain"


def rig(initial, n_agents, policy="fifo", seed=93):
    world = World(seed=seed, latency=ConstantLatency(0.005))
    host = world.dapplet(Plain, "caltech.edu", "host")
    coordinator = TokenCoordinator(host, initial, policy=policy)
    agents = [TokenAgent(world.dapplet(Plain, f"s{i}.edu", f"d{i}"),
                         coordinator.pointer) for i in range(n_agents)]
    return world, coordinator, agents


def test_blocked_without_cycle_is_not_deadlock():
    """Waiting on a busy resource is not a deadlock."""
    world, coordinator, (a, b) = rig({"x": 1}, 2)
    order = []

    def holder():
        yield a.request({"x": 1})
        yield world.kernel.timeout(1.0)
        a.release({"x": 1})

    def waiter():
        yield b.request({"x": 1})
        order.append("granted")

    world.process(holder())
    world.process(waiter())
    world.run()
    assert order == ["granted"]
    assert coordinator.deadlocks == 0


def test_self_wait_is_not_a_cycle():
    """An agent requesting more of a colour while holding some of it
    blocks (scarcity) but is not 'waiting on itself'."""
    world, coordinator, (a, b) = rig({"x": 2}, 2)
    outcome = []

    def greedy():
        yield a.request({"x": 2})
        ev = a.request({"x": 1})  # nothing left; blocks, no cycle
        got = yield ev | world.kernel.timeout(1.0)
        outcome.append(ev.triggered)
        a.release({"x": 2})
        yield ev  # now grantable
        outcome.append("eventually")

    p = world.process(greedy())
    world.run(until=p)
    world.run()
    assert outcome == [False, "eventually"]
    assert coordinator.deadlocks == 0


def test_deadlock_formed_by_grant_not_request():
    """The cycle's last edge appears when a *grant* makes a colour
    scarce, with no new request arriving — the detector must sweep
    after grants too."""
    world, coordinator, (a, b, c) = rig({"x": 1, "y": 1, "z": 1}, 3)
    events = []

    def agent_a():
        yield a.request({"x": 1})
        yield world.kernel.timeout(0.2)
        try:
            yield a.request({"y": 1})
            events.append("a-granted")
            a.release({"y": 1})
        except DeadlockDetected:
            events.append("a-deadlock")

    def agent_b():
        yield b.request({"y": 1})
        yield world.kernel.timeout(0.4)
        try:
            yield b.request({"x": 1})
            events.append("b-granted")
        except DeadlockDetected:
            events.append("b-deadlock")

    world.process(agent_a())
    world.process(agent_b())
    world.run(until=5.0)
    assert "a-deadlock" in events or "b-deadlock" in events
    coordinator.check_conservation()


def test_all_request_can_deadlock():
    """'all of a colour' requests participate in cycles too."""
    world, coordinator, (a, b) = rig({"x": 2, "y": 2}, 2)
    events = []

    def alpha():
        yield a.request({"x": ALL})
        yield world.kernel.timeout(0.2)
        try:
            yield a.request({"y": ALL})
            events.append("a-granted")
        except DeadlockDetected:
            events.append("a-deadlock")

    def beta():
        yield b.request({"y": ALL})
        yield world.kernel.timeout(0.2)
        try:
            yield b.request({"x": ALL})
            events.append("b-granted")
        except DeadlockDetected:
            events.append("b-deadlock")

    world.process(alpha())
    world.process(beta())
    world.run(until=5.0)
    assert any(e.endswith("deadlock") for e in events)


def test_partial_overlap_cycle_detected_with_bystander():
    """A bystander holding unrelated tokens must not appear in the
    reported cycle."""
    world, coordinator, agents = rig({"x": 1, "y": 1, "spare": 1}, 3)
    a, b, bystander = agents
    cycles = []

    def bystander_proc():
        yield bystander.request({"spare": 1})
        yield world.kernel.timeout(10.0)
        bystander.release({"spare": 1})

    def alpha():
        yield a.request({"x": 1})
        yield world.kernel.timeout(0.2)
        try:
            yield a.request({"y": 1})
        except DeadlockDetected as exc:
            cycles.append(exc.cycle)

    def beta():
        yield b.request({"y": 1})
        yield world.kernel.timeout(0.3)
        try:
            yield b.request({"x": 1})
        except DeadlockDetected as exc:
            cycles.append(exc.cycle)

    world.process(bystander_proc())
    world.process(alpha())
    world.process(beta())
    world.run(until=5.0)
    assert cycles
    assert "d2" not in cycles[0]  # the bystander is not implicated


def test_detection_breaks_cycle_others_proceed():
    """After one request is killed, the survivor gets its tokens."""
    world, coordinator, (a, b) = rig({"x": 1, "y": 1}, 2)
    events = []

    def alpha():
        yield a.request({"x": 1})
        yield world.kernel.timeout(0.2)
        try:
            yield a.request({"y": 1})
            events.append("a-completed")
            a.release({"x": 1, "y": 1})
        except DeadlockDetected:
            events.append("a-killed")
            a.release({"x": 1})  # back off, release what we hold

    def beta():
        yield b.request({"y": 1})
        yield world.kernel.timeout(0.3)
        try:
            yield b.request({"x": 1})
            events.append("b-completed")
            b.release({"x": 1, "y": 1})
        except DeadlockDetected:
            events.append("b-killed")
            b.release({"y": 1})

    world.process(alpha())
    world.process(beta())
    world.run(until=10.0)
    assert sorted(events) in (["a-completed", "b-killed"],
                              ["a-killed", "b-completed"])
    coordinator.check_conservation()
    assert coordinator.pool == {"x": 1, "y": 1}  # everything returned
