"""Unit and property tests for vector clocks."""

from hypothesis import given, strategies as st

from repro.services.clocks import VectorClock


def test_empty_clock():
    vc = VectorClock()
    assert vc.get("a") == 0
    assert vc == VectorClock({})


def test_tick_advances_one_component():
    vc = VectorClock().tick("a").tick("a").tick("b")
    assert vc.get("a") == 2
    assert vc.get("b") == 1
    assert vc.get("c") == 0


def test_tick_is_pure():
    v1 = VectorClock().tick("a")
    v2 = v1.tick("a")
    assert v1.get("a") == 1
    assert v2.get("a") == 2


def test_merge_takes_componentwise_max():
    a = VectorClock({"x": 3, "y": 1})
    b = VectorClock({"y": 5, "z": 2})
    m = a.merge(b)
    assert m == VectorClock({"x": 3, "y": 5, "z": 2})


def test_happens_before_chain():
    v0 = VectorClock()
    v1 = v0.tick("a")
    v2 = v1.tick("b")
    assert v0.happens_before(v1)
    assert v1.happens_before(v2)
    assert v0.happens_before(v2)
    assert not v1.happens_before(v1)
    assert not v2.happens_before(v1)


def test_concurrency_detection():
    base = VectorClock().tick("a")
    left = base.tick("b")
    right = base.tick("c")
    assert left.concurrent_with(right)
    assert not left.concurrent_with(left.tick("b"))


def test_wire_roundtrip():
    vc = VectorClock({"a": 2, "b": 1})
    assert VectorClock.from_dict(vc.to_dict()) == vc


def test_zero_components_are_dropped():
    assert VectorClock({"a": 0}) == VectorClock()


ids = st.sampled_from(["p", "q", "r"])
clocks = st.lists(ids, max_size=12).map(
    lambda ticks: _apply(ticks))


def _apply(ticks):
    vc = VectorClock()
    for t in ticks:
        vc = vc.tick(t)
    return vc


@given(clocks, clocks)
def test_merge_is_commutative(a, b):
    assert a.merge(b) == b.merge(a)


@given(clocks, clocks, clocks)
def test_merge_is_associative(a, b, c):
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


@given(clocks)
def test_merge_is_idempotent(a):
    assert a.merge(a) == a


@given(clocks, clocks)
def test_exactly_one_ordering_relation(a, b):
    relations = [a == b, a.happens_before(b), b.happens_before(a),
                 a.concurrent_with(b)]
    assert sum(relations) == 1


@given(clocks, clocks)
def test_merge_dominates_both(a, b):
    m = a.merge(b)
    assert a <= m and b <= m


@given(clocks)
def test_tick_strictly_advances(a):
    assert a.happens_before(a.tick("p"))
