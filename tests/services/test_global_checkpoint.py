"""Tests for the global-checkpoint collector and recovery flow."""

import pytest

from repro.dapplet import Dapplet
from repro.errors import ClockError
from repro.messages import Blob
from repro.net import UniformLatency
from repro.services.clocks import GlobalCheckpoint
from repro.world import World


class Node(Dapplet):
    kind = "node"


def chatty_ring(world, n=3):
    nodes = [world.dapplet(Node, f"s{i}.edu", f"d{i}") for i in range(n)]
    inboxes = [d.create_inbox(name="in") for d in nodes]
    outboxes = []
    for i, d in enumerate(nodes):
        ob = d.create_outbox()
        ob.add(inboxes[(i + 1) % n].address)
        outboxes.append(ob)

    def churn(i):
        for k in range(20):
            nodes[i].state.region("log").set(f"sent:{k}", True)
            outboxes[i].send(Blob({"k": k}))
            yield inboxes[i].receive()

    for i in range(n):
        world.process(churn(i))
    return nodes


def test_collect_restore_roundtrip():
    world = World(seed=83, latency=UniformLatency(0.01, 0.2))
    nodes = chatty_ring(world)
    services = GlobalCheckpoint.install(nodes, at_time=15)
    world.run()
    checkpoint = GlobalCheckpoint.collect(services)
    assert set(checkpoint.checkpoints) == {"d0", "d1", "d2"}

    # Corrupt live state, then recover from the checkpoint.
    before = {d.name: d.state.snapshot() for d in nodes}
    for d in nodes:
        d.state.region("log").set("corruption", True)
        d.state.region("garbage").set("x", 1)
    checkpoint.restore(world)
    for d in nodes:
        log = d.state.region("log")
        assert "corruption" not in log
        # The restored log matches what the checkpoint recorded.
        assert log.snapshot() == checkpoint.checkpoints[d.name].state.get(
            "log", {})


def test_collect_before_taken_raises():
    world = World(seed=84, latency=UniformLatency(0.01, 0.1))
    nodes = chatty_ring(world)
    services = GlobalCheckpoint.install(nodes, at_time=10_000)  # far future
    world.run()
    with pytest.raises(ClockError, match="not yet taken"):
        GlobalCheckpoint.collect(services)


def test_collect_mixed_times_raises():
    world = World(seed=85, latency=UniformLatency(0.01, 0.1))
    nodes = chatty_ring(world)
    services = GlobalCheckpoint.install(nodes[:2], at_time=5)
    services.update(GlobalCheckpoint.install(nodes[2:], at_time=7))
    world.run()
    with pytest.raises(ClockError, match="mixed"):
        GlobalCheckpoint.collect(services)


def test_replay_feeds_channel_messages():
    world = World(seed=86, latency=UniformLatency(0.05, 0.5))
    nodes = chatty_ring(world, n=4)
    services = GlobalCheckpoint.install(nodes, at_time=12)
    world.run()
    checkpoint = GlobalCheckpoint.collect(services)
    replayed = []
    count = checkpoint.replay(lambda name, msg: replayed.append((name, msg)))
    assert count == len(replayed)
    assert count == sum(len(cp.channel_messages)
                        for cp in checkpoint.checkpoints.values())
    for name, msg in replayed:
        assert isinstance(msg, Blob)
