"""Tests for the global-checkpoint collector and recovery flow."""

import pytest

from repro.dapplet import Dapplet
from repro.errors import ClockError
from repro.messages import Blob
from repro.net import UniformLatency
from repro.services.clocks import CheckpointService, GlobalCheckpoint
from repro.services.clocks.checkpoint import checkpoint_key
from repro.store import MemoryBackend
from repro.world import World


class Node(Dapplet):
    kind = "node"


def chatty_ring(world, n=3):
    nodes = [world.dapplet(Node, f"s{i}.edu", f"d{i}") for i in range(n)]
    inboxes = [d.create_inbox(name="in") for d in nodes]
    outboxes = []
    for i, d in enumerate(nodes):
        ob = d.create_outbox()
        ob.add(inboxes[(i + 1) % n].address)
        outboxes.append(ob)

    def churn(i):
        for k in range(20):
            nodes[i].state.region("log").set(f"sent:{k}", True)
            outboxes[i].send(Blob({"k": k}))
            yield inboxes[i].receive()

    for i in range(n):
        world.process(churn(i))
    return nodes


def test_collect_restore_roundtrip():
    world = World(seed=83, latency=UniformLatency(0.01, 0.2))
    nodes = chatty_ring(world)
    services = GlobalCheckpoint.install(nodes, at_time=15)
    world.run()
    checkpoint = GlobalCheckpoint.collect(services)
    assert set(checkpoint.checkpoints) == {"d0", "d1", "d2"}

    # Corrupt live state, then recover from the checkpoint.
    before = {d.name: d.state.snapshot() for d in nodes}
    for d in nodes:
        d.state.region("log").set("corruption", True)
        d.state.region("garbage").set("x", 1)
    checkpoint.restore(world)
    for d in nodes:
        log = d.state.region("log")
        assert "corruption" not in log
        # The restored log matches what the checkpoint recorded.
        assert log.snapshot() == checkpoint.checkpoints[d.name].state.get(
            "log", {})


def test_collect_before_taken_raises():
    world = World(seed=84, latency=UniformLatency(0.01, 0.1))
    nodes = chatty_ring(world)
    services = GlobalCheckpoint.install(nodes, at_time=10_000)  # far future
    world.run()
    with pytest.raises(ClockError, match="not yet taken"):
        GlobalCheckpoint.collect(services)


def test_collect_mixed_times_raises():
    world = World(seed=85, latency=UniformLatency(0.01, 0.1))
    nodes = chatty_ring(world)
    services = GlobalCheckpoint.install(nodes[:2], at_time=5)
    services.update(GlobalCheckpoint.install(nodes[2:], at_time=7))
    world.run()
    with pytest.raises(ClockError, match="mixed"):
        GlobalCheckpoint.collect(services)


def test_durable_cuts_flushed_and_loadable():
    """With a store, every service flushes its cut as it forms;
    GlobalCheckpoint.load rebuilds the whole thing straight from the
    backend — without the live services or even the live dapplets."""
    backend = MemoryBackend()
    world = World(seed=87, latency=UniformLatency(0.01, 0.2), store=backend)
    nodes = chatty_ring(world)
    services = GlobalCheckpoint.install(nodes, at_time=15)
    world.run()
    collected = GlobalCheckpoint.collect(services)
    loaded = GlobalCheckpoint.load(backend, 15)
    assert set(loaded.checkpoints) == set(collected.checkpoints)
    for name, cp in loaded.checkpoints.items():
        live = collected.checkpoints[name]
        assert cp.state == live.state
        assert cp.clock_when_taken == live.clock_when_taken
        assert cp.channel_messages == live.channel_messages


def test_load_unknown_time_raises():
    backend = MemoryBackend()
    world = World(seed=88, latency=UniformLatency(0.01, 0.1), store=backend)
    services = GlobalCheckpoint.install(chatty_ring(world), at_time=15)
    world.run()
    with pytest.raises(ClockError, match="no durable checkpoints"):
        GlobalCheckpoint.load(backend, 999)


def test_duplicate_triggers_are_idempotent():
    """Duplicate clock advances past T, explicit re-triggers, and a
    second service installation must all leave exactly one cut and
    exactly one durable snapshot of it."""
    backend = MemoryBackend()
    world = World(seed=89, latency=UniformLatency(0.01, 0.1), store=backend)
    nodes = chatty_ring(world)
    services = GlobalCheckpoint.install(nodes, at_time=15)
    world.run()
    d0 = nodes[0]
    service = services["d0"]
    cut = service.taken
    saved = d0.state.durable.stats["objects_saved"]
    service._take()                       # explicit re-trigger
    service._on_advance(14, 99)           # duplicate advance past T
    assert service.taken is cut           # the original cut, untouched
    assert d0.state.durable.stats["objects_saved"] == saved


def test_late_installation_takes_immediately():
    backend = MemoryBackend()
    world = World(seed=90, latency=UniformLatency(0.01, 0.1), store=backend)
    nodes = chatty_ring(world)
    world.run()  # no service installed: clocks run far past 5
    late = CheckpointService(nodes[0], 5)
    assert late.taken is not None
    assert late.taken.clock_when_taken >= 5
    assert late.taken.state == nodes[0].state.snapshot()
    # The late cut was still flushed durably.
    assert nodes[0].state.durable.load_object(
        checkpoint_key(5))["state"] == late.taken.state


def test_pre_t_messages_land_in_exactly_one_channel_log():
    """However many times an inbox gets announced to the service, each
    pre-T message is recorded once — in memory and in the durable log."""
    backend = MemoryBackend()
    world = World(seed=91, latency=UniformLatency(0.05, 0.5), store=backend)
    nodes = chatty_ring(world)
    services = GlobalCheckpoint.install(nodes, at_time=12)
    for d in nodes:  # re-announce every port, repeatedly
        for service in services.values():
            if service.dapplet is d:
                for inbox in d.inboxes.values():
                    service._hook_port(inbox)
                    service._hook_port(inbox)
    world.run()
    total_in_transit = 0
    for name, service in services.items():
        d = service.dapplet
        for inbox in d.inboxes.values():
            assert inbox.delivery_hooks.count(service._on_deliver) == 1
        logged = d.state.durable.read_log(checkpoint_key(12) + ".chan")
        assert logged == service.taken.channel_messages
        total_in_transit += len(logged)
    assert total_in_transit > 0  # slow links: something was in transit


def test_persist_false_writes_nothing():
    backend = MemoryBackend()
    world = World(seed=92, latency=UniformLatency(0.01, 0.1), store=backend)
    nodes = chatty_ring(world)
    services = {d.name: CheckpointService(d, 15, persist=False)
                for d in nodes}
    world.run()
    assert all(s.taken is not None for s in services.values())
    for d in nodes:
        assert d.state.durable.load_object(checkpoint_key(15)) is None
        assert d.state.durable.read_log(checkpoint_key(15) + ".chan") == []


def test_restart_from_checkpoint_erases_post_cut_regions():
    """Rolling a dapplet back to T must not leak regions born after
    the cut — and the rollback itself is durable."""
    backend = MemoryBackend()
    world = World(seed=93, latency=UniformLatency(0.01, 0.2), store=backend)
    nodes = chatty_ring(world)
    services = GlobalCheckpoint.install(nodes, at_time=15)
    world.run()
    cut_state = services["d0"].taken.state
    nodes[0].state.region("post").set("x", 1)   # born after the cut
    rolled = world.restart_dapplet("d0", from_checkpoint=15)
    assert rolled.state.snapshot() == cut_state
    # A further plain restart recovers the rolled-back state, not the
    # pre-rollback journal: the clears were journaled too.
    again = world.restart_dapplet("d0")
    assert again.state.snapshot() == cut_state


def test_replay_feeds_channel_messages():
    world = World(seed=86, latency=UniformLatency(0.05, 0.5))
    nodes = chatty_ring(world, n=4)
    services = GlobalCheckpoint.install(nodes, at_time=12)
    world.run()
    checkpoint = GlobalCheckpoint.collect(services)
    replayed = []
    count = checkpoint.replay(lambda name, msg: replayed.append((name, msg)))
    assert count == len(replayed)
    assert count == sum(len(cp.channel_messages)
                        for cp in checkpoint.checkpoints.values())
    for name, msg in replayed:
        assert isinstance(msg, Blob)
