"""Integration tests for the collaborative design application."""

import pytest

from repro.apps.design import DesignerDapplet, DocumentStore, design_spec
from repro.dapplet import Dapplet
from repro.net import ConstantLatency, GeoLatency
from repro.services.clocks import VectorClock
from repro.services.tokens import TokenCoordinator
from repro.session import Initiator
from repro.world import World

PARTS = ["engine", "chassis", "ui"]
TEAM = ["alice", "bob", "carol"]
HOSTS = ["caltech.edu", "ethz.ch", "u-tokyo.ac.jp"]


class Host(Dapplet):
    kind = "host"


def build(seed=41, with_tokens=True, latency=None):
    world = World(seed=seed, latency=latency or ConstantLatency(0.05))
    designers = {name: world.dapplet(DesignerDapplet, host, name)
                 for name, host in zip(TEAM, HOSTS)}
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    coordinator = None
    if with_tokens:
        token_host = world.dapplet(Host, "caltech.edu", "tokens")
        coordinator = TokenCoordinator(
            token_host, {f"part:{p}": len(TEAM) for p in PARTS})
    spec = design_spec(TEAM, PARTS,
                       token_coordinator=(coordinator.pointer
                                          if coordinator else None))
    return world, designers, initiator, spec, coordinator


def test_store_local_edits_advance_version():
    store = DocumentStore("alice")
    p1 = store.edit("engine", "v1")
    p2 = store.edit("engine", "v2")
    assert p2.version.get("alice") == 2
    assert p1.version.happens_before(p2.version) or p1.version == p2.version


def test_store_applies_newer_and_rejects_stale():
    store = DocumentStore("bob")
    vc1 = VectorClock().tick("alice")
    assert store.apply_remote("engine", "a1", vc1, "alice")
    assert store.part("engine").content == "a1"
    assert not store.apply_remote("engine", "a1", vc1, "alice")  # dup
    assert store.notices_stale == 1


def test_store_detects_concurrent_edits_and_converges():
    a = DocumentStore("alice")
    b = DocumentStore("bob")
    pa = a.edit("engine", "from-alice")
    pb = b.edit("engine", "from-bob")
    # Capture before cross-applying: Part objects are live replicas.
    a_state = (pa.content, pa.version)
    b_state = (pb.content, pb.version)
    a.apply_remote("engine", b_state[0], b_state[1], "bob")
    b.apply_remote("engine", a_state[0], a_state[1], "alice")
    assert len(a.conflicts) == 1 and len(b.conflicts) == 1
    # Deterministic resolution: both replicas converge.
    assert a.part("engine").content == b.part("engine").content == "from-alice"
    assert a.part("engine").version == b.part("engine").version


def test_locked_edits_propagate_without_conflicts():
    world, designers, initiator, spec, coord = build()
    done = []

    def director():
        session = yield from initiator.establish(spec)
        yield from designers["alice"].edit("engine", "v8 block")
        yield from designers["bob"].edit("chassis", "carbon tub")
        yield from designers["carol"].edit("engine", "v8 block, tuned")
        yield world.kernel.timeout(2.0)  # let notices spread
        done.append(True)
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    assert done
    for d in designers.values():
        assert d.store.part("engine").content == "v8 block, tuned"
        assert d.store.part("chassis").content == "carbon tub"
        assert d.store.conflicts == []
    coord.check_conservation()


def test_concurrent_locked_edits_serialize():
    """Two members editing the same part 'at the same time' take the
    write lock in turn; every replica converges on the later edit."""
    world, designers, initiator, spec, coord = build(seed=42)
    contents = []

    def director():
        session = yield from initiator.establish(spec)
        a = world.process(designers["alice"].edit("engine", "alice-design"))
        b = world.process(designers["bob"].edit("engine", "bob-design"))
        yield a & b
        yield world.kernel.timeout(2.0)
        contents.extend(d.store.part("engine").content
                        for d in designers.values())
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    assert len(set(contents)) == 1  # all replicas agree
    for d in designers.values():
        assert d.store.conflicts == []


def test_unlocked_edits_conflict_and_are_detected():
    world, designers, initiator, spec, coord = build(seed=43)
    conflicts = []

    def director():
        session = yield from initiator.establish(spec)
        # Simultaneous unlocked edits to the same part.
        designers["alice"].edit_unlocked("ui", "blue theme")
        designers["bob"].edit_unlocked("ui", "red theme")
        yield world.kernel.timeout(2.0)
        conflicts.extend(len(d.store.conflicts) for d in designers.values())
        contents = {d.store.part("ui").content for d in designers.values()}
        assert len(contents) == 1  # still converged, deterministically
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    # At least the two editors noticed the concurrency.
    assert sum(conflicts) >= 2


def test_fetch_pulls_part_state():
    world, designers, initiator, spec, coord = build(seed=44)
    got = []

    def director():
        session = yield from initiator.establish(spec)
        yield from designers["alice"].edit("engine", "prototype")
        yield world.kernel.timeout(1.0)
        # carol lost her replica; she re-fetches from alice.
        carol = designers["carol"]
        carol.store = DocumentStore("carol")
        carol.fetch("engine", "alice")
        yield world.kernel.timeout(1.0)
        got.append(carol.store.part("engine").content)
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    assert got == ["prototype"]


def test_edit_requires_session_and_coordinator():
    world, designers, initiator, spec, coord = build(with_tokens=False)
    with pytest.raises(RuntimeError):
        designers["alice"].edit_unlocked("engine", "x")
    errors = []

    def director():
        session = yield from initiator.establish(spec)
        try:
            yield from designers["alice"].edit("engine", "x")
        except RuntimeError as exc:
            errors.append("no-coordinator")
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    assert errors == ["no-coordinator"]


def test_design_session_lasts_across_wan(world=None):
    """Example Two over realistic geography (Caltech/Zurich/Tokyo)."""
    world, designers, initiator, spec, coord = build(
        seed=45, latency=GeoLatency())
    done = []

    def director():
        session = yield from initiator.establish(spec)
        yield from designers["carol"].edit("ui", "kanji support")
        yield world.kernel.timeout(5.0)
        done.append(all(d.store.part("ui").content == "kanji support"
                        for d in designers.values()))
        yield from session.terminate()

    p = world.process(director())
    world.run(until=p)
    assert done == [True]
