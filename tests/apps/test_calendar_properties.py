"""Property-based tests: scheduling correctness over arbitrary calendars."""

from hypothesis import given, settings, strategies as st

from repro.apps.calendar import (
    CalendarDapplet,
    MeetingDirector,
    SecretaryDapplet,
    busy_days,
    load_calendar,
    ring_schedule,
    schedule_meeting,
)
from repro.net import ConstantLatency
from repro.world import World

HORIZON = 6

busy_maps = st.lists(
    st.sets(st.integers(min_value=0, max_value=HORIZON - 1), max_size=HORIZON),
    min_size=2, max_size=5)


def expected_day(busy_lists):
    common = set(range(HORIZON))
    for busy in busy_lists:
        common -= set(busy)
    return min(common) if common else -1


def build(busy_lists, seed):
    world = World(seed=seed, latency=ConstantLatency(0.01))
    members = []
    for i, busy in enumerate(busy_lists):
        d = world.dapplet(CalendarDapplet, f"s{i}.edu", f"m{i}")
        load_calendar(d.state, sorted(busy))
        members.append(f"m{i}")
    world.dapplet(SecretaryDapplet, "caltech.edu", "sec")
    director = world.dapplet(MeetingDirector, "caltech.edu", "dir")
    return world, director, members


@settings(max_examples=25, deadline=None)
@given(busy=busy_maps, seed=st.integers(min_value=0, max_value=1000),
       algorithm=st.sampled_from(["session", "traditional"]))
def test_secretary_algorithms_book_earliest_common_day(busy, seed, algorithm):
    world, director, members = build(busy, seed)
    box = []

    def driver():
        out = yield from schedule_meeting(director, "sec", members,
                                          horizon=HORIZON,
                                          algorithm=algorithm)
        box.append(out)

    world.run(until=world.process(driver()))
    world.run()
    out = box[0]
    want = expected_day(busy)
    assert out.day == want
    for i, original in enumerate(busy):
        region = world.get(f"m{i}").state.region("calendar")
        now_busy = set(busy_days(region, HORIZON))
        if want == -1:
            assert now_busy == set(original)  # untouched on failure
        else:
            assert now_busy == set(original) | {want}


@settings(max_examples=15, deadline=None)
@given(busy=busy_maps, seed=st.integers(min_value=0, max_value=1000))
def test_ring_agrees_with_secretary(busy, seed):
    world, director, members = build(busy, seed)
    box = []

    def driver():
        out = yield from ring_schedule(director, members, horizon=HORIZON)
        box.append(out)

    world.run(until=world.process(driver()))
    world.run()
    assert box[0].day == expected_day(busy)
