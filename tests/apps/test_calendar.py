"""Integration tests for the calendar application (Example One)."""

import pytest

from repro.apps.calendar import (
    CalendarDapplet,
    MeetingDirector,
    SecretaryDapplet,
    busy_days,
    free_days,
    load_calendar,
    schedule_meeting,
)
from repro.net import GeoLatency
from repro.world import World

#: The Figure 1 deployment: members at Caltech, Rice and Tennessee.
SITES = {
    "mani": "caltech.edu", "herb": "caltech.edu", "dan": "caltech.edu",
    "ken": "rice.edu", "linda": "rice.edu", "john": "rice.edu",
    "jack": "utk.edu", "ginger": "utk.edu",
}


def build_world(seed=31, busy=None):
    world = World(seed=seed, latency=GeoLatency())
    members = []
    for name, host in SITES.items():
        d = world.dapplet(CalendarDapplet, host, name)
        load_calendar(d.state, (busy or {}).get(name, []))
        members.append(name)
    world.dapplet(SecretaryDapplet, "caltech.edu", "joann")
    director = world.dapplet(MeetingDirector, "caltech.edu", "director")
    return world, director, members


def run(world, gen):
    p = world.process(gen)
    result = world.run(until=p)
    world.run()  # drain teardown traffic
    return result


def test_state_helpers():
    from repro.dapplet import PersistentState
    state = PersistentState()
    load_calendar(state, {1: "dentist", 3: "travel"})
    region = state.region("calendar")
    assert busy_days(region, 5) == [1, 3]
    assert free_days(region, 5) == [0, 2, 4]


@pytest.mark.parametrize("algorithm", ["session", "traditional", "negotiated"])
def test_schedules_earliest_common_day(algorithm):
    # Everyone is busy on day 0 somewhere; day 2 is the earliest common.
    busy = {"mani": [0, 1], "ken": [0], "jack": [1], "ginger": [0, 1]}
    world, director, members = build_world(busy=busy)
    outcome = run(world, schedule_meeting(
        director, "joann", members, horizon=6, algorithm=algorithm))
    assert outcome.scheduled
    assert outcome.day == 2
    # Every member's calendar now shows the meeting (persistent state).
    for name in members:
        assert 2 in busy_days(world.get(name).state.region("calendar"), 6)


def test_no_common_day_reports_failure():
    busy = {name: [d] for d, name in enumerate(SITES)}  # pairwise covers 0-7
    world, director, members = build_world(busy=busy)
    outcome = run(world, schedule_meeting(
        director, "joann", members, horizon=8, algorithm="session"))
    assert not outcome.scheduled
    assert outcome.day == -1
    # No calendar was modified.
    for name in members:
        assert len(busy_days(world.get(name).state.region("calendar"), 8)) == 1


def test_session_beats_traditional_in_elapsed_time():
    """The paper's motivation: parallel sessions beat sequential calls.
    Same outcome, much lower latency."""
    results = {}
    for algorithm in ("session", "traditional"):
        world, director, members = build_world(seed=31)
        outcome = run(world, schedule_meeting(
            director, "joann", members, horizon=6, algorithm=algorithm))
        results[algorithm] = outcome
    assert results["session"].day == results["traditional"].day == 0
    assert results["traditional"].elapsed > 2 * results["session"].elapsed


def test_negotiated_respects_votes():
    """With pickiness, the most-approved candidate wins even if it is
    not the earliest common day."""
    # Days 0..5; all free. Members approve at most 1 candidate: their
    # earliest free day -> day 0 gets all votes; earliest wins anyway.
    world, director, members = build_world()
    outcome = run(world, schedule_meeting(
        director, "joann", members, horizon=6, algorithm="negotiated",
        candidates=3, max_approvals=1))
    assert outcome.day == 0
    assert outcome.rounds == 3  # query, vote, book


def test_consecutive_sessions_share_persistent_state():
    """Two sessions in sequence: the second sees the first's booking."""
    world, director, members = build_world()
    out1 = run(world, schedule_meeting(director, "joann", members,
                                       horizon=4))
    out2 = run(world, schedule_meeting(director, "joann", members,
                                       horizon=4))
    assert out1.day == 0
    assert out2.day == 1  # day 0 is now booked everywhere


def test_interfering_scheduling_sessions_are_rejected():
    """Two concurrent sessions writing the same member's calendar must
    not run together (the paper's §2.2 requirement)."""
    from repro.errors import SessionRejected
    from repro.session import InterferenceMonitor

    world, director, members = build_world()
    monitor = InterferenceMonitor()
    world.interference_monitor = monitor  # raises on any violation
    world.dapplet(SecretaryDapplet, "rice.edu", "sec2")
    director2 = world.dapplet(MeetingDirector, "rice.edu", "director2")
    outcomes = {}
    rejections = [0]

    def contender(tag, dirc, sec, backoff):
        while True:
            try:
                out = yield from schedule_meeting(dirc, sec, members,
                                                  horizon=6, label=tag)
                outcomes[tag] = out.day
                return
            except SessionRejected as exc:
                assert exc.reason == "interference"
                rejections[0] += 1
                yield world.kernel.timeout(backoff)

    world.process(contender("first", director, "joann", 0.7))
    world.process(contender("second", director2, "sec2", 1.1))
    world.run()
    # Both eventually scheduled (distinct days), at least one retry
    # happened, and the monitor observed no conflicting overlap.
    assert sorted(outcomes.values()) == [0, 1]
    assert rejections[0] >= 1


def test_outcome_accounting():
    world, director, members = build_world()
    outcome = run(world, schedule_meeting(director, "joann", members,
                                          horizon=4))
    assert outcome.rounds == 2  # query + book
    assert outcome.elapsed > 0
    assert outcome.datagrams > 0
