"""Integration tests for the hot-potato card game (ring sessions)."""

import pytest

from repro.apps.cardgame import DealerDapplet, PlayerDapplet, game_spec
from repro.net import ConstantLatency
from repro.world import World

PLAYERS = ["north", "east", "south", "west"]


def build(seed=51, n=4):
    world = World(seed=seed, latency=ConstantLatency(0.01))
    players = [world.dapplet(PlayerDapplet, f"site{i}.edu", name)
               for i, name in enumerate(PLAYERS[:n])]
    dealer = world.dapplet(DealerDapplet, "caltech.edu", "dealer")
    return world, players, dealer


def test_game_spec_shape():
    spec = game_spec(["a", "b", "c"], dealer="d")
    spec.validate()
    assert set(spec.outboxes_of("a")) == {"next", "report"}
    assert set(spec.outboxes_of("d")) == {"to:a", "to:b", "to:c"}
    with pytest.raises(ValueError):
        game_spec(["solo"], dealer="d")


def test_full_game_produces_winner_and_eliminations():
    world, players, dealer = build()
    results = []

    def run():
        winner, eliminated = yield from dealer.run_game(PLAYERS)
        results.append((winner, eliminated))

    p = world.process(run())
    world.run(until=p)
    world.run()
    winner, eliminated = results[0]
    assert winner in PLAYERS
    assert len(eliminated) == 3
    assert set(eliminated) | {winner} == set(PLAYERS)
    # The winner was told.
    winner_dapplet = world.get(winner)
    assert winner_dapplet.winner_notice == winner


def test_two_player_game():
    world, players, dealer = build(n=2)
    results = []

    def run():
        winner, eliminated = yield from dealer.run_game(PLAYERS[:2])
        results.append((winner, eliminated))

    p = world.process(run())
    world.run(until=p)
    winner, eliminated = results[0]
    assert len(eliminated) == 1
    assert winner != eliminated[0]


def test_games_are_deterministic_per_seed():
    def play(seed):
        world, players, dealer = build(seed=seed)
        results = []

        def run():
            results.append((yield from dealer.run_game(PLAYERS)))

        p = world.process(run())
        world.run(until=p)
        return results[0]

    assert play(7) == play(7)
    outcomes = {play(s)[0] for s in range(8)}
    assert len(outcomes) > 1  # ttl randomness varies the winner


def test_eliminated_players_stop_receiving_potatoes():
    world, players, dealer = build(seed=52)
    results = []

    def run():
        winner, eliminated = yield from dealer.run_game(PLAYERS)
        # Record message counts right at game end.
        counts = {p.name: p.potatoes_handled for p in players}
        results.append((eliminated[0], counts))

    p = world.process(run())
    world.run(until=p)
    world.run()
    first_out, counts_at_end = results[0]
    # The first eliminated player's count must not have grown after the
    # game (its ports are long gone).
    assert world.get(first_out).potatoes_handled == \
        counts_at_end[first_out]
