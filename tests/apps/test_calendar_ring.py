"""Tests for the decentralized ring scheduler (pattern-swap claim)."""

import pytest

from repro.apps.calendar import (
    busy_days,
    ring_schedule,
    schedule_meeting,
)

from tests.apps.test_calendar import build_world, run


def test_ring_schedules_earliest_common_day():
    busy = {"mani": [0, 1], "ken": [0], "jack": [1], "ginger": [0, 1]}
    world, director, members = build_world(busy=busy)
    outcome = run(world, ring_schedule(director, members, horizon=6))
    assert outcome.scheduled
    assert outcome.day == 2
    assert outcome.algorithm == "ring"
    assert outcome.rounds == 2
    for name in members:
        assert 2 in busy_days(world.get(name).state.region("calendar"), 6)


def test_ring_reports_failure_when_no_common_day():
    busy = {name: [d] for d, name in enumerate(
        ["mani", "herb", "dan", "ken", "linda", "john", "jack", "ginger"])}
    world, director, members = build_world(busy=busy)
    outcome = run(world, ring_schedule(director, members, horizon=8))
    assert not outcome.scheduled
    assert outcome.rounds == 1  # no booking lap


def test_ring_agrees_with_star_and_costs_fewer_datagrams():
    """Same sequential parts, different pattern: identical outcome; the
    ring saves messages (no coordinator hop) at the price of summed
    link latency."""
    busy = {"mani": [0], "ken": [0, 1]}
    world1, director1, members = build_world(seed=31, busy=busy)
    star = run(world1, schedule_meeting(director1, "joann", members,
                                        horizon=6, algorithm="session"))
    world2, director2, members = build_world(seed=31, busy=busy)
    ring = run(world2, ring_schedule(director2, members, horizon=6))
    assert star.day == ring.day == 2
    assert ring.datagrams < star.datagrams


def test_ring_requires_two_members():
    world, director, members = build_world()

    def driver():
        with pytest.raises(ValueError):
            yield from ring_schedule(director, members[:1])

    p = world.process(driver())
    world.run(until=p)
