"""Tests for place selection — "pick a date *and place* for a meeting"."""

from repro.apps.calendar import schedule_meeting
from repro.apps.calendar.state import set_place_preferences

from tests.apps.test_calendar import build_world, run

PLACES = ("caltech", "rice", "tennessee")


def test_place_chosen_by_majority():
    world, director, members = build_world()
    # Rice members refuse to travel to Tennessee; Caltech members refuse
    # Rice. Caltech is acceptable to everyone.
    for name in ("ken", "linda", "john"):
        set_place_preferences(world.get(name).state, avoid=["tennessee"])
    for name in ("mani", "herb", "dan"):
        set_place_preferences(world.get(name).state, avoid=["rice"])
    outcome = run(world, schedule_meeting(
        director, "joann", members, horizon=4, places=PLACES))
    assert outcome.scheduled
    assert outcome.place == "caltech"
    assert outcome.rounds == 3  # query, book, place vote


def test_no_places_means_empty_place():
    world, director, members = build_world()
    outcome = run(world, schedule_meeting(director, "joann", members,
                                          horizon=4))
    assert outcome.place == ""
    assert outcome.rounds == 2


def test_place_tie_breaks_alphabetically():
    world, director, members = build_world()
    outcome = run(world, schedule_meeting(
        director, "joann", members, horizon=4, places=("zurich", "austin")))
    assert outcome.place == "austin"  # everyone approves both


def test_no_place_vote_when_no_day_found():
    busy = {name: [d] for d, name in enumerate(
        ["mani", "herb", "dan", "ken", "linda", "john", "jack", "ginger"])}
    world, director, members = build_world(busy=busy)
    outcome = run(world, schedule_meeting(
        director, "joann", members, horizon=8, places=PLACES))
    assert not outcome.scheduled
    assert outcome.place == ""


def test_places_work_with_traditional_algorithm():
    world, director, members = build_world()
    set_place_preferences(world.get("mani").state, avoid=["rice"])
    outcome = run(world, schedule_meeting(
        director, "joann", members, horizon=4, algorithm="traditional",
        places=("rice", "caltech")))
    assert outcome.place == "caltech"
