"""Tests for per-part change-notice routing in the design app."""

import pytest

from repro.apps.design import DesignerDapplet, design_spec
from repro.net import ConstantLatency
from repro.session import Initiator
from repro.world import World

TEAM = ["alice", "bob", "carol"]
PARTS = ["engine", "chassis", "ui"]


def build(subscriptions, seed=95):
    world = World(seed=seed, latency=ConstantLatency(0.02))
    designers = {n: world.dapplet(DesignerDapplet, f"{n}.edu", n)
                 for n in TEAM}
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    spec = design_spec(TEAM, PARTS, subscriptions=subscriptions)
    return world, designers, initiator, spec


def test_notices_reach_only_subscribers():
    subscriptions = {
        "alice": ["engine", "chassis", "ui"],
        "bob": ["engine"],          # bob only cares about the engine
        "carol": ["ui"],            # carol only about the ui
    }
    world, designers, initiator, spec = build(subscriptions)
    snapshot = {}

    def director():
        session = yield from initiator.establish(spec)
        designers["alice"].edit_unlocked("engine", "turbo")
        designers["alice"].edit_unlocked("ui", "flat design")
        yield world.kernel.timeout(1.0)
        snapshot["bob_engine"] = designers["bob"].store.part("engine").content
        snapshot["bob_ui"] = designers["bob"].store.part("ui").content
        snapshot["carol_ui"] = designers["carol"].store.part("ui").content
        snapshot["carol_engine"] = \
            designers["carol"].store.part("engine").content
        yield from session.terminate()

    world.run(until=world.process(director()))
    world.run()
    assert snapshot["bob_engine"] == "turbo"
    assert snapshot["bob_ui"] == ""            # never notified
    assert snapshot["carol_ui"] == "flat design"
    assert snapshot["carol_engine"] == ""      # never notified


def test_member_missing_from_subscriptions_hears_everything():
    subscriptions = {"bob": ["engine"]}  # alice and carol: everything
    world, designers, initiator, spec = build(subscriptions)
    results = {}

    def director():
        session = yield from initiator.establish(spec)
        designers["alice"].edit_unlocked("ui", "v2")
        yield world.kernel.timeout(1.0)
        results["carol"] = designers["carol"].store.part("ui").content
        results["bob"] = designers["bob"].store.part("ui").content
        yield from session.terminate()

    world.run(until=world.process(director()))
    world.run()
    assert results["carol"] == "v2"
    assert results["bob"] == ""


def test_no_subscriptions_means_broadcast():
    world, designers, initiator, spec = build(None)
    results = {}

    def director():
        session = yield from initiator.establish(spec)
        designers["alice"].edit_unlocked("chassis", "steel")
        yield world.kernel.timeout(1.0)
        results.update({n: designers[n].store.part("chassis").content
                        for n in TEAM})
        yield from session.terminate()

    world.run(until=world.process(director()))
    world.run()
    assert results == {"alice": "steel", "bob": "steel", "carol": "steel"}


def test_subscription_saves_traffic():
    """Narrow subscriptions materially reduce datagram volume."""
    def run(subscriptions):
        world, designers, initiator, spec = build(subscriptions)
        count = {}

        def director():
            session = yield from initiator.establish(spec)
            before = world.network.stats.sent
            for i in range(10):
                designers["alice"].edit_unlocked("engine", f"rev{i}")
            yield world.kernel.timeout(2.0)
            count["sent"] = world.network.stats.sent - before
            yield from session.terminate()

        world.run(until=world.process(director()))
        world.run()
        return count["sent"]

    broadcast = run(None)
    narrow = run({"alice": [], "bob": ["engine"], "carol": []})
    assert narrow < broadcast
