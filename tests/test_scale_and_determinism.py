"""Moderate-scale smoke tests and whole-run determinism checks."""

import pytest

from repro import Dapplet, Initiator, SessionSpec, World
from repro.apps.calendar import (
    CalendarDapplet,
    MeetingDirector,
    SecretaryDapplet,
    load_calendar,
    schedule_meeting,
)
from repro.mailbox import Inbox, Outbox
from repro.messages import Text
from repro.net import (
    ConstantLatency,
    DatagramNetwork,
    Endpoint,
    FaultPlan,
    GeoLatency,
    NodeAddress,
    UniformLatency,
)
from repro.obs import Tracer
from repro.sim import Kernel


class Node(Dapplet):
    kind = "node"

    def on_session_start(self, ctx):
        self.ctx = ctx


def test_forty_dapplet_star_session():
    """One hub broadcasting to 39 spokes over a lossy net: everything
    arrives, in order, and the session tears down cleanly."""
    world = World(seed=111, latency=UniformLatency(0.005, 0.05),
                  faults=FaultPlan(drop_prob=0.05),
                  endpoint_options={"rto_initial": 0.1})
    n = 40
    hub = world.dapplet(Node, "caltech.edu", "hub")
    spokes = [world.dapplet(Node, f"s{i}.edu", f"n{i}")
              for i in range(n - 1)]
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    spec = SessionSpec("bigstar")
    spec.add_member("hub")
    for s in spokes:
        spec.add_member(s.name, inboxes=("in",))
        spec.bind("hub", "bcast", s.name, "in")
    done = []

    def director():
        session = yield from initiator.establish(spec, timeout=60.0)
        for i in range(25):
            hub.ctx.outbox("bcast").send(Text(str(i)))
        yield world.kernel.timeout(5.0)
        yield from session.terminate(timeout=60.0)
        done.append(True)

    world.run(until=world.process(director()))
    world.run()
    assert done
    for s in spokes:
        got = [m.text for m in s.ctx.inbox("in").queued()]
        assert got == [str(i) for i in range(25)], s.name


def test_hundred_sequential_sessions_no_drift():
    """A long-lived deployment: 100 establish/terminate cycles keep
    the world clean and the virtual clock finite."""
    world = World(seed=112, latency=ConstantLatency(0.01))
    a = world.dapplet(Node, "caltech.edu", "a")
    b = world.dapplet(Node, "rice.edu", "b")
    initiator = world.dapplet(Initiator, "caltech.edu", "init")

    def run_all():
        for k in range(100):
            spec = SessionSpec(f"cycle{k}")
            spec.add_member("a", inboxes=("in",))
            spec.add_member("b", inboxes=("in",))
            spec.bind("a", "out", "b", "in")
            session = yield from initiator.establish(spec)
            a.ctx.outbox("out").send(Text(str(k)))
            msg = yield b.ctx.inbox("in").receive()
            assert msg.text == str(k)
            yield from session.terminate()

    p = world.process(run_all())
    world.run(until=p)
    world.run()
    # Steady state: two base inboxes per dapplet (_session + none),
    # no session ports left behind.
    assert all(not ib.name or not ib.name.startswith("init#")
               for ib in a.inboxes.values())
    assert len(initiator._records) == 0


def fan_in_soak(seed, *, senders=50, per_sender=8):
    """50 cooperative outboxes fan in onto one slow inbox under 10%%
    loss; returns (trace, peak queue depth, max retransmit buffer,
    received messages)."""
    k = Kernel(seed=seed)
    tracer = Tracer(categories=["ep"]).attach(k)
    net = DatagramNetwork(k, latency=ConstantLatency(0.01),
                          faults=FaultPlan(drop_prob=0.1))
    hub = NodeAddress("hub.edu", 1000)
    eb = Endpoint(k, net, hub, rto_initial=0.1, recv_window=600)
    inbox = Inbox(k, eb, 0)
    peak = [0]

    def watch(message):
        peak[0] = max(peak[0], len(inbox) + 1)
        return message

    inbox.delivery_hooks.append(watch)
    got = []
    total = senders * per_sender

    def consumer():
        while len(got) < total:
            msg = yield inbox.receive()
            got.append(msg.text)
            yield k.timeout(0.005)  # the slow part

    max_unacked = [0]

    def sender(i, outbox, endpoint):
        chan = next(iter(outbox._channels.values()))
        for j in range(per_sender):
            yield from outbox.send_flow(Text(f"s{i:02d}|{j}"))
            stream = endpoint._send_streams[(hub, chan.key)]
            max_unacked[0] = max(max_unacked[0], len(stream.unacked))

    for i in range(senders):
        ea = Endpoint(k, net, NodeAddress(f"s{i:02d}.edu", 1000),
                      rto_initial=0.1, cwnd_initial=200)
        outbox = Outbox(k, ea, 0)
        outbox.add(inbox.address)
        k.process(sender(i, outbox, ea))
    k.process(consumer())
    k.run()
    return tracer.to_jsonl(), peak[0], max_unacked[0], got


def test_fan_in_backpressure_bounds_queues_and_is_deterministic():
    """Backpressure keeps the receiver queue and every sender's
    retransmit buffer bounded by the window geometry — far below the
    400 messages in flight without it — and the whole soak is
    byte-identical across same-seed repeats."""
    trace, peak, max_unacked, got = fan_in_soak(42)
    assert len(got) == 400
    for i in range(50):
        mine = [m for m in got if m.startswith(f"s{i:02d}|")]
        assert mine == [f"s{i:02d}|{j}" for j in range(8)], f"sender {i}"
    # ~600B of receive budget (a handful of messages) plus at most one
    # racing packet per sender: nowhere near the 400-message firehose.
    assert peak <= 120, peak
    assert max_unacked <= 10, max_unacked
    trace2, peak2, max_unacked2, got2 = fan_in_soak(42)
    assert (trace2, peak2, max_unacked2, got2) == (trace, peak,
                                                  max_unacked, got)


def full_calendar_trace(seed):
    world = World(seed=seed, latency=GeoLatency(),
                  faults=FaultPlan(drop_prob=0.05, reorder_jitter=0.05),
                  endpoint_options={"rto_initial": 0.5})
    members = []
    for i, host in enumerate(["caltech.edu", "rice.edu", "utk.edu",
                              "sydney.edu.au"]):
        d = world.dapplet(CalendarDapplet, host, f"m{i}")
        load_calendar(d.state, [i])
        members.append(f"m{i}")
    world.dapplet(SecretaryDapplet, "caltech.edu", "sec")
    director = world.dapplet(MeetingDirector, "caltech.edu", "dir")
    box = []

    def driver():
        out = yield from schedule_meeting(director, "sec", members,
                                          horizon=8)
        box.append(out)

    world.run(until=world.process(driver()))
    world.run()
    out = box[0]
    return (out.day, out.rounds, round(out.elapsed, 9), out.datagrams,
            world.network.stats.snapshot())


def test_whole_application_run_is_deterministic():
    """Identical seeds give bit-identical end-to-end traces, including
    every network counter, even under loss and reordering."""
    assert full_calendar_trace(7) == full_calendar_trace(7)
    assert full_calendar_trace(7) != full_calendar_trace(8)
