"""Moderate-scale smoke tests and whole-run determinism checks."""

import pytest

from repro import Dapplet, Initiator, SessionSpec, World
from repro.apps.calendar import (
    CalendarDapplet,
    MeetingDirector,
    SecretaryDapplet,
    load_calendar,
    schedule_meeting,
)
from repro.messages import Text
from repro.net import ConstantLatency, GeoLatency, UniformLatency, FaultPlan


class Node(Dapplet):
    kind = "node"

    def on_session_start(self, ctx):
        self.ctx = ctx


def test_forty_dapplet_star_session():
    """One hub broadcasting to 39 spokes over a lossy net: everything
    arrives, in order, and the session tears down cleanly."""
    world = World(seed=111, latency=UniformLatency(0.005, 0.05),
                  faults=FaultPlan(drop_prob=0.05),
                  endpoint_options={"rto_initial": 0.1})
    n = 40
    hub = world.dapplet(Node, "caltech.edu", "hub")
    spokes = [world.dapplet(Node, f"s{i}.edu", f"n{i}")
              for i in range(n - 1)]
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    spec = SessionSpec("bigstar")
    spec.add_member("hub")
    for s in spokes:
        spec.add_member(s.name, inboxes=("in",))
        spec.bind("hub", "bcast", s.name, "in")
    done = []

    def director():
        session = yield from initiator.establish(spec, timeout=60.0)
        for i in range(25):
            hub.ctx.outbox("bcast").send(Text(str(i)))
        yield world.kernel.timeout(5.0)
        yield from session.terminate(timeout=60.0)
        done.append(True)

    world.run(until=world.process(director()))
    world.run()
    assert done
    for s in spokes:
        got = [m.text for m in s.ctx.inbox("in").queued()]
        assert got == [str(i) for i in range(25)], s.name


def test_hundred_sequential_sessions_no_drift():
    """A long-lived deployment: 100 establish/terminate cycles keep
    the world clean and the virtual clock finite."""
    world = World(seed=112, latency=ConstantLatency(0.01))
    a = world.dapplet(Node, "caltech.edu", "a")
    b = world.dapplet(Node, "rice.edu", "b")
    initiator = world.dapplet(Initiator, "caltech.edu", "init")

    def run_all():
        for k in range(100):
            spec = SessionSpec(f"cycle{k}")
            spec.add_member("a", inboxes=("in",))
            spec.add_member("b", inboxes=("in",))
            spec.bind("a", "out", "b", "in")
            session = yield from initiator.establish(spec)
            a.ctx.outbox("out").send(Text(str(k)))
            msg = yield b.ctx.inbox("in").receive()
            assert msg.text == str(k)
            yield from session.terminate()

    p = world.process(run_all())
    world.run(until=p)
    world.run()
    # Steady state: two base inboxes per dapplet (_session + none),
    # no session ports left behind.
    assert all(not ib.name or not ib.name.startswith("init#")
               for ib in a.inboxes.values())
    assert len(initiator._records) == 0


def full_calendar_trace(seed):
    world = World(seed=seed, latency=GeoLatency(),
                  faults=FaultPlan(drop_prob=0.05, reorder_jitter=0.05),
                  endpoint_options={"rto_initial": 0.5})
    members = []
    for i, host in enumerate(["caltech.edu", "rice.edu", "utk.edu",
                              "sydney.edu.au"]):
        d = world.dapplet(CalendarDapplet, host, f"m{i}")
        load_calendar(d.state, [i])
        members.append(f"m{i}")
    world.dapplet(SecretaryDapplet, "caltech.edu", "sec")
    director = world.dapplet(MeetingDirector, "caltech.edu", "dir")
    box = []

    def driver():
        out = yield from schedule_meeting(director, "sec", members,
                                          horizon=8)
        box.append(out)

    world.run(until=world.process(driver()))
    world.run()
    out = box[0]
    return (out.day, out.rounds, round(out.elapsed, 9), out.datagrams,
            world.network.stats.snapshot())


def test_whole_application_run_is_deterministic():
    """Identical seeds give bit-identical end-to-end traces, including
    every network counter, even under loss and reordering."""
    assert full_calendar_trace(7) == full_calendar_trace(7)
    assert full_calendar_trace(7) != full_calendar_trace(8)
