"""Unit tests for access-control lists."""

from repro.dapplet import AccessControlList
from repro.net import NodeAddress

CALTECH = NodeAddress("cs.caltech.edu", 2000)
RICE = NodeAddress("owlnet.rice.edu", 2000)


def test_default_is_open():
    acl = AccessControlList()
    assert acl.allows(CALTECH)
    assert acl.allows(RICE)


def test_exact_address_allow_switches_to_allowlist():
    acl = AccessControlList()
    acl.allow(CALTECH)
    assert acl.allows(CALTECH)
    assert not acl.allows(RICE)
    assert not acl.allows(NodeAddress("cs.caltech.edu", 2001))  # other port


def test_hostname_allow_matches_any_port():
    acl = AccessControlList()
    acl.allow("cs.caltech.edu")
    assert acl.allows(NodeAddress("cs.caltech.edu", 1))
    assert acl.allows(NodeAddress("cs.caltech.edu", 60000))
    assert not acl.allows(RICE)


def test_domain_suffix_pattern():
    acl = AccessControlList()
    acl.allow("*.caltech.edu")
    assert acl.allows(CALTECH)
    assert acl.allows(NodeAddress("hss.caltech.edu", 5))
    # The bare domain itself is not matched by the wildcard form.
    assert not acl.allows(NodeAddress("caltech.edu", 5))
    assert not acl.allows(RICE)


def test_deny_overrides_allow():
    acl = AccessControlList()
    acl.allow("*.caltech.edu")
    acl.deny(CALTECH)
    assert not acl.allows(CALTECH)
    assert acl.allows(NodeAddress("hss.caltech.edu", 5))


def test_deny_on_open_acl():
    acl = AccessControlList()
    acl.deny("*.rice.edu")
    assert acl.allows(CALTECH)
    assert not acl.allows(RICE)


def test_clear_restores_open():
    acl = AccessControlList()
    acl.allow(CALTECH)
    acl.deny(RICE)
    acl.clear()
    assert acl.allows(RICE)
