"""Unit tests for the Dapplet base class and the World facade."""

import pytest

from repro.dapplet import Dapplet
from repro.errors import DappletError
from repro.messages import Text
from repro.net import ConstantLatency
from repro.world import World


class Plain(Dapplet):
    kind = "plain"


class Greeter(Dapplet):
    kind = "greeter"

    def setup(self):
        self.inbox = self.create_inbox(name="hello")
        self.greeted = []

    def main(self):
        def run():
            while True:
                msg = yield self.inbox.receive()
                self.greeted.append(msg.text)

        return run()


@pytest.fixture
def world():
    return World(seed=2, latency=ConstantLatency(0.01))


def test_world_allocates_unique_addresses(world):
    a = world.dapplet(Plain, "caltech.edu", "a")
    b = world.dapplet(Plain, "caltech.edu", "b")
    c = world.dapplet(Plain, "rice.edu", "c")
    assert a.address != b.address
    assert a.address.host == b.address.host == "caltech.edu"
    assert c.address.host == "rice.edu"


def test_world_registers_in_directory(world):
    a = world.dapplet(Plain, "caltech.edu", "a")
    assert world.directory.lookup("a") == a.address
    assert world.directory.entry("a").kind == "plain"
    assert world.get("a") is a
    assert world.dapplets() == [a]


def test_world_rejects_duplicate_names(world):
    world.dapplet(Plain, "caltech.edu", "a")
    with pytest.raises(DappletError):
        world.dapplet(Plain, "rice.edu", "a")


def test_world_get_unknown_raises(world):
    with pytest.raises(DappletError):
        world.get("nobody")


def test_setup_hook_runs_at_creation(world):
    g = world.dapplet(Greeter, "caltech.edu", "g")
    assert g.inbox_named("hello") is g.inbox


def test_main_starts_and_processes_messages(world):
    g = world.dapplet(Greeter, "caltech.edu", "g")
    g.start()
    sender = world.dapplet(Plain, "rice.edu", "s")
    out = sender.create_outbox()
    out.add(g.inbox.named_address)
    out.send(Text("hi"))
    world.run()
    assert g.greeted == ["hi"]


def test_start_without_main_returns_none(world):
    p = world.dapplet(Plain, "caltech.edu", "p")
    assert p.start() is None


def test_named_inbox_uniqueness(world):
    d = world.dapplet(Plain, "caltech.edu", "d")
    d.create_inbox(name="x")
    with pytest.raises(DappletError):
        d.create_inbox(name="x")
    with pytest.raises(DappletError):
        d.inbox_named("missing")


def test_close_inbox_releases_name(world):
    d = world.dapplet(Plain, "caltech.edu", "d")
    inbox = d.create_inbox(name="x")
    d.close_inbox(inbox)
    d.create_inbox(name="x")  # name is reusable


def test_stop_unregisters_everywhere(world):
    d = world.dapplet(Plain, "caltech.edu", "d")
    address = d.address
    d.stop()
    assert d.stopped
    assert "d" not in world.directory
    assert not world.network.is_registered(address)
    with pytest.raises(DappletError):
        world.get("d")
    # Ports cannot be created on a stopped dapplet.
    with pytest.raises(DappletError):
        d.create_inbox()
    with pytest.raises(DappletError):
        d.create_outbox()
    d.stop()  # idempotent


def test_port_hooks_cover_existing_and_future_ports(world):
    d = world.dapplet(Plain, "caltech.edu", "d")
    existing = d.create_inbox()
    seen = []
    d.port_hooks.append(seen.append)
    new_in = d.create_inbox()
    new_out = d.create_outbox()
    assert new_in in seen and new_out in seen
    assert existing not in seen  # hooks apply from registration onward


def test_spawn_names_processes_after_dapplet(world):
    d = world.dapplet(Plain, "caltech.edu", "d")

    def body():
        yield world.kernel.timeout(1.0)

    p = d.spawn(body(), name="worker")
    assert p.name == "d/worker"
    world.run()


def test_every_dapplet_has_session_manager_and_clock(world):
    d = world.dapplet(Plain, "caltech.edu", "d")
    assert d.sessions is d.sessions  # stable instance
    assert d.clock.time >= 0
    # The control inbox is reachable by name.
    assert d.inbox_named("_session") is d.sessions.inbox


def test_world_run_until_and_process(world):
    log = []

    def body():
        yield world.kernel.timeout(2.0)
        log.append(world.now)
        return "done"

    p = world.process(body())
    assert world.run(until=p) == "done"
    assert log == [2.0]
    assert world.now == 2.0
