"""Unit tests for persistent state regions and views."""

import pytest

from repro.dapplet import PersistentState, RegionView
from repro.errors import SerializationError
from repro.messages import Text
from repro.net import NodeAddress
from repro.store import DurableState, MemoryBackend


def test_regions_created_on_demand():
    state = PersistentState()
    region = state.region("calendar")
    assert state.regions() == ["calendar"]
    assert state.region("calendar") is region
    assert "calendar" in state and "other" not in state


def test_region_crud_and_versioning():
    state = PersistentState()
    r = state.region("cal")
    assert r.version == 0
    r.set("monday", "busy")
    assert r.get("monday") == "busy"
    assert r.version == 1
    assert "monday" in r and len(r) == 1
    r.set("monday", "free")
    assert r.version == 2
    r.delete("monday")
    assert r.version == 3
    r.delete("monday")  # deleting absent key does not bump
    assert r.version == 3
    assert r.get("monday", "default") == "default"


def test_region_iteration_is_sorted():
    r = PersistentState().region("x")
    for k in ("c", "a", "b"):
        r.set(k, k.upper())
    assert r.keys() == ["a", "b", "c"]
    assert list(r.items()) == [("a", "A"), ("b", "B"), ("c", "C")]


def test_snapshot_and_restore():
    state = PersistentState()
    state.region("cal").set("k", 1)
    state.region("docs").set("d", "x")
    snap = state.snapshot()
    state.region("cal").set("k", 2)
    state.restore(snap)
    assert state.region("cal").get("k") == 1
    assert state.region("docs").get("d") == "x"
    # Snapshot is a copy: mutating it does not touch live state.
    snap["cal"]["k"] = 99
    assert state.region("cal").get("k") == 1


def test_snapshot_excludes_empty_regions():
    """Empty and absent regions are indistinguishable: neither has a
    journaled footprint, so the snapshot equals a journal replay."""
    state = PersistentState()
    state.region("accessed")                   # created by mere access
    state.region("emptied").set("k", 1)
    state.region("emptied").delete("k")
    state.region("live").set("k", 2)
    assert state.snapshot() == {"live": {"k": 2}}


def test_restore_is_a_true_inverse():
    """Restoring a snapshot erases regions created after it was taken —
    rolling back to a checkpoint must not leak post-cut regions."""
    state = PersistentState()
    state.region("before").set("k", 1)
    snap = state.snapshot()
    state.region("after").set("x", 99)
    state.region("before").set("k", 2)
    state.restore(snap)
    assert state.snapshot() == snap


def test_region_view_modes():
    state = PersistentState()
    region = state.region("cal")
    region.set("k", "v")

    ro = RegionView(region, "r")
    assert ro.get("k") == "v"
    assert not ro.writable
    assert ro.keys() == ["k"]
    assert "k" in ro
    with pytest.raises(PermissionError):
        ro.set("k", "w")
    with pytest.raises(PermissionError):
        ro.delete("k")

    rw = RegionView(region, "rw")
    assert rw.writable
    rw.set("k2", "v2")
    rw.delete("k")
    assert region.get("k2") == "v2"
    assert "k" not in region


def test_region_view_invalid_mode():
    region = PersistentState().region("x")
    with pytest.raises(ValueError):
        RegionView(region, "write")


def test_view_name_passthrough():
    region = PersistentState().region("cal")
    assert RegionView(region, "r").name == "cal"


class TestDurableSerialization:
    """Every value a region can hold must either round-trip through the
    journal *totally* or fail *typed* with the region untouched."""

    def reborn(self, backend):
        return PersistentState(DurableState(backend, name="d"))

    @pytest.mark.parametrize("value", [
        None, True, 0, -7, 3.25, "text", "",
        b"\x00\xff\x80", bytearray(b"mut"),
        (1, 2), ("nested", (3, b"deep")),
        [1, [2, 3]], {"k": {"n": (1,)}},
        NodeAddress("caltech.edu", 7),
        Text("a message as a value"),
    ])
    def test_total_roundtrip(self, value):
        backend = MemoryBackend()
        state = PersistentState(DurableState(backend, name="d"))
        state.region("r").set("k", value)
        recovered = self.reborn(backend).region("r").get("k")
        if isinstance(value, bytearray):
            assert recovered == bytes(value)  # normalized, same bytes
        elif isinstance(value, Text):
            assert isinstance(recovered, Text)
            assert recovered.text == value.text
        else:
            assert recovered == value
            assert type(recovered) is type(value)

    @pytest.mark.parametrize("value", [
        object(),                  # not wire-encodable at all
        {1: "non-string key"},     # dict keys must be strings
        {"$tag": "reserved"},      # the codec's tag namespace
        {"ok": {"$n": object()}},  # nested failure
    ])
    def test_unencodable_fails_typed_and_leaves_region_untouched(self, value):
        state = PersistentState(DurableState(MemoryBackend(), name="d"))
        region = state.region("r")
        region.set("before", 1)
        version = region.version
        with pytest.raises(SerializationError):
            region.set("bad", value)
        # Write-ahead: the failed set changed nothing, in memory or on
        # disk — no half-applied key, no version bump, no journal entry.
        assert "bad" not in region
        assert region.version == version
        assert region.get("before") == 1

    def test_failed_restore_leaves_region_untouched(self):
        state = PersistentState(DurableState(MemoryBackend(), name="d"))
        region = state.region("r")
        region.set("keep", "me")
        with pytest.raises(SerializationError):
            region.restore({"poison": object()})
        assert region.get("keep") == "me"

    def test_restore_rollback_is_journaled(self):
        """The clears that erase post-snapshot regions hit the WAL too:
        recovery after a rollback equals the rolled-back snapshot."""
        backend = MemoryBackend()
        state = PersistentState(DurableState(backend, name="d"))
        state.region("before").set("k", 1)
        snap = state.snapshot()
        state.region("after").set("x", 99)
        state.restore(snap)
        assert self.reborn(backend).snapshot() == snap

    def test_region_view_writes_are_journaled(self):
        backend = MemoryBackend()
        state = PersistentState(DurableState(backend, name="d"))
        view = RegionView(state.region("cal"), "rw")
        view.set("k", (1, b"x"))
        view.delete("k")
        view.set("k2", "kept")
        assert self.reborn(backend).region("cal").snapshot() == \
            {"k2": "kept"}
