"""Unit tests for persistent state regions and views."""

import pytest

from repro.dapplet import PersistentState, RegionView


def test_regions_created_on_demand():
    state = PersistentState()
    region = state.region("calendar")
    assert state.regions() == ["calendar"]
    assert state.region("calendar") is region
    assert "calendar" in state and "other" not in state


def test_region_crud_and_versioning():
    state = PersistentState()
    r = state.region("cal")
    assert r.version == 0
    r.set("monday", "busy")
    assert r.get("monday") == "busy"
    assert r.version == 1
    assert "monday" in r and len(r) == 1
    r.set("monday", "free")
    assert r.version == 2
    r.delete("monday")
    assert r.version == 3
    r.delete("monday")  # deleting absent key does not bump
    assert r.version == 3
    assert r.get("monday", "default") == "default"


def test_region_iteration_is_sorted():
    r = PersistentState().region("x")
    for k in ("c", "a", "b"):
        r.set(k, k.upper())
    assert r.keys() == ["a", "b", "c"]
    assert list(r.items()) == [("a", "A"), ("b", "B"), ("c", "C")]


def test_snapshot_and_restore():
    state = PersistentState()
    state.region("cal").set("k", 1)
    state.region("docs").set("d", "x")
    snap = state.snapshot()
    state.region("cal").set("k", 2)
    state.restore(snap)
    assert state.region("cal").get("k") == 1
    assert state.region("docs").get("d") == "x"
    # Snapshot is a copy: mutating it does not touch live state.
    snap["cal"]["k"] = 99
    assert state.region("cal").get("k") == 1


def test_region_view_modes():
    state = PersistentState()
    region = state.region("cal")
    region.set("k", "v")

    ro = RegionView(region, "r")
    assert ro.get("k") == "v"
    assert not ro.writable
    assert ro.keys() == ["k"]
    assert "k" in ro
    with pytest.raises(PermissionError):
        ro.set("k", "w")
    with pytest.raises(PermissionError):
        ro.delete("k")

    rw = RegionView(region, "rw")
    assert rw.writable
    rw.set("k2", "v2")
    rw.delete("k")
    assert region.get("k2") == "v2"
    assert "k" not in region


def test_region_view_invalid_mode():
    region = PersistentState().region("x")
    with pytest.raises(ValueError):
        RegionView(region, "write")


def test_view_name_passthrough():
    region = PersistentState().region("cal")
    assert RegionView(region, "r").name == "cal"
