"""Unit tests for the address directory."""

import pytest

from repro.dapplet import AddressDirectory
from repro.errors import AddressError
from repro.net import NodeAddress

A = NodeAddress("caltech.edu", 2000)
B = NodeAddress("rice.edu", 2000)


def test_register_and_lookup():
    d = AddressDirectory()
    d.register("mani", A, kind="calendar")
    assert d.lookup("mani") == A
    assert d.entry("mani").kind == "calendar"
    assert "mani" in d
    assert len(d) == 1


def test_lookup_unknown_raises():
    d = AddressDirectory()
    with pytest.raises(AddressError):
        d.lookup("ghost")
    with pytest.raises(AddressError):
        d.entry("ghost")


def test_reregistering_same_address_is_fine():
    d = AddressDirectory()
    d.register("mani", A)
    d.register("mani", A, kind="calendar")  # refresh kind
    assert d.entry("mani").kind == "calendar"


def test_reregistering_different_address_raises():
    d = AddressDirectory()
    d.register("mani", A)
    with pytest.raises(AddressError):
        d.register("mani", B)


def test_remove_is_idempotent():
    d = AddressDirectory()
    d.register("mani", A)
    d.remove("mani")
    d.remove("mani")
    assert "mani" not in d


def test_names_filtered_by_kind():
    d = AddressDirectory()
    d.register("mani", A, kind="calendar")
    d.register("joann", B, kind="secretary")
    d.register("herb", NodeAddress("caltech.edu", 2001), kind="calendar")
    assert d.names() == ["herb", "joann", "mani"]
    assert d.names(kind="calendar") == ["herb", "mani"]
    assert d.names(kind="nothing") == []


def test_dict_roundtrip():
    d = AddressDirectory()
    d.register("mani", A)
    d.register("joann", B)
    back = AddressDirectory.from_dict(d.to_dict())
    assert back.lookup("mani") == A
    assert back.lookup("joann") == B


def test_dict_roundtrip_preserves_kind():
    # Regression: to_dict() used to flatten entries to bare "host:port"
    # strings, so a directory that travelled in a message rehydrated
    # with every kind == "" and kind-filtered selection found nothing.
    d = AddressDirectory()
    d.register("mani", A, kind="calendar")
    d.register("joann", B, kind="secretary")
    back = AddressDirectory.from_dict(d.to_dict())
    assert back.entry("mani").kind == "calendar"
    assert back.entry("joann").kind == "secretary"
    assert back.names(kind="calendar") == ["mani"]


def test_from_dict_accepts_legacy_flat_form():
    back = AddressDirectory.from_dict({"mani": "caltech.edu:2000"})
    assert back.lookup("mani") == A
    assert back.entry("mani").kind == ""
