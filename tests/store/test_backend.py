"""Backend contract tests: both backends, same behaviour — including
the deterministic crash-injection semantics the crash matrix relies on.
"""

import pytest

from repro.errors import BackendCrash, StoreError
from repro.store import CrashPoint, FileBackend, MemoryBackend


@pytest.fixture(params=["memory", "file"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield MemoryBackend()
    else:
        fb = FileBackend(tmp_path / "store")
        yield fb
        fb.close()


class TestContract:
    def test_read_missing_key_is_empty(self, backend):
        assert backend.read("nope") == b""

    def test_append_accumulates(self, backend):
        backend.append("k", b"ab")
        backend.append("k", b"cd")
        assert backend.read("k") == b"abcd"

    def test_write_replaces(self, backend):
        backend.append("k", b"old-old-old")
        backend.write("k", b"new")
        assert backend.read("k") == b"new"
        backend.write("k", b"")  # truncation (the WAL reset after a fold)
        assert backend.read("k") == b""

    def test_delete_and_missing_delete(self, backend):
        backend.write("k", b"x")
        backend.delete("k")
        assert backend.read("k") == b""
        backend.delete("k")  # idempotent

    def test_keys_prefix_sorted(self, backend):
        for key in ("dapplet/b.wal", "dapplet/a.wal", "other"):
            backend.append(key, b"x")
        assert backend.keys("dapplet/") == ["dapplet/a.wal", "dapplet/b.wal"]
        assert backend.keys() == ["dapplet/a.wal", "dapplet/b.wal", "other"]

    def test_slash_and_at_in_keys(self, backend):
        # Dapplet namespaces produce keys like dapplet/<name>.ckpt@7.
        key = "dapplet/room-1.ckpt@7.chan"
        backend.append(key, b"payload")
        assert backend.read(key) == b"payload"
        assert key in backend.keys("dapplet/")

    def test_sync_returns_seconds(self, backend):
        backend.append("k", b"x")
        assert backend.sync("k") >= 0.0

    def test_stats_accounting(self, backend):
        backend.append("k", b"abc")
        backend.append("k", b"de")
        backend.write("j", b"fgh")
        assert backend.bytes_written == 8
        assert backend.append_calls == 2


class TestCrashInjection:
    def test_byte_budget_tears_the_crossing_append(self, backend):
        backend.install_crash_point(CrashPoint(after_bytes=5))
        backend.append("k", b"abc")  # 3 bytes: fits
        with pytest.raises(BackendCrash) as exc:
            backend.append("k", b"defgh")  # would cross: torn at 5
        assert exc.value.at_byte == 5
        backend.reset_crash()
        assert backend.read("k") == b"abcde"  # the torn prefix survived

    def test_append_budget_kills_before_applying(self, backend):
        backend.install_crash_point(CrashPoint(after_appends=2))
        backend.append("k", b"a")
        backend.append("k", b"b")
        with pytest.raises(BackendCrash):
            backend.append("k", b"c")
        backend.reset_crash()
        assert backend.read("k") == b"ab"  # clean record-boundary kill

    def test_crashed_backend_plays_dead_until_reset(self, backend):
        backend.install_crash_point(CrashPoint(after_bytes=0))
        with pytest.raises(BackendCrash):
            backend.append("k", b"x")
        for call in (lambda: backend.read("k"),
                     lambda: backend.append("k", b"y"),
                     lambda: backend.write("k", b"y"),
                     lambda: backend.keys(),
                     lambda: backend.delete("k"),
                     lambda: backend.sync("k")):
            with pytest.raises(BackendCrash, match="crashed"):
                call()
        backend.reset_crash()
        assert backend.read("k") == b""  # nothing was ever applied

    def test_atomic_write_applies_nothing_when_crashing(self, backend):
        backend.write("k", b"before")
        backend.install_crash_point(CrashPoint(after_bytes=3))
        with pytest.raises(BackendCrash):
            backend.write("k", b"huge-replacement")
        backend.reset_crash()
        assert backend.read("k") == b"before"  # rename never happened

    def test_budget_counts_from_install(self, backend):
        backend.append("k", b"x" * 100)  # before the point: free
        backend.install_crash_point(CrashPoint(after_bytes=4))
        backend.append("k", b"yy")
        with pytest.raises(BackendCrash):
            backend.append("k", b"zzz")
        backend.reset_crash()
        assert backend.read("k") == b"x" * 100 + b"yy" + b"zz"

    def test_crash_point_validation(self):
        with pytest.raises(StoreError):
            CrashPoint()
        with pytest.raises(StoreError):
            CrashPoint(after_bytes=-1)
        with pytest.raises(StoreError):
            CrashPoint(after_appends=-2)


class TestMemoryBackend:
    def test_clone_is_independent(self):
        b = MemoryBackend()
        b.append("k", b"shared")
        copy = b.clone()
        b.append("k", b"-more")
        assert copy.read("k") == b"shared"
        assert b.read("k") == b"shared-more"

    def test_sync_is_exactly_zero(self):
        # The deterministic substrate traces fsync durations; on the
        # memory backend they must be exactly 0.0, never wall-clock.
        b = MemoryBackend()
        b.append("k", b"x")
        assert b.sync("k") == 0.0
        assert b.wall_timed is False

    def test_read_returns_a_copy(self):
        b = MemoryBackend()
        b.append("k", b"abc")
        data = b.read("k")
        b.append("k", b"def")
        assert data == b"abc"


class TestFileBackend:
    def test_persists_across_instances(self, tmp_path):
        root = tmp_path / "store"
        one = FileBackend(root)
        one.append("dapplet/a.wal", b"journal-bytes")
        one.write("dapplet/a.snap", b"snap-bytes")
        one.close()
        two = FileBackend(root)  # "the host restarted"
        assert two.read("dapplet/a.wal") == b"journal-bytes"
        assert two.read("dapplet/a.snap") == b"snap-bytes"
        assert two.keys() == ["dapplet/a.snap", "dapplet/a.wal"]
        two.close()

    def test_wall_timed(self, tmp_path):
        fb = FileBackend(tmp_path)
        assert fb.wall_timed is True
        fb.close()

    def test_write_leaves_no_tmp_files(self, tmp_path):
        fb = FileBackend(tmp_path / "s")
        fb.write("k", b"x")
        fb.write("k", b"y")
        assert [p.name for p in (tmp_path / "s").iterdir()] == ["k"]
        fb.close()

    def test_keys_hide_tmp_files(self, tmp_path):
        fb = FileBackend(tmp_path / "s")
        fb.append("real", b"x")
        (tmp_path / "s" / "ghost.tmp").write_bytes(b"leftover")
        assert fb.keys() == ["real"]
        fb.close()
