"""Property-based tests: ANY mutation sequence + ANY crash point must
recover to a prefix state, and the framing layer must never raise on
arbitrary bytes. These generalize the scripted crash matrix to the
whole input space."""

from hypothesis import example, given, settings, strategies as st

from repro.dapplet.state import PersistentState
from repro.errors import BackendCrash
from repro.store import CrashPoint, DurableState, MemoryBackend
from repro.store.wal import frame, iter_records

# Values that can legitimately live in a region: everything the wire
# codec round-trips, nested. Dict keys avoid the codec's reserved "$"
# prefix (which correctly fails typed — covered in test_durable).
dict_keys = st.text(max_size=4).filter(lambda s: not s.startswith("$"))
values = st.recursive(
    st.none() | st.booleans() | st.integers(-2**31, 2**31)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=8) | st.binary(max_size=8),
    lambda children: st.lists(children, max_size=3)
    | st.tuples(children, children)
    | st.dictionaries(dict_keys, children, max_size=3),
    max_leaves=6)

keys = st.sampled_from(["a", "b", "c"])
regions = st.sampled_from(["r1", "r2"])

mutations = st.lists(
    st.one_of(
        st.tuples(st.just("set"), regions, keys, values),
        st.tuples(st.just("delete"), regions, keys),
        st.tuples(st.just("restore"), regions,
                  st.dictionaries(keys, values, max_size=2)),
    ),
    min_size=1, max_size=12)


def apply_mutation(state, mutation):
    op, region = mutation[0], state.region(mutation[1])
    if op == "set":
        region.set(mutation[2], mutation[3])
    elif op == "delete":
        region.delete(mutation[2])
    else:
        region.restore(mutation[2])


@settings(max_examples=60, deadline=None)
@given(script=mutations, crash_fraction=st.floats(0.0, 1.0),
       snapshot_every=st.sampled_from([0, 1, 3]))
# Once-falsifying: the no-op delete materializes r1 in memory without a
# journaled footprint; snapshot() must exclude it or folds and
# journal-only recoveries disagree about the region's existence.
@example(script=[("delete", "r1", "a"), ("restore", "r2", {}),
                 ("restore", "r1", {})],
         crash_fraction=0.375, snapshot_every=1)
def test_any_crash_recovers_a_prefix_state(script, crash_fraction,
                                           snapshot_every):
    # Golden run: the state after every prefix of the script.
    golden = PersistentState(DurableState(MemoryBackend(), name="d",
                                          snapshot_every=0))
    prefix_states = [golden.snapshot()]
    for mutation in script:
        apply_mutation(golden, mutation)
        prefix_states.append(golden.snapshot())

    # Crashed run: a byte budget anywhere in the write volume.
    probe = MemoryBackend()
    run = PersistentState(DurableState(probe, name="d",
                                       snapshot_every=snapshot_every))
    for mutation in script:
        apply_mutation(run, mutation)
    budget = int(crash_fraction * probe.bytes_written)

    backend = MemoryBackend()
    backend.install_crash_point(CrashPoint(after_bytes=budget))
    state = PersistentState(DurableState(backend, name="d",
                                         snapshot_every=snapshot_every))
    try:
        for mutation in script:
            apply_mutation(state, mutation)
    except BackendCrash:
        pass
    backend.reset_crash()
    # Recovery must never raise, and must land on SOME prefix state.
    recovered = PersistentState(DurableState(backend, name="d"))
    assert recovered.snapshot() in prefix_states


@settings(max_examples=100, deadline=None)
@given(payloads=st.lists(st.binary(min_size=1, max_size=64),
                         min_size=0, max_size=8),
       cut=st.integers(min_value=0, max_value=600),
       garbage=st.binary(max_size=32))
def test_any_truncation_plus_garbage_yields_a_prefix(payloads, cut, garbage):
    data = b"".join(frame(p) for p in payloads)
    mangled = data[:min(cut, len(data))] + garbage
    parsed, consumed, torn = iter_records(mangled)
    # Never raises; always a prefix of the original payload list, unless
    # the garbage happens to validly extend a clean cut (possible only
    # when it frames real records, which random bytes essentially never
    # do — but "parsed extends the prefix" is the honest invariant).
    assert parsed[:len(payloads)] == payloads[:len(parsed)]
    assert consumed <= len(mangled)
    assert torn == (consumed != len(mangled))


@settings(max_examples=100, deadline=None)
@given(blob=st.binary(max_size=256))
def test_arbitrary_bytes_never_raise(blob):
    parsed, consumed, torn = iter_records(blob)
    assert consumed <= len(blob)
    for payload in parsed:  # whatever parsed re-frames to the same bytes
        assert frame(payload) in blob


@settings(max_examples=60, deadline=None)
@given(script=mutations)
def test_identical_scripts_identical_journals(script):
    def journal_bytes():
        backend = MemoryBackend()
        state = PersistentState(DurableState(backend, name="d",
                                             snapshot_every=0))
        for mutation in script:
            apply_mutation(state, mutation)
        return backend.read("d.wal")

    assert journal_bytes() == journal_bytes()
