"""The crash-point matrix: the PR's central proof.

One scripted workload runs against a fresh store once per *interesting
crash offset* (every distinct way a crash can tear the journal — clean
record boundaries, mid-header, mid-CRC, mid-payload). After each crash
the backend is "restarted" against its surviving bytes and recovered.
The invariant, at every single offset, on both backends::

    recovered state == state after some PREFIX of the mutation sequence

and on the memory backend the surviving journal is *byte-identical* to
the corresponding prefix of the golden run's journal — crash replay is
fully deterministic.
"""

import pytest

from repro.dapplet.state import PersistentState
from repro.errors import BackendCrash
from repro.store import CrashPoint, DurableState, FileBackend, MemoryBackend
from repro.store.wal import interesting_offsets

#: The scripted workload: (region, op, args). Varied shapes on purpose —
#: deletes, restores, non-JSON-native values — so records differ in size
#: and the offset matrix cuts through genuinely different payloads.
WORKLOAD = [
    ("cal", "set", ("mon", "busy")),
    ("cal", "set", ("tue", {"slots": [9, 13], "room": "b4"})),
    ("docs", "set", ("draft", b"\x89PNG\r\n\x1a\n")),
    ("cal", "delete", ("mon",)),
    ("cal", "set", ("wed", ("committee", ("alice", "bob")))),
    ("docs", "set", ("rev", 2)),
    ("cal", "restore", ({"thu": "free", "fri": "busy"},)),
    ("docs", "delete", ("draft",)),
    ("cal", "set", ("sat", None)),
    ("docs", "set", ("final", b"\x00" * 40)),
]


def run_workload(state, *, upto=None):
    """Apply the scripted mutations; returns how many applied fully."""
    applied = 0
    for region_name, op, args in WORKLOAD[:upto]:
        region = state.region(region_name)
        getattr(region, op)(*args)
        applied += 1
    return applied


def golden_run():
    """One crash-free run: per-mutation WAL ends and state snapshots."""
    backend = MemoryBackend()
    durable = DurableState(backend, name="d", snapshot_every=0)
    state = PersistentState(durable)
    ends, prefix_states = [0], [state.snapshot()]
    for i in range(len(WORKLOAD)):
        region_name, op, args = WORKLOAD[i]
        getattr(state.region(region_name), op)(*args)
        ends.append(len(durable.wal_bytes()))
        prefix_states.append(state.snapshot())
    return durable.wal_bytes(), ends, prefix_states


def crash_run(backend, crash_point):
    """The workload against ``backend`` with ``crash_point`` armed."""
    backend.install_crash_point(crash_point)
    durable = DurableState(backend, name="d", snapshot_every=0)
    state = PersistentState(durable)
    crashed = False
    try:
        run_workload(state)
    except BackendCrash:
        crashed = True
    backend.reset_crash()  # the host restarts against the same bytes
    surviving_wal = backend.read("d.wal")  # before recovery truncates
    recovered = PersistentState(DurableState(backend, name="d"))
    return recovered.snapshot(), crashed, surviving_wal


def test_golden_journal_is_deterministic():
    assert golden_run()[0] == golden_run()[0]


def test_matrix_memory_backend():
    full_wal, ends, prefix_states = golden_run()
    offsets = interesting_offsets(full_wal)
    assert len(offsets) > 4 * len(WORKLOAD)  # several cuts per record
    for offset in offsets:
        backend = MemoryBackend()
        recovered, crashed, surviving = crash_run(
            backend, CrashPoint(after_bytes=offset))
        assert crashed == (offset < len(full_wal))
        # Deterministic torn write: the surviving journal IS the golden
        # journal cut at the crash offset, byte for byte.
        assert surviving == full_wal[:offset]
        # Recovery == the exact prefix whose records fit below the cut —
        # and it truncates the torn tail back to that prefix's bytes.
        expected = max(i for i, end in enumerate(ends) if end <= offset)
        assert recovered == prefix_states[expected], \
            f"crash at byte {offset}: not the state after {expected} ops"
        assert backend.read("d.wal") == full_wal[:ends[expected]]


def test_matrix_file_backend(tmp_path):
    full_wal, ends, prefix_states = golden_run()
    for offset in interesting_offsets(full_wal):
        root = tmp_path / f"crash-{offset}"
        backend = FileBackend(root)
        recovered, crashed, surviving = crash_run(
            backend, CrashPoint(after_bytes=offset))
        assert crashed == (offset < len(full_wal))
        assert surviving == full_wal[:offset]
        expected = max(i for i, end in enumerate(ends) if end <= offset)
        assert recovered == prefix_states[expected], \
            f"crash at byte {offset}: not the state after {expected} ops"
        backend.close()


def test_matrix_clean_append_boundaries_with_folding():
    """Crashing at every record boundary with auto-folding on: recovery
    must still be exactly the k-op prefix (folds change the bytes on
    disk but never the recovered state)."""
    _, _, prefix_states = golden_run()
    for k in range(len(WORKLOAD) + 1):
        backend = MemoryBackend()
        backend.install_crash_point(CrashPoint(after_appends=k))
        durable = DurableState(backend, name="d", snapshot_every=3)
        state = PersistentState(durable)
        try:
            run_workload(state)
        except BackendCrash:
            pass
        backend.reset_crash()
        recovered = PersistentState(DurableState(backend, name="d"))
        assert recovered.snapshot() == prefix_states[k], \
            f"clean crash after {k} appends (with folds)"


@pytest.mark.parametrize("stride", [1, 7, 23])
def test_matrix_byte_offsets_with_folding(stride):
    """With auto-folding, a byte-budget crash can land inside a fold's
    snapshot write too (atomic: applies nothing). Whatever it tears,
    recovery must yield SOME prefix state and never raise."""
    _, _, prefix_states = golden_run()
    # Size the sweep from a crash-free folded run's total write volume.
    probe = MemoryBackend()
    run_workload(PersistentState(DurableState(probe, name="d",
                                              snapshot_every=3)))
    for offset in range(0, probe.bytes_written + 1, stride):
        backend = MemoryBackend()
        backend.install_crash_point(CrashPoint(after_bytes=offset))
        durable = DurableState(backend, name="d", snapshot_every=3)
        state = PersistentState(durable)
        try:
            run_workload(state)
        except BackendCrash:
            pass
        backend.reset_crash()
        recovered = PersistentState(DurableState(backend, name="d"))
        assert recovered.snapshot() in prefix_states, \
            f"crash at write-byte {offset} recovered a non-prefix state"


def test_repeated_crashes_then_full_run(tmp_path):
    """A store that survives crash after crash, resuming the workload
    each time, converges to the full-run state (file backend: fresh
    process per incarnation via fresh handles)."""
    full_state = golden_run()[2][-1]
    root = tmp_path / "store"
    budgets = [30, 90, 170, 260, 10_000]  # strictly growing byte budgets
    for budget in budgets:
        backend = FileBackend(root)
        backend.install_crash_point(CrashPoint(after_bytes=budget))
        state = PersistentState(DurableState(backend, name="d",
                                             snapshot_every=0))
        try:
            # Re-run the whole workload from the top each incarnation —
            # idempotent because every op sets/overwrites explicitly.
            run_workload(state)
        except BackendCrash:
            pass
        backend.close()
    final = PersistentState(DurableState(FileBackend(root), name="d"))
    assert final.snapshot() == full_state
