"""DurableState: journaling, folding, recovery, named objects, tracing."""

import json

import pytest

from repro.dapplet.state import PersistentState
from repro.errors import SerializationError, StoreError
from repro.messages import Text
from repro.obs import Tracer
from repro.store import (
    FSYNC_ALWAYS,
    FSYNC_FOLD,
    FSYNC_NEVER,
    DurableState,
    FileBackend,
    MemoryBackend,
)
from repro.store.wal import iter_records


@pytest.fixture(params=["memory", "file"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield MemoryBackend()
    else:
        fb = FileBackend(tmp_path / "store")
        yield fb
        fb.close()


def test_journal_then_recover(backend):
    d = DurableState(backend, name="s", snapshot_every=0)
    d.journal("cal", {"o": "s", "k": "mon", "v": "busy"})
    d.journal("cal", {"o": "s", "k": "tue", "v": "free"})
    d.journal("cal", {"o": "d", "k": "mon"})
    d.journal("docs", {"o": "s", "k": "n", "v": 3})
    fresh = DurableState(backend, name="s")
    assert fresh.recover() == {"cal": {"tue": "free"}, "docs": {"n": 3}}


def test_recover_empty_store(backend):
    assert DurableState(backend, name="s").recover() == {}


def test_restore_op_replaces_region(backend):
    d = DurableState(backend, name="s", snapshot_every=0)
    d.journal("cal", {"o": "s", "k": "a", "v": 1})
    d.journal("cal", {"o": "r", "v": {"b": 2}})  # checkpoint rollback
    assert DurableState(backend, name="s").recover() == {"cal": {"b": 2}}


def test_fold_truncates_wal_and_recovery_matches(backend):
    d = DurableState(backend, name="s", snapshot_every=0)
    for i in range(10):
        d.journal("r", {"o": "s", "k": f"k{i}", "v": i})
    d.fold(state={"r": {f"k{i}": i for i in range(10)}})
    assert d.wal_bytes() == b""
    d.journal("r", {"o": "s", "k": "post", "v": "fold"})
    expected = {"r": {**{f"k{i}": i for i in range(10)}, "post": "fold"}}
    assert DurableState(backend, name="s").recover() == expected


def test_auto_fold_after_snapshot_every(backend):
    state = {"r": {}}
    d = DurableState(backend, name="s", snapshot_every=3,
                     state_fn=lambda: state)
    for i in range(7):
        state["r"][f"k{i}"] = i
        d.journal("r", {"o": "s", "k": f"k{i}", "v": i})
    assert d.stats["folds"] == 2  # at records 3 and 6
    records, _, _ = iter_records(d.wal_bytes())
    assert len(records) == 1  # only the 7th record since the last fold
    assert DurableState(backend, name="s").recover() == state


def test_stale_wal_records_skipped_by_sequence(backend):
    """A crash between writing the snapshot and truncating the WAL
    leaves stale records behind; recovery must skip them by sequence,
    not re-apply them over the snapshot."""
    d = DurableState(backend, name="s", snapshot_every=0)
    d.journal("r", {"o": "s", "k": "x", "v": "old"})
    d.journal("r", {"o": "d", "k": "x"})
    wal_before = d.wal_bytes()
    d.fold(state={"r": {"x": "folded"}})
    # Simulate the un-truncated WAL the crash would leave.
    backend.write(d.wal_key, wal_before)
    fresh = DurableState(backend, name="s")
    assert fresh.recover() == {"r": {"x": "folded"}}
    assert fresh.stats["skipped"] == 2
    assert fresh.stats["replayed"] == 0


def test_sequence_continues_after_recovery(backend):
    d = DurableState(backend, name="s", snapshot_every=0)
    d.journal("r", {"o": "s", "k": "a", "v": 1})
    fresh = DurableState(backend, name="s", snapshot_every=0)
    fresh.recover()
    fresh.journal("r", {"o": "s", "k": "b", "v": 2})
    # Both records survive a second recovery: no sequence collision.
    final = DurableState(backend, name="s")
    assert final.recover() == {"r": {"a": 1, "b": 2}}


def test_torn_tail_tolerated_and_counted(backend):
    d = DurableState(backend, name="s", snapshot_every=0)
    d.journal("r", {"o": "s", "k": "a", "v": 1})
    clean_wal = d.wal_bytes()
    backend.append(d.wal_key, b"\x00\x00\x00\x99torn")  # crash signature
    fresh = DurableState(backend, name="s", snapshot_every=0)
    assert fresh.recover() == {"r": {"a": 1}}
    assert fresh.stats["torn_tails"] == 1
    # Recovery truncated the garbage, so new appends stay readable.
    assert fresh.wal_bytes() == clean_wal
    fresh.journal("r", {"o": "s", "k": "b", "v": 2})
    assert DurableState(backend, name="s").recover() == \
        {"r": {"a": 1, "b": 2}}


def test_corrupt_snapshot_raises_typed(backend):
    d = DurableState(backend, name="s")
    backend.write(d.snap_key, b"this is not a record")
    with pytest.raises(StoreError, match="snapshot"):
        d.recover()


def test_unencodable_value_fails_before_any_write(backend):
    d = DurableState(backend, name="s", snapshot_every=0)
    with pytest.raises(SerializationError):
        d.journal("r", {"o": "s", "k": "bad", "v": object()})
    assert d.wal_bytes() == b""
    assert d.stats["appends"] == 0


def test_wire_types_roundtrip_through_journal(backend):
    """Everything the message codec handles — bytes, tuples, messages —
    must survive the journal byte-for-byte."""
    d = DurableState(backend, name="s", snapshot_every=0)
    d.journal("r", {"o": "s", "k": "blob", "v": b"\x00\xff\x80"})
    d.journal("r", {"o": "s", "k": "pair", "v": (1, ("a", b"b"))})
    d.journal("r", {"o": "s", "k": "msg", "v": Text("hello")})
    state = DurableState(backend, name="s").recover()
    assert state["r"]["blob"] == b"\x00\xff\x80"
    assert state["r"]["pair"] == (1, ("a", b"b"))
    assert isinstance(state["r"]["msg"], Text)
    assert state["r"]["msg"].text == "hello"


def test_wal_bytes_are_deterministic():
    def run():
        b = MemoryBackend()
        d = DurableState(b, name="s", snapshot_every=0)
        d.journal("r", {"o": "s", "k": "z", "v": {"b": 2, "a": 1}})
        d.journal("r", {"o": "s", "k": "y", "v": [3, (4, 5)]})
        d.journal("r", {"o": "d", "k": "z"})
        return d.wal_bytes()

    assert run() == run()  # canonical JSON: byte-identical journals


def test_named_objects_roundtrip(backend):
    d = DurableState(backend, name="dapplet/a")
    d.save_object("ckpt@7", {"state": {"r": {"k": (1, 2)}}, "clock": 7})
    loaded = DurableState(backend, name="dapplet/a").load_object("ckpt@7")
    assert loaded == {"state": {"r": {"k": (1, 2)}}, "clock": 7}
    assert d.load_object("ckpt@99") is None


def test_named_log_roundtrip(backend):
    d = DurableState(backend, name="dapplet/a")
    d.append_log("ckpt@7.chan", Text("one"))
    d.append_log("ckpt@7.chan", Text("two"))
    msgs = DurableState(backend, name="dapplet/a").read_log("ckpt@7.chan")
    assert [m.text for m in msgs] == ["one", "two"]
    assert d.read_log("ckpt@99.chan") == []


def test_fsync_policies(backend):
    always = DurableState(backend, name="a", fsync=FSYNC_ALWAYS,
                          snapshot_every=0)
    always.journal("r", {"o": "s", "k": "x", "v": 1})
    synced = backend.sync_calls
    assert synced >= 1
    never = DurableState(backend, name="n", fsync=FSYNC_NEVER,
                         snapshot_every=0)
    never.journal("r", {"o": "s", "k": "x", "v": 1})
    never.fold(state={"r": {"x": 1}})
    assert backend.sync_calls == synced  # untouched
    fold_only = DurableState(backend, name="f", fsync=FSYNC_FOLD,
                             snapshot_every=0)
    fold_only.journal("r", {"o": "s", "k": "x", "v": 1})
    assert backend.sync_calls == synced
    fold_only.fold(state={"r": {"x": 1}})
    assert backend.sync_calls == synced + 1


def test_constructor_validation():
    b = MemoryBackend()
    with pytest.raises(StoreError):
        DurableState(b, fsync="sometimes")
    with pytest.raises(StoreError):
        DurableState(b, snapshot_every=-1)
    with pytest.raises(StoreError, match="state_fn"):
        DurableState(b).fold()


class _Substrate:
    """Minimal tracer host: a settable ``tracer`` and a clock."""

    def __init__(self):
        self.tracer = None
        self.now = 0.0


def test_trace_events_and_histograms():
    substrate = _Substrate()
    tracer = Tracer().attach(substrate)
    b = MemoryBackend()
    d = DurableState(b, name="s", snapshot_every=0, substrate=substrate,
                     node="caltech.edu:1")
    d.journal("r", {"o": "s", "k": "a", "v": 1})
    d.fold(state={"r": {"a": 1}})
    DurableState(b, name="s", substrate=substrate,
                 node="caltech.edu:1").recover()
    names = {(e.cat, e.name) for e in tracer.events}
    assert ("store", "append") in names
    assert ("store", "fold") in names
    assert ("store", "fsync") in names
    assert ("store", "recover") in names
    summary = tracer.summary()
    assert summary["histograms"]["store.fsync"]["count"] >= 1
    assert summary["histograms"]["store.replay"]["count"] == 1
    # Memory backend: traced durations are exactly 0.0, so the JSONL is
    # a deterministic function of the mutation sequence.
    for event in tracer.select("store"):
        for field in ("fsync", "replay"):
            if field in event.fields:
                assert event.fields[field] == 0.0
    for line in tracer.to_jsonl().splitlines():
        json.loads(line)


def test_persistent_state_attach_guards():
    b = MemoryBackend()
    state = PersistentState(DurableState(b, name="s"))
    with pytest.raises(StoreError, match="already"):
        state.attach(DurableState(b, name="other"))
    late = PersistentState()
    late.region("r")
    with pytest.raises(StoreError, match="before the first"):
        late.attach(DurableState(b, name="late"))


def test_persistent_state_full_cycle(backend):
    durable = DurableState(backend, name="dapplet/a", snapshot_every=4)
    state = PersistentState(durable)
    cal = state.region("cal")
    for day in ("mon", "tue", "wed", "thu", "fri"):
        cal.set(day, "busy")  # the 4th set auto-folds
    cal.delete("tue")
    state.region("docs").set("draft", b"\x89PNG")
    reborn = PersistentState(DurableState(backend, name="dapplet/a"))
    assert reborn.snapshot() == state.snapshot()
    assert reborn.region("docs").get("draft") == b"\x89PNG"
    # The reborn state keeps journaling: a third incarnation sees its
    # writes too.
    reborn.region("cal").set("sat", "free")
    third = PersistentState(DurableState(backend, name="dapplet/a"))
    assert third.region("cal").get("sat") == "free"
