"""Unit tests for WAL record framing: the torn-tail contract."""

import struct

import pytest

from repro.errors import StoreError
from repro.store.wal import (
    HEADER_BYTES,
    frame,
    interesting_offsets,
    iter_records,
    single_record,
)


def test_frame_roundtrip():
    record = frame(b"hello")
    payloads, consumed, torn = iter_records(record)
    assert payloads == [b"hello"]
    assert consumed == len(record)
    assert not torn


def test_frame_rejects_empty_payload():
    # A zero-length record would be indistinguishable from a torn tail
    # of NUL bytes, so the framing layer refuses to produce one.
    with pytest.raises(StoreError, match="empty"):
        frame(b"")


def test_concatenated_records_all_parse():
    payloads = [b"a", b"bb" * 100, b"\x00\xff\x7f", b"d"]
    data = b"".join(frame(p) for p in payloads)
    parsed, consumed, torn = iter_records(data)
    assert parsed == payloads
    assert consumed == len(data)
    assert not torn


def test_empty_stream_is_clean():
    assert iter_records(b"") == ([], 0, False)


@pytest.mark.parametrize("cut", [1, 3, HEADER_BYTES - 1, HEADER_BYTES,
                                 HEADER_BYTES + 1])
def test_truncation_yields_valid_prefix(cut):
    """Cutting the second record anywhere keeps the first intact."""
    first, second = frame(b"first-payload"), frame(b"second-payload")
    data = first + second[:cut]
    payloads, consumed, torn = iter_records(data)
    assert payloads == [b"first-payload"]
    assert consumed == len(first)
    assert torn


def test_corrupt_crc_ends_prefix():
    first, second, third = frame(b"one"), frame(b"two"), frame(b"three")
    # Flip a payload byte of the middle record: its CRC no longer holds,
    # so parsing stops there — even though the third record is intact.
    corrupted = bytearray(first + second + third)
    corrupted[len(first) + HEADER_BYTES] ^= 0xFF
    payloads, consumed, torn = iter_records(bytes(corrupted))
    assert payloads == [b"one"]
    assert consumed == len(first)
    assert torn


def test_nul_tail_is_torn_not_records():
    data = frame(b"real") + b"\x00" * 64
    payloads, _, torn = iter_records(data)
    assert payloads == [b"real"]
    assert torn


def test_length_prefix_lying_beyond_stream_is_torn():
    bogus = struct.pack("!II", 10_000, 0) + b"short"
    assert iter_records(bogus) == ([], 0, True)


def test_single_record_ok():
    assert single_record(frame(b"snap")) == b"snap"


@pytest.mark.parametrize("data", [
    b"",                                  # nothing at all
    frame(b"a") + frame(b"b"),            # two records
    frame(b"a")[:-1],                     # torn
    frame(b"a") + b"junk",                # record plus garbage
])
def test_single_record_rejects_anything_else(data):
    with pytest.raises(StoreError, match="corrupt"):
        single_record(data)


def test_single_record_names_the_object():
    with pytest.raises(StoreError, match="snapshot"):
        single_record(b"xx", what="snapshot")


class TestInterestingOffsets:
    def test_covers_every_tear_shape(self):
        data = frame(b"payload-one") + frame(b"payload-two")
        offsets = interesting_offsets(data)
        first_len = len(frame(b"payload-one"))
        assert 0 in offsets                      # crash before anything
        assert len(data) in offsets              # crash after everything
        assert first_len in offsets              # clean record boundary
        assert first_len + 2 in offsets          # inside the length
        assert first_len + HEADER_BYTES in offsets   # header, no payload
        assert offsets == sorted(set(offsets))   # sorted, unique

    def test_every_offset_recovers_a_prefix(self):
        payloads = [f"payload-{i}".encode() for i in range(5)]
        data = b"".join(frame(p) for p in payloads)
        for offset in interesting_offsets(data):
            parsed, _, _ = iter_records(data[:offset])
            assert parsed == payloads[:len(parsed)]  # always a prefix

    def test_empty_log(self):
        assert interesting_offsets(b"") == [0]
