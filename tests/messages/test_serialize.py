"""Unit tests for the message model and wire codec."""

from dataclasses import dataclass, field

import pytest

from repro.errors import SerializationError
from repro.messages import Blob, Message, Text, dumps, loads, message_type
from repro.messages import registered_types
from repro.net import InboxAddress, NodeAddress


@message_type("test.point")
@dataclass(frozen=True)
class Point(Message):
    x: int
    y: int


@message_type("test.envelope")
@dataclass(frozen=True)
class Envelope(Message):
    to: InboxAddress
    inner: Message
    tags: tuple = ()
    meta: dict = field(default_factory=dict)


def test_simple_roundtrip():
    msg = Point(3, 4)
    assert loads(dumps(msg)) == msg


def test_text_and_blob_builtins():
    assert loads(dumps(Text("hi"))).text == "hi"
    blob = Blob({"k": [1, 2.5, None, True]})
    assert loads(dumps(blob)).data == {"k": [1, 2.5, None, True]}


def test_addresses_roundtrip_inside_messages():
    to = NodeAddress("rice.edu", 4000).inbox("students")
    msg = Envelope(to=to, inner=Point(1, 2))
    back = loads(dumps(msg))
    assert back.to == to
    assert back.to.is_named
    assert back.inner == Point(1, 2)


def test_nested_message_roundtrip():
    msg = Envelope(to=NodeAddress("a.edu", 1).inbox(0),
                   inner=Envelope(to=NodeAddress("b.edu", 2).inbox(1),
                                  inner=Text("deep")))
    back = loads(dumps(msg))
    assert back.inner.inner.text == "deep"


def test_tuples_survive_roundtrip():
    msg = Envelope(to=NodeAddress("a.edu", 1).inbox(0), inner=Point(0, 0),
                   tags=("a", ("b", 1)))
    back = loads(dumps(msg))
    assert back.tags == ("a", ("b", 1))
    assert isinstance(back.tags, tuple)


def test_dict_fields_roundtrip():
    msg = Blob({"nested": {"x": [1, {"y": "z"}]}})
    assert loads(dumps(msg)).data == {"nested": {"x": [1, {"y": "z"}]}}


def test_unregistered_message_rejected():
    @dataclass(frozen=True)
    class Rogue(Message):
        a: int = 1

    with pytest.raises(SerializationError):
        dumps(Rogue())


def test_non_message_rejected():
    with pytest.raises(SerializationError):
        dumps({"not": "a message"})  # type: ignore[arg-type]


def test_unknown_type_on_decode_rejected():
    with pytest.raises(SerializationError):
        loads('{"t":"no.such.type","f":{}}')


def test_malformed_wire_rejected():
    with pytest.raises(SerializationError):
        loads("not json at all {")
    with pytest.raises(SerializationError):
        loads('{"missing": "keys"}')


def test_unencodable_field_value_rejected():
    with pytest.raises(SerializationError):
        dumps(Blob({"bad": object()}))


def test_non_string_dict_keys_rejected():
    with pytest.raises(SerializationError):
        dumps(Blob({1: "x"}))  # type: ignore[dict-item]


def test_reserved_dollar_keys_rejected():
    with pytest.raises(SerializationError):
        dumps(Blob({"$node": "spoof"}))


def test_name_collision_rejected():
    with pytest.raises(SerializationError):
        @message_type("test.point")  # already taken by Point
        @dataclass(frozen=True)
        class Other(Message):
            z: int = 0


def test_re_registration_of_same_class_tolerated():
    cls = message_type("test.point")(Point)
    assert cls is Point


def test_decorator_requires_dataclass_message():
    with pytest.raises(TypeError):
        @message_type("test.nodataclass")
        class NotDc(Message):
            pass

    with pytest.raises(TypeError):
        message_type("test.notmsg")(int)  # type: ignore[arg-type]


def test_registry_introspection():
    types = registered_types()
    assert types["test.point"] is Point
    assert "sys.text" in types


def test_wire_format_is_compact_json():
    wire = dumps(Point(1, 2))
    assert wire == '{"t":"test.point","f":{"x":1,"y":2}}'


def test_field_mismatch_on_decode_rejected():
    # Valid type but wrong fields.
    with pytest.raises(SerializationError):
        loads('{"t":"test.point","f":{"wrong":1}}')
