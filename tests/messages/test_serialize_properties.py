"""Property-based tests: the wire codec round-trips arbitrary payloads."""

from dataclasses import dataclass, field

from hypothesis import given, settings, strategies as st

from repro.messages import Blob, Message, dumps, loads, message_type
from repro.net import InboxAddress, NodeAddress

# -- strategies -------------------------------------------------------------

hostnames = st.from_regex(r"[a-z]{1,8}(\.[a-z]{2,5}){1,2}", fullmatch=True)
ports = st.integers(min_value=1, max_value=65535)
node_addresses = st.builds(NodeAddress, hostnames, ports)
inbox_refs = st.one_of(
    st.integers(min_value=0, max_value=10_000),
    st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_\-]{0,15}", fullmatch=True))
inbox_addresses = st.builds(InboxAddress, node_addresses, inbox_refs)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    node_addresses,
    inbox_addresses,
)

# Keys must be strings not starting with '$'.
keys = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,10}", fullmatch=True)

wire_values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(keys, children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
    ),
    max_leaves=20,
)


@message_type("proptest.payload")
@dataclass(frozen=True)
class Payload(Message):
    value: object = None
    extras: dict = field(default_factory=dict)


@settings(max_examples=200)
@given(wire_values)
def test_roundtrip_preserves_value(value):
    back = loads(dumps(Payload(value=value)))
    assert back.value == value
    assert type(back) is Payload


@settings(max_examples=100)
@given(st.dictionaries(keys, wire_values, max_size=3))
def test_roundtrip_preserves_dict_fields(extras):
    back = loads(dumps(Payload(extras=extras)))
    assert back.extras == extras


@settings(max_examples=100)
@given(wire_values)
def test_wire_is_stable(value):
    """Serialization is deterministic: same object, same wire string."""
    msg = Payload(value=value)
    assert dumps(msg) == dumps(msg)
    assert dumps(loads(dumps(msg))) == dumps(msg)


@settings(max_examples=100)
@given(wire_values, wire_values)
def test_nested_messages_roundtrip(a, b):
    outer = Payload(value=[Payload(value=a), Blob({"inner": b})])
    back = loads(dumps(outer))
    assert back.value[0].value == a
    assert back.value[1].data == {"inner": b}


@settings(max_examples=100)
@given(node_addresses)
def test_node_address_parse_total(addr):
    assert NodeAddress.parse(str(addr)) == addr


@settings(max_examples=100)
@given(inbox_addresses)
def test_inbox_address_parse_total(addr):
    back = InboxAddress.parse(str(addr))
    assert back.node == addr.node
    # Integer-looking string names parse as ints; the generator avoids
    # digit-leading names, so refs are preserved exactly.
    assert back.ref == addr.ref
