#!/usr/bin/env python3
"""Quickstart on the real substrate: dapplets over actual UDP sockets.

The same dapplet/mailbox stack as ``examples/quickstart.py``, but
deployed on :class:`repro.runtime.AsyncioSubstrate`: wall-clock time, an
asyncio event loop, and every message travelling as a real UDP datagram
over loopback sockets (the paper's deployment mode — "the initial
implementation uses UDP"). The only line that changes is the ``World``
construction.

Run:  PYTHONPATH=src python examples/real_udp_quickstart.py
"""

from repro import Dapplet, World
from repro.runtime import AsyncioSubstrate

N_MESSAGES = 20


class Producer(Dapplet):
    """Sends numbered messages to the consumer's 'in' inbox."""

    kind = "producer"

    def setup(self):
        self.outbox = self.create_outbox()

    def produce(self, done):
        for i in range(N_MESSAGES):
            result = self.outbox.send(f"msg {i}")
            yield result.confirmed()
        done.succeed()


class Consumer(Dapplet):
    """Receives messages in FIFO order and records them."""

    kind = "consumer"

    def setup(self):
        self.inbox = self.create_inbox(name="in")
        self.received = []

    def consume(self):
        while True:
            msg = yield self.inbox.receive()
            self.received.append(msg)
            print(f"[{self.world.now*1000:8.1f} ms] {self.name} got {msg!r}")


def main() -> None:
    substrate = AsyncioSubstrate(seed=1)
    world = World(substrate=substrate)
    try:
        producer = world.dapplet(Producer, "caltech.edu", "producer")
        consumer = world.dapplet(Consumer, "sydney.edu.au", "consumer")

        producer.outbox.add(consumer.inbox.address)
        consumer.spawn(consumer.consume(), name="consume")

        all_confirmed = substrate.event()
        producer.spawn(producer.produce(all_confirmed), name="produce")

        # Run until every send is acknowledged end-to-end, with a hard
        # wall-clock bound so a wedged network cannot hang the demo.
        world.run(all_confirmed, wall_timeout=20)
        # Drain trailing delivery/ACK work, then check FIFO order.
        world.run(wall_timeout=5)

        expected = [f"msg {i}" for i in range(N_MESSAGES)]
        assert consumer.received == expected, consumer.received
        stats = world.network.stats
        print(f"FIFO order verified over real UDP: {len(consumer.received)} "
              f"messages in {world.now*1000:.1f} ms")
        print(f"network: {stats.sent} datagrams sent, "
              f"{stats.delivered} delivered")
    finally:
        world.close()


if __name__ == "__main__":
    main()
