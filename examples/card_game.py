#!/usr/bin/env python3
"""The distributed card game: hot-potato elimination on a ring.

Player dapplets are linked "to predecessor and successor player
dapplets" (the paper's ring example). Each round eliminates whoever
holds the potato at zero; the session then *shrinks* — the paper's
"sessions may grow and shrink as required" — and the ring is rewired
around the gap, until one player remains.

Run:  python examples/card_game.py
"""

from repro import World
from repro.apps.cardgame import DealerDapplet, PlayerDapplet
from repro.net import GeoLatency

PLAYERS = {
    "north": "caltech.edu",
    "east": "mit.edu",
    "south": "rice.edu",
    "west": "utk.edu",
    "far": "sydney.edu.au",
}


def main() -> None:
    world = World(seed=11, latency=GeoLatency())
    players = [world.dapplet(PlayerDapplet, host, name)
               for name, host in PLAYERS.items()]
    dealer = world.dapplet(DealerDapplet, "caltech.edu", "dealer")
    result = []

    def run():
        winner, eliminated = yield from dealer.run_game(list(PLAYERS))
        result.append((winner, eliminated, world.now))

    world.run(until=world.process(run()))
    world.run()

    winner, eliminated, game_end = result[0]
    print("elimination order:")
    for i, name in enumerate(eliminated, 1):
        handled = world.get(name).potatoes_handled
        print(f"  round {i}: {name:<6} is out "
              f"(handled {handled} potatoes)")
    print(f"\nwinner: {winner} "
          f"(handled {world.get(winner).potatoes_handled} potatoes)")
    print(f"game took {game_end:.2f} simulated seconds; "
          f"{world.network.stats.sent} datagrams")


if __name__ == "__main__":
    main()
