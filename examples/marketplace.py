#!/usr/bin/env python3
"""A capability-gated marketplace: three principals, one revoked mid-run.

``acme`` (alice) publishes a storefront dapplet into a replicated
DAppStore catalog. Two consumers — bob and carol, each their own
principal — hold capability grants to establish sessions with it, call
its ``price`` RPC and draw ``credit`` tokens under a quota. Mid-run
carol is revoked: her next establish, her next RPC and her next token
request are all denied (each with a ``reg`` audit event), while bob's
already-open session keeps working and token conservation holds
throughout. Unowned worlds never pay for any of this — the gates only
fire when the target dapplet has an owner.

Run:  python examples/marketplace.py            (see docs/REGISTRY.md)
"""

from repro import Dapplet, Initiator, SessionSpec, Tracer, World
from repro.errors import CapabilityDenied, RpcError, SessionRejected
from repro.messages import Text
from repro.net import ConstantLatency
from repro.registry import TOKEN_RESOURCE
from repro.rpc import RemoteProxy, export
from repro.services.tokens import TokenAgent, TokenCoordinator


class Storefront(Dapplet):
    """Alice's service: answers pings in sessions, prices over RPC."""

    kind = "shop"

    def on_session_start(self, ctx):
        def serve():
            while ctx.active:
                msg = yield ctx.inbox("in").receive()
                ctx.outbox("out").send(Text(f"receipt:{msg.text}"))
        return serve()


class Shopper(Dapplet):
    kind = "app"

    def on_session_start(self, ctx):
        self.ctx = ctx
        return None


class PriceList:
    def price(self, item: str) -> int:
        return {"widget": 3, "gadget": 7}.get(item, 1)


def shop_spec(member: str) -> SessionSpec:
    spec = SessionSpec("shopping")
    spec.add_member("storefront", inboxes=("in",))
    spec.add_member(member, inboxes=("in",))
    spec.bind(member, "out", "storefront", "in")
    spec.bind("storefront", "out", member, "in")
    return spec


def main() -> World:
    world = World(seed=21, latency=ConstantLatency(0.01), tracer=Tracer())
    registry = world.registry
    alice = registry.principal("alice", org="acme")
    bob = registry.principal("bob", org="bobco")
    carol = registry.principal("carol", org="carolco")
    for consumer in (bob, carol):
        registry.grant(consumer, "acme/**",
                       ("session.establish", "rpc.call:price"))
        registry.grant(consumer, TOKEN_RESOURCE,
                       ("token.request:credit",), quota=2)

    world.host_dappstore(2)
    shop = world.dapplet(Storefront, "shop.acme.com", "storefront",
                         owner=alice, exports=("price",),
                         schema="storefront/v1")
    bob_app = world.dapplet(Shopper, "bob.example.org", "bob-app",
                            owner=bob)
    carol_app = world.dapplet(Shopper, "carol.example.org", "carol-app",
                              owner=carol)
    bob_init = world.dapplet(Initiator, "bob.example.org", "bob-init",
                             owner=bob)
    carol_init = world.dapplet(Initiator, "carol.example.org", "carol-init",
                               owner=carol)
    bank = world.dapplet(Shopper, "bank.example.org", "bank")
    prices = export(shop, PriceList(), name="prices")
    coordinator = TokenCoordinator(bank, {"credit": 4})

    def director():
        # The storefront's manifest lands in the replicated catalog.
        yield shop.manifest_agent.published
        catalog = world.store_client_for(bank)
        manifest = yield from catalog.lookup(shop.manifest_name)
        print(f"[{world.now:5.2f} s] catalog: {manifest.name} "
              f"(owner {manifest.owner}, methods {list(manifest.methods)})")

        # Both consumers shop while their grants stand.
        session = yield from carol_init.establish(shop_spec("carol-app"),
                                                  timeout=30.0)
        carol_app.ctx.outbox("out").send(Text("carol:widget"))
        reply = yield carol_app.ctx.inbox("in").receive()
        print(f"[{world.now:5.2f} s] carol shopped: {reply.text}")
        yield from session.terminate()

        bob_session = yield from bob_init.establish(shop_spec("bob-app"),
                                                    timeout=30.0)
        bob_proxy = RemoteProxy(bob_app, prices.pointer)
        carol_proxy = RemoteProxy(carol_app, prices.pointer)
        price = yield carol_proxy.call("price", "gadget", timeout=30.0)
        print(f"[{world.now:5.2f} s] carol's RPC quote: gadget={price}")
        carol_agent = TokenAgent(carol_app, coordinator.pointer)
        granted = yield carol_agent.request({"credit": 2})
        carol_agent.release(dict(granted))

        # Mid-run, acme drops carol. Every gate closes on her *next*
        # attempt -- the decision cache is cleared by the revocation.
        dropped = registry.revoke(carol)
        print(f"[{world.now:5.2f} s] revoked carol ({dropped} grants)")
        try:
            yield from carol_init.establish(shop_spec("carol-app"),
                                            timeout=30.0)
            print("carol established after revocation -- NO!")
        except SessionRejected as exc:
            print(f"[{world.now:5.2f} s] carol's establish denied: "
                  f"{exc.reason}")
        try:
            yield carol_proxy.call("price", "widget", timeout=30.0)
            print("carol's RPC passed after revocation -- NO!")
        except RpcError as exc:
            print(f"[{world.now:5.2f} s] carol's RPC denied: "
                  f"{exc.remote_type}")
        try:
            yield carol_agent.request({"credit": 1})
            print("carol drew tokens after revocation -- NO!")
        except CapabilityDenied as exc:
            print(f"[{world.now:5.2f} s] carol's tokens denied: {exc.verb}")

        # Bob never notices: his open session and his grants still work.
        bob_app.ctx.outbox("out").send(Text("bob:widget"))
        reply = yield bob_app.ctx.inbox("in").receive()
        price = yield bob_proxy.call("price", "widget", timeout=30.0)
        bob_agent = TokenAgent(bob_app, coordinator.pointer)
        granted = yield bob_agent.request({"credit": 2})
        bob_agent.release(dict(granted))
        print(f"[{world.now:5.2f} s] bob's session survived the "
              f"revocation: {reply.text}, widget={price}, tokens ok")
        yield from bob_session.terminate()

    world.run(until=world.process(director()))
    coordinator.check_conservation()
    print("token conservation invariant holds")
    counters = world.tracer.summary()["counters"]
    print(f"audit trail: {counters.get('reg.allow', 0)} allows, "
          f"{counters.get('reg.deny', 0)} denies, "
          f"{counters.get('reg.revoke', 0)} revocation")
    # Store replicas gossip forever; stop everything to drain the world.
    for dapplet in list(world.dapplets()):
        dapplet.stop()
    world.run()
    return world


if __name__ == "__main__":
    main()
