#!/usr/bin/env python3
"""Global snapshots of a running session (paper §4.2 + reference [3]).

Four dapplets pass "credits" around a WAN ring while a Chandy-Lamport
marker snapshot runs repeatedly. Every snapshot must account for all
credits — in member states or in transit on the FIFO channels — which
is the classic validation of cut consistency. The logical clocks
beneath (the paper's snapshot criterion) are also reported.

Run:  python examples/global_snapshot.py
"""

from repro import Dapplet, Initiator, World
from repro.messages import Blob
from repro.net import UniformLatency
from repro.services.clocks import ChandyLamportSnapshot, incoming_channels
from repro.session import SessionSpec

TOTAL = 120
MEMBERS = ["m0", "m1", "m2", "m3"]
HOSTS = ["caltech.edu", "rice.edu", "utk.edu", "mit.edu"]


class CreditDapplet(Dapplet):
    kind = "credit"

    def on_session_start(self, ctx):
        self.ctx = ctx
        self.credits = ctx.params["initial"]

        def local_state():
            queued = sum(m.data["amount"] for m in ctx.inbox("in").queued()
                         if isinstance(m, Blob))
            return {"credits": self.credits + queued}

        self.snap = ChandyLamportSnapshot(
            ctx, incoming=ctx.params["incoming"][ctx.member],
            state_fn=local_state)
        rng = self.world.kernel.rng.get(f"app/{self.name}")

        def run():
            while ctx.active:
                if self.credits > 0:
                    amount = rng.randint(1, self.credits)
                    self.credits -= amount
                    ctx.outbox("out").send(Blob({"amount": amount}))
                yield self.world.kernel.timeout(rng.uniform(0.01, 0.08))
                while not ctx.inbox("in").is_empty:
                    msg = yield ctx.inbox("in").receive()
                    self.credits += msg.data["amount"]

        return run()


def main() -> None:
    world = World(seed=17, latency=UniformLatency(0.02, 0.25))
    dapplets = {m: world.dapplet(CreditDapplet, h, m)
                for m, h in zip(MEMBERS, HOSTS)}
    initiator = world.dapplet(Initiator, "caltech.edu", "init")

    spec = SessionSpec("credits")
    for m in MEMBERS:
        spec.add_member(m, inboxes=("in",))
    for i, m in enumerate(MEMBERS):
        spec.bind(m, "out", MEMBERS[(i + 1) % len(MEMBERS)], "in")
    spec.params = {
        "initial": TOTAL // len(MEMBERS),
        "incoming": {m: incoming_channels(spec, m) for m in MEMBERS},
    }

    def director():
        session = yield from initiator.establish(spec)
        print(f"{TOTAL} credits circulating among {len(MEMBERS)} dapplets\n")
        print(f"{'snap':<6} {'in states':>10} {'in transit':>11} "
              f"{'total':>7}  consistent?")
        for gen in range(5):
            yield world.kernel.timeout(0.5)
            dapplets["m0"].snap.initiate(f"g{gen}")
            results = []
            for m in MEMBERS:
                d = dapplets[m]
                while d.snap.done is None:
                    yield world.kernel.timeout(0.01)
                results.append((yield d.snap.done))
            in_state = sum(r.state["credits"] for r in results)
            in_transit = sum(msg.data["amount"] for r in results
                             for msgs in r.channels.values()
                             for msg in msgs)
            ok = "yes" if in_state + in_transit == TOTAL else "NO!"
            print(f"g{gen:<5} {in_state:>10} {in_transit:>11} "
                  f"{in_state + in_transit:>7}  {ok}")
            for m in MEMBERS:
                dapplets[m].snap.reset()
        print("\nlogical clocks (snapshot criterion held throughout):")
        for m in MEMBERS:
            print(f"  {m}: t={dapplets[m].clock.time}")
        yield from session.terminate()

    world.run(until=world.process(director()))
    world.run()


if __name__ == "__main__":
    main()
