#!/usr/bin/env python3
"""Coping with a varied network environment (paper §2.2 and §3.2).

One channel, caltech -> sydney, under increasing datagram loss. The
ordering layer (sequence numbers + acks + retransmission over simulated
UDP) keeps delivery FIFO and exactly-once; the raw datagram baseline
(the UNRELIABLE delivery class) loses messages in proportion to the
loss — and its freshness filter turns reordered arrivals into drops
rather than out-of-order deliveries, so what does arrive is still an
ordered subsequence. Also demonstrates the paper's delivery-timeout
exception during a network partition.

Run:  python examples/lossy_wan.py
"""

from repro import Dapplet, DeliveryTimeout, World
from repro.messages import Text
from repro.net import RELIABLE, UNRELIABLE, FaultPlan, GeoLatency


class Node(Dapplet):
    kind = "node"


def run_transfer(drop: float, delivery, n: int = 200):
    world = World(seed=int(drop * 100) + (1 if delivery is RELIABLE else 0),
                  latency=GeoLatency(),
                  faults=FaultPlan(drop_prob=drop, reorder_jitter=0.05),
                  endpoint_options={"delivery": delivery})
    src = world.dapplet(Node, "caltech.edu", "src")
    dst = world.dapplet(Node, "sydney.edu.au", "dst")
    inbox = dst.create_inbox(name="data")
    outbox = src.create_outbox()
    outbox.add(inbox.named_address)

    def producer():
        # Paced sends: a burst fired in one instant would arrive almost
        # fully shuffled under jitter, and the UNRELIABLE freshness
        # filter would then stale-drop most of it. A modest gap keeps
        # reordering the exception, so the raw row shows *loss*.
        for i in range(n):
            outbox.send(Text(str(i)))
            yield world.substrate.timeout(0.1)

    world.run(until=world.process(producer()))
    world.run()
    received = [int(m.text) for m in inbox.queued()]
    in_order = received == sorted(received) and \
        received == list(dict.fromkeys(received))
    return len(received), in_order, src.endpoint.stats.data_retransmitted


def main() -> None:
    n = 200
    print(f"sending {n} messages caltech -> sydney\n")
    print(f"{'drop':>5} | {'raw recv':>9} {'raw FIFO?':>10} | "
          f"{'rel recv':>9} {'rel FIFO?':>10} {'retransmits':>12}")
    for drop in (0.0, 0.1, 0.3, 0.5):
        raw_n, raw_ok, _ = run_transfer(drop, UNRELIABLE, n=n)
        rel_n, rel_ok, rtx = run_transfer(drop, RELIABLE, n=n)
        print(f"{drop:>5.0%} | {raw_n:>9} {str(raw_ok):>10} | "
              f"{rel_n:>9} {str(rel_ok):>10} {rtx:>12}")

    # A partition: the paper says undelivered messages raise exceptions.
    print("\npartition demo: sydney unreachable, send with 2 s timeout")
    faults = FaultPlan()
    world = World(seed=9, latency=GeoLatency(), faults=faults,
                  endpoint_options={"rto_initial": 0.3})
    src = world.dapplet(Node, "caltech.edu", "src")
    dst = world.dapplet(Node, "sydney.edu.au", "dst")
    inbox = dst.create_inbox(name="data")
    outbox = src.create_outbox()
    outbox.add(inbox.named_address)
    faults.partition(src.address, dst.address)

    def sender():
        try:
            yield outbox.send_confirmed(Text("urgent"), timeout=2.0)
            print("  delivered (unexpected)")
        except DeliveryTimeout as exc:
            print(f"  DeliveryTimeout raised after {exc.timeout}s, "
                  "as the paper specifies")
        faults.heal(src.address, dst.address)
        yield outbox.send_confirmed(Text("after heal"), timeout=10.0)
        print("  after healing the partition, delivery confirmed")

    world.run(until=world.process(sender()))
    world.run()


if __name__ == "__main__":
    main()
