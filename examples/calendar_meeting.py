#!/usr/bin/env python3
"""Figure 1: scheduling an executive-committee meeting.

Nine committee members' calendar dapplets at Caltech, Rice and the
University of Tennessee, a coordinating secretary, and the center
director's initiator. The example runs the paper's session approach and
the traditional sequential-negotiation baseline on identical calendars,
showing why the paper proposes sessions.

Run:  python examples/calendar_meeting.py
"""

from repro import World
from repro.apps.calendar import (
    CalendarDapplet,
    MeetingDirector,
    SecretaryDapplet,
    busy_days,
    load_calendar,
    schedule_meeting,
)
from repro.apps.calendar.state import set_place_preferences
from repro.net import GeoLatency

#: Candidate meeting places; members veto the ones they will not travel
#: to (the paper's task: "pick a date and place").
PLACES = ("caltech", "rice", "tennessee")
TRAVEL_VETOES = {
    "sydney-member": ["tennessee", "rice"],  # long-haul either way
    "jack": ["caltech"],
    "ginger": ["caltech"],
}

#: Figure 1's cast: members at Caltech, Rice and Tennessee.
COMMITTEE = {
    "mani": "caltech.edu", "herb": "caltech.edu", "dan": "caltech.edu",
    "ken": "rice.edu", "linda": "rice.edu", "john": "rice.edu",
    "jack": "utk.edu", "ginger": "utk.edu", "sydney-member": "sydney.edu.au",
}

#: Everyone's prior commitments over a two-week horizon.
COMMITMENTS = {
    "mani": {0: "faculty lunch", 3: "lecture"},
    "herb": {1: "travel", 2: "travel"},
    "ken": {0: "dept meeting"},
    "linda": {4: "review panel"},
    "jack": {0: "teaching", 1: "teaching"},
    "sydney-member": {2: "timezone block", 3: "timezone block"},
}

HORIZON = 14


def build_world(seed: int) -> tuple[World, MeetingDirector, list[str]]:
    world = World(seed=seed, latency=GeoLatency())
    for name, host in COMMITTEE.items():
        dapplet = world.dapplet(CalendarDapplet, host, name)
        load_calendar(dapplet.state, COMMITMENTS.get(name, {}))
        set_place_preferences(dapplet.state, TRAVEL_VETOES.get(name, []))
    world.dapplet(SecretaryDapplet, "caltech.edu", "joann")
    director = world.dapplet(MeetingDirector, "caltech.edu", "director")
    return world, director, list(COMMITTEE)


def main() -> None:
    print(f"{'algorithm':<14} {'day':>4} {'place':>10} {'rounds':>7} "
          f"{'elapsed':>10} {'datagrams':>10}")
    for algorithm in ("session", "traditional", "negotiated"):
        world, director, members = build_world(seed=7)
        outcome_box = []

        def run():
            outcome = yield from schedule_meeting(
                director, "joann", members,
                horizon=HORIZON, algorithm=algorithm,
                label="executive committee", places=PLACES)
            outcome_box.append(outcome)

        world.run(until=world.process(run()))
        world.run()
        out = outcome_box[0]
        print(f"{algorithm:<14} {out.day:>4} {out.place:>10} "
              f"{out.rounds:>7} {out.elapsed*1000:>8.1f}ms "
              f"{out.datagrams:>10}")

    # Show the persistent effect on one calendar.
    world, director, members = build_world(seed=7)

    def run_once():
        yield from schedule_meeting(director, "joann", members,
                                    horizon=HORIZON,
                                    label="executive committee")

    world.run(until=world.process(run_once()))
    world.run()
    mani = world.get("mani")
    print("\nmani's calendar after the session "
          "(persistent state across sessions):")
    region = mani.state.region("calendar")
    for day in busy_days(region, HORIZON):
        print(f"  day {day:2d}: {region.get(f'busy:{day}')}")


if __name__ == "__main__":
    main()
