#!/usr/bin/env python3
"""Quickstart: two dapplets ping-pong across a simulated WAN.

Demonstrates the paper's core layer in ~60 lines: dapplets with global
addresses, an initiator linking them into a session (Figure 2), session
ports (inboxes/outboxes over FIFO channels), and clean termination.

Run:  python examples/quickstart.py
      python examples/quickstart.py --trace trace.jsonl   # export a trace
"""

from repro import Dapplet, Initiator, SessionSpec, Tracer, World
from repro.messages import Text
from repro.net import GeoLatency


class PingPong(Dapplet):
    """Replies to every 'ping <n>' with 'pong <n>'."""

    kind = "pingpong"

    def on_session_start(self, ctx):
        self.ctx = ctx
        if ctx.member != "responder":
            return None

        def respond():
            while ctx.active:
                msg = yield ctx.inbox("in").receive()
                print(f"[{self.world.now*1000:8.1f} ms] {self.name} got "
                      f"{msg.text!r}")
                ctx.outbox("out").send(Text(msg.text.replace("ping", "pong")))

        return respond()


def main(trace: str | None = None) -> World:
    # One world = one simulated internetwork. GeoLatency places hosts at
    # real coordinates; caltech<->sydney is a ~100 ms round trip.
    # With --trace, a Tracer records every layer's events for export.
    world = World(seed=1, latency=GeoLatency(),
                  tracer=Tracer() if trace is not None else None)
    caller = world.dapplet(PingPong, "caltech.edu", "caller")
    world.dapplet(PingPong, "sydney.edu.au", "responder")
    initiator = world.dapplet(Initiator, "caltech.edu", "init")

    # Describe the session: two members, a channel each way.
    spec = SessionSpec("pingpong")
    spec.add_member("caller", inboxes=("in",))
    spec.add_member("responder", inboxes=("in",))
    spec.bind("caller", "out", "responder", "in")
    spec.bind("responder", "out", "caller", "in")

    def director():
        session = yield from initiator.establish(spec)
        print(f"session {session.session_id} established with "
              f"{sorted(session.members)}")
        ctx = caller.ctx
        for i in range(3):
            ctx.outbox("out").send(Text(f"ping {i}"))
            reply = yield ctx.inbox("in").receive()
            print(f"[{world.now*1000:8.1f} ms] caller got {reply.text!r}")
        yield from session.terminate()
        print(f"session terminated at t={world.now*1000:.1f} ms")

    world.run(until=world.process(director()))
    world.run()
    stats = world.network.stats
    print(f"network: {stats.sent} datagrams sent, "
          f"{stats.delivered} delivered")
    if trace is not None:
        path = world.export_trace(trace)
        print(f"trace: {len(world.tracer.events)} events -> {path}")
    return world


if __name__ == "__main__":
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="export a JSONL trace of the run to PATH")
    main(parser.parse_args().trace)
