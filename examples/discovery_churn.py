#!/usr/bin/env python3
"""Discovery under churn: a replica crashes mid-run, the session still forms.

Three replicated directory dapplets hold the name->address map. Workers
register through lease agents (TTL + heartbeat renewals) and an
initiator resolves members through a caching, failing-over resolver
instead of a static table. Mid-run we crash the very replica the
initiator's resolver points at *and* silently kill one worker; the
session among the survivors still forms, and the dead worker's name
expires everywhere instead of hanging a lookup forever.

Run:  python examples/discovery_churn.py
"""

from repro import (Dapplet, Initiator, LeaseConfig, LeaseExpired, SessionSpec,
                   World)
from repro.net import ConstantLatency


class Worker(Dapplet):
    """A member that just sits in sessions; discovery is the show here."""

    kind = "worker"


def main() -> World:
    # Sub-second lease timings so a full expiry cycle fits the demo.
    cfg = LeaseConfig(ttl=1.0, renew_interval=0.25, sweep_interval=0.2,
                      gossip_interval=0.3, cache_ttl=0.3,
                      request_timeout=0.5)
    world = World(seed=14, latency=ConstantLatency(0.01))
    replicas = world.host_directory(3, config=cfg)
    print(f"directory: {len(replicas)} replicas at "
          f"{[str(r.address) for r in replicas]}")

    world.dapplet(Worker, "caltech.edu", "alice")
    world.dapplet(Worker, "rice.edu", "bob")
    carol = world.dapplet(Worker, "anl.gov", "carol")
    init = world.dapplet(Initiator, "cern.ch", "init")

    spec = SessionSpec("survivors")
    spec.add_member("alice", inboxes=("in",))
    spec.add_member("bob", inboxes=("in",))
    spec.bind("alice", "out", "bob", "in")

    def director():
        yield world.kernel.timeout(1.0)  # leases granted and gossiped
        # Crash the replica the initiator's resolver is bound to, so the
        # next resolve *must* fail over; kill carol without unregistering.
        victim = next(r for r in replicas
                      if r.address == init.resolver.replica)
        victim.stop()
        carol.stop()
        print(f"[{world.now:5.2f} s] crashed replica {victim.name}, "
              f"killed carol silently")

        yield world.kernel.timeout(cfg.staleness_bound(len(replicas)) + 1.0)
        session = yield from init.establish(spec, timeout=10.0)
        print(f"[{world.now:5.2f} s] session formed despite replica crash: "
              f"{sorted(session.members)} "
              f"(resolver failovers: {init.resolver.stats.failovers})")

        init.resolver.invalidate()
        try:
            yield from init.resolver.resolve("carol")
            print("carol still resolves -- NO!")
        except LeaseExpired as exc:
            print(f"[{world.now:5.2f} s] lease expired for "
                  f"{exc.name!r}: dead members fail fast, not forever")
        yield from session.terminate()

    world.run(until=world.process(director()))
    for dapplet in list(world.dapplets()):
        dapplet.stop()
    world.run()
    survivors = [r for r in replicas if not r.stopped]
    print(f"surviving replicas agree: "
          f"{all(r.live_entries() == survivors[0].live_entries() for r in survivors)}")
    return world


if __name__ == "__main__":
    main()
