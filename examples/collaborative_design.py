#!/usr/bin/env python3
"""Example Two: collaborative distributed design.

Three designers — Pasadena, Zurich, Tokyo — share a three-part design
in a long-lived mesh session. Edits take per-part write-locks through
the token service, change notices propagate to the whole team, and the
vector-clock machinery demonstrates what happens when someone bypasses
the locks.

Run:  python examples/collaborative_design.py
"""

from repro import Dapplet, Initiator, World
from repro.apps.design import DesignerDapplet, design_spec
from repro.net import GeoLatency
from repro.services.tokens import TokenCoordinator

TEAM = {"alice": "caltech.edu", "bob": "ethz.ch", "carol": "u-tokyo.ac.jp"}
PARTS = ["engine", "chassis", "ui"]


class Host(Dapplet):
    kind = "host"


def main() -> None:
    world = World(seed=3, latency=GeoLatency())
    designers = {name: world.dapplet(DesignerDapplet, host, name)
                 for name, host in TEAM.items()}
    token_host = world.dapplet(Host, "caltech.edu", "tokens")
    coordinator = TokenCoordinator(
        token_host, {f"part:{p}": len(TEAM) for p in PARTS})
    initiator = world.dapplet(Initiator, "caltech.edu", "init")
    spec = design_spec(list(TEAM), PARTS,
                       token_coordinator=coordinator.pointer)

    def director():
        session = yield from initiator.establish(spec)
        print(f"design session {session.session_id} up; "
              "this session lasts as long as the design\n")

        # Locked edits, possibly contending for the same part.
        yield from designers["alice"].edit("engine", "inline-6, 3.0L")
        e1 = world.process(designers["bob"].edit("engine", "V8, 4.0L"))
        e2 = world.process(designers["carol"].edit("ui", "dark theme"))
        yield e1 & e2
        yield world.kernel.timeout(2.0)  # notices cross the planet

        print("replicas after locked edits (all must agree):")
        for name, d in designers.items():
            parts = {p: d.store.part(p).content for p in PARTS}
            print(f"  {name:<6} {parts}  conflicts={len(d.store.conflicts)}")

        # Now two designers bypass the locks at the same instant.
        designers["alice"].edit_unlocked("chassis", "aluminium space frame")
        designers["bob"].edit_unlocked("chassis", "carbon monocoque")
        yield world.kernel.timeout(2.0)

        print("\nafter simultaneous UNLOCKED edits to 'chassis':")
        for name, d in designers.items():
            part = d.store.part("chassis")
            print(f"  {name:<6} content={part.content!r} "
                  f"conflicts={[c.part for c in d.store.conflicts]}")
        print("\nconcurrent edits were detected by vector clocks and "
              "resolved deterministically — every replica converged.")
        yield from session.terminate()

    world.run(until=world.process(director()))
    world.run()
    coordinator.check_conservation()
    print("\ntoken conservation invariant holds.")


if __name__ == "__main__":
    main()
