"""Inboxes.

The paper's inbox methods (§3.2):

* ``isEmpty()`` — :attr:`Inbox.is_empty`;
* ``awaitNonEmpty()`` — :meth:`Inbox.await_nonempty`, an event that
  fires as soon as the inbox holds a message;
* ``receive()`` — :meth:`Inbox.receive`, an event that fires with the
  message at the head of the inbox, removing it.

Each inbox has a global address (its dapplet's node address plus a local
integer reference) and optionally a string name ("a professor dapplet
may have inboxes called *students* and *grades*"); both forms address
the same queue.

Delivery hooks let services transform messages as they arrive — the
logical-clock service uses this to unwrap timestamps and advance the
receiver's clock (the global snapshot criterion) without the transport
knowing anything about clocks.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import ReceiveTimeout
from repro.messages.message import Message
from repro.messages.serialize import loads
from repro.net.address import InboxAddress
from repro.net.endpoint import Endpoint
from repro.runtime.substrate import Scheduler
from repro.sim.events import Event
from repro.sim.primitives import Store

DeliveryHook = Callable[[Message], Message]

#: Byte charge for a locally injected message (``deliver_local`` with no
#: wire payload to measure): the per-datagram header overhead stands in.
LOCAL_MESSAGE_SIZE = 64


class Inbox:
    """A FIFO queue of received messages, globally addressable."""

    def __init__(self, kernel: Scheduler, endpoint: Endpoint, ref: int,
                 name: str | None = None) -> None:
        self.kernel = kernel
        self.endpoint = endpoint
        self.ref = ref
        self.name = name
        self._store = Store(kernel)
        self._store.on_get = self._on_dequeue
        #: Enqueue instants of queued messages, head-aligned with the
        #: store; pairs enqueues with dequeues for the mailbox-wait
        #: histogram. Only fed while a tracer is attached.
        self._enqueued_at: deque[float] = deque()
        #: Wire sizes of queued messages, head-aligned with the store;
        #: their sum is :attr:`backlog_bytes`, the occupancy the
        #: endpoint's advertised receive window (``rwnd``) is derived
        #: from. Always fed, tracer or not.
        self._queued_sizes: deque[int] = deque()
        self.backlog_bytes = 0
        self._incoming_size: int | None = None
        self._last_dequeued_size = LOCAL_MESSAGE_SIZE
        self._nonempty_waiters: list[Event] = []
        #: Applied in order to every arriving message (may transform it).
        self.delivery_hooks: list[DeliveryHook] = []
        self.messages_received = 0
        self._closed = False
        endpoint.register_inbox(ref, self._deliver_wire, name=name,
                                backlog=lambda: self.backlog_bytes)

    # -- addressing ------------------------------------------------------

    @property
    def address(self) -> InboxAddress:
        """The global address using the integer local reference."""
        return InboxAddress(self.endpoint.address, self.ref)

    @property
    def named_address(self) -> InboxAddress:
        """The global address using the string name (requires a name)."""
        if self.name is None:
            raise ValueError(f"inbox {self.ref} has no string name")
        return InboxAddress(self.endpoint.address, self.name)

    # -- the paper's API ---------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """The paper's ``isEmpty()``."""
        return self._store.is_empty

    def __len__(self) -> int:
        return len(self._store)

    def await_nonempty(self) -> Event:
        """The paper's ``awaitNonEmpty()``: fires when a message is queued.

        Does not consume the message. If the inbox is already non-empty
        the event fires immediately (same instant).
        """
        ev = self.kernel.event()
        tr = self.kernel.tracer
        if tr is not None:
            tr.emit("mbox", "await", node=self.endpoint.address,
                    inbox=self.name or self.ref,
                    ready=not self._store.is_empty)
        if not self._store.is_empty:
            ev.succeed(None)
        else:
            self._nonempty_waiters.append(ev)
        return ev

    def receive(self, timeout: float | None = None) -> Event:
        """The paper's ``receive()``: fires with the head message, consuming it.

        With ``timeout``, fails with :class:`ReceiveTimeout` if nothing
        arrives in time (the pending take is withdrawn, so no message is
        lost).
        """
        if timeout is None:
            return self._store.get()
        outer = self.kernel.event()
        get_ev = self._store.get()
        timer = self.kernel.timeout(timeout)

        def on_get(ev: Event) -> None:
            if outer.triggered:
                # Timed out in the same instant the message landed; put
                # it back at the head so the next receive sees it.
                if self.kernel.tracer is not None:
                    self._enqueued_at.appendleft(self.kernel.now)
                self._queued_sizes.appendleft(self._last_dequeued_size)
                self.backlog_bytes += self._last_dequeued_size
                self._store.put_front(ev.value)
            else:
                outer.succeed(ev.value)

        def on_timer(_ev: Event) -> None:
            if outer.triggered or get_ev.triggered:
                return
            self._store.cancel(get_ev)
            outer.fail(ReceiveTimeout(
                f"no message on inbox {self.address} within {timeout}s",
                timeout=timeout))

        get_ev.callbacks.append(on_get)
        timer.callbacks.append(on_timer)
        return outer

    def peek(self) -> Message:
        """The head message without consuming it (raises if empty)."""
        return self._store.peek()

    def queued(self) -> list[Message]:
        """A copy of the currently queued messages, head first.

        Queued-but-unreceived messages are part of the *process* state
        (not the channel state) in snapshot terms; state functions that
        model "everything this dapplet has been delivered" need them.
        """
        return list(self._store._items)

    def transform_queued(self, fn: "Callable[[Message], Message | None]") -> None:
        """Rewrite messages already queued (dropping ``None`` results).

        Used by services that install delivery hooks after traffic may
        have arrived, to normalize messages the hooks did not see.
        """
        items = list(self._store._items)
        times = list(self._enqueued_at)
        times += [self.kernel.now] * (len(items) - len(times))
        sizes = list(self._queued_sizes)
        sizes += [LOCAL_MESSAGE_SIZE] * (len(items) - len(sizes))
        self._store._items.clear()
        self._enqueued_at.clear()
        self._queued_sizes.clear()
        self.backlog_bytes = 0
        for item, t, size in zip(items, times, sizes):
            replacement = fn(item)
            if replacement is not None:
                self._store._items.append(replacement)
                self._enqueued_at.append(t)
                self._queued_sizes.append(size)
                self.backlog_bytes += size

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Unregister from the endpoint; queued messages stay readable."""
        if not self._closed:
            self._closed = True
            self.endpoint.unregister_inbox(self.ref, name=self.name)

    # -- delivery (called by the endpoint) --------------------------------

    def _deliver_wire(self, payload: str, _addr: InboxAddress) -> None:
        message = loads(payload)
        self._incoming_size = LOCAL_MESSAGE_SIZE + len(payload)
        try:
            self.deliver_local(message)
        finally:
            self._incoming_size = None

    def deliver_local(self, message: Message) -> None:
        """Inject an already-decoded message (same-process delivery path
        used by services and tests).

        A delivery hook may return ``None`` to swallow the message —
        services use this for protocol traffic (e.g. snapshot markers)
        that the application must not see.
        """
        for hook in self.delivery_hooks:
            message = hook(message)
            if message is None:
                return
        self.messages_received += 1
        size = (self._incoming_size if self._incoming_size is not None
                else LOCAL_MESSAGE_SIZE)
        self._queued_sizes.append(size)
        self.backlog_bytes += size
        tr = self.kernel.tracer
        if tr is not None:
            self._enqueued_at.append(self.kernel.now)
            tr.emit("mbox", "enqueue", node=self.endpoint.address,
                    inbox=self.name or self.ref,
                    qlen=len(self._store) + 1,
                    msg=type(message).__name__)
        self._store.put(message)
        if self._nonempty_waiters:
            waiters, self._nonempty_waiters = self._nonempty_waiters, []
            for ev in waiters:
                ev.succeed(None)

    def _on_dequeue(self, message: Message) -> None:
        """Store observer: one message handed to a receiver."""
        enqueued = self._enqueued_at.popleft() if self._enqueued_at else None
        size = (self._queued_sizes.popleft() if self._queued_sizes
                else LOCAL_MESSAGE_SIZE)
        self.backlog_bytes = max(0, self.backlog_bytes - size)
        self._last_dequeued_size = size
        tr = self.kernel.tracer
        if tr is not None:
            tr.emit("mbox", "dequeue", node=self.endpoint.address,
                    inbox=self.name or self.ref, qlen=len(self._store),
                    msg=type(message).__name__,
                    wait=(None if enqueued is None
                          else self.kernel.now - enqueued))
        # Freed budget may reopen the advertised receive window.
        self.endpoint.inbox_drained(self.ref, self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or self.ref
        return f"<Inbox {self.endpoint.address}/{label} queued={len(self)}>"
