"""Channel bookkeeping.

A channel is directed from exactly one outbox to exactly one inbox
(paper §3.2). The transport layer keys its per-channel FIFO streams by
:func:`channel_key`, so the ordering guarantee is exactly the paper's:
per channel, not per node pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.address import InboxAddress, NodeAddress
from repro.net.delivery import RELIABLE


def channel_key(src_node: NodeAddress, outbox_ref: int,
                dst: InboxAddress) -> str:
    """Stable unique identifier of the (outbox -> inbox) channel."""
    return f"{src_node}#o{outbox_ref}->{dst}"


@dataclass
class Channel:
    """One directed FIFO channel and its counters."""

    key: str
    src_node: NodeAddress
    outbox_ref: int
    destination: InboxAddress
    created_at: float
    #: Delivery class of every copy on this channel (see
    #: :mod:`repro.net.delivery`); per-send overrides may still differ.
    delivery: str = RELIABLE
    copies_sent: int = 0
    bytes_sent: int = 0
