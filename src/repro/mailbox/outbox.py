"""Outboxes.

The paper's outbox methods (§3.2):

* ``add(ipa)`` — :meth:`Outbox.add`: bind to an inbox address ("appends
  the specified inbox to the list *inboxes* if it is not already on the
  list"; idempotent by specification);
* ``delete(ipa)`` — :meth:`Outbox.delete`: unbind ("otherwise throws an
  exception");
* ``send(msg)`` — :meth:`Outbox.send`: "sends a copy of the object
  *msg* along each output channel connected to the outbox. If this
  message is not delivered within a specified time, an exception is
  raised";
* ``destination()`` — :meth:`Outbox.destinations`.

``add``/``delete`` are polymorphic exactly as the paper describes: an
inbox may be given by its integer-reference global address or by its
(dapplet address, string name) pair; the two forms denote distinct
channel bindings only if both are added (normally an application picks
one form).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import BindingError
from repro.mailbox.channel import Channel, channel_key
from repro.mailbox.inbox import Inbox
from repro.messages.message import Message
from repro.messages.serialize import dumps
from repro.net.address import InboxAddress
from repro.net.delivery import validate_delivery
from repro.net.endpoint import DeliveryReceipt, Endpoint
from repro.runtime.substrate import Scheduler
from repro.sim.events import AllOf, Event

SendHook = Callable[[Message], Message]


class SendResult:
    """The outcome of one ``send``: one receipt per bound channel.

    ``confirmed()`` builds an event that fires once every copy has been
    acknowledged (or, on RELIABLE_SKIP channels, abandoned at the skip
    timeout — check each receipt's ``is_skipped``), or fails with
    :class:`DeliveryTimeout` if any copy missed its deadline. On
    UNRELIABLE-class channels there are no receipts and ``confirmed()``
    fires immediately.
    """

    def __init__(self, kernel: Scheduler,
                 receipts: list[DeliveryReceipt]) -> None:
        self.kernel = kernel
        self.receipts = receipts

    def confirmed(self) -> Event:
        return AllOf(self.kernel, [r.confirmed for r in self.receipts])

    @property
    def copies(self) -> int:
        return len(self.receipts)


class Outbox:
    """A send port; owns one FIFO channel per bound inbox.

    ``delivery`` picks the outbox's delivery class (see
    :mod:`repro.net.delivery`); ``None`` inherits the endpoint's
    default. ``skip_timeout`` tunes the RELIABLE_SKIP abandon deadline
    for this outbox's channels (``None`` = the endpoint's).
    """

    def __init__(self, kernel: Scheduler, endpoint: Endpoint, ref: int, *,
                 delivery: str | None = None,
                 skip_timeout: float | None = None) -> None:
        self.kernel = kernel
        self.endpoint = endpoint
        self.ref = ref
        if delivery is not None:
            validate_delivery(delivery)
        self.delivery = delivery
        if skip_timeout is not None and skip_timeout <= 0:
            raise ValueError("skip_timeout must be > 0")
        self.skip_timeout = skip_timeout
        self._channels: dict[InboxAddress, Channel] = {}
        #: Applied in order to each copy before serialization (the
        #: logical-clock service stamps timestamps here).
        self.send_hooks: list[SendHook] = []
        self.messages_sent = 0

    # -- the paper's API ---------------------------------------------------

    def add(self, target: "InboxAddress | Inbox") -> None:
        """Bind this outbox to an inbox (idempotent, per the paper)."""
        address = self._resolve(target)
        if address in self._channels:
            return
        self._channels[address] = Channel(
            key=channel_key(self.endpoint.address, self.ref, address),
            src_node=self.endpoint.address, outbox_ref=self.ref,
            destination=address, created_at=self.kernel.now,
            delivery=self.delivery or self.endpoint.delivery)

    def delete(self, target: "InboxAddress | Inbox") -> None:
        """Unbind; raises :class:`BindingError` if not bound (per the paper)."""
        address = self._resolve(target)
        if address not in self._channels:
            raise BindingError(
                f"outbox {self.endpoint.address}/o{self.ref} is not bound "
                f"to {address}")
        del self._channels[address]

    def destinations(self) -> tuple[InboxAddress, ...]:
        """The paper's ``destination()``: the bound inbox addresses."""
        return tuple(self._channels)

    def is_bound_to(self, target: "InboxAddress | Inbox") -> bool:
        return self._resolve(target) in self._channels

    def send(self, message: Message, timeout: float | None = None, *,
             delivery: str | None = None) -> SendResult:
        """Send a copy of ``message`` along every bound channel.

        ``delivery`` overrides the outbox's delivery class for this one
        message (UNRELIABLE copies yield no receipts).

        The paper models this as append-to-outbox plus a layer that
        drains the queue to all channels; since the drain is immediate
        and per-channel FIFO is preserved by the transport, doing both
        in one call is observationally equivalent.

        With no bindings and no ``timeout``, sending is a legal fan-out
        of zero copies: the returned result has ``copies == 0`` and its
        ``confirmed()`` fires immediately (vacuous truth). Asking for a
        ``timeout`` on an unbound outbox raises :class:`BindingError`
        instead — there is no channel whose delivery could ever be
        confirmed or time out, and a silently instant "success" would
        mask a wiring bug (matching :meth:`send_confirmed`).
        """
        if timeout is not None and not self._channels:
            raise BindingError(
                f"outbox {self.endpoint.address}/o{self.ref} has no bindings")
        wire = dumps(self._apply_hooks(message))
        receipts: list[DeliveryReceipt] = []
        tr = self.kernel.tracer
        for address, chan in self._channels.items():
            if tr is not None:
                tr.emit("mbox", "send", node=self.endpoint.address,
                        ch=chan.key, outbox=self.ref,
                        msg=type(message).__name__, size=len(wire))
            receipt = self.endpoint.send(address, wire, chan.key,
                                         timeout=timeout,
                                         delivery=delivery or chan.delivery,
                                         skip_timeout=self.skip_timeout)
            chan.copies_sent += 1
            chan.bytes_sent += len(wire)
            if receipt is not None:
                receipts.append(receipt)
        self.messages_sent += 1
        return SendResult(self.kernel, receipts)

    def writable(self) -> Event:
        """An event firing when every bound channel's send window accepts
        a new packet (immediately when nothing is queued — including
        with flow control off or no bindings at all). Fails with
        :class:`~repro.errors.AddressError` if the endpoint closes while
        a channel is blocked, so waiters never hang on a window that
        cannot reopen."""
        events = [self.endpoint.writable(address.node, chan.key)
                  for address, chan in self._channels.items()]
        if not events:
            ev = self.kernel.event()
            ev.succeed(None)
            return ev
        if len(events) == 1:
            return events[0]
        return AllOf(self.kernel, events)

    def send_flow(self, message: Message, timeout: float | None = None):
        """Backpressure-respecting ``send``: a generator to delegate to
        from a process body::

            result = yield from outbox.send_flow(message)

        Blocks (in substrate time — virtual on the simulator, real on
        asyncio) while any bound channel's bytes-in-flight sit at
        ``min(cwnd, rwnd)``, then sends exactly like :meth:`send` and
        returns its :class:`SendResult`. This is what keeps a
        cooperative sender's retransmit queue bounded by the window
        instead of growing with everything ever sent. Raises
        :class:`~repro.errors.AddressError` if the endpoint is closed
        while blocked (see :meth:`Endpoint.writable`)."""
        yield self.writable()
        return self.send(message, timeout=timeout)

    def send_confirmed(self, message: Message, timeout: float) -> Event:
        """``send`` + the confirmation event, in one call.

        Yield this from a process to block until every copy is
        delivered; raises :class:`DeliveryTimeout` on expiry — the
        paper's exception-on-undelivered semantics in blocking form.
        """
        if not self._channels:
            raise BindingError(
                f"outbox {self.endpoint.address}/o{self.ref} has no bindings")
        if timeout is None:
            raise ValueError("send_confirmed requires a timeout")
        return self.send(message, timeout=timeout).confirmed()

    # -- helpers -----------------------------------------------------------

    def _apply_hooks(self, message: Message) -> Message:
        for hook in self.send_hooks:
            message = hook(message)
        return message

    @staticmethod
    def _resolve(target: "InboxAddress | Inbox") -> InboxAddress:
        if isinstance(target, Inbox):
            return target.address
        if isinstance(target, InboxAddress):
            return target
        raise TypeError(f"expected InboxAddress or Inbox, got {target!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Outbox {self.endpoint.address}/o{self.ref} "
                f"channels={len(self._channels)}>")
