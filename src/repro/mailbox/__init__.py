"""Inboxes, outboxes and channels — the paper's port layer.

The paper (§3.2): "Each process has a set of inboxes and a set of
outboxes. Inboxes and outboxes are message queues. A process can append
a message to the tail of one of its outboxes, and it can remove the
message at the head of one of its inboxes." Channels are directed FIFO
links from exactly one outbox to exactly one inbox; an outbox bound to
several inboxes sends a copy along every channel.
"""

from repro.mailbox.channel import Channel, channel_key
from repro.mailbox.inbox import Inbox
from repro.mailbox.outbox import Outbox, SendResult

__all__ = ["Channel", "Inbox", "Outbox", "SendResult", "channel_key"]
