"""Adaptive retransmission-timer state, per sender-side channel stream.

One :class:`SendStream` holds the sender half of one reliable channel
(fixed destination node + channel key): the sequence space, the
unacknowledged-packet window, and the Jacobson/Karn RTT machinery that
sizes retransmission timeouts in ``adaptive`` mode. It is pure state —
no scheduling, no I/O — which is what lets the endpoint machinery in
:mod:`repro.net.endpoint` drive it identically on the virtual-time
kernel and on a real event loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.endpoint import DeliveryReceipt


@dataclass
class PendingPacket:
    """Sender-side state of one unacknowledged packet."""

    seq: int
    to_ref: "int | str"
    payload: str
    receipt: "DeliveryReceipt"
    attempts: int = 1
    rto: float = 0.2
    deadline: float | None = None
    timed_out: bool = False
    first_sent_at: float = 0.0
    #: The receiver advertised holding this packet in its reordering
    #: buffer; retransmission is suppressed while an earlier hole exists.
    sacked: bool = False
    #: When this packet was last retransmitted (RTO- or duplicate-ACK
    #: driven). Fast retransmit is paced against it: at most one
    #: recovery transmission per measured RTT, so a lost fast
    #: retransmission is retried after ~one RTT instead of stalling
    #: until the (possibly huge) RTO, without ever flooding one hole.
    last_rtx_at: float = float("-inf")


class SendStream:
    """Sender half of one reliable channel (fixed dst node + channel key).

    In ``adaptive`` mode the stream keeps a Jacobson-style RTT estimate
    from acknowledged packets (Karn's rule: only ACKs that advance the
    cumulative point are sampled, so duplicate-triggered ACKs echoing a
    retransmission never pollute the estimate) and new packets start from
    ``srtt + 4*rttvar`` instead of the static initial RTO.
    """

    __slots__ = ("next_seq", "unacked", "rto_initial", "broken",
                 "srtt", "rttvar", "last_cum", "dup_acks", "last_rtt")

    def __init__(self, rto_initial: float) -> None:
        self.next_seq = 0
        self.unacked: dict[int, PendingPacket] = {}
        self.rto_initial = rto_initial
        self.broken = False
        self.srtt: float | None = None
        self.rttvar = 0.0
        #: Highest cumulative acknowledgement seen so far.
        self.last_cum = -1
        #: Consecutive duplicate cumulative ACKs at ``last_cum``.
        self.dup_acks = 0
        #: Most recent raw round-trip measurement from any ACK's echo
        #: timestamp. Unlike the Karn-gated ``srtt`` this includes
        #: duplicate-triggered ACKs — it only paces fast retransmit and
        #: never sizes the RTO, so the retransmission ambiguity that
        #: Karn's rule guards against is harmless here.
        self.last_rtt = 0.0

    def observe_rtt(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample

    def current_rto(self, floor: float = 0.005) -> float:
        if self.srtt is None:
            return self.rto_initial
        return max(self.srtt + 4 * self.rttvar, floor)
