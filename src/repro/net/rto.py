"""Per-channel sender state: retransmission timers and the send window.

One :class:`SendStream` holds the sender half of one reliable channel
(fixed destination node + channel key): the sequence space, the
unacknowledged-packet window, the Jacobson/Karn RTT machinery that
sizes retransmission timeouts in ``adaptive`` mode, and — when flow
control is enabled — the sliding-window state: an AIMD congestion
window (``cwnd``), the receiver-advertised window (``rwnd``), the
bytes-in-flight ledger and the queue of accepted-but-untransmitted
packets. It is pure state — no scheduling, no I/O — which is what lets
the endpoint machinery in :mod:`repro.net.endpoint` drive it
identically on the virtual-time kernel and on a real event loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.endpoint import DeliveryReceipt
    from repro.sim.events import Event

#: Ceiling on congestion-window growth, in bytes. Far above any window
#: this package can use; exists so additive increase cannot grow the
#: float unboundedly over very long runs.
CWND_MAX = float(1 << 24)


@dataclass
class PendingPacket:
    """Sender-side state of one unacknowledged packet."""

    seq: int
    to_ref: "int | str"
    payload: str
    receipt: "DeliveryReceipt"
    attempts: int = 1
    rto: float = 0.2
    deadline: float | None = None
    timed_out: bool = False
    first_sent_at: float = 0.0
    #: The receiver advertised holding this packet in its reordering
    #: buffer; retransmission is suppressed while an earlier hole exists.
    sacked: bool = False
    #: When this packet was last retransmitted (RTO- or duplicate-ACK
    #: driven). Fast retransmit is paced against it: at most one
    #: recovery transmission per measured RTT, so a lost fast
    #: retransmission is retried after ~one RTT instead of stalling
    #: until the (possibly huge) RTO, without ever flooding one hole.
    last_rtx_at: float = float("-inf")
    #: Charge against the send window (header overhead + payload bytes).
    size: int = 0
    #: UTF-8 byte length of ``payload`` on the wire (computed once at
    #: ``send``; sizes the frame-ceiling check and batch coalescing).
    wire_len: int = 0
    #: False while the packet sits in the stream's flow-control queue;
    #: True once it has been put on the wire (and charged to
    #: ``in_flight``). Always True when flow control is off.
    transmitted: bool = False
    #: RELIABLE_SKIP only: absolute time at which the sender abandons
    #: this packet and signals the receiver to advance past it. ``None``
    #: for plain RELIABLE packets.
    skip_at: float | None = None


class SendStream:
    """Sender half of one reliable channel (fixed dst node + channel key).

    In ``adaptive`` mode the stream keeps a Jacobson-style RTT estimate
    from acknowledged packets (Karn's rule: only ACKs that advance the
    cumulative point are sampled, so duplicate-triggered ACKs echoing a
    retransmission never pollute the estimate) and new packets start from
    ``srtt + 4*rttvar`` instead of the static initial RTO.

    The flow-control half (used only when the endpoint enables it) is
    TCP-shaped: ``cwnd`` follows AIMD with slow start (grow by the
    acknowledged bytes below ``ssthresh``, by roughly one max-size
    payload per window above it; halve on fast retransmit, collapse to
    one payload on RTO), ``rwnd`` mirrors the receiver's last advertised
    window (``None`` until the first advertisement arrives, treated as
    unlimited), and new transmissions are admitted only while
    ``in_flight + size <= min(cwnd, rwnd)``. ``cwnd`` never drops below
    the largest payload seen, so the stream can always keep one packet
    in flight and liveness never depends on the window.
    """

    __slots__ = ("next_seq", "unacked", "rto_initial", "broken",
                 "srtt", "rttvar", "last_cum", "dup_acks", "last_rtt",
                 "queue", "in_flight", "cwnd", "ssthresh", "rwnd",
                 "max_payload", "stalled", "probe_armed", "probe_attempts",
                 "probe_rto", "waiters", "cwnd_band",
                 "skip_upto", "skip_armed", "skip_attempts", "skip_rto")

    def __init__(self, rto_initial: float,
                 cwnd_initial: float = CWND_MAX) -> None:
        self.next_seq = 0
        self.unacked: dict[int, PendingPacket] = {}
        self.rto_initial = rto_initial
        self.broken = False
        self.srtt: float | None = None
        self.rttvar = 0.0
        #: Highest cumulative acknowledgement seen so far.
        self.last_cum = -1
        #: Consecutive duplicate cumulative ACKs at ``last_cum``.
        self.dup_acks = 0
        #: Most recent raw round-trip measurement from any ACK's echo
        #: timestamp. Unlike the Karn-gated ``srtt`` this includes
        #: duplicate-triggered ACKs — it only paces fast retransmit and
        #: never sizes the RTO, so the retransmission ambiguity that
        #: Karn's rule guards against is harmless here.
        self.last_rtt = 0.0
        #: Accepted-but-untransmitted packets, in sequence order. Every
        #: queued packet is also in ``unacked`` (so close/broken paths
        #: fail its receipt exactly like an in-flight one).
        self.queue: deque[PendingPacket] = deque()
        #: Bytes transmitted but not yet cumulatively acknowledged.
        self.in_flight = 0
        self.cwnd = float(cwnd_initial)
        self.ssthresh = CWND_MAX
        #: Receiver-advertised window; ``None`` = not yet advertised.
        self.rwnd: int | None = None
        #: Largest packet size accepted so far — the floor under
        #: ``cwnd`` and the congestion-avoidance increment unit.
        self.max_payload = 1
        #: A stall trace event has been emitted for the current closed-
        #: window episode (reset when the queue drains).
        self.stalled = False
        self.probe_armed = False
        self.probe_attempts = 0
        #: Current persist-probe interval (exponential backoff).
        self.probe_rto = 0.0
        #: Events succeeded when the queue drains (``Endpoint.writable``).
        self.waiters: list["Event"] = []
        #: log2 band of ``cwnd`` when last traced (growth trace dedup).
        self.cwnd_band = int(cwnd_initial).bit_length()
        #: RELIABLE_SKIP: highest abandoned-seq bound announced to the
        #: receiver (0 = nothing skipped yet); the SKIP frame carries it
        #: and is retransmitted until an ACK at or past ``skip_upto - 1``
        #: proves the receiver advanced.
        self.skip_upto = 0
        self.skip_armed = False
        self.skip_attempts = 0
        #: Current SKIP retransmission interval (exponential backoff).
        self.skip_rto = 0.0

    def observe_rtt(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample

    def current_rto(self, floor: float = 0.005) -> float:
        if self.srtt is None:
            return self.rto_initial
        return max(self.srtt + 4 * self.rttvar, floor)

    # -- the send window --------------------------------------------------

    def window(self) -> float:
        """Current admission limit: ``min(cwnd, rwnd)`` in bytes."""
        if self.rwnd is None:
            return self.cwnd
        return min(self.cwnd, float(self.rwnd))

    def note_payload(self, size: int) -> None:
        """Record an accepted packet's size; keeps the cwnd floor valid."""
        if size > self.max_payload:
            self.max_payload = size
        if self.cwnd < size:
            self.cwnd = float(size)

    def on_bytes_acked(self, acked: int) -> None:
        """AIMD growth: slow start below ``ssthresh``, ~one payload per
        round trip above it."""
        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd + acked, CWND_MAX)
        else:
            self.cwnd = min(
                self.cwnd + self.max_payload * acked / max(self.cwnd, 1.0),
                CWND_MAX)

    def on_loss_halve(self) -> None:
        """Multiplicative decrease on fast retransmit (dup-ACK loss)."""
        self.ssthresh = max(self.in_flight / 2.0, 2.0 * self.max_payload)
        self.cwnd = max(self.ssthresh, float(self.max_payload))

    def on_loss_collapse(self) -> None:
        """Timeout loss: back to one packet, slow-start from there."""
        self.ssthresh = max(self.in_flight / 2.0, 2.0 * self.max_payload)
        self.cwnd = float(self.max_payload)
