"""The ordering layer: reliable FIFO channels over unreliable datagrams.

The paper (§3.2): "The initial implementation uses UDP ... and it
includes a layer to ensure that messages are delivered in the order they
were sent" and "Messages sent along a channel are delivered in the order
sent." This module implements that layer with the classic mechanism:
per-channel sequence numbers, cumulative acknowledgements, retransmission
with exponential backoff, receiver-side reordering buffers and duplicate
suppression — yielding per-channel FIFO, exactly-once delivery over a
network that drops, duplicates and reorders.

On top of the cumulative baseline the layer speaks four refinements
borrowed from modern TCP, all per channel:

* **Selective acknowledgements** — every ACK carries a bounded ``sack``
  list of out-of-order sequence ranges held in the receiver's reordering
  buffer. The sender marks those packets and stops retransmitting them:
  only true holes go back on the wire (counted in
  ``stats.sacked_suppressed``).
* **Fast retransmit** — ``dup_ack_threshold`` duplicate cumulative ACKs
  retransmit the first unSACKed hole immediately instead of waiting out
  the RTO (counted in ``stats.fast_retransmits``).
* **Delayed / piggybacked ACKs** — in-order arrivals coalesce behind a
  short delayed-ack window (``ack_delay``); a gap, a duplicate or a
  hole-filling arrival always ACKs immediately so duplicate ACKs keep
  flowing for fast retransmit. A pending delayed ACK rides outgoing DATA
  to the same node for free (``stats.acks_piggybacked``).
* **Flow + congestion control** (``flow_control``, default on) — every
  ACK advertises the receiver's remaining buffer (``rwnd``, derived from
  the destination inbox's queue occupancy plus the reordering buffer),
  and the sender runs an AIMD congestion window with slow start (``cwnd``
  grows per acknowledged byte below ``ssthresh`` and by ~one max-size
  payload per round trip above it; halves on fast retransmit, collapses
  to one payload on RTO). New packets are transmitted only while
  bytes-in-flight stay within ``min(cwnd, rwnd)``; the excess queues in
  the stream, and consecutive queued payloads are coalesced into batched
  DATA frames (``parts`` framing, see :mod:`repro.net.wire`) when the
  window reopens. A closed receive window is probed with payload-less
  PROBE frames on a persist timer with exponential backoff, so a lost
  window-update ACK can never deadlock a sender; the probe budget is
  ``max_retries``, after which the channel is declared broken exactly
  like a retry-exhausted packet. Backpressure is exposed upward through
  :meth:`Endpoint.writable` (used by ``Outbox.send_flow``).

Reliability is a per-channel **delivery class**, not an endpoint-wide
switch (see :mod:`repro.net.delivery`): every send rides RELIABLE (all
of the above), UNRELIABLE (fire-and-forget, sequence-stamped so the
receiver drops duplicate and stale frames — no retransmit state, no
reorder buffer, no window accounting) or RELIABLE_SKIP (RELIABLE until
a skip timeout, then the sender abandons the packet, resolves its
receipt ``skipped`` and sends a SKIP frame advancing the receiver past
the hole, so FIFO delivery never stalls on an abandoned update). The
classes multiplex over one socket; the endpoint's ``delivery`` option
only sets the default.

One :class:`Endpoint` exists per node (machine); every inbox of every
dapplet on that node registers with it, and every outbox sends through
the endpoint of its node. The *channel key* identifies one outbox→inbox
channel, so ordering is exactly per-channel, as the paper specifies (two
channels between the same pair of nodes are independent).

The endpoint is substrate-agnostic: it talks to a
:class:`~repro.runtime.substrate.Scheduler` for time and timers and to a
:class:`~repro.runtime.substrate.DatagramService` for the wire, so the
same protocol machinery runs on the virtual-time simulator and on real
UDP sockets (see :mod:`repro.runtime`). The frame layout lives in
:mod:`repro.net.wire`; the per-stream RTT/RTO and window state in
:mod:`repro.net.rto`.

The paper also specifies: "if a message is not delivered within a
specified time, an exception is raised" — :meth:`Endpoint.send` returns a
:class:`DeliveryReceipt` whose ``confirmed`` event fails with
:class:`~repro.errors.DeliveryTimeout` in that case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import AddressError, DeliveryTimeout
from repro.net.address import InboxAddress, NodeAddress
from repro.net.datagram import HEADER_OVERHEAD, Datagram
from repro.net.delivery import (RELIABLE, RELIABLE_SKIP, UNRELIABLE,
                                validate_delivery)
from repro.net.rto import PendingPacket, SendStream
from repro.net.wire import (BATCH_COUNT_SIZE, BATCH_MAX_PAYLOADS,
                            DATA_FIXED_SIZE, KIND_ACK, KIND_DATA, KIND_PROBE,
                            KIND_SKIP, MAX_FRAME_BYTES,
                            PART_LEN_SIZE, SACK_MAX_RANGES, frame_base_size,
                            pack_entry_wire_size, payload_too_large,
                            ref_wire_size, utf8_len)
from repro.runtime.substrate import DatagramService, Scheduler
from repro.sim.events import Event


@dataclass
class EndpointStats:
    """Counters kept per endpoint (read by tests and benchmarks).

    See ``docs/PROTOCOLS.md`` for the full glossary.
    """

    data_sent: int = 0
    data_retransmitted: int = 0
    acks_sent: int = 0
    delivered: int = 0
    duplicates_discarded: int = 0
    buffered_out_of_order: int = 0
    gave_up: int = 0
    no_such_inbox: int = 0
    fast_retransmits: int = 0
    sacked_suppressed: int = 0
    acks_delayed: int = 0
    acks_piggybacked: int = 0
    window_stalls: int = 0
    window_resumes: int = 0
    window_probes: int = 0
    window_updates: int = 0
    batches_sent: int = 0
    batched_payloads: int = 0
    cwnd_halvings: int = 0
    cwnd_collapses: int = 0
    unreliable_sent: int = 0
    unreliable_delivered: int = 0
    stale_dropped: int = 0
    skipped: int = 0
    skips_sent: int = 0
    holes_skipped: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(vars(self))


class DeliveryReceipt:
    """Tracks the outcome of one reliable-class send.

    ``confirmed`` is an event that succeeds (with the elapsed
    send-to-resolution round-trip time) when the destination endpoint
    acknowledges the message — or, on a ``RELIABLE_SKIP`` channel, when
    the sender abandons it at the skip timeout — or fails with
    :class:`DeliveryTimeout` if a timeout was requested and expired
    first. ``outcome`` distinguishes the two success cases:
    ``"delivered"`` vs ``"skipped"`` (check :attr:`is_skipped`).
    Callers that do not care may simply drop the receipt; an unobserved
    timeout does not crash the run.
    """

    def __init__(self, kernel: Scheduler, destination: InboxAddress) -> None:
        self.kernel = kernel
        self.destination = destination
        self.sent_at = kernel.now
        self.confirmed: Event = kernel.event()
        #: ``"delivered"`` | ``"skipped"`` once resolved, else ``None``.
        self.outcome: str | None = None
        #: Pre-defused: a failure here is an application-visible outcome
        #: carried by the event, not an internal simulator error.
        self.confirmed.defused = True

    @property
    def is_confirmed(self) -> bool:
        return self.confirmed.triggered and self.confirmed._ok is True

    @property
    def is_failed(self) -> bool:
        return self.confirmed.triggered and self.confirmed._ok is False

    @property
    def is_skipped(self) -> bool:
        return self.outcome == "skipped"

    def _ack(self) -> None:
        if not self.confirmed.triggered:
            self.outcome = "delivered"
            self.confirmed.succeed(self.kernel.now - self.sent_at)

    def _skip(self) -> None:
        if not self.confirmed.triggered:
            self.outcome = "skipped"
            self.confirmed.succeed(self.kernel.now - self.sent_at)

    def _fail(self, exc: Exception) -> None:
        if not self.confirmed.triggered:
            self.confirmed.fail(exc)
            self.confirmed.defused = True


class _RecvStream:
    """Receiver half of one reliable channel (fixed src node + channel key)."""

    __slots__ = ("expected", "buffer", "ack_pending", "ack_armed",
                 "last_ack_at", "pending_ets", "buffered_bytes", "last_to",
                 "advertised_rwnd")

    def __init__(self) -> None:
        self.expected = 0
        self.buffer: dict[int, tuple["int | str", str]] = {}
        #: An acknowledgement is owed but has not been put on the wire.
        self.ack_pending = False
        #: A delayed-ack timer is currently armed for this stream.
        self.ack_armed = False
        self.last_ack_at = float("-inf")
        #: Echo timestamp of the earliest packet covered by the pending
        #: ACK (RFC 7323 rule: a coalesced ACK echoes its oldest trigger,
        #: so RTT samples account for the ack delay the sender must absorb).
        self.pending_ets: float | None = None
        #: Bytes held in the reordering buffer (charged against ``rwnd``).
        self.buffered_bytes = 0
        #: The inbox ref/name this channel last addressed; its queue
        #: occupancy is what the advertised window is derived from.
        self.last_to: "int | str | None" = None
        #: The window value most recently put on the wire (``None``
        #: before the first advertisement); window updates compare
        #: against it.
        self.advertised_rwnd: int | None = None

    def sack_ranges(self) -> list[list[int]]:
        """The out-of-order runs held in the buffer, as inclusive ranges."""
        ranges: list[list[int]] = []
        for seq in sorted(self.buffer):
            if ranges and seq == ranges[-1][1] + 1:
                ranges[-1][1] = seq
            else:
                if len(ranges) == SACK_MAX_RANGES:
                    break
                ranges.append([seq, seq])
        return ranges


DeliverFn = Callable[[str, InboxAddress], None]
BacklogFn = Callable[[], int]


class Endpoint:
    """A node's attachment to the network; home of the ordering layer.

    Parameters
    ----------
    kernel / network:
        The substrate halves: any :class:`Scheduler` (the simulation
        kernel, an :class:`~repro.runtime.AsyncioSubstrate`, ...) and any
        :class:`DatagramService` (the simulated network, real UDP
        sockets, ...).
    delivery:
        The endpoint's default delivery class —
        :data:`~repro.net.delivery.RELIABLE` (FIFO exactly-once, the
        default), :data:`~repro.net.delivery.UNRELIABLE`
        (fire-and-forget, stale/duplicate frames dropped by the
        receiver) or :data:`~repro.net.delivery.RELIABLE_SKIP`
        (retransmit until ``skip_timeout``, then abandon and advance the
        receiver past the hole). Every :meth:`send` may override it.
        (The pre-class ``reliable=`` boolean shim is gone; the "bare
        UDP" baseline of experiment E4 is ``delivery=UNRELIABLE``.)
    skip_timeout:
        RELIABLE_SKIP only: seconds a packet is retransmitted before
        the sender abandons it and signals the receiver to skip.
    rto_initial:
        Initial retransmission timeout. ``None`` estimates it per
        destination as 4x the latency model's mean.
    rto_max / max_retries:
        Backoff cap and retry budget; exhausting the budget marks the
        channel broken (counted in ``stats.gave_up``) so runs always
        quiesce even under pathological loss. The same budget bounds
        zero-window persist probes.
    sack:
        Enables selective acknowledgements and fast retransmit
        (default). False reverts to the pure cumulative-ACK protocol —
        the ablation baseline of benchmarks A1 and E4.
    dup_ack_threshold:
        Duplicate cumulative ACKs that trigger a fast retransmit of the
        first unSACKed hole (TCP's classic K=3).
    ack_delay:
        Width of the receiver's delayed-ack window. In-order arrivals
        within ``ack_delay`` of the previous ACK coalesce into one
        deferred ACK; out-of-order, duplicate and hole-filling arrivals
        always ACK immediately. 0 disables coalescing entirely.
    flow_control:
        Enables the sliding-window layer (default): receiver-advertised
        ``rwnd`` on every ACK, AIMD ``cwnd`` at the sender, transmission
        gated on ``min(cwnd, rwnd)``, batching of queued payloads, and
        zero-window probing. False reverts to transmit-immediately with
        an unbounded in-flight window — the ablation baseline of
        benchmark E13.
    cwnd_initial:
        Initial congestion window in bytes. The generous default means
        small workloads never queue; benchmarks and stress tests shrink
        it to exercise the window.
    recv_window:
        Receive buffer budget advertised per channel, in bytes: queued
        inbox bytes plus reordering-buffer bytes are subtracted from it.
    batch_bytes:
        Ceiling on one batched DATA frame's coalesced payload bytes
        (see also :data:`~repro.net.wire.BATCH_MAX_PAYLOADS`).
    """

    def __init__(self, kernel: Scheduler, network: DatagramService,
                 address: NodeAddress, *, delivery: str | None = None,
                 skip_timeout: float = 0.25,
                 rto_initial: float | None = None, rto_max: float = 5.0,
                 max_retries: int = 30, rto_mode: str = "static",
                 sack: bool = True, dup_ack_threshold: int = 3,
                 ack_delay: float = 0.01, flow_control: bool = True,
                 cwnd_initial: int = 64 * 1024,
                 recv_window: int = 64 * 1024,
                 batch_bytes: int = 4096) -> None:
        if rto_mode not in ("static", "adaptive"):
            raise ValueError("rto_mode must be 'static' or 'adaptive'")
        if dup_ack_threshold < 1:
            raise ValueError("dup_ack_threshold must be >= 1")
        if ack_delay < 0:
            raise ValueError("ack_delay must be >= 0")
        if cwnd_initial < 1:
            raise ValueError("cwnd_initial must be >= 1")
        if recv_window < 1:
            raise ValueError("recv_window must be >= 1")
        if batch_bytes < 1:
            raise ValueError("batch_bytes must be >= 1")
        if skip_timeout <= 0:
            raise ValueError("skip_timeout must be > 0")
        if delivery is None:
            delivery = RELIABLE
        else:
            validate_delivery(delivery)
        self.kernel = kernel
        self.network = network
        self.address = address
        self.delivery = delivery
        self.skip_timeout = skip_timeout
        self.rto_initial = rto_initial
        self.rto_max = rto_max
        self.max_retries = max_retries
        self.rto_mode = rto_mode
        self.sack = sack
        self.dup_ack_threshold = dup_ack_threshold
        self.ack_delay = ack_delay
        self.flow_control = flow_control
        self.cwnd_initial = cwnd_initial
        self.recv_window = recv_window
        self.batch_bytes = batch_bytes
        self.closed = False
        self.stats = EndpointStats()
        self._inboxes: dict["int | str", DeliverFn] = {}
        self._backlogs: dict["int | str", BacklogFn] = {}
        self._send_streams: dict[tuple[NodeAddress, str], SendStream] = {}
        self._recv_streams: dict[tuple[NodeAddress, str], _RecvStream] = {}
        self._rto_cache: dict[str, float] = {}
        #: Per source node: how many receive streams owe it an ACK.
        #: Index over ``_recv_streams[...].ack_pending`` so the DATA
        #: fast path skips the piggyback scan when nothing is owed.
        self._acks_owed: dict[NodeAddress, int] = {}
        #: UNRELIABLE sender half: next sequence stamp per
        #: (destination node, channel key).
        self._unreliable_seq: dict[tuple[NodeAddress, str], int] = {}
        #: UNRELIABLE receiver half: latest stamp delivered per
        #: (source node, channel key); older arrivals are stale-dropped.
        self._unreliable_latest: dict[tuple[NodeAddress, str], int] = {}
        network.register(address, self._on_datagram)

    def close(self) -> None:
        """Detach from the network (in-flight datagrams to us are lost).

        Armed retransmission, delayed-ack and persist-probe timers are
        neutralized (a closed endpoint injects no further datagrams) and
        every outstanding delivery receipt — queued behind a closed
        window or already in flight — fails with
        :class:`DeliveryTimeout`: once we stop listening, no
        acknowledgement can ever confirm them. Blocked window waiters
        (:meth:`writable`) fail with :class:`AddressError`, so a process
        parked in ``Outbox.send_flow`` is released promptly instead of
        hanging on a window that will never reopen.
        """
        if self.closed:
            return
        self.closed = True
        tr = self.kernel.tracer
        if tr is not None:
            tr.emit("ep", "close", node=self.address,
                    unacked=sum(len(s.unacked)
                                for s in self._send_streams.values()))
        self.network.unregister(self.address)
        for (node, channel), stream in self._send_streams.items():
            for pending in stream.unacked.values():
                pending.receipt._fail(DeliveryTimeout(
                    f"endpoint {self.address} closed with message on channel "
                    f"{channel!r} to {node} unacknowledged",
                    destination=pending.receipt.destination))
            stream.unacked.clear()
            stream.queue.clear()
            stream.in_flight = 0
            stream.stalled = False
            for ev in stream.waiters:
                if not ev.triggered:
                    ev.fail(AddressError(
                        f"endpoint {self.address} closed while channel "
                        f"{channel!r} to {node} was blocked on its window"))
                    ev.defused = True
            stream.waiters.clear()
        for stream in self._recv_streams.values():
            stream.ack_pending = False
        self._acks_owed.clear()

    # -- inbox registry ---------------------------------------------------

    def register_inbox(self, ref: int, deliver: DeliverFn,
                       name: str | None = None,
                       backlog: BacklogFn | None = None) -> None:
        """Register delivery for local inbox ``ref`` and optional ``name``.

        ``backlog`` reports the inbox's queued bytes; the receive window
        advertised to senders addressing this inbox subtracts it from
        ``recv_window``. Without it the inbox counts as always-empty.
        """
        if ref in self._inboxes:
            raise AddressError(f"inbox ref {ref} already registered on {self.address}")
        self._inboxes[ref] = deliver
        if backlog is not None:
            self._backlogs[ref] = backlog
        if name is not None:
            if name in self._inboxes:
                raise AddressError(
                    f"inbox name {name!r} already registered on {self.address}")
            self._inboxes[name] = deliver
            if backlog is not None:
                self._backlogs[name] = backlog

    def unregister_inbox(self, ref: int, name: str | None = None) -> None:
        self._inboxes.pop(ref, None)
        self._backlogs.pop(ref, None)
        if name is not None:
            self._inboxes.pop(name, None)
            self._backlogs.pop(name, None)

    # -- sending ----------------------------------------------------------

    def send(self, dst: InboxAddress, payload: str, channel: str,
             timeout: float | None = None, *, delivery: str | None = None,
             skip_timeout: float | None = None) -> DeliveryReceipt | None:
        """Send ``payload`` to ``dst`` on channel ``channel``.

        ``delivery`` overrides the endpoint's default class for this one
        message. Reliable-class sends (RELIABLE and RELIABLE_SKIP)
        return a :class:`DeliveryReceipt`; UNRELIABLE sends return
        ``None`` (and reject ``timeout``, which cannot be honoured
        without acknowledgements). A closed endpoint rejects all sends.

        With flow control enabled a reliable-class packet may be
        *queued* rather than transmitted when bytes-in-flight have
        reached ``min(cwnd, rwnd)``; ``send`` itself never blocks.
        Cooperative senders gate on :meth:`writable` (or use
        ``Outbox.send_flow``) to keep their queue bounded. UNRELIABLE
        sends bypass the window entirely and always go straight out.
        """
        if self.closed:
            raise AddressError(f"endpoint {self.address} is closed")
        cls = self.delivery if delivery is None else \
            validate_delivery(delivery)
        # Frame-ceiling check, identical on every substrate: a payload
        # that cannot fit one frame even unbatched must fail *here*
        # (typed, at send time) rather than blow up in the UDP encoder
        # while sailing through the in-memory simulator.
        wire_len = utf8_len(payload)
        frame_size = (frame_base_size(self.address, dst.node, channel)
                      + ref_wire_size(dst.ref) + wire_len
                      + DATA_FIXED_SIZE)
        if cls == UNRELIABLE:
            if timeout is not None:
                raise ValueError("delivery timeout requires a reliable endpoint")
            if frame_size > MAX_FRAME_BYTES:
                raise payload_too_large(frame_size)
            ukey = (dst.node, channel)
            seq = self._unreliable_seq.get(ukey, 0)
            self._unreliable_seq[ukey] = seq + 1
            self.stats.unreliable_sent += 1
            tr = self.kernel.tracer
            if tr is not None:
                tr.emit("ep", "data", node=self.address, ch=channel,
                        seq=seq, dst=str(dst.node), cls=UNRELIABLE)
            self.network.send(Datagram(
                self.address, dst.node,
                {"kind": KIND_DATA, "to": dst.ref, "ch": channel,
                 "seq": seq, "ts": self.kernel.now, "cls": UNRELIABLE},
                payload))
            return None

        key = (dst.node, channel)
        stream = self._send_streams.get(key)
        if stream is None:
            stream = SendStream(self._pick_rto(dst.node),
                                cwnd_initial=float(self.cwnd_initial))
            self._send_streams[key] = stream

        receipt = DeliveryReceipt(self.kernel, dst)
        if frame_size > MAX_FRAME_BYTES:
            # Failed before a sequence number is allocated, so the FIFO
            # stream is not holed by the rejected payload.
            tr = self.kernel.tracer
            if tr is not None:
                tr.emit("ep", "too_large", node=self.address, ch=channel,
                        size=frame_size)
            receipt._fail(payload_too_large(frame_size))
            return receipt
        if stream.broken:
            receipt._fail(DeliveryTimeout(
                f"channel {channel!r} to {dst.node} is broken (retries exhausted)",
                destination=dst, timeout=timeout))
            return receipt

        seq = stream.next_seq
        stream.next_seq += 1
        initial_rto = (stream.current_rto() if self.rto_mode == "adaptive"
                       else stream.rto_initial)
        pending = PendingPacket(seq=seq, to_ref=dst.ref, payload=payload,
                                receipt=receipt, rto=initial_rto,
                                deadline=(None if timeout is None
                                          else self.kernel.now + timeout),
                                first_sent_at=self.kernel.now,
                                size=HEADER_OVERHEAD + len(payload),
                                wire_len=wire_len)
        stream.unacked[seq] = pending
        self.stats.data_sent += 1
        tr = self.kernel.tracer
        if cls == RELIABLE_SKIP:
            hold = self.skip_timeout if skip_timeout is None else skip_timeout
            if hold <= 0:
                raise ValueError("skip_timeout must be > 0")
            pending.skip_at = self.kernel.now + hold
            if tr is not None:
                tr.emit("ep", "data", node=self.address, ch=channel, seq=seq,
                        dst=str(dst.node), cls=RELIABLE_SKIP)
            # The skip deadline has its own timer: it is typically
            # shorter than the RTO, and abandoning must not wait for
            # the retransmission machinery to wake up.
            self.kernel.call_later(hold,
                                   lambda: self._on_skip_timer(key, seq))
        elif tr is not None:
            tr.emit("ep", "data", node=self.address, ch=channel, seq=seq,
                    dst=str(dst.node))
        if self.flow_control:
            stream.note_payload(pending.size)
            stream.queue.append(pending)
            self._pump(key, stream)
        else:
            pending.transmitted = True
            self._transmit(dst.node, channel, pending)
            self._arm_timer(key, pending)
        return receipt

    def writable(self, dst_node: NodeAddress, channel: str) -> Event:
        """An event firing when the channel accepts a new send.

        Fires immediately when nothing is queued behind a closed window
        (including when flow control is off, the stream does not exist
        yet, or the channel is broken — a subsequent ``send`` then fails
        fast rather than queueing). While sends are queued, the event
        fires when the queue drains. Fails with :class:`AddressError` if
        the endpoint closes first, so blocked senders are released
        promptly.
        """
        ev = self.kernel.event()
        if self.closed:
            ev.fail(AddressError(f"endpoint {self.address} is closed"))
            ev.defused = True
            return ev
        stream = self._send_streams.get((dst_node, channel))
        if (not self.flow_control or stream is None or stream.broken
                or not stream.queue):
            ev.succeed(None)
        else:
            stream.waiters.append(ev)
        return ev

    def _pick_rto(self, dst: NodeAddress) -> float:
        if self.rto_initial is not None:
            return self.rto_initial
        cached = self._rto_cache.get(dst.host)
        if cached is None:
            try:
                mean = self.network.latency.mean_estimate(
                    self.address.host, dst.host)
            except Exception:
                mean = 0.05
            cached = max(4.0 * mean, 0.02)
            self._rto_cache[dst.host] = cached
        return cached

    # -- the send window ---------------------------------------------------

    def _pump(self, key: tuple[NodeAddress, str], stream: SendStream) -> None:
        """Transmit queued packets while the window allows, coalescing
        consecutive queued payloads into batched DATA frames; then update
        the stall/resume state and wake or park accordingly.

        The filler is size-aware in *wire* bytes, not just in the flow
        accounting: the group stops before the encoded batch frame would
        exceed :data:`~repro.net.wire.MAX_FRAME_BYTES`, so a run of
        large payloads splits into several frames on every substrate
        instead of encoding an oversized frame on the UDP one."""
        if self.closed or stream.broken:
            return
        batch_base = (frame_base_size(self.address, key[0], key[1])
                      + DATA_FIXED_SIZE + BATCH_COUNT_SIZE)
        while stream.queue:
            head = stream.queue[0]
            window = stream.window()
            if stream.in_flight + head.size > window:
                break
            group = [stream.queue.popleft()]
            total = head.size
            # Projected wire size if the group becomes a batch frame
            # (the head's ref appears both as ``to`` and in ``parts``).
            wire_total = (batch_base + 2 * ref_wire_size(head.to_ref)
                          + PART_LEN_SIZE + head.wire_len)
            while stream.queue and len(group) < BATCH_MAX_PAYLOADS:
                nxt = stream.queue[0]
                if total + nxt.size > self.batch_bytes:
                    break
                if stream.in_flight + total + nxt.size > window:
                    break
                nxt_wire = (ref_wire_size(nxt.to_ref) + PART_LEN_SIZE
                            + nxt.wire_len)
                if wire_total + nxt_wire > MAX_FRAME_BYTES:
                    break
                stream.queue.popleft()
                group.append(nxt)
                total += nxt.size
                wire_total += nxt_wire
            for p in group:
                p.transmitted = True
            stream.in_flight += total
            if len(group) == 1:
                self._transmit(key[0], key[1], head)
            else:
                self._transmit_batch(key[0], key[1], group)
            for p in group:
                self._arm_timer(key, p)
        tr = self.kernel.tracer
        if stream.queue:
            if not stream.stalled:
                stream.stalled = True
                self.stats.window_stalls += 1
                if tr is not None:
                    tr.emit("ep", "stall", node=self.address, ch=key[1],
                            queued=len(stream.queue),
                            in_flight=stream.in_flight,
                            cwnd=int(stream.cwnd), rwnd=stream.rwnd)
            if stream.in_flight == 0 and not stream.probe_armed:
                # Zero-window persist: nothing in flight can solicit the
                # window-opening ACK, so probe for it.
                self._arm_probe(key, stream)
        else:
            if stream.stalled:
                stream.stalled = False
                self.stats.window_resumes += 1
                if tr is not None:
                    tr.emit("ep", "resume", node=self.address, ch=key[1],
                            in_flight=stream.in_flight,
                            cwnd=int(stream.cwnd), rwnd=stream.rwnd)
            if stream.waiters:
                waiters, stream.waiters = stream.waiters, []
                for ev in waiters:
                    ev.succeed(None)

    def _cwnd_cut(self, key: tuple[NodeAddress, str], stream: SendStream,
                  reason: str) -> None:
        before = stream.cwnd
        if reason == "halve":
            stream.on_loss_halve()
        else:
            stream.on_loss_collapse()
        if stream.cwnd >= before:
            return  # already at (or below) the floor; nothing happened
        if reason == "halve":
            self.stats.cwnd_halvings += 1
        else:
            self.stats.cwnd_collapses += 1
        stream.cwnd_band = int(stream.cwnd).bit_length()
        tr = self.kernel.tracer
        if tr is not None:
            tr.emit("ep", "cwnd", node=self.address, ch=key[1],
                    cwnd=int(stream.cwnd), reason=reason)

    def _arm_probe(self, key: tuple[NodeAddress, str],
                   stream: SendStream) -> None:
        if stream.probe_rto <= 0.0:
            stream.probe_rto = (stream.current_rto()
                                if self.rto_mode == "adaptive"
                                else stream.rto_initial)
        stream.probe_armed = True
        self.kernel.call_later(stream.probe_rto,
                               lambda: self._on_probe_timer(key))

    def _on_probe_timer(self, key: tuple[NodeAddress, str]) -> None:
        if self.closed:
            return
        stream = self._send_streams.get(key)
        if stream is None:
            return
        if stream.broken:
            stream.probe_armed = False
            return
        self._sweep_deadlines(key, stream)
        # The window may have opened while the timer was armed
        # (probe_armed stays True through this pump so it cannot re-arm).
        self._pump(key, stream)
        if not stream.queue or stream.in_flight > 0:
            stream.probe_armed = False
            stream.probe_attempts = 0
            stream.probe_rto = 0.0
            return
        stream.probe_attempts += 1
        if stream.probe_attempts > self.max_retries:
            stream.probe_armed = False
            self._break_channel(key, stream, seq=stream.queue[0].seq,
                                attempts=stream.probe_attempts)
            return
        self.stats.window_probes += 1
        tr = self.kernel.tracer
        if tr is not None:
            tr.emit("ep", "probe", node=self.address, ch=key[1],
                    rwnd=stream.rwnd, attempt=stream.probe_attempts)
        self.network.send(Datagram(
            self.address, key[0], {"kind": KIND_PROBE, "ch": key[1]}, ""))
        stream.probe_rto = min(stream.probe_rto * 2.0, self.rto_max)
        self.kernel.call_later(stream.probe_rto,
                               lambda: self._on_probe_timer(key))

    def _sweep_deadlines(self, key: tuple[NodeAddress, str],
                         stream: SendStream) -> None:
        """Fail receipts of queued (untransmitted) packets whose delivery
        deadline passed while the window was closed. The packets stay
        queued: their sequence numbers are allocated, so skipping them
        would hole the FIFO stream (same policy as timed-out in-flight
        packets)."""
        now = self.kernel.now
        for pending in stream.queue:
            if pending.deadline is not None and now >= pending.deadline \
                    and not pending.timed_out:
                pending.timed_out = True
                pending.receipt._fail(DeliveryTimeout(
                    f"message on channel {key[1]!r} to {key[0]} not delivered "
                    f"within {pending.deadline - pending.receipt.sent_at:.3f}s",
                    destination=pending.receipt.destination,
                    timeout=pending.deadline - pending.receipt.sent_at))

    def _break_channel(self, key: tuple[NodeAddress, str],
                       stream: SendStream, seq: "int | None",
                       attempts: "int | None") -> None:
        """Give up: the channel is declared broken. All queued packets
        fail; later sends fail immediately; blocked waiters are released
        (their next ``send`` observes the broken channel)."""
        self.stats.gave_up += 1
        tr = self.kernel.tracer
        if tr is not None:
            tr.emit("ep", "broken", node=self.address, ch=key[1],
                    seq=seq, attempts=attempts)
        stream.broken = True
        for p in stream.unacked.values():
            p.receipt._fail(DeliveryTimeout(
                f"channel {key[1]!r} to {key[0]} broken after "
                f"{self.max_retries} retries",
                destination=p.receipt.destination))
        stream.unacked.clear()
        stream.queue.clear()
        stream.in_flight = 0
        stream.stalled = False
        if stream.waiters:
            waiters, stream.waiters = stream.waiters, []
            for ev in waiters:
                ev.succeed(None)

    # -- transmission ------------------------------------------------------

    def _transmit(self, dst_node: NodeAddress, channel: str,
                  pending: PendingPacket) -> None:
        # "ts" is echoed back in acks (TCP-timestamps style) so RTT
        # samples stay clean even under cumulative-ack delays and
        # retransmission ambiguity.
        header = {"kind": KIND_DATA, "to": pending.to_ref, "ch": channel,
                  "seq": pending.seq, "ts": self.kernel.now}
        if pending.skip_at is not None:
            header["cls"] = RELIABLE_SKIP
        budget = (MAX_FRAME_BYTES
                  - frame_base_size(self.address, dst_node, channel)
                  - DATA_FIXED_SIZE - ref_wire_size(pending.to_ref)
                  - pending.wire_len)
        packs = self._collect_piggyback(dst_node, budget)
        if packs:
            header["pack"] = packs
        self.network.send(Datagram(self.address, dst_node, header,
                                   pending.payload))

    def _transmit_batch(self, dst_node: NodeAddress, channel: str,
                        group: list[PendingPacket]) -> None:
        """One DATA frame carrying several consecutive payloads: ``seq``
        is the first packet's, ``parts`` the per-payload inbox refs (the
        i-th part has sequence ``seq + i``). The payload strings ride in
        ``parts_payloads`` — the wire codec writes each exactly once
        (length-prefixed), with no intermediate join/copy."""
        header = {"kind": KIND_DATA, "to": group[0].to_ref, "ch": channel,
                  "seq": group[0].seq, "ts": self.kernel.now,
                  "parts": [p.to_ref for p in group]}
        budget = (MAX_FRAME_BYTES
                  - frame_base_size(self.address, dst_node, channel)
                  - DATA_FIXED_SIZE - ref_wire_size(group[0].to_ref)
                  - BATCH_COUNT_SIZE
                  - sum(ref_wire_size(p.to_ref) + PART_LEN_SIZE + p.wire_len
                        for p in group))
        packs = self._collect_piggyback(dst_node, budget)
        if packs:
            header["pack"] = packs
        self.stats.batches_sent += 1
        self.stats.batched_payloads += len(group)
        tr = self.kernel.tracer
        if tr is not None:
            tr.emit("ep", "batch", node=self.address, ch=channel,
                    seq=group[0].seq, n=len(group))
        self.network.send(Datagram(
            self.address, dst_node, header, "",
            parts_payloads=tuple(p.payload for p in group)))

    def _collect_piggyback(self, dst_node: NodeAddress,
                           budget: "float | None" = None) -> list[dict]:
        """Fold pending delayed ACKs owed to ``dst_node`` into an
        outgoing DATA datagram (an ACK datagram saved per entry).

        ``budget`` caps the collected packs' wire size so the carrying
        frame stays under ``MAX_FRAME_BYTES``; an entry that does not
        fit keeps its ``ack_pending`` flag (its own delayed-ack timer —
        or the next outgoing frame — still flushes it). The
        ``_acks_owed`` index makes the common nothing-owed case O(1)
        instead of a scan over every receive stream."""
        if not self._acks_owed.get(dst_node):
            return []
        packs: list[dict] = []
        tr = self.kernel.tracer
        for (node, channel), stream in self._recv_streams.items():
            if node != dst_node or not stream.ack_pending:
                continue
            fields = self._ack_fields(stream)
            if budget is not None:
                cost = pack_entry_wire_size(channel, fields)
                if cost > budget:
                    continue
                budget -= cost
            packs.append({"ch": channel, **fields})
            stream.ack_pending = False
            self._ack_owed_dec(dst_node)
            stream.pending_ets = None
            stream.last_ack_at = self.kernel.now
            self.stats.acks_piggybacked += 1
            if tr is not None:
                tr.emit("ep", "ack", node=self.address, ch=channel,
                        cum=fields["cum"], sack=fields.get("sack"),
                        mode="piggyback")
        return packs

    def _ack_owed_inc(self, node: NodeAddress) -> None:
        """A receive stream toward ``node`` newly set ``ack_pending``."""
        self._acks_owed[node] = self._acks_owed.get(node, 0) + 1

    def _ack_owed_dec(self, node: NodeAddress) -> None:
        """A receive stream toward ``node`` cleared ``ack_pending``."""
        owed = self._acks_owed.get(node, 0) - 1
        if owed > 0:
            self._acks_owed[node] = owed
        else:
            self._acks_owed.pop(node, None)

    def _arm_timer(self, key: tuple[NodeAddress, str],
                   pending: PendingPacket) -> None:
        self.kernel.call_later(
            pending.rto, lambda: self._on_timer(key, pending.seq))

    def _on_timer(self, key: tuple[NodeAddress, str], seq: int) -> None:
        if self.closed:
            return
        stream = self._send_streams.get(key)
        if stream is None:
            return
        if self.flow_control and stream.queue:
            # Queued packets have no timers of their own; ride this one.
            self._sweep_deadlines(key, stream)
        if seq not in stream.unacked:
            return  # acknowledged in the meantime
        pending = stream.unacked[seq]
        now = self.kernel.now
        if pending.deadline is not None and now >= pending.deadline \
                and not pending.timed_out:
            # Paper semantics: raise to the application; but keep
            # retransmitting so the channel's FIFO stream is not holed.
            pending.timed_out = True
            pending.receipt._fail(DeliveryTimeout(
                f"message on channel {key[1]!r} to {key[0]} not delivered "
                f"within {pending.deadline - pending.receipt.sent_at:.3f}s",
                destination=pending.receipt.destination,
                timeout=pending.deadline - pending.receipt.sent_at))
        if pending.sacked and any(
                s < seq and not p.sacked for s, p in stream.unacked.items()):
            # The receiver holds this packet; the earlier hole's own timer
            # drives recovery. Keep the timer alive (without consuming
            # retry budget) only for deadline accounting and the
            # reneging-safety fallback below: if this ever becomes the
            # lowest outstanding packet, its SACK mark is ignored and it
            # retransmits normally, so liveness never depends on an
            # advertisement whose ACK may have been lost.
            self.stats.sacked_suppressed += 1
            tr = self.kernel.tracer
            if tr is not None:
                tr.emit("ep", "sack_suppress", node=self.address, ch=key[1],
                        seq=seq)
            pending.rto = min(pending.rto * 2.0, self.rto_max)
            self._arm_timer(key, pending)
            return
        if pending.attempts > self.max_retries:
            self._break_channel(key, stream, seq=seq,
                                attempts=pending.attempts)
            return
        pending.attempts += 1
        if self.sack and any(
                s > seq and p.sacked for s, p in stream.unacked.items()):
            # SACKed data above this hole proves the path is alive, so
            # the loss is random rather than congestive — and with the
            # tail suppressed this packet is the only traffic left that
            # can solicit an ACK. Hold its timer at the base RTO instead
            # of backing off: a lost retransmission or ACK is repaired
            # within ~one RTO rather than an exponentially growing stall
            # (retry budget still bounds the attempts).
            pending.rto = (stream.current_rto()
                           if self.rto_mode == "adaptive"
                           else stream.rto_initial)
        else:
            pending.rto = min(pending.rto * 2.0, self.rto_max)
        pending.last_rtx_at = now
        if self.flow_control:
            # A retransmission timeout is the strong congestion signal:
            # collapse to one packet and slow-start back.
            self._cwnd_cut(key, stream, "collapse")
        self.stats.data_retransmitted += 1
        tr = self.kernel.tracer
        if tr is not None:
            tr.emit("ep", "rtx", node=self.address, ch=key[1], seq=seq,
                    reason="rto", attempt=pending.attempts)
        self._transmit(key[0], key[1], pending)
        self._arm_timer(key, pending)

    # -- the RELIABLE_SKIP abandon path -------------------------------------

    def _on_skip_timer(self, key: tuple[NodeAddress, str], seq: int) -> None:
        """The skip deadline of one RELIABLE_SKIP packet expired: stop
        retransmitting it, resolve its receipt ``skipped``, and tell the
        receiver to advance past every abandoned hole."""
        if self.closed:
            return
        stream = self._send_streams.get(key)
        if stream is None or stream.broken:
            return
        pending = stream.unacked.get(seq)
        if pending is None:
            return  # acknowledged (or the channel broke) in the meantime
        if pending.sacked:
            # The receiver already has it (SACK proved so); the packet is
            # only waiting for the cumulative ACK to catch up. Abandoning
            # it would mislabel a delivered message as skipped.
            return
        del stream.unacked[seq]
        if pending.transmitted:
            stream.in_flight -= pending.size
            if stream.in_flight < 0:
                stream.in_flight = 0
        else:
            try:
                stream.queue.remove(pending)
            except ValueError:
                pass
        self.stats.skipped += 1
        # Advance the announced bound to the first still-outstanding
        # packet: everything below it is either acknowledged or
        # abandoned, so the receiver may deliver past those holes.
        upto = min(stream.unacked, default=stream.next_seq)
        if upto > stream.skip_upto:
            stream.skip_upto = upto
        pending.receipt._skip()
        tr = self.kernel.tracer
        if tr is not None:
            tr.emit("ep", "skip", node=self.address, ch=key[1], seq=seq,
                    upto=stream.skip_upto,
                    slat=self.kernel.now - pending.receipt.sent_at)
        if stream.last_cum < stream.skip_upto - 1:
            self._send_skip_frame(key, stream)
            if not stream.skip_armed:
                stream.skip_armed = True
                stream.skip_attempts = 0
                stream.skip_rto = (stream.current_rto()
                                   if self.rto_mode == "adaptive"
                                   else stream.rto_initial)
                self.kernel.call_later(
                    stream.skip_rto, lambda: self._on_skip_rtx_timer(key))
        if self.flow_control:
            self._pump(key, stream)

    def _send_skip_frame(self, key: tuple[NodeAddress, str],
                         stream: SendStream) -> None:
        self.stats.skips_sent += 1
        self.network.send(Datagram(
            self.address, key[0],
            {"kind": KIND_SKIP, "ch": key[1], "upto": stream.skip_upto}, ""))

    def _on_skip_rtx_timer(self, key: tuple[NodeAddress, str]) -> None:
        """SKIP frames are themselves retransmitted (with backoff) until
        an ACK at or past ``skip_upto - 1`` proves the receiver moved."""
        if self.closed:
            return
        stream = self._send_streams.get(key)
        if stream is None or stream.broken:
            return
        if stream.last_cum >= stream.skip_upto - 1:
            stream.skip_armed = False
            stream.skip_attempts = 0
            stream.skip_rto = 0.0
            return
        stream.skip_attempts += 1
        if stream.skip_attempts > self.max_retries:
            stream.skip_armed = False
            self._break_channel(key, stream, seq=stream.skip_upto,
                                attempts=stream.skip_attempts)
            return
        self._send_skip_frame(key, stream)
        stream.skip_rto = min(stream.skip_rto * 2.0, self.rto_max)
        self.kernel.call_later(stream.skip_rto,
                               lambda: self._on_skip_rtx_timer(key))

    # -- receiving ----------------------------------------------------------

    def _on_datagram(self, datagram) -> None:
        kind = datagram.header.get("kind")
        if kind == KIND_DATA:
            if datagram.header.get("cls") == UNRELIABLE:
                self._on_unreliable_data(datagram)
                return
            for pack in datagram.header.get("pack", ()):
                self._handle_ack_info(datagram.src, pack)
            self._on_data(datagram)
        elif kind == KIND_ACK:
            self._handle_ack_info(datagram.src, datagram.header)
        elif kind == KIND_PROBE:
            self._on_probe(datagram)
        elif kind == KIND_SKIP:
            self._on_skip(datagram)

    def _on_unreliable_data(self, datagram) -> None:
        """One UNRELIABLE frame: no ACK, no reordering buffer, no rwnd.
        The per-channel sequence stamp orders arrivals — anything at or
        below the latest delivered stamp is dropped (duplicate or stale),
        so the application only ever sees fresher-than-last updates."""
        header = datagram.header
        channel: str = header["ch"]
        seq: int = header["seq"]
        key = (datagram.src, channel)
        latest = self._unreliable_latest.get(key)
        tr = self.kernel.tracer
        if latest is not None and seq <= latest:
            self.stats.stale_dropped += 1
            if tr is not None:
                tr.emit("ep", "drop_stale", node=self.address, ch=channel,
                        seq=seq, latest=latest)
            return
        to_ref = header["to"]
        deliver = self._inboxes.get(to_ref)
        if deliver is None:
            self.stats.no_such_inbox += 1
            if tr is not None:
                tr.emit("ep", "no_inbox", node=self.address, to=to_ref)
            return
        self._unreliable_latest[key] = seq
        self.stats.unreliable_delivered += 1
        if tr is not None:
            tr.emit("ep", "deliver", node=self.address, ch=channel, seq=seq,
                    cls=UNRELIABLE, dlat=self.kernel.now - header["ts"])
        deliver(datagram.payload, InboxAddress(self.address, to_ref))

    def _on_skip(self, datagram) -> None:
        """A SKIP signal: the sender abandoned every sequence number
        below ``upto``. Deliver what the reordering buffer holds below
        the mark (in order), advance the cumulative expectation past the
        holes, then drain the in-order tail and ACK immediately — the
        ACK is what stops the sender's SKIP retransmissions."""
        channel: str = datagram.header["ch"]
        upto: int = datagram.header["upto"]
        key = (datagram.src, channel)
        stream = self._recv_streams.get(key)
        if stream is None:
            stream = _RecvStream()
            self._recv_streams[key] = stream
        tr = self.kernel.tracer
        if upto > stream.expected:
            holes = 0
            while stream.expected < upto:
                entry = stream.buffer.pop(stream.expected, None)
                if entry is None:
                    holes += 1
                else:
                    deliver_to, deliver_payload = entry
                    stream.buffered_bytes -= (HEADER_OVERHEAD
                                              + len(deliver_payload))
                    if tr is not None:
                        tr.emit("ep", "deliver", node=self.address,
                                ch=channel, seq=stream.expected)
                    self._deliver(deliver_to, deliver_payload, datagram.src)
                stream.expected += 1
            # The skip may have closed the gap in front of buffered
            # packets above the mark: drain the in-order tail too.
            while stream.expected in stream.buffer:
                deliver_to, deliver_payload = stream.buffer.pop(
                    stream.expected)
                stream.buffered_bytes -= (HEADER_OVERHEAD
                                          + len(deliver_payload))
                if tr is not None:
                    tr.emit("ep", "deliver", node=self.address, ch=channel,
                            seq=stream.expected)
                stream.expected += 1
                self._deliver(deliver_to, deliver_payload, datagram.src)
            self.stats.holes_skipped += holes
            if tr is not None:
                tr.emit("ep", "skip_advance", node=self.address, ch=channel,
                        upto=upto, holes=holes)
        if not stream.ack_pending:
            stream.ack_pending = True
            self._ack_owed_inc(key[0])
        self._flush_ack(key, stream)

    def _on_probe(self, datagram) -> None:
        """A zero-window probe: answer with an immediate ACK whose
        ``rwnd`` field re-advertises the current window."""
        key = (datagram.src, datagram.header["ch"])
        stream = self._recv_streams.get(key)
        if stream is None:
            stream = _RecvStream()
            self._recv_streams[key] = stream
        if not stream.ack_pending:
            stream.ack_pending = True
            self._ack_owed_inc(key[0])
        self._flush_ack(key, stream)

    def _on_data(self, datagram) -> None:
        header = datagram.header
        channel: str = header["ch"]
        base: int = header["seq"]
        key = (datagram.src, channel)
        stream = self._recv_streams.get(key)
        if stream is None:
            stream = _RecvStream()
            self._recv_streams[key] = stream

        parts = header.get("parts")
        if parts is None:
            packets = [(base, header["to"], datagram.payload)]
        else:
            payloads = datagram.parts_payloads or ()
            packets = [(base + i, to_ref, payload)
                       for i, (to_ref, payload) in enumerate(
                           zip(parts, payloads))]

        tr = self.kernel.tracer
        in_order_run = True
        for seq, to_ref, payload in packets:
            if seq < stream.expected or seq in stream.buffer:
                in_order_run = False
                self.stats.duplicates_discarded += 1
                if tr is not None:
                    tr.emit("ep", "dup_data", node=self.address, ch=channel,
                            seq=seq)
                continue
            if seq != stream.expected or stream.buffer:
                in_order_run = False
            stream.last_to = to_ref
            stream.buffer[seq] = (to_ref, payload)
            stream.buffered_bytes += HEADER_OVERHEAD + len(payload)
            if seq != stream.expected:
                self.stats.buffered_out_of_order += 1
                if tr is not None:
                    tr.emit("ep", "ooo", node=self.address, ch=channel,
                            seq=seq, expected=stream.expected)
            while stream.expected in stream.buffer:
                deliver_to, deliver_payload = stream.buffer.pop(
                    stream.expected)
                stream.buffered_bytes -= (HEADER_OVERHEAD
                                          + len(deliver_payload))
                if tr is not None:
                    tr.emit("ep", "deliver", node=self.address, ch=channel,
                            seq=stream.expected)
                stream.expected += 1
                self._deliver(deliver_to, deliver_payload, datagram.src)
        # Acknowledge. Duplicates re-ack immediately (the previous ack
        # may have been lost), gaps and hole-fills ack immediately (the
        # sender is recovering and needs the feedback now); only clean
        # in-order arrivals coalesce behind the delayed-ack window.
        if not stream.ack_pending:
            stream.ack_pending = True
            self._ack_owed_inc(key[0])
            stream.pending_ets = header.get("ts")
        now = self.kernel.now
        if (not in_order_run or self.ack_delay <= 0
                or now - stream.last_ack_at >= self.ack_delay):
            self._flush_ack(key, stream)
        else:
            self.stats.acks_delayed += 1
            if not stream.ack_armed:
                stream.ack_armed = True
                self.kernel.call_later(
                    self.ack_delay, lambda: self._on_ack_timer(key))

    def _compute_rwnd(self, stream: _RecvStream) -> int:
        """Remaining receive budget: ``recv_window`` minus the addressed
        inbox's queued bytes minus this channel's reordering buffer."""
        backlog = 0
        if stream.last_to is not None:
            backlog_fn = self._backlogs.get(stream.last_to)
            if backlog_fn is not None:
                backlog = backlog_fn()
        return max(0, self.recv_window - backlog - stream.buffered_bytes)

    def _ack_fields(self, stream: _RecvStream) -> dict:
        fields = {"cum": stream.expected - 1, "ets": stream.pending_ets}
        if self.sack and stream.buffer:
            fields["sack"] = stream.sack_ranges()
        if self.flow_control:
            rwnd = self._compute_rwnd(stream)
            stream.advertised_rwnd = rwnd
            fields["rwnd"] = rwnd
        return fields

    def _flush_ack(self, key: tuple[NodeAddress, str],
                   stream: _RecvStream) -> None:
        self.stats.acks_sent += 1
        fields = self._ack_fields(stream)
        stream.ack_pending = False
        self._ack_owed_dec(key[0])
        stream.pending_ets = None
        stream.last_ack_at = self.kernel.now
        tr = self.kernel.tracer
        if tr is not None:
            tr.emit("ep", "ack", node=self.address, ch=key[1],
                    cum=fields["cum"], sack=fields.get("sack"), mode="wire")
        self.network.send(Datagram(
            self.address, key[0], {"kind": KIND_ACK, "ch": key[1], **fields},
            ""))

    def _on_ack_timer(self, key: tuple[NodeAddress, str]) -> None:
        stream = self._recv_streams.get(key)
        if stream is None:
            return
        stream.ack_armed = False
        if self.closed or not stream.ack_pending:
            return  # flushed, piggybacked, or shut down in the meantime
        self._flush_ack(key, stream)

    def inbox_drained(self, ref: "int | str",
                      name: "str | None" = None) -> None:
        """Called by an inbox when a message leaves its queue: freed
        receive budget may warrant a window update.

        An unsolicited ACK re-advertising the window goes out only when
        it matters — the advertised window was zero (senders are in
        persist mode) and is now positive, or it was below half of
        ``recv_window`` and has recovered past half (TCP's
        silly-window-avoidance shape). Fast-draining inboxes therefore
        cost no extra ACK traffic."""
        if self.closed or not self.flow_control:
            return
        targets = {ref} if name is None else {ref, name}
        half = self.recv_window // 2
        for key, stream in self._recv_streams.items():
            if stream.last_to not in targets:
                continue
            advertised = stream.advertised_rwnd
            if advertised is None:
                continue
            current = self._compute_rwnd(stream)
            if (advertised <= 0 < current) or (advertised < half <= current):
                self.stats.window_updates += 1
                tr = self.kernel.tracer
                if tr is not None:
                    tr.emit("ep", "wnd_update", node=self.address, ch=key[1],
                            rwnd=current)
                if not stream.ack_pending:
                    stream.ack_pending = True
                    self._ack_owed_inc(key[0])
                self._flush_ack(key, stream)

    def _handle_ack_info(self, src: NodeAddress, fields: dict) -> None:
        key = (src, fields["ch"])
        stream = self._send_streams.get(key)
        if stream is None:
            return
        if self.flow_control:
            rwnd = fields.get("rwnd")
            if rwnd is not None:
                stream.rwnd = rwnd
        cum: int = fields["cum"]
        echoed = fields.get("ets")
        if echoed is not None:
            stream.last_rtt = self.kernel.now - echoed
        bytes_acked = 0
        if cum > stream.last_cum:
            stream.last_cum = cum
            stream.dup_acks = 0
            if self.rto_mode == "adaptive" and echoed is not None:
                # Karn's rule: only ACKs that advance the cumulative
                # point yield samples; duplicate-triggered ACKs echo a
                # retransmission's timestamp and would skew the estimate.
                stream.observe_rtt(self.kernel.now - echoed)
            tr = self.kernel.tracer
            for seq in [s for s in stream.unacked if s <= cum]:
                pending = stream.unacked.pop(seq)
                if pending.transmitted:
                    bytes_acked += pending.size
                    stream.in_flight -= pending.size
                if tr is not None:
                    tr.emit("ep", "confirm", node=self.address, ch=key[1],
                            seq=seq,
                            rtt=self.kernel.now - pending.receipt.sent_at)
                pending.receipt._ack()
            if stream.in_flight < 0:
                stream.in_flight = 0
        elif cum == stream.last_cum and stream.unacked:
            stream.dup_acks += 1
        for start, end in fields.get("sack", ()):
            for seq in range(start, end + 1):
                pending = stream.unacked.get(seq)
                if pending is not None:
                    pending.sacked = True
        if self.flow_control and bytes_acked > 0:
            stream.on_bytes_acked(bytes_acked)
            band = int(stream.cwnd).bit_length()
            if band != stream.cwnd_band:
                # Growth is traced per log2 band, not per ACK, to keep
                # traces readable; reductions always trace (_cwnd_cut).
                stream.cwnd_band = band
                tr = self.kernel.tracer
                if tr is not None:
                    tr.emit("ep", "cwnd", node=self.address, ch=key[1],
                            cwnd=int(stream.cwnd), reason="grow")
        if self.sack and stream.dup_acks >= self.dup_ack_threshold:
            self._fast_retransmit(key, stream)
        if self.flow_control:
            self._pump(key, stream)

    def _fast_retransmit(self, key: tuple[NodeAddress, str],
                         stream: SendStream) -> None:
        hole = None
        for seq in sorted(stream.unacked):
            if not stream.unacked[seq].sacked:
                hole = stream.unacked[seq]
                break
        if hole is None or not hole.transmitted:
            return
        if self.kernel.now - hole.last_rtx_at <= stream.last_rtt:
            return  # already retransmitted within the last round trip
        hole.last_rtx_at = self.kernel.now
        stream.dup_acks = 0
        if self.flow_control:
            # Dup-ACK loss: the path still delivers, so halve rather
            # than collapse (TCP's multiplicative decrease).
            self._cwnd_cut(key, stream, "halve")
        self.stats.fast_retransmits += 1
        self.stats.data_retransmitted += 1
        tr = self.kernel.tracer
        if tr is not None:
            tr.emit("ep", "rtx", node=self.address, ch=key[1], seq=hole.seq,
                    reason="fast", attempt=hole.attempts)
        self._transmit(key[0], key[1], hole)

    def _deliver(self, to_ref: "int | str", payload: str,
                 src: NodeAddress) -> None:
        deliver = self._inboxes.get(to_ref)
        tr = self.kernel.tracer
        if deliver is None:
            self.stats.no_such_inbox += 1
            if tr is not None:
                tr.emit("ep", "no_inbox", node=self.address, to=to_ref)
            return
        self.stats.delivered += 1
        deliver(payload, InboxAddress(self.address, to_ref))
