"""Network fault injection.

The paper (§2.2): "the system must also cope with faults in the network,
such as undelivered messages", and (§3.2) delays are arbitrary and
independent — i.e. datagrams may be reordered. A :class:`FaultPlan`
decides, per datagram, whether it is dropped, duplicated, or delayed by
extra reordering jitter, and supports directional link partitions for
failure-injection tests.
"""

from __future__ import annotations

from random import Random
from typing import TYPE_CHECKING, Callable

from repro.net.address import NodeAddress

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.net.datagram import Datagram


class FaultPlan:
    """Per-datagram fault decisions.

    Parameters
    ----------
    drop_prob:
        Probability a datagram is silently lost.
    duplicate_prob:
        Probability a datagram is delivered twice (the copy gets its own
        latency draw, so duplicates can arrive out of order).
    reorder_jitter:
        Upper bound of an extra uniform delay added independently per
        copy; any value > 0 lets later sends overtake earlier ones.
    drop_filter:
        Optional deterministic predicate over the full datagram; a True
        result drops it (applied before the probabilistic faults).
        Lets tests and failure-injection scenarios target specific
        packets — e.g. "lose the first transmission of DATA seq 2".
    """

    def __init__(self, *, drop_prob: float = 0.0, duplicate_prob: float = 0.0,
                 reorder_jitter: float = 0.0,
                 drop_filter: "Callable[[Datagram], bool] | None" = None) -> None:
        for name, p in (("drop_prob", drop_prob),
                        ("duplicate_prob", duplicate_prob)):
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if reorder_jitter < 0:
            raise ValueError("reorder_jitter must be >= 0")
        self.drop_prob = drop_prob
        self.duplicate_prob = duplicate_prob
        self.reorder_jitter = reorder_jitter
        self.drop_filter = drop_filter
        self._partitions: set[tuple[NodeAddress, NodeAddress]] = set()

    # -- partitions -----------------------------------------------------

    def partition(self, a: NodeAddress, b: NodeAddress,
                  *, bidirectional: bool = True) -> None:
        """Block all datagrams from ``a`` to ``b`` (and back by default)."""
        self._partitions.add((a, b))
        if bidirectional:
            self._partitions.add((b, a))

    def heal(self, a: NodeAddress, b: NodeAddress) -> None:
        """Remove any partition between ``a`` and ``b`` in both directions."""
        self._partitions.discard((a, b))
        self._partitions.discard((b, a))

    def is_partitioned(self, src: NodeAddress, dst: NodeAddress) -> bool:
        return (src, dst) in self._partitions

    # -- recording (the replay corpus serializes fault schedules) -------

    def to_dict(self) -> dict:
        """The probabilistic schedule as a JSON-encodable dict.

        Only the seeded-random parameters serialize — together with the
        run's seed they reproduce the exact per-datagram decisions.
        Callable filters and live partitions are runtime state and
        refuse to serialize rather than silently record half a plan.
        """
        if self.drop_filter is not None or self._partitions:
            raise ValueError(
                "cannot serialize a FaultPlan with a drop_filter or "
                "active partitions")
        return {"drop_prob": self.drop_prob,
                "duplicate_prob": self.duplicate_prob,
                "reorder_jitter": self.reorder_jitter}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan recorded by :meth:`to_dict`."""
        unknown = set(data) - {"drop_prob", "duplicate_prob",
                               "reorder_jitter"}
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(**data)

    # -- per-datagram decision ------------------------------------------

    def copies(self, rng: Random, src: NodeAddress, dst: NodeAddress,
               datagram: "Datagram | None" = None) -> list[float]:
        """Extra-delay list, one entry per copy to deliver.

        ``[]`` means the datagram is lost; ``[j]`` a single delivery with
        extra jitter ``j``; ``[j1, j2]`` a duplicated delivery.
        """
        if self.is_partitioned(src, dst):
            return []
        if self.drop_filter is not None and datagram is not None \
                and self.drop_filter(datagram):
            return []
        if self.drop_prob and rng.random() < self.drop_prob:
            return []
        n = 2 if (self.duplicate_prob and rng.random() < self.duplicate_prob) else 1
        if self.reorder_jitter:
            return [rng.uniform(0.0, self.reorder_jitter) for _ in range(n)]
        return [0.0] * n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultPlan(drop={self.drop_prob}, dup={self.duplicate_prob}, "
                f"jitter={self.reorder_jitter}, partitions={len(self._partitions)})")
