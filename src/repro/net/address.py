"""Global addresses.

The paper: "Associated with each dapplet is an Internet address (i.e. IP
address and port id)"; "Each inbox has a global address (the address of
its dapplet, i.e. its IP address and port) and a local reference within
the dapplet process"; and, as a convenience, an inbox may be addressed
"by a pair: its unique dapplet address ... and a string in place of its
local id".

:class:`NodeAddress` is the (host, port) pair; :class:`InboxAddress`
pairs it with either an integer local reference or a string name.
Both are immutable, hashable and round-trip through plain dicts/strings
so they can travel inside messages (the paper: "Addresses of inboxes and
dapplets can be communicated between dapplets").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError


@dataclass(frozen=True, slots=True, order=True)
class NodeAddress:
    """The global address of a dapplet: host plus port."""

    host: str
    port: int

    def __post_init__(self) -> None:
        if not self.host or ":" in self.host:
            raise AddressError(f"invalid host {self.host!r}")
        if not (0 < self.port < 65536):
            raise AddressError(f"invalid port {self.port!r}")

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"

    @classmethod
    def parse(cls, text: str) -> "NodeAddress":
        """Parse ``"host:port"``."""
        host, sep, port = text.rpartition(":")
        if not sep:
            raise AddressError(f"cannot parse node address {text!r}")
        try:
            return cls(host, int(port))
        except ValueError as exc:
            raise AddressError(f"cannot parse node address {text!r}") from exc

    def inbox(self, ref: "int | str") -> "InboxAddress":
        """The address of inbox ``ref`` (local id or string name) here."""
        return InboxAddress(self, ref)


@dataclass(frozen=True, slots=True)
class InboxAddress:
    """The global address of one inbox.

    ``ref`` is either the inbox's integer local reference or its string
    name — the paper's ``add``/``delete`` methods are polymorphic in
    exactly this way.
    """

    node: NodeAddress
    ref: "int | str"

    def __post_init__(self) -> None:
        if isinstance(self.ref, bool) or not isinstance(self.ref, (int, str)):
            raise AddressError(
                f"inbox reference must be an int id or str name, got {self.ref!r}")
        if isinstance(self.ref, str) and not self.ref:
            raise AddressError("inbox name must be non-empty")

    @property
    def is_named(self) -> bool:
        """True when this address uses a string name."""
        return isinstance(self.ref, str)

    def __str__(self) -> str:
        return f"{self.node}/{self.ref}"

    @classmethod
    def parse(cls, text: str) -> "InboxAddress":
        """Parse ``"host:port/ref"`` (ref is int if it looks like one)."""
        nodepart, sep, ref = text.partition("/")
        if not sep or not ref:
            raise AddressError(f"cannot parse inbox address {text!r}")
        node = NodeAddress.parse(nodepart)
        return cls(node, int(ref) if ref.isdigit() else ref)

    def to_wire(self) -> str:
        return str(self)

    @classmethod
    def from_wire(cls, text: str) -> "InboxAddress":
        return cls.parse(text)
