"""The unreliable datagram service (the simulated "UDP").

"The initial implementation uses UDP" — this module is that bottom
layer: best-effort, unordered, at-most-once-per-copy delivery of
datagrams between registered node addresses, with latency drawn from a
:class:`~repro.net.latency.LatencyModel` and faults injected by a
:class:`~repro.net.faults.FaultPlan`. Everything above it (the FIFO
ordering layer, inboxes, sessions) must cope with what this layer does,
exactly as the paper's layer copes with real UDP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import AddressError
from repro.net.address import NodeAddress
from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency, LatencyModel
from repro.sim.kernel import Kernel

#: Fixed per-datagram header overhead charged to the latency model, in
#: bytes (stands in for UDP/IP headers plus our layer's framing).
HEADER_OVERHEAD = 64


@dataclass(frozen=True, slots=True)
class Datagram:
    """One datagram on the wire.

    ``header`` carries the ordering layer's framing — ``DATA {kind, to,
    ch, seq, ts, pack?, parts?}`` or ``ACK {kind, ch, cum, ets, sack?,
    rwnd?}``; see ``docs/PROTOCOLS.md`` for the field glossary. ``payload`` is the serialized message string.
    ``size`` in bytes drives transmission delay in size-aware latency
    models.

    A batched DATA frame (``parts`` in the header) carries its payload
    strings as ``parts_payloads`` (``payload`` stays ``""``): the binary
    codec writes each string into the frame exactly once — no
    intermediate batch document on any substrate.
    """

    src: NodeAddress
    dst: NodeAddress
    header: dict[str, Any]
    payload: str
    parts_payloads: "tuple[str, ...] | None" = None

    @property
    def size(self) -> int:
        if self.parts_payloads is not None:
            return HEADER_OVERHEAD + sum(map(len, self.parts_payloads))
        return HEADER_OVERHEAD + len(self.payload)


@dataclass
class NetworkStats:
    """Counters kept by the datagram network (read by benchmarks)."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    undeliverable: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    #: Datagrams whose wire bytes failed to decode (dropped, not raised).
    bad_frames: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(vars(self))


class DatagramNetwork:
    """Best-effort datagram delivery between registered nodes.

    One instance models the whole internetwork of a run. Nodes register
    a handler for their address; ``send`` applies the fault plan, draws a
    latency per surviving copy, and schedules handler invocation on the
    kernel. Sending to an unregistered address silently drops the
    datagram (as UDP does), counted in ``stats.undeliverable``.

    ``encoded=True`` (opt-in) round-trips every surviving datagram
    through the binary wire codec (:mod:`repro.net.wire`) at the same
    boundaries the real UDP substrate does — encode once at send, decode
    per delivered copy, bad frames dropped and counted — so a
    deterministic simulated run can prove sim/asyncio byte-parity (the
    golden trace corpus runs identically in both modes).
    """

    def __init__(self, kernel: Kernel, *,
                 latency: LatencyModel | None = None,
                 faults: FaultPlan | None = None,
                 encoded: bool = False) -> None:
        self.kernel = kernel
        self.latency = latency if latency is not None else ConstantLatency(0.05)
        self.faults = faults if faults is not None else FaultPlan()
        self.stats = NetworkStats()
        self.encoded = encoded
        self._handlers: dict[NodeAddress, Callable[[Datagram], None]] = {}
        #: Taps observing every datagram put on the wire (testing aid).
        self.wire_taps: list[Callable[[float, Datagram], None]] = []

    # -- membership -----------------------------------------------------

    def register(self, address: NodeAddress,
                 handler: Callable[[Datagram], None]) -> None:
        """Attach ``handler`` to ``address``. The address must be free."""
        if address in self._handlers:
            raise AddressError(f"address {address} is already registered")
        self._handlers[address] = handler

    def unregister(self, address: NodeAddress) -> None:
        self._handlers.pop(address, None)

    def is_registered(self, address: NodeAddress) -> bool:
        return address in self._handlers

    # -- sending --------------------------------------------------------

    def send(self, datagram: Datagram) -> None:
        """Fire-and-forget transmission of one datagram."""
        self.stats.sent += 1
        self.stats.bytes_sent += datagram.size
        for tap in self.wire_taps:
            tap(self.kernel.now, datagram)
        tr = self.kernel.tracer
        if tr is not None:
            header = datagram.header
            parts = header.get("parts")
            tr.emit("net", "send", node=datagram.src, dst=str(datagram.dst),
                    kind=header.get("kind"), ch=header.get("ch"),
                    seq=header.get("seq"), size=datagram.size,
                    **({"n": len(parts)} if parts else {}))

        link = f"net/{datagram.src}->{datagram.dst}"
        fault_rng = self.kernel.rng.get(link + "/faults")
        extra_delays = self.faults.copies(fault_rng, datagram.src,
                                          datagram.dst, datagram)
        if not extra_delays:
            self.stats.dropped += 1
            if tr is not None:
                header = datagram.header
                tr.emit("net", "drop", node=datagram.src,
                        dst=str(datagram.dst), kind=header.get("kind"),
                        ch=header.get("ch"), seq=header.get("seq"))
            return
        if len(extra_delays) > 1:
            self.stats.duplicated += 1
            if tr is not None:
                header = datagram.header
                tr.emit("net", "dup", node=datagram.src,
                        dst=str(datagram.dst), kind=header.get("kind"),
                        ch=header.get("ch"), seq=header.get("seq"))

        lat_rng = self.kernel.rng.get(link + "/latency")
        if self.encoded:
            # Same boundary as the UDP substrate: one encode per send,
            # one decode per delivered copy.
            from repro.net.wire import encode_frame
            data = encode_frame(datagram)
            for extra in extra_delays:
                delay = extra + self.latency.sample(
                    lat_rng, datagram.src.host, datagram.dst.host,
                    datagram.size)
                self.kernel.call_later(
                    delay, lambda b=data: self._deliver_bytes(b))
            return
        for extra in extra_delays:
            delay = extra + self.latency.sample(
                lat_rng, datagram.src.host, datagram.dst.host, datagram.size)
            self.kernel.call_later(delay, lambda d=datagram: self._deliver(d))

    def _deliver_bytes(self, data: bytes) -> None:
        """Decode one encoded copy and deliver it; drop bad frames with a
        ``net``-category trace event and a counter (UDP-substrate parity)."""
        from repro.net.wire import FrameError, decode_frame
        try:
            datagram = decode_frame(data)
        except FrameError as exc:
            self.stats.bad_frames += 1
            tr = self.kernel.tracer
            if tr is not None:
                tr.emit("net", "bad_frame", size=len(data), err=str(exc))
            return
        self._deliver(datagram)

    def _deliver(self, datagram: Datagram) -> None:
        handler = self._handlers.get(datagram.dst)
        tr = self.kernel.tracer
        if handler is None:
            self.stats.undeliverable += 1
            if tr is not None:
                tr.emit("net", "undeliverable", node=datagram.dst,
                        src=str(datagram.src),
                        kind=datagram.header.get("kind"))
            return
        self.stats.delivered += 1
        self.stats.bytes_delivered += datagram.size
        if tr is not None:
            header = datagram.header
            parts = header.get("parts")
            tr.emit("net", "deliver", node=datagram.dst,
                    src=str(datagram.src), kind=header.get("kind"),
                    ch=header.get("ch"), seq=header.get("seq"),
                    size=datagram.size,
                    **({"n": len(parts)} if parts else {}))
        handler(datagram)
