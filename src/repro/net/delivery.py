"""Delivery classes: the per-channel reliability policies of the stack.

The paper's sessions multiplex very different traffic over one socket —
reliable inventory/token events next to soft-realtime updates where a
stale message is worthless. Instead of an endpoint-wide boolean, every
outbox (and, overriding it, every individual send) picks one of three
delivery classes, H-UDP style:

``RELIABLE``
    Today's full path: per-channel FIFO exactly-once with SACK,
    retransmission, congestion + flow control. A receipt resolves
    ``delivered`` once the cumulative ACK covers the packet.

``UNRELIABLE``
    Fire-and-forget: no retransmit state, no reorder buffer, no rwnd
    accounting. Frames are sequence-stamped per channel so receivers
    drop duplicates and stale frames (older than the latest delivered).

``RELIABLE_SKIP``
    Retransmit like RELIABLE until a per-channel skip timeout, then the
    sender abandons the packet and tells the receiver to advance past
    the hole instead of stalling FIFO delivery. The receipt resolves
    ``skipped`` rather than failing the whole channel.

This module is dependency-free on purpose: the wire codec, the
transport, the mailbox layer and the session specs all import the class
names from here without dragging in each other.
"""

from __future__ import annotations

RELIABLE = "reliable"
UNRELIABLE = "unreliable"
RELIABLE_SKIP = "reliable_skip"

#: Every valid delivery class, in wire-bit order (RELIABLE encodes as 0).
DELIVERY_CLASSES = (RELIABLE, UNRELIABLE, RELIABLE_SKIP)


def validate_delivery(delivery: str, *, what: str = "delivery class") -> str:
    """Return ``delivery`` unchanged or raise ``ValueError`` listing
    the valid classes."""
    if delivery not in DELIVERY_CLASSES:
        raise ValueError(
            f"unknown {what} {delivery!r}; expected one of "
            f"{', '.join(DELIVERY_CLASSES)}")
    return delivery
