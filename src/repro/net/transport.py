"""Compatibility facade for the ordering layer.

The 626-line transport monolith was split into cohesive modules so the
protocol machinery can be tested against every substrate:

* :mod:`repro.net.wire` — frame constants and the byte codec used over
  real UDP sockets;
* :mod:`repro.net.rto` — per-stream sequence/window/RTT state
  (:class:`SendStream`, :class:`PendingPacket`);
* :mod:`repro.net.endpoint` — the :class:`Endpoint` send/receive/SACK
  machinery, delivery receipts and stats.

This module re-exports the public names (and the historical private
aliases) so existing imports of ``repro.net.transport`` keep working.
"""

from __future__ import annotations

from repro.net.endpoint import (
    DeliverFn,
    DeliveryReceipt,
    Endpoint,
    EndpointStats,
    _RecvStream,
)
from repro.net.rto import PendingPacket, SendStream
from repro.net.wire import (KIND_ACK, KIND_DATA, KIND_PROBE, KIND_RAW,
                            SACK_MAX_RANGES)

#: Historical aliases from before the split (kept for callers that poked
#: at the internals).
_Pending = PendingPacket
_SendStream = SendStream

__all__ = [
    "DeliverFn",
    "DeliveryReceipt",
    "Endpoint",
    "EndpointStats",
    "KIND_ACK",
    "KIND_DATA",
    "KIND_PROBE",
    "KIND_RAW",
    "PendingPacket",
    "SACK_MAX_RANGES",
    "SendStream",
]
