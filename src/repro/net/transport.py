"""Compatibility facade for the ordering layer (tests/benchmarks only).

The 626-line transport monolith was split into cohesive modules so the
protocol machinery can be tested against every substrate:

* :mod:`repro.net.wire` — frame constants and the byte codec used over
  real UDP sockets;
* :mod:`repro.net.rto` — per-stream sequence/window/RTT state
  (:class:`SendStream`, :class:`PendingPacket`);
* :mod:`repro.net.endpoint` — the :class:`Endpoint` send/receive/SACK
  machinery, delivery receipts and stats;
* :mod:`repro.net.delivery` — the per-channel delivery-class vocabulary.

This module re-exports the public names so out-of-tree imports of
``repro.net.transport`` keep working. Nothing under ``src/`` imports it
anymore (enforced by ``tests/runtime/test_layering.py``) — in-repo code
imports the real modules.
"""

from __future__ import annotations

from repro.net.delivery import (DELIVERY_CLASSES, RELIABLE, RELIABLE_SKIP,
                                UNRELIABLE)
from repro.net.endpoint import (
    DeliverFn,
    DeliveryReceipt,
    Endpoint,
    EndpointStats,
)
from repro.net.rto import PendingPacket, SendStream
from repro.net.wire import (KIND_ACK, KIND_DATA, KIND_PROBE,
                            KIND_SKIP, SACK_MAX_RANGES)

__all__ = [
    "DELIVERY_CLASSES",
    "DeliverFn",
    "DeliveryReceipt",
    "Endpoint",
    "EndpointStats",
    "KIND_ACK",
    "KIND_DATA",
    "KIND_PROBE",
    "KIND_SKIP",
    "PendingPacket",
    "RELIABLE",
    "RELIABLE_SKIP",
    "SACK_MAX_RANGES",
    "SendStream",
    "UNRELIABLE",
]
