"""The ordering layer: reliable FIFO channels over unreliable datagrams.

The paper (§3.2): "The initial implementation uses UDP ... and it
includes a layer to ensure that messages are delivered in the order they
were sent" and "Messages sent along a channel are delivered in the order
sent." This module implements that layer with the classic mechanism:
per-channel sequence numbers, cumulative acknowledgements, retransmission
with exponential backoff, receiver-side reordering buffers and duplicate
suppression — yielding per-channel FIFO, exactly-once delivery over a
network that drops, duplicates and reorders.

One :class:`Endpoint` exists per node (simulated machine); every inbox of
every dapplet on that node registers with it, and every outbox sends
through the endpoint of its node. The *channel key* identifies one
outbox→inbox channel, so ordering is exactly per-channel, as the paper
specifies (two channels between the same pair of nodes are independent).

The paper also specifies: "if a message is not delivered within a
specified time, an exception is raised" — :meth:`Endpoint.send` returns a
:class:`DeliveryReceipt` whose ``confirmed`` event fails with
:class:`~repro.errors.DeliveryTimeout` in that case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import AddressError, DeliveryTimeout
from repro.net.address import InboxAddress, NodeAddress
from repro.net.datagram import Datagram, DatagramNetwork
from repro.sim.events import Event
from repro.sim.kernel import Kernel

#: Packet kinds used in datagram headers.
KIND_DATA = "DATA"
KIND_ACK = "ACK"
KIND_RAW = "RAW"


@dataclass
class EndpointStats:
    """Counters kept per endpoint (read by tests and benchmarks)."""

    data_sent: int = 0
    data_retransmitted: int = 0
    acks_sent: int = 0
    delivered: int = 0
    duplicates_discarded: int = 0
    buffered_out_of_order: int = 0
    gave_up: int = 0
    raw_sent: int = 0
    raw_delivered: int = 0
    no_such_inbox: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(vars(self))


class DeliveryReceipt:
    """Tracks delivery confirmation of one reliable send.

    ``confirmed`` is an event that succeeds (with the elapsed
    send-to-acknowledgement round-trip time) when the destination
    endpoint acknowledges the message, or
    fails with :class:`DeliveryTimeout` if a timeout was requested and
    expired first. Callers that do not care may simply drop the receipt;
    an unobserved timeout does not crash the run.
    """

    def __init__(self, kernel: Kernel, destination: InboxAddress) -> None:
        self.kernel = kernel
        self.destination = destination
        self.sent_at = kernel.now
        self.confirmed: Event = kernel.event()
        #: Pre-defused: a failure here is an application-visible outcome
        #: carried by the event, not an internal simulator error.
        self.confirmed.defused = True

    @property
    def is_confirmed(self) -> bool:
        return self.confirmed.triggered and self.confirmed._ok is True

    @property
    def is_failed(self) -> bool:
        return self.confirmed.triggered and self.confirmed._ok is False

    def _ack(self) -> None:
        if not self.confirmed.triggered:
            self.confirmed.succeed(self.kernel.now - self.sent_at)

    def _fail(self, exc: Exception) -> None:
        if not self.confirmed.triggered:
            self.confirmed.fail(exc)
            self.confirmed.defused = True


@dataclass
class _Pending:
    """Sender-side state of one unacknowledged packet."""

    seq: int
    to_ref: "int | str"
    payload: str
    receipt: DeliveryReceipt
    attempts: int = 1
    rto: float = 0.2
    deadline: float | None = None
    timed_out: bool = False
    first_sent_at: float = 0.0


class _SendStream:
    """Sender half of one reliable channel (fixed dst node + channel key).

    In ``adaptive`` mode the stream keeps a Jacobson-style RTT estimate
    from acknowledged packets (Karn's rule: retransmitted packets are
    excluded) and new packets start from ``srtt + 4*rttvar`` instead of
    the static initial RTO.
    """

    __slots__ = ("next_seq", "unacked", "rto_initial", "broken",
                 "srtt", "rttvar")

    def __init__(self, rto_initial: float) -> None:
        self.next_seq = 0
        self.unacked: dict[int, _Pending] = {}
        self.rto_initial = rto_initial
        self.broken = False
        self.srtt: float | None = None
        self.rttvar = 0.0

    def observe_rtt(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample

    def current_rto(self, floor: float = 0.005) -> float:
        if self.srtt is None:
            return self.rto_initial
        return max(self.srtt + 4 * self.rttvar, floor)


class _RecvStream:
    """Receiver half of one reliable channel (fixed src node + channel key)."""

    __slots__ = ("expected", "buffer")

    def __init__(self) -> None:
        self.expected = 0
        self.buffer: dict[int, tuple["int | str", str]] = {}


DeliverFn = Callable[[str, InboxAddress], None]


class Endpoint:
    """A node's attachment to the network; home of the ordering layer.

    Parameters
    ----------
    reliable:
        When True (default), sends go through the FIFO exactly-once
        layer. When False, sends are raw datagrams — the "bare UDP"
        baseline used by experiment E4.
    rto_initial:
        Initial retransmission timeout. ``None`` estimates it per
        destination as 4x the latency model's mean.
    rto_max / max_retries:
        Backoff cap and retry budget; exhausting the budget marks the
        channel broken (counted in ``stats.gave_up``) so runs always
        quiesce even under pathological loss.
    """

    def __init__(self, kernel: Kernel, network: DatagramNetwork,
                 address: NodeAddress, *, reliable: bool = True,
                 rto_initial: float | None = None, rto_max: float = 5.0,
                 max_retries: int = 30, rto_mode: str = "static") -> None:
        if rto_mode not in ("static", "adaptive"):
            raise ValueError("rto_mode must be 'static' or 'adaptive'")
        self.kernel = kernel
        self.network = network
        self.address = address
        self.reliable = reliable
        self.rto_initial = rto_initial
        self.rto_max = rto_max
        self.max_retries = max_retries
        self.rto_mode = rto_mode
        self.stats = EndpointStats()
        self._inboxes: dict["int | str", DeliverFn] = {}
        self._send_streams: dict[tuple[NodeAddress, str], _SendStream] = {}
        self._recv_streams: dict[tuple[NodeAddress, str], _RecvStream] = {}
        self._rto_cache: dict[str, float] = {}
        network.register(address, self._on_datagram)

    def close(self) -> None:
        """Detach from the network (in-flight datagrams to us are lost)."""
        self.network.unregister(self.address)

    # -- inbox registry ---------------------------------------------------

    def register_inbox(self, ref: int, deliver: DeliverFn,
                       name: str | None = None) -> None:
        """Register delivery for local inbox ``ref`` and optional ``name``."""
        if ref in self._inboxes:
            raise AddressError(f"inbox ref {ref} already registered on {self.address}")
        self._inboxes[ref] = deliver
        if name is not None:
            if name in self._inboxes:
                raise AddressError(
                    f"inbox name {name!r} already registered on {self.address}")
            self._inboxes[name] = deliver

    def unregister_inbox(self, ref: int, name: str | None = None) -> None:
        self._inboxes.pop(ref, None)
        if name is not None:
            self._inboxes.pop(name, None)

    # -- sending ----------------------------------------------------------

    def send(self, dst: InboxAddress, payload: str, channel: str,
             timeout: float | None = None) -> DeliveryReceipt | None:
        """Send ``payload`` to ``dst`` on channel ``channel``.

        Reliable endpoints return a :class:`DeliveryReceipt`; raw
        endpoints return ``None`` (and reject ``timeout``, which cannot
        be honoured without acknowledgements).
        """
        if not self.reliable:
            if timeout is not None:
                raise ValueError("delivery timeout requires a reliable endpoint")
            self.stats.raw_sent += 1
            self.network.send(Datagram(
                self.address, dst.node,
                {"kind": KIND_RAW, "to": dst.ref, "ch": channel}, payload))
            return None

        key = (dst.node, channel)
        stream = self._send_streams.get(key)
        if stream is None:
            stream = _SendStream(self._pick_rto(dst.node))
            self._send_streams[key] = stream

        receipt = DeliveryReceipt(self.kernel, dst)
        if stream.broken:
            receipt._fail(DeliveryTimeout(
                f"channel {channel!r} to {dst.node} is broken (retries exhausted)",
                destination=dst, timeout=timeout))
            return receipt

        seq = stream.next_seq
        stream.next_seq += 1
        initial_rto = (stream.current_rto() if self.rto_mode == "adaptive"
                       else stream.rto_initial)
        pending = _Pending(seq=seq, to_ref=dst.ref, payload=payload,
                           receipt=receipt, rto=initial_rto,
                           deadline=(None if timeout is None
                                     else self.kernel.now + timeout),
                           first_sent_at=self.kernel.now)
        stream.unacked[seq] = pending
        self.stats.data_sent += 1
        self._transmit(dst.node, channel, pending)
        self._arm_timer(key, pending)
        return receipt

    def _pick_rto(self, dst: NodeAddress) -> float:
        if self.rto_initial is not None:
            return self.rto_initial
        cached = self._rto_cache.get(dst.host)
        if cached is None:
            try:
                mean = self.network.latency.mean_estimate(
                    self.address.host, dst.host)
            except Exception:
                mean = 0.05
            cached = max(4.0 * mean, 0.02)
            self._rto_cache[dst.host] = cached
        return cached

    def _transmit(self, dst_node: NodeAddress, channel: str,
                  pending: _Pending) -> None:
        # "ts" is echoed back in acks (TCP-timestamps style) so RTT
        # samples stay clean even under cumulative-ack delays and
        # retransmission ambiguity.
        self.network.send(Datagram(
            self.address, dst_node,
            {"kind": KIND_DATA, "to": pending.to_ref, "ch": channel,
             "seq": pending.seq, "ts": self.kernel.now},
            pending.payload))

    def _arm_timer(self, key: tuple[NodeAddress, str],
                   pending: _Pending) -> None:
        self.kernel.call_later(
            pending.rto, lambda: self._on_timer(key, pending.seq))

    def _on_timer(self, key: tuple[NodeAddress, str], seq: int) -> None:
        stream = self._send_streams.get(key)
        if stream is None or seq not in stream.unacked:
            return  # acknowledged in the meantime
        pending = stream.unacked[seq]
        now = self.kernel.now
        if pending.deadline is not None and now >= pending.deadline \
                and not pending.timed_out:
            # Paper semantics: raise to the application; but keep
            # retransmitting so the channel's FIFO stream is not holed.
            pending.timed_out = True
            pending.receipt._fail(DeliveryTimeout(
                f"message on channel {key[1]!r} to {key[0]} not delivered "
                f"within {pending.deadline - pending.receipt.sent_at:.3f}s",
                destination=pending.receipt.destination,
                timeout=pending.deadline - pending.receipt.sent_at))
        if pending.attempts > self.max_retries:
            # Give up: the channel is declared broken. All queued
            # packets fail; later sends fail immediately.
            self.stats.gave_up += 1
            stream.broken = True
            for p in stream.unacked.values():
                p.receipt._fail(DeliveryTimeout(
                    f"channel {key[1]!r} to {key[0]} broken after "
                    f"{self.max_retries} retries",
                    destination=p.receipt.destination))
            stream.unacked.clear()
            return
        pending.attempts += 1
        pending.rto = min(pending.rto * 2.0, self.rto_max)
        self.stats.data_retransmitted += 1
        self._transmit(key[0], key[1], pending)
        self._arm_timer(key, pending)

    # -- receiving ----------------------------------------------------------

    def _on_datagram(self, datagram: Datagram) -> None:
        kind = datagram.header.get("kind")
        if kind == KIND_RAW:
            self._deliver(datagram.header["to"], datagram.payload,
                          datagram.src, raw=True)
        elif kind == KIND_DATA:
            self._on_data(datagram)
        elif kind == KIND_ACK:
            self._on_ack(datagram)

    def _on_data(self, datagram: Datagram) -> None:
        channel: str = datagram.header["ch"]
        seq: int = datagram.header["seq"]
        key = (datagram.src, channel)
        stream = self._recv_streams.get(key)
        if stream is None:
            stream = _RecvStream()
            self._recv_streams[key] = stream

        if seq < stream.expected or seq in stream.buffer:
            self.stats.duplicates_discarded += 1
        else:
            stream.buffer[seq] = (datagram.header["to"], datagram.payload)
            if seq != stream.expected:
                self.stats.buffered_out_of_order += 1
            while stream.expected in stream.buffer:
                to_ref, payload = stream.buffer.pop(stream.expected)
                stream.expected += 1
                self._deliver(to_ref, payload, datagram.src, raw=False)
        # Cumulative acknowledgement (also re-sent on duplicates, since
        # the previous ack may have been lost). "ets" echoes the
        # triggering packet's transmit timestamp for RTT estimation.
        self.stats.acks_sent += 1
        self.network.send(Datagram(
            self.address, datagram.src,
            {"kind": KIND_ACK, "ch": channel, "cum": stream.expected - 1,
             "ets": datagram.header.get("ts")},
            ""))

    def _on_ack(self, datagram: Datagram) -> None:
        key = (datagram.src, datagram.header["ch"])
        stream = self._send_streams.get(key)
        if stream is None:
            return
        if self.rto_mode == "adaptive":
            echoed = datagram.header.get("ets")
            if echoed is not None:
                stream.observe_rtt(self.kernel.now - echoed)
        cum: int = datagram.header["cum"]
        for seq in [s for s in stream.unacked if s <= cum]:
            stream.unacked.pop(seq).receipt._ack()

    def _deliver(self, to_ref: "int | str", payload: str,
                 src: NodeAddress, *, raw: bool) -> None:
        deliver = self._inboxes.get(to_ref)
        if deliver is None:
            self.stats.no_such_inbox += 1
            return
        if raw:
            self.stats.raw_delivered += 1
        else:
            self.stats.delivered += 1
        deliver(payload, InboxAddress(self.address, to_ref))
