"""Wire format of the ordering layer: frame constants and frame codec.

The frame layout is shared by every substrate (see ``docs/PROTOCOLS.md``
for the field glossary). On the simulated network a :class:`Datagram`
travels as a Python object and the header stays a dict; over real UDP
sockets the same header/payload pair is encoded to bytes by
:func:`encode_frame` / :func:`decode_frame` — one JSON document per
datagram, so the DATA/ACK/SACK protocol runs unmodified over the real
Internet exactly as it does in virtual time.
"""

from __future__ import annotations

import json

from repro.errors import AddressError
from repro.net.address import NodeAddress
from repro.net.datagram import Datagram

#: Packet kinds used in datagram headers.
KIND_DATA = "DATA"
KIND_ACK = "ACK"
KIND_RAW = "RAW"
#: Zero-window persist probe: payload-less, solicits an immediate ACK
#: (which re-advertises ``rwnd``) so a closed receive window whose
#: opening advertisement was lost can never deadlock a sender.
KIND_PROBE = "PROBE"

#: Most SACK ranges one ACK may carry (mirrors TCP's option-space bound;
#: ranges beyond the limit are simply re-advertised by later ACKs).
SACK_MAX_RANGES = 3

#: Largest frame we will encode (UDP's practical payload ceiling).
MAX_FRAME_BYTES = 65000

#: Most payloads one batched DATA frame may coalesce. A batch frame
#: carries ``parts`` (the per-payload inbox refs) in its header and a
#: JSON array of the payload strings as its payload; sequence numbers
#: are implicit — ``seq``, ``seq+1``, ... in array order.
BATCH_MAX_PAYLOADS = 32


def encode_batch(payloads: list[str]) -> str:
    """Pack coalesced DATA payloads into one batch-frame payload."""
    return json.dumps(payloads, separators=(",", ":"))


def decode_batch(payload: str) -> list[str]:
    """Unpack a batch-frame payload into its ordered payload strings."""
    try:
        parts = json.loads(payload)
    except ValueError as exc:
        raise FrameError("cannot decode batch payload") from exc
    if not isinstance(parts, list) \
            or not all(isinstance(p, str) for p in parts):
        raise FrameError("batch payload is not a list of strings")
    return parts


class FrameError(AddressError):
    """A frame failed to encode or decode."""


def encode_frame(datagram: Datagram) -> bytes:
    """Serialize one datagram to a self-contained UDP payload.

    The virtual source/destination node addresses travel inside the
    frame: the receiving substrate routes by the frame's ``d`` field, so
    a node keeps its paper-style identity (``host:port``) independent of
    the real socket address it happens to be bound to.
    """
    frame = {
        "s": str(datagram.src),
        "d": str(datagram.dst),
        "h": datagram.header,
        "p": datagram.payload,
    }
    data = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            "UDP payload ceiling")
    return data


def decode_frame(data: bytes) -> Datagram:
    """Parse one UDP payload back into a :class:`Datagram`."""
    try:
        frame = json.loads(data.decode("utf-8"))
        return Datagram(
            src=NodeAddress.parse(frame["s"]),
            dst=NodeAddress.parse(frame["d"]),
            header=frame["h"],
            payload=frame["p"],
        )
    except (ValueError, KeyError, TypeError) as exc:
        raise FrameError(f"cannot decode {len(data)}-byte frame") from exc
