"""Wire format of the ordering layer: frame constants and frame codec.

The frame layout is shared by every substrate (see ``docs/PROTOCOLS.md``
for the field glossary and the byte-level table). On the simulated
network a :class:`Datagram` travels as a Python object and the header
stays a dict; over real UDP sockets — and in the simulator's opt-in
``encoded`` mode — the same header/payload pair is serialized by
:func:`encode_frame` / :func:`decode_frame` into a **struct-packed
binary frame**: a fixed packed prelude (magic, version, kind, flags)
followed by length-prefixed varlen sections for the virtual addresses,
the channel key, inbox refs, SACK ranges, piggybacked ACK packs and
batched ``parts`` payloads. One encode path covers singleton and
batched DATA alike; each batched payload's bytes are written into the
output buffer exactly once (no intermediate batch document, no
re-escape — the zero-recopy property the old JSON wire lacked).

The previous one-JSON-document-per-datagram form is retained as
:func:`encode_frame_json` / :func:`decode_frame_json` purely as the
reference/baseline codec for the E15 serialization benchmark; nothing
in the stack speaks it on a socket anymore.

Binary layout (all integers big-endian)::

    prelude   !BBBB   magic 0xC3, version 1, kind, flags
    src       u8 host-len, host utf-8, u16 port
    dst       u8 host-len, host utf-8, u16 port
    ch        u16 len, utf-8
    -- kind DATA (1), flags bit0 = pack, bit1 = parts,
       bits2-3 = delivery class (0 reliable, 1 unreliable,
       2 reliable_skip; 3 invalid) --
    seq,ts    u32, f64
    to        ref
    parts?    u16 count, count x ref
    pack?     u8 count, count x (u16 ch-len, ch utf-8, ackbody)
    payload   parts: count x (u16 len, bytes)   else: rest of frame
    -- kind ACK (2) --
    ackbody   i64 cum, u8 aflags (1 ets, 2 sack, 4 rwnd),
              f64 ets?, (u8 n, n x (u32 lo, u32 hi))?, u64 rwnd?
    payload   rest of frame (normally empty)
    -- kind 3: reserved --
    (the retired RAW kind; encoders never emit it and decoders
    strict-reject it with :class:`FrameError`)
    -- kind PROBE (4) --
    payload   rest of frame (normally empty)
    -- kind SKIP (5): sender abandoned seqs below ``upto`` --
    upto      u32
    payload   rest of frame (normally empty)

    ref       u8 tag (0 int, 1 name), then u32 | (u16 len, utf-8)

Every multi-byte field is validated on decode; malformed bytes raise
:class:`FrameError` — never ``struct.error``/``KeyError``/
``IndexError`` — so receive loops can treat "drop and count" as the
single failure mode.
"""

from __future__ import annotations

import json
import struct

from repro.errors import AddressError, PayloadTooLarge, WireFormatError
from repro.net.address import NodeAddress
from repro.net.datagram import Datagram
from repro.net.delivery import (  # noqa: F401  (re-exported wire vocabulary)
    DELIVERY_CLASSES,
    RELIABLE,
    RELIABLE_SKIP,
    UNRELIABLE,
)

#: Packet kinds used in datagram headers.
KIND_DATA = "DATA"
KIND_ACK = "ACK"
#: Zero-window persist probe: payload-less, solicits an immediate ACK
#: (which re-advertises ``rwnd``) so a closed receive window whose
#: opening advertisement was lost can never deadlock a sender.
KIND_PROBE = "PROBE"
#: Skip/advance signal of the RELIABLE_SKIP class: the sender has
#: abandoned every sequence number below ``upto`` on this channel; the
#: receiver delivers what it buffered below the mark and moves its
#: cumulative expectation forward instead of stalling on the hole.
KIND_SKIP = "SKIP"

#: Most SACK ranges one ACK may carry (mirrors TCP's option-space bound;
#: ranges beyond the limit are simply re-advertised by later ACKs).
SACK_MAX_RANGES = 3

#: Largest frame we will encode (UDP's practical payload ceiling).
MAX_FRAME_BYTES = 65000

#: Most payloads one batched DATA frame may coalesce. A batch frame
#: carries ``parts`` (the per-payload inbox refs) in its header and the
#: payload strings as ``Datagram.parts_payloads``; sequence numbers are
#: implicit — ``seq``, ``seq+1``, ... in order.
BATCH_MAX_PAYLOADS = 32

WIRE_MAGIC = 0xC3
WIRE_VERSION = 1

#: Wire id 3 is reserved: it carried the retired RAW kind (the old
#: ``reliable=False`` endpoint shim). It is never reassigned, so a
#: frame from a pre-retirement build fails loudly instead of being
#: misparsed as something else.
_KIND_TO_WIRE = {KIND_DATA: 1, KIND_ACK: 2, KIND_PROBE: 4, KIND_SKIP: 5}
_WIRE_TO_KIND = {1: KIND_DATA, 2: KIND_ACK, 4: KIND_PROBE, 5: KIND_SKIP}
_WIRE_KIND_RESERVED = 3

_FLAG_PACK = 0x01
_FLAG_PARTS = 0x02
#: Bits 2-3 of the DATA flags carry the delivery class; 0 (RELIABLE)
#: keeps pre-class frames byte-identical.
_FLAG_CLS_SHIFT = 2
_FLAG_CLS_MASK = 0x0C
_CLS_TO_BITS = {RELIABLE: 0, UNRELIABLE: 1, RELIABLE_SKIP: 2}
_BITS_TO_CLS = {0: RELIABLE, 1: UNRELIABLE, 2: RELIABLE_SKIP}
_AFLAG_ETS = 0x01
_AFLAG_SACK = 0x02
_AFLAG_RWND = 0x04

_PRELUDE = struct.Struct("!BBBB")
_U8 = struct.Struct("!B")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")
_SEQ_TS = struct.Struct("!Id")
_RANGE = struct.Struct("!II")
_CUM_AFLAGS = struct.Struct("!qB")


class FrameError(WireFormatError):
    """A frame failed to encode or decode.

    Part of the :class:`repro.errors.WireFormatError` /
    :class:`repro.errors.TransportError` taxonomy. (The historical
    ``AddressError`` base — a one-release deprecation alias from the
    JSON-to-binary wire migration — is gone; catch ``WireFormatError``
    or ``TransportError``.)
    """


def utf8_len(text: str) -> int:
    """Byte length of ``text`` on the wire (fast path for ASCII)."""
    return len(text) if text.isascii() else len(text.encode("utf-8"))


def ref_wire_size(ref: "int | str") -> int:
    """Encoded size of one inbox ref (tag byte + value)."""
    if type(ref) is int:
        return 5
    return 3 + utf8_len(ref)


def frame_base_size(src: NodeAddress, dst: NodeAddress, ch: str) -> int:
    """Bytes of prelude + addresses + channel, shared by every kind."""
    return (4 + 3 + utf8_len(src.host) + 3 + utf8_len(dst.host)
            + 2 + utf8_len(ch))


#: seq (u32) + ts (f64) in a DATA section.
DATA_FIXED_SIZE = 12
#: u16 parts-count prefix of a batched DATA frame.
BATCH_COUNT_SIZE = 2
#: u16 length prefix in front of each batched part payload (every part
#: fits: the whole frame is capped at ``MAX_FRAME_BYTES`` < 2**16).
PART_LEN_SIZE = 2


def ack_fields_wire_size(fields: dict) -> int:
    """Encoded size of one ackbody built from ``fields``."""
    size = 9  # cum + aflags
    if fields.get("ets") is not None:
        size += 8
    sack = fields.get("sack")
    if sack:
        size += 1 + 8 * len(sack)
    if fields.get("rwnd") is not None:
        size += 8
    return size


def pack_entry_wire_size(ch: str, fields: dict) -> int:
    """Encoded size of one piggybacked-ACK pack entry."""
    return 2 + utf8_len(ch) + ack_fields_wire_size(fields)


# -- encoding ------------------------------------------------------------


def _put_str16(out: bytearray, text: str, what: str) -> None:
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise FrameError(f"{what} of {len(data)} bytes exceeds u16 bound")
    out += _U16.pack(len(data))
    out += data


def _put_address(out: bytearray, address: NodeAddress) -> None:
    host = address.host.encode("utf-8")
    if len(host) > 0xFF:
        raise FrameError(f"host of {len(host)} bytes exceeds u8 bound")
    out += _U8.pack(len(host))
    out += host
    out += _U16.pack(address.port)


def _put_ref(out: bytearray, ref: "int | str") -> None:
    if type(ref) is int:
        if not 0 <= ref < 1 << 32:
            raise FrameError(f"inbox ref {ref} outside u32 range")
        out += b"\x00"
        out += _U32.pack(ref)
    elif type(ref) is str:
        out += b"\x01"
        _put_str16(out, ref, "inbox name")
    else:
        raise FrameError(f"inbox ref must be int or str, got {type(ref)!r}")


def _put_ackbody(out: bytearray, fields: dict) -> None:
    try:
        cum = fields["cum"]
    except (KeyError, TypeError) as exc:
        raise FrameError("ack fields missing 'cum'") from exc
    ets = fields.get("ets")
    sack = fields.get("sack")
    rwnd = fields.get("rwnd")
    aflags = ((_AFLAG_ETS if ets is not None else 0)
              | (_AFLAG_SACK if sack else 0)
              | (_AFLAG_RWND if rwnd is not None else 0))
    try:
        out += _CUM_AFLAGS.pack(cum, aflags)
    except struct.error as exc:
        raise FrameError(f"cum {cum!r} outside i64 range") from exc
    try:
        if ets is not None:
            out += _F64.pack(ets)
        if sack:
            if len(sack) > 0xFF:
                raise FrameError(f"{len(sack)} sack ranges exceed u8 bound")
            out += _U8.pack(len(sack))
            for lo, hi in sack:
                out += _RANGE.pack(lo, hi)
        if rwnd is not None:
            out += _U64.pack(rwnd)
    except (struct.error, TypeError, ValueError) as exc:
        raise FrameError(f"cannot encode ack fields {fields!r}") from exc


def encode_frame(datagram: Datagram) -> bytes:
    """Serialize one datagram to a self-contained UDP payload.

    The virtual source/destination node addresses travel inside the
    frame: the receiving substrate routes by the frame's dst section, so
    a node keeps its paper-style identity (``host:port``) independent of
    the real socket address it happens to be bound to.
    """
    header = datagram.header
    try:
        kind = header["kind"]
        ch = header.get("ch", "")
    except TypeError as exc:
        raise FrameError("frame header is not a mapping") from exc
    wire_kind = _KIND_TO_WIRE.get(kind)
    if wire_kind is None:
        raise FrameError(f"unknown frame kind {kind!r}")
    parts = header.get("parts")
    pack = header.get("pack")
    flags = 0
    if kind == KIND_DATA:
        if pack:
            flags |= _FLAG_PACK
        if parts is not None:
            flags |= _FLAG_PARTS
        cls = header.get("cls")
        if cls is not None:
            bits = _CLS_TO_BITS.get(cls)
            if bits is None:
                raise FrameError(f"unknown delivery class {cls!r}")
            flags |= bits << _FLAG_CLS_SHIFT

    out = bytearray()
    out += _PRELUDE.pack(WIRE_MAGIC, WIRE_VERSION, wire_kind, flags)
    _put_address(out, datagram.src)
    _put_address(out, datagram.dst)
    if not isinstance(ch, str):
        raise FrameError(f"channel key must be str, got {type(ch)!r}")
    _put_str16(out, ch, "channel key")

    try:
        if kind == KIND_DATA:
            try:
                out += _SEQ_TS.pack(header["seq"], header["ts"])
            except (struct.error, TypeError) as exc:
                raise FrameError(
                    f"seq/ts {header.get('seq')!r}/{header.get('ts')!r} "
                    "not encodable (seq must fit u32)") from exc
            _put_ref(out, header["to"])
            if parts is not None:
                if len(parts) > 0xFFFF:
                    raise FrameError(
                        f"{len(parts)} parts exceed u16 bound")
                out += _U16.pack(len(parts))
                for ref in parts:
                    _put_ref(out, ref)
            if pack:
                if len(pack) > 0xFF:
                    raise FrameError(
                        f"{len(pack)} pack entries exceed u8 bound")
                out += _U8.pack(len(pack))
                for entry in pack:
                    _put_str16(out, entry["ch"], "pack channel key")
                    _put_ackbody(out, entry)
            if parts is not None:
                payloads = datagram.parts_payloads
                if payloads is None or len(payloads) != len(parts):
                    raise FrameError(
                        "batched frame needs one parts_payload per part")
                for payload in payloads:
                    data = payload.encode("utf-8")
                    if len(data) > 0xFFFF:
                        raise FrameError(
                            f"batched payload of {len(data)} bytes "
                            "exceeds u16 bound")
                    out += _U16.pack(len(data))
                    out += data
            else:
                out += datagram.payload.encode("utf-8")
        elif kind == KIND_ACK:
            _put_ackbody(out, header)
            out += datagram.payload.encode("utf-8")
        elif kind == KIND_SKIP:
            try:
                out += _U32.pack(header["upto"])
            except (struct.error, TypeError) as exc:
                raise FrameError(
                    f"skip upto {header.get('upto')!r} must fit u32") from exc
            out += datagram.payload.encode("utf-8")
        else:  # PROBE
            out += datagram.payload.encode("utf-8")
    except KeyError as exc:
        raise FrameError(f"frame header missing field {exc}") from exc
    except AttributeError as exc:
        raise FrameError(f"frame field has wrong type: {exc}") from exc

    if len(out) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(out)} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            "UDP payload ceiling")
    return bytes(out)


# -- decoding ------------------------------------------------------------


def _get_str16(data: bytes, off: int) -> tuple[str, int]:
    (n,) = _U16.unpack_from(data, off)
    off += 2
    end = off + n
    if end > len(data):
        raise FrameError("truncated string section")
    return data[off:end].decode("utf-8"), end


def _get_address(data: bytes, off: int) -> tuple[NodeAddress, int]:
    (n,) = _U8.unpack_from(data, off)
    off += 1
    end = off + n
    if end + 2 > len(data):
        raise FrameError("truncated address section")
    host = data[off:end].decode("utf-8")
    (port,) = _U16.unpack_from(data, end)
    return NodeAddress(host, port), end + 2


def _get_ref(data: bytes, off: int) -> "tuple[int | str, int]":
    (tag,) = _U8.unpack_from(data, off)
    off += 1
    if tag == 0:
        (ref,) = _U32.unpack_from(data, off)
        return ref, off + 4
    if tag == 1:
        return _get_str16(data, off)
    raise FrameError(f"unknown inbox-ref tag {tag}")


def _get_ackbody(data: bytes, off: int, fields: dict) -> int:
    cum, aflags = _CUM_AFLAGS.unpack_from(data, off)
    off += 9
    fields["cum"] = cum
    if aflags & _AFLAG_ETS:
        (ets,) = _F64.unpack_from(data, off)
        off += 8
        fields["ets"] = ets
    else:
        fields["ets"] = None
    if aflags & _AFLAG_SACK:
        (n,) = _U8.unpack_from(data, off)
        off += 1
        sack = []
        for _ in range(n):
            lo, hi = _RANGE.unpack_from(data, off)
            off += 8
            sack.append([lo, hi])
        fields["sack"] = sack
    if aflags & _AFLAG_RWND:
        (rwnd,) = _U64.unpack_from(data, off)
        off += 8
        fields["rwnd"] = rwnd
    if aflags & ~(_AFLAG_ETS | _AFLAG_SACK | _AFLAG_RWND):
        raise FrameError(f"unknown ack flags 0x{aflags:02x}")
    return off


def decode_frame(data: bytes) -> Datagram:
    """Parse one UDP payload back into a :class:`Datagram`.

    Every section is shape-validated: truncated, mutated or
    wrong-versioned bytes raise :class:`FrameError` (wrapping the
    underlying ``struct``/unicode/address error), so a receive loop has
    exactly one exception type to drop-and-count on.
    """
    try:
        magic, version, wire_kind, flags = _PRELUDE.unpack_from(data, 0)
        if magic != WIRE_MAGIC:
            raise FrameError(f"bad frame magic 0x{magic:02x}")
        if version != WIRE_VERSION:
            raise FrameError(f"unsupported wire version {version}")
        kind = _WIRE_TO_KIND.get(wire_kind)
        if kind is None:
            if wire_kind == _WIRE_KIND_RESERVED:
                raise FrameError(
                    "wire kind 3 (retired RAW) is reserved and rejected")
            raise FrameError(f"unknown wire kind {wire_kind}")
        if flags and kind != KIND_DATA:
            raise FrameError(f"flags 0x{flags:02x} invalid for {kind}")
        if flags & ~(_FLAG_PACK | _FLAG_PARTS | _FLAG_CLS_MASK):
            raise FrameError(f"unknown frame flags 0x{flags:02x}")
        cls_bits = (flags & _FLAG_CLS_MASK) >> _FLAG_CLS_SHIFT
        if cls_bits not in _BITS_TO_CLS:
            raise FrameError(f"invalid delivery-class bits {cls_bits}")
        src, off = _get_address(data, 4)
        dst, off = _get_address(data, off)
        ch, off = _get_str16(data, off)

        parts_payloads = None
        if kind == KIND_DATA:
            seq, ts = _SEQ_TS.unpack_from(data, off)
            off += DATA_FIXED_SIZE
            to, off = _get_ref(data, off)
            header: dict = {"kind": kind, "to": to, "ch": ch,
                            "seq": seq, "ts": ts}
            if cls_bits:
                # RELIABLE (0) stays implicit so pre-class frames and
                # headers round-trip byte- and dict-identical.
                header["cls"] = _BITS_TO_CLS[cls_bits]
            nparts = None
            if flags & _FLAG_PARTS:
                (nparts,) = _U16.unpack_from(data, off)
                off += 2
                parts = []
                for _ in range(nparts):
                    ref, off = _get_ref(data, off)
                    parts.append(ref)
                header["parts"] = parts
            if flags & _FLAG_PACK:
                (npack,) = _U8.unpack_from(data, off)
                off += 1
                pack = []
                for _ in range(npack):
                    pch, off = _get_str16(data, off)
                    entry = {"ch": pch}
                    off = _get_ackbody(data, off, entry)
                    pack.append(entry)
                header["pack"] = pack
            if nparts is not None:
                payloads = []
                for _ in range(nparts):
                    (n,) = _U16.unpack_from(data, off)
                    off += 2
                    end = off + n
                    if end > len(data):
                        raise FrameError("truncated batch payload")
                    payloads.append(data[off:end].decode("utf-8"))
                    off = end
                if off != len(data):
                    raise FrameError(
                        f"{len(data) - off} trailing bytes after batch")
                parts_payloads = tuple(payloads)
                payload = ""
            else:
                payload = data[off:].decode("utf-8")
        elif kind == KIND_ACK:
            header = {"kind": kind, "ch": ch}
            off = _get_ackbody(data, off, header)
            payload = data[off:].decode("utf-8")
        elif kind == KIND_SKIP:
            (upto,) = _U32.unpack_from(data, off)
            off += 4
            header = {"kind": kind, "ch": ch, "upto": upto}
            payload = data[off:].decode("utf-8")
        else:  # PROBE
            header = {"kind": kind, "ch": ch}
            payload = data[off:].decode("utf-8")
        return Datagram(src=src, dst=dst, header=header, payload=payload,
                        parts_payloads=parts_payloads)
    except FrameError:
        raise
    # AddressError here is a real decode failure — NodeAddress rejects
    # malformed host/port sections — wrapped like any other parse error.
    except (struct.error, IndexError, UnicodeDecodeError, ValueError,
            TypeError, AddressError) as exc:
        raise FrameError(
            f"cannot decode {len(data)}-byte frame: {exc}") from exc


def payload_too_large(size: int) -> PayloadTooLarge:
    """The typed error for a payload that can never fit one frame."""
    return PayloadTooLarge(
        f"payload needs a {size}-byte frame, over the {MAX_FRAME_BYTES}-byte "
        "ceiling on every substrate", size=size, limit=MAX_FRAME_BYTES)


# -- the legacy JSON codec (E15 benchmark reference only) ----------------


def encode_frame_json(datagram: Datagram) -> bytes:
    """The pre-binary wire form: one JSON document per datagram.

    Kept only as the baseline codec the E15 serialization benchmark
    compares against; no substrate emits it anymore.
    """
    frame = {
        "s": str(datagram.src),
        "d": str(datagram.dst),
        "h": datagram.header,
        "p": (list(datagram.parts_payloads)
              if datagram.parts_payloads is not None else datagram.payload),
    }
    data = json.dumps(frame, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            "UDP payload ceiling")
    return data


def decode_frame_json(data: bytes) -> Datagram:
    """Parse one legacy JSON frame back into a :class:`Datagram`."""
    try:
        frame = json.loads(data.decode("utf-8"))
        header = frame["h"]
        if not isinstance(header, dict):
            raise FrameError("frame header is not an object")
        p = frame["p"]
        if isinstance(p, list):
            payload, parts_payloads = "", tuple(p)
        else:
            payload, parts_payloads = p, None
        return Datagram(
            src=NodeAddress.parse(frame["s"]),
            dst=NodeAddress.parse(frame["d"]),
            header=header,
            payload=payload,
            parts_payloads=parts_payloads,
        )
    except FrameError:
        raise
    # AddressError: NodeAddress.parse rejecting the "s"/"d" strings.
    except (ValueError, KeyError, TypeError, AddressError) as exc:
        raise FrameError(f"cannot decode {len(data)}-byte frame") from exc
