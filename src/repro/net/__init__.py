"""Simulated wide-area network substrate.

The paper's implementation runs over UDP on the real Internet; this
package provides the synthetic equivalent (see DESIGN.md §2): an
unreliable datagram service with configurable latency models and fault
injection (:mod:`repro.net.datagram`), and on top of it the ordering
layer the paper describes — per-channel FIFO, exactly-once delivery via
sequence numbers, acknowledgements and retransmission
(:mod:`repro.net.endpoint`), with per-channel delivery classes
(:mod:`repro.net.delivery`).
"""

from repro.net.address import InboxAddress, NodeAddress
from repro.net.datagram import Datagram, DatagramNetwork, NetworkStats
from repro.net.delivery import (
    DELIVERY_CLASSES,
    RELIABLE,
    RELIABLE_SKIP,
    UNRELIABLE,
)
from repro.net.faults import FaultPlan
from repro.net.latency import (
    ConstantLatency,
    GeoLatency,
    LatencyModel,
    LogNormalLatency,
    PerLinkLatency,
    UniformLatency,
    WAN_SITES,
)
from repro.net.endpoint import DeliveryReceipt, Endpoint, EndpointStats

__all__ = [
    "ConstantLatency",
    "DELIVERY_CLASSES",
    "Datagram",
    "DatagramNetwork",
    "DeliveryReceipt",
    "Endpoint",
    "EndpointStats",
    "FaultPlan",
    "GeoLatency",
    "InboxAddress",
    "LatencyModel",
    "LogNormalLatency",
    "NetworkStats",
    "NodeAddress",
    "PerLinkLatency",
    "RELIABLE",
    "RELIABLE_SKIP",
    "UNRELIABLE",
    "UniformLatency",
    "WAN_SITES",
]
