"""Simulated wide-area network substrate.

The paper's implementation runs over UDP on the real Internet; this
package provides the synthetic equivalent (see DESIGN.md §2): an
unreliable datagram service with configurable latency models and fault
injection (:mod:`repro.net.datagram`), and on top of it the ordering
layer the paper describes — per-channel FIFO, exactly-once delivery via
sequence numbers, acknowledgements and retransmission
(:mod:`repro.net.transport`).
"""

from repro.net.address import InboxAddress, NodeAddress
from repro.net.datagram import Datagram, DatagramNetwork, NetworkStats
from repro.net.faults import FaultPlan
from repro.net.latency import (
    ConstantLatency,
    GeoLatency,
    LatencyModel,
    LogNormalLatency,
    PerLinkLatency,
    UniformLatency,
    WAN_SITES,
)
from repro.net.transport import DeliveryReceipt, Endpoint, EndpointStats

__all__ = [
    "ConstantLatency",
    "Datagram",
    "DatagramNetwork",
    "DeliveryReceipt",
    "Endpoint",
    "EndpointStats",
    "FaultPlan",
    "GeoLatency",
    "InboxAddress",
    "LatencyModel",
    "LogNormalLatency",
    "NetworkStats",
    "NodeAddress",
    "PerLinkLatency",
    "UniformLatency",
    "WAN_SITES",
]
