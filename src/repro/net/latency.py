"""Link latency models.

The paper's requirements (§2.2, "Coping with a Varied Network
Environment"): "Communication delays can vary widely. One process in a
calendar application may be in Australia while two other processes are in
the same building in Pasadena." and (§3.2) "Message delays in channels
are arbitrary; the delay is independent of the delay experienced by other
messages on that channel, and it is independent of the delay on other
channels."

A latency model answers: given a datagram of ``size`` bytes from
``src_host`` to ``dst_host``, how long does the network hold it? Models
draw from the named random stream they are handed, so two links never
share a stream and runs are reproducible.

:class:`GeoLatency` is the model used by the WAN experiments: it places
hosts at real coordinates (Caltech/Pasadena, Rice/Houston, UT
Knoxville, plus far sites such as Sydney for the paper's Australia
example), charges great-circle propagation delay at 2/3 c times a
routing-inflation factor, a per-packet transmission time, and lognormal
queueing jitter — the standard first-order WAN model.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from random import Random


class LatencyModel(ABC):
    """Strategy for sampling one-way datagram delays."""

    @abstractmethod
    def sample(self, rng: Random, src_host: str, dst_host: str,
               size: int) -> float:
        """One-way delay in seconds for a ``size``-byte datagram."""

    def mean_estimate(self, src_host: str, dst_host: str) -> float:
        """A rough expected delay, used to pick retransmission timeouts."""
        probe = Random(0)
        samples = [self.sample(probe, src_host, dst_host, 256)
                   for _ in range(32)]
        return sum(samples) / len(samples)


class ConstantLatency(LatencyModel):
    """Every datagram takes exactly ``delay`` seconds."""

    def __init__(self, delay: float = 0.05) -> None:
        if delay < 0:
            raise ValueError("delay must be >= 0")
        self.delay = delay

    def sample(self, rng: Random, src_host: str, dst_host: str,
               size: int) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Delays drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not (0 <= low <= high):
            raise ValueError(f"invalid range [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: Random, src_host: str, dst_host: str,
               size: int) -> float:
        return rng.uniform(self.low, self.high)


class LogNormalLatency(LatencyModel):
    """Heavy-tailed delays: ``median * lognormal(0, sigma)`` plus a floor.

    A reasonable stand-in for Internet paths, where most packets are
    quick but a tail straggles.
    """

    def __init__(self, median: float = 0.05, sigma: float = 0.5,
                 floor: float = 0.001) -> None:
        if median <= 0 or sigma < 0 or floor < 0:
            raise ValueError("median must be > 0, sigma/floor >= 0")
        self.median = median
        self.sigma = sigma
        self.floor = floor

    def sample(self, rng: Random, src_host: str, dst_host: str,
               size: int) -> float:
        return self.floor + self.median * math.exp(rng.gauss(0.0, self.sigma))


#: Site coordinates (degrees lat, lon) for the hosts named by the paper's
#: examples, plus far sites for the heterogeneity experiments.
WAN_SITES: dict[str, tuple[float, float]] = {
    "caltech.edu": (34.1377, -118.1253),     # Pasadena, CA
    "rice.edu": (29.7174, -95.4018),         # Houston, TX
    "utk.edu": (35.9544, -83.9295),          # Knoxville, TN
    "mit.edu": (42.3601, -71.0942),          # Cambridge, MA
    "ethz.ch": (47.3763, 8.5477),            # Zurich
    "u-tokyo.ac.jp": (35.7128, 139.7621),    # Tokyo
    "sydney.edu.au": (-33.8888, 151.1872),   # Sydney (the paper's Australia)
}

_EARTH_RADIUS_KM = 6371.0
_FIBER_KM_PER_S = 2.0e5  # ~2/3 of c in glass


def great_circle_km(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Great-circle distance between two (lat, lon) points in km."""
    lat1, lon1 = map(math.radians, a)
    lat2, lon2 = map(math.radians, b)
    s = (math.sin((lat2 - lat1) / 2) ** 2
         + math.cos(lat1) * math.cos(lat2) * math.sin((lon2 - lon1) / 2) ** 2)
    return 2 * _EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(s)))


class GeoLatency(LatencyModel):
    """Geography-driven WAN latency.

    delay = routing_factor * distance / (2/3 c)      (propagation)
          + size / bandwidth                          (transmission)
          + lognormal queueing jitter
    plus a LAN floor when the two hosts are co-located (same site), which
    models "two processes in the same building in Pasadena".
    """

    def __init__(self, sites: dict[str, tuple[float, float]] | None = None,
                 *, routing_factor: float = 1.6,
                 bandwidth_bytes_per_s: float = 1.25e6,
                 jitter_median: float = 0.004, jitter_sigma: float = 0.8,
                 lan_delay: float = 0.0005) -> None:
        self.sites = dict(WAN_SITES if sites is None else sites)
        self.routing_factor = routing_factor
        self.bandwidth = bandwidth_bytes_per_s
        self.jitter_median = jitter_median
        self.jitter_sigma = jitter_sigma
        self.lan_delay = lan_delay

    def site_of(self, host: str) -> tuple[float, float]:
        """Coordinates of ``host``; suffix-matches registered sites."""
        if host in self.sites:
            return self.sites[host]
        for site, coords in self.sites.items():
            if host.endswith("." + site) or host.endswith(site):
                return coords
        raise KeyError(f"no coordinates registered for host {host!r}")

    def propagation(self, src_host: str, dst_host: str) -> float:
        """Deterministic propagation component between two hosts."""
        a, b = self.site_of(src_host), self.site_of(dst_host)
        if a == b:
            return self.lan_delay
        km = great_circle_km(a, b)
        return self.lan_delay + self.routing_factor * km / _FIBER_KM_PER_S

    def sample(self, rng: Random, src_host: str, dst_host: str,
               size: int) -> float:
        jitter = self.jitter_median * math.exp(rng.gauss(0.0, self.jitter_sigma))
        return self.propagation(src_host, dst_host) + size / self.bandwidth + jitter


class PerLinkLatency(LatencyModel):
    """Composite: explicit per-(src, dst) overrides over a default model.

    Host pairs are directional; register with :meth:`set_link`.
    """

    def __init__(self, default: LatencyModel) -> None:
        self.default = default
        self._links: dict[tuple[str, str], LatencyModel] = {}

    def set_link(self, src_host: str, dst_host: str, model: LatencyModel,
                 *, symmetric: bool = True) -> None:
        self._links[(src_host, dst_host)] = model
        if symmetric:
            self._links[(dst_host, src_host)] = model

    def sample(self, rng: Random, src_host: str, dst_host: str,
               size: int) -> float:
        model = self._links.get((src_host, dst_host), self.default)
        return model.sample(rng, src_host, dst_host, size)
