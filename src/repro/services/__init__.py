"""Services ("servlets") composable into dapplets.

The paper (§4): "We do not expect each dapplet developer to also develop
all the operating-system services — e.g. checkpointing, termination
detection and multiway synchronization — that an application needs. Our
challenge is to facilitate the development of a library of operating
systems services, which we could call *servlets*, that dapplet
developers could use in their dapplets as needed."

* :mod:`repro.services.tokens` — tokens and capabilities (§4.1)
* :mod:`repro.services.clocks` — logical clocks, checkpointing,
  snapshots, timestamp conflict resolution (§4.2)
* :mod:`repro.services.sync` — synchronization constructs, intra- and
  inter-dapplet (§4.3)
* :mod:`repro.services.termination` — termination detection (named in
  §2.2 as a service dapplets should be able to compose in)
"""
