"""Wire messages of the distributed synchronization constructs.

Every request carries a client-chosen ``req_id`` which the host echoes
in the reply, so one client can have several operations in flight
without ambiguity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.messages.message import Message, message_type
from repro.net.address import InboxAddress


@message_type("sync.barrier_arrive")
@dataclass(frozen=True)
class BarrierArrive(Message):
    req_id: int
    name: str
    parties: int
    reply_to: InboxAddress = None


@message_type("sync.barrier_release")
@dataclass(frozen=True)
class BarrierRelease(Message):
    req_id: int
    name: str
    generation: int


@message_type("sync.sem_acquire")
@dataclass(frozen=True)
class SemAcquire(Message):
    req_id: int
    name: str
    permits: int  # initial permit count, fixed by first declaration
    reply_to: InboxAddress = None


@message_type("sync.sem_grant")
@dataclass(frozen=True)
class SemGrant(Message):
    req_id: int
    name: str


@message_type("sync.sem_release")
@dataclass(frozen=True)
class SemRelease(Message):
    name: str


@message_type("sync.sa_set")
@dataclass(frozen=True)
class SaSet(Message):
    req_id: int
    name: str
    value: object = None
    reply_to: InboxAddress = None


@message_type("sync.sa_set_ack")
@dataclass(frozen=True)
class SaSetAck(Message):
    req_id: int
    name: str
    ok: bool
    error: str = ""


@message_type("sync.sa_get")
@dataclass(frozen=True)
class SaGet(Message):
    req_id: int
    name: str
    reply_to: InboxAddress = None


@message_type("sync.sa_value")
@dataclass(frozen=True)
class SaValue(Message):
    req_id: int
    name: str
    value: object = None


@message_type("sync.ch_put")
@dataclass(frozen=True)
class ChPut(Message):
    req_id: int
    name: str
    capacity: int
    value: object = None
    reply_to: InboxAddress = None


@message_type("sync.ch_put_ok")
@dataclass(frozen=True)
class ChPutOk(Message):
    req_id: int
    name: str


@message_type("sync.ch_get")
@dataclass(frozen=True)
class ChGet(Message):
    req_id: int
    name: str
    capacity: int
    reply_to: InboxAddress = None


@message_type("sync.ch_item")
@dataclass(frozen=True)
class ChItem(Message):
    req_id: int
    name: str
    value: object = None


@message_type("sync.error")
@dataclass(frozen=True)
class SyncError(Message):
    req_id: int
    name: str
    error: str
