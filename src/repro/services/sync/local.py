"""Intra-dapplet synchronization constructs.

The paper's Java implementation synchronizes threads within a dapplet
with verified thread libraries (its reference [5], Chandy & Sivilotti);
here "threads within a dapplet" are kernel processes, and the four
constructs the paper names — barriers, single-assignment variables,
channels and semaphores — are built on kernel events.

All blocking operations return events; ``yield`` them from a process.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import SingleAssignmentError, SynchronizationError
from repro.sim.events import Event
from repro.runtime.substrate import Scheduler


class Barrier:
    """A cyclic barrier for a fixed party count.

    The n-th arrival releases everyone and starts the next generation.
    ``arrive()`` yields the generation number that completed.
    """

    def __init__(self, kernel: Scheduler, parties: int) -> None:
        if parties < 1:
            raise SynchronizationError("barrier needs at least one party")
        self.kernel = kernel
        self.parties = parties
        self.generation = 0
        self._waiting: list[Event] = []

    def arrive(self) -> Event:
        ev = Event(self.kernel)
        self._waiting.append(ev)
        if len(self._waiting) == self.parties:
            generation = self.generation
            self.generation += 1
            waiting, self._waiting = self._waiting, []
            for waiter in waiting:
                waiter.succeed(generation)
        return ev

    @property
    def waiting(self) -> int:
        return len(self._waiting)


class Semaphore:
    """A counting semaphore; waiters are served FIFO."""

    def __init__(self, kernel: Scheduler, permits: int = 1) -> None:
        if permits < 0:
            raise SynchronizationError("permit count must be >= 0")
        self.kernel = kernel
        self.permits = permits
        self._waiters: deque[Event] = deque()

    def acquire(self) -> Event:
        ev = Event(self.kernel)
        if self.permits > 0 and not self._waiters:
            self.permits -= 1
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire."""
        if self.permits > 0 and not self._waiters:
            self.permits -= 1
            return True
        return False

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed(None)
        else:
            self.permits += 1


class SingleAssignment:
    """A write-once variable; reads block until the write.

    The second write raises :class:`SingleAssignmentError` — the
    construct's defining property.
    """

    _UNSET = object()

    def __init__(self, kernel: Scheduler) -> None:
        self.kernel = kernel
        self._value: Any = self._UNSET
        self._readers: list[Event] = []

    @property
    def is_set(self) -> bool:
        return self._value is not self._UNSET

    def set(self, value: Any) -> None:
        if self.is_set:
            raise SingleAssignmentError(
                "single-assignment variable written twice")
        self._value = value
        readers, self._readers = self._readers, []
        for reader in readers:
            reader.succeed(value)

    def get(self) -> Event:
        ev = Event(self.kernel)
        if self.is_set:
            ev.succeed(self._value)
        else:
            self._readers.append(ev)
        return ev


class BoundedChannel:
    """A CSP-style bounded FIFO channel between processes.

    ``put`` blocks while the channel is full; ``get`` blocks while it is
    empty. Capacity 0 is rendezvous-like in effect (a put completes only
    when a getter takes the item).
    """

    def __init__(self, kernel: Scheduler, capacity: int = 1) -> None:
        if capacity < 0:
            raise SynchronizationError("capacity must be >= 0")
        self.kernel = kernel
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        ev = Event(self.kernel)
        if self._getters:
            # Hand straight to the oldest getter (keeps capacity-0 alive).
            self._getters.popleft().succeed(item)
            ev.succeed(None)
        elif len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        ev = Event(self.kernel)
        if self._items:
            ev.succeed(self._items.popleft())
            if self._putters:
                putter, item = self._putters.popleft()
                self._items.append(item)
                putter.succeed(None)
        elif self._putters:
            putter, item = self._putters.popleft()
            ev.succeed(item)
            putter.succeed(None)
        else:
            self._getters.append(ev)
        return ev
