"""Synchronization constructs (§4.3 of the paper).

"We have implemented and verified other kinds of synchronization
constructs — barriers, single-assignment variables, channels and
semaphores — for threads within a dapplet. We are extending these
designs to allow synchronizations between threads in different dapplets
in different address spaces."

:mod:`repro.services.sync.local` provides the intra-dapplet constructs
(threads within a dapplet are kernel processes);
:mod:`repro.services.sync.distributed` provides the extension the paper
announces: the same four constructs across dapplets, each implemented as
a small servlet hosted on one dapplet plus message-speaking client
handles on the others.
"""

from repro.services.sync.local import (
    Barrier,
    BoundedChannel,
    Semaphore,
    SingleAssignment,
)
from repro.services.sync.distributed import (
    DistributedBarrier,
    DistributedChannel,
    DistributedSemaphore,
    DistributedSingleAssignment,
    SyncHost,
)

__all__ = [
    "Barrier",
    "BoundedChannel",
    "DistributedBarrier",
    "DistributedChannel",
    "DistributedSemaphore",
    "DistributedSingleAssignment",
    "Semaphore",
    "SingleAssignment",
    "SyncHost",
]
