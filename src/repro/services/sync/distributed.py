"""Cross-dapplet synchronization constructs.

The extension the paper announces in §4.3: barriers, semaphores and
single-assignment variables "between threads in different dapplets in
different address spaces". Each construct is a named entity living on a
:class:`SyncHost` servlet; client handles on other dapplets speak the
message protocol of :mod:`repro.services.sync.messages`, correlating
replies by request id so one client may have several operations in
flight.

A construct's parameters (barrier parties, semaphore permits) are fixed
by the first message that names it; later messages with conflicting
parameters are answered with a protocol error, which client handles
surface as :class:`~repro.errors.SynchronizationError`.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Any

from repro.errors import SingleAssignmentError, SynchronizationError
from repro.mailbox.outbox import Outbox
from repro.net.address import InboxAddress
from repro.services.sync import messages as ym
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.dapplet.dapplet import Dapplet

#: Well-known inbox name of the sync host servlet.
SYNC_INBOX = "_sync"


class _HostBarrier:
    __slots__ = ("parties", "generation", "waiting")

    def __init__(self, parties: int) -> None:
        self.parties = parties
        self.generation = 0
        #: (reply_to, req_id) pairs of the current generation.
        self.waiting: list[tuple[InboxAddress, int]] = []


class _HostSemaphore:
    __slots__ = ("permits", "waiters")

    def __init__(self, permits: int) -> None:
        self.permits = permits
        self.waiters: deque[tuple[InboxAddress, int]] = deque()


class _HostSingle:
    __slots__ = ("value", "is_set", "readers")

    def __init__(self) -> None:
        self.value: Any = None
        self.is_set = False
        self.readers: list[tuple[InboxAddress, int]] = []


class _HostChannel:
    __slots__ = ("capacity", "items", "putters", "getters")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.items: deque[Any] = deque()
        #: blocked puts: (reply_to, req_id, value)
        self.putters: deque[tuple[InboxAddress, int, Any]] = deque()
        self.getters: deque[tuple[InboxAddress, int]] = deque()


class SyncHost:
    """The servlet hosting named synchronization constructs."""

    def __init__(self, dapplet: "Dapplet", name: str = SYNC_INBOX) -> None:
        self.dapplet = dapplet
        self.inbox = dapplet.create_inbox(name=name)
        self._barriers: dict[str, _HostBarrier] = {}
        self._semaphores: dict[str, _HostSemaphore] = {}
        self._singles: dict[str, _HostSingle] = {}
        self._channels: dict[str, _HostChannel] = {}
        self._outboxes: dict[InboxAddress, Outbox] = {}
        self.server = dapplet.spawn(self._serve(), name="sync-host")

    @property
    def pointer(self) -> InboxAddress:
        return self.inbox.named_address

    def _send(self, to: InboxAddress, message) -> None:
        outbox = self._outboxes.get(to)
        if outbox is None:
            outbox = self.dapplet.create_outbox()
            outbox.add(to)
            self._outboxes[to] = outbox
        outbox.send(message)

    def _serve(self):
        while True:
            msg = yield self.inbox.receive()
            if isinstance(msg, ym.BarrierArrive):
                self._on_barrier_arrive(msg)
            elif isinstance(msg, ym.SemAcquire):
                self._on_sem_acquire(msg)
            elif isinstance(msg, ym.SemRelease):
                self._on_sem_release(msg)
            elif isinstance(msg, ym.SaSet):
                self._on_sa_set(msg)
            elif isinstance(msg, ym.SaGet):
                self._on_sa_get(msg)
            elif isinstance(msg, ym.ChPut):
                self._on_ch_put(msg)
            elif isinstance(msg, ym.ChGet):
                self._on_ch_get(msg)

    # -- barrier ------------------------------------------------------------

    def _on_barrier_arrive(self, msg: ym.BarrierArrive) -> None:
        barrier = self._barriers.get(msg.name)
        if barrier is None:
            if msg.parties < 1:
                self._send(msg.reply_to, ym.SyncError(
                    msg.req_id, msg.name, "barrier needs at least one party"))
                return
            barrier = _HostBarrier(msg.parties)
            self._barriers[msg.name] = barrier
        elif barrier.parties != msg.parties:
            self._send(msg.reply_to, ym.SyncError(
                msg.req_id, msg.name,
                f"barrier {msg.name!r} has {barrier.parties} parties, "
                f"not {msg.parties}"))
            return
        barrier.waiting.append((msg.reply_to, msg.req_id))
        if len(barrier.waiting) == barrier.parties:
            generation = barrier.generation
            barrier.generation += 1
            waiting, barrier.waiting = barrier.waiting, []
            for reply_to, req_id in waiting:
                self._send(reply_to, ym.BarrierRelease(
                    req_id, msg.name, generation))

    # -- semaphore ------------------------------------------------------------

    def _on_sem_acquire(self, msg: ym.SemAcquire) -> None:
        sem = self._semaphores.get(msg.name)
        if sem is None:
            if msg.permits < 0:
                self._send(msg.reply_to, ym.SyncError(
                    msg.req_id, msg.name, "permit count must be >= 0"))
                return
            sem = _HostSemaphore(msg.permits)
            self._semaphores[msg.name] = sem
        if sem.permits > 0 and not sem.waiters:
            sem.permits -= 1
            self._send(msg.reply_to, ym.SemGrant(msg.req_id, msg.name))
        else:
            sem.waiters.append((msg.reply_to, msg.req_id))

    def _on_sem_release(self, msg: ym.SemRelease) -> None:
        sem = self._semaphores.get(msg.name)
        if sem is None:
            return  # releasing an unknown semaphore: drop
        if sem.waiters:
            reply_to, req_id = sem.waiters.popleft()
            self._send(reply_to, ym.SemGrant(req_id, msg.name))
        else:
            sem.permits += 1

    # -- single assignment -----------------------------------------------------

    def _on_sa_set(self, msg: ym.SaSet) -> None:
        single = self._singles.setdefault(msg.name, _HostSingle())
        if single.is_set:
            self._send(msg.reply_to, ym.SaSetAck(
                msg.req_id, msg.name, ok=False,
                error="single-assignment variable written twice"))
            return
        single.is_set = True
        single.value = msg.value
        self._send(msg.reply_to, ym.SaSetAck(msg.req_id, msg.name, ok=True))
        readers, single.readers = single.readers, []
        for reply_to, req_id in readers:
            self._send(reply_to, ym.SaValue(req_id, msg.name, single.value))

    def _on_sa_get(self, msg: ym.SaGet) -> None:
        single = self._singles.setdefault(msg.name, _HostSingle())
        if single.is_set:
            self._send(msg.reply_to,
                       ym.SaValue(msg.req_id, msg.name, single.value))
        else:
            single.readers.append((msg.reply_to, msg.req_id))

    # -- bounded channel -----------------------------------------------------

    def _channel(self, msg) -> "_HostChannel | None":
        chan = self._channels.get(msg.name)
        if chan is None:
            if msg.capacity < 0:
                self._send(msg.reply_to, ym.SyncError(
                    msg.req_id, msg.name, "capacity must be >= 0"))
                return None
            chan = _HostChannel(msg.capacity)
            self._channels[msg.name] = chan
        elif chan.capacity != msg.capacity:
            self._send(msg.reply_to, ym.SyncError(
                msg.req_id, msg.name,
                f"channel {msg.name!r} has capacity {chan.capacity}, "
                f"not {msg.capacity}"))
            return None
        return chan

    def _on_ch_put(self, msg: ym.ChPut) -> None:
        chan = self._channel(msg)
        if chan is None:
            return
        if chan.getters:
            reply_to, req_id = chan.getters.popleft()
            self._send(reply_to, ym.ChItem(req_id, msg.name, msg.value))
            self._send(msg.reply_to, ym.ChPutOk(msg.req_id, msg.name))
        elif len(chan.items) < chan.capacity:
            chan.items.append(msg.value)
            self._send(msg.reply_to, ym.ChPutOk(msg.req_id, msg.name))
        else:
            chan.putters.append((msg.reply_to, msg.req_id, msg.value))

    def _on_ch_get(self, msg: ym.ChGet) -> None:
        chan = self._channel(msg)
        if chan is None:
            return
        if chan.items:
            value = chan.items.popleft()
            self._send(msg.reply_to, ym.ChItem(msg.req_id, msg.name, value))
            if chan.putters:
                reply_to, req_id, pending = chan.putters.popleft()
                chan.items.append(pending)
                self._send(reply_to, ym.ChPutOk(req_id, msg.name))
        elif chan.putters:
            reply_to, req_id, pending = chan.putters.popleft()
            self._send(msg.reply_to,
                       ym.ChItem(msg.req_id, msg.name, pending))
            self._send(reply_to, ym.ChPutOk(req_id, msg.name))
        else:
            chan.getters.append((msg.reply_to, msg.req_id))


class _Client:
    """Shared plumbing of the client handles: req-id correlation."""

    def __init__(self, dapplet: "Dapplet", host: InboxAddress,
                 name: str) -> None:
        self.dapplet = dapplet
        self.kernel = dapplet.kernel
        self.name = name
        self.inbox = dapplet.create_inbox()
        self.outbox = dapplet.create_outbox()
        self.outbox.add(host)
        self._req_ids = itertools.count(1)
        self._pending: dict[int, Event] = {}
        self.dispatcher = dapplet.spawn(
            self._dispatch(), name=f"sync:{name}")

    def _issue(self) -> tuple[int, Event]:
        req_id = next(self._req_ids)
        event = Event(self.kernel)
        self._pending[req_id] = event
        return req_id, event

    def _dispatch(self):
        while True:
            msg = yield self.inbox.receive()
            req_id = getattr(msg, "req_id", None)
            waiter = self._pending.pop(req_id, None)
            if waiter is None or waiter.triggered:
                continue
            if isinstance(msg, ym.SyncError):
                waiter.fail(SynchronizationError(msg.error))
            elif isinstance(msg, ym.SaSetAck):
                if msg.ok:
                    waiter.succeed(None)
                else:
                    waiter.fail(SingleAssignmentError(msg.error))
            elif isinstance(msg, ym.BarrierRelease):
                waiter.succeed(msg.generation)
            elif isinstance(msg, (ym.SaValue, ym.ChItem)):
                waiter.succeed(msg.value)
            else:
                waiter.succeed(None)


class DistributedBarrier(_Client):
    """A named barrier across dapplets."""

    def __init__(self, dapplet: "Dapplet", host: InboxAddress, name: str,
                 parties: int) -> None:
        super().__init__(dapplet, host, name)
        self.parties = parties

    def arrive(self) -> Event:
        """Blocks until all parties arrive; yields the generation."""
        req_id, event = self._issue()
        self.outbox.send(ym.BarrierArrive(
            req_id, self.name, self.parties, reply_to=self.inbox.address))
        return event


class DistributedSemaphore(_Client):
    """A named counting semaphore across dapplets."""

    def __init__(self, dapplet: "Dapplet", host: InboxAddress, name: str,
                 permits: int = 1) -> None:
        super().__init__(dapplet, host, name)
        self.permits = permits

    def acquire(self) -> Event:
        req_id, event = self._issue()
        self.outbox.send(ym.SemAcquire(
            req_id, self.name, self.permits, reply_to=self.inbox.address))
        return event

    def release(self) -> None:
        self.outbox.send(ym.SemRelease(self.name))


class DistributedChannel(_Client):
    """A named CSP-style bounded channel across dapplets.

    ``put`` blocks while the channel is full; ``get`` blocks while it
    is empty. Capacity 0 gives rendezvous semantics: a put completes
    only when matched by a get.
    """

    def __init__(self, dapplet: "Dapplet", host: InboxAddress, name: str,
                 capacity: int = 1) -> None:
        super().__init__(dapplet, host, name)
        self.capacity = capacity

    def put(self, value: Any) -> Event:
        req_id, event = self._issue()
        self.outbox.send(ym.ChPut(req_id, self.name, self.capacity,
                                  value=value,
                                  reply_to=self.inbox.address))
        return event

    def get(self) -> Event:
        req_id, event = self._issue()
        self.outbox.send(ym.ChGet(req_id, self.name, self.capacity,
                                  reply_to=self.inbox.address))
        return event


class DistributedSingleAssignment(_Client):
    """A named write-once variable across dapplets."""

    def set(self, value: Any) -> Event:
        """Write; fails with :class:`SingleAssignmentError` if already set."""
        req_id, event = self._issue()
        self.outbox.send(ym.SaSet(req_id, self.name, value=value,
                                  reply_to=self.inbox.address))
        return event

    def get(self) -> Event:
        """Read; blocks until some dapplet sets the variable."""
        req_id, event = self._issue()
        self.outbox.send(ym.SaGet(req_id, self.name,
                                  reply_to=self.inbox.address))
        return event
