"""Termination detection (a service the paper names in §2.2).

"We do not expect each dapplet developer to also develop all the
operating systems services — e.g. checkpointing, **termination
detection** and multiway synchronization — that an application needs."

Implementation: Safra's token algorithm (the classic refinement of
Dijkstra's ring detector for asynchronous message passing):

* every member keeps a message counter (sends minus receipts) and a
  colour; receiving a basic message makes it *active* and *black*;
* the root, when passive, circulates a white token with count 0;
* a member forwards the token only while passive, adding its counter,
  blackening the token if it is black itself, and turning white;
* when the token returns to a white, passive root and the token is
  white with total count zero, the computation has terminated; the root
  then circulates an announcement.

Members hook the detector onto the ports carrying basic (application)
messages via :meth:`TerminationDetector.watch_outbox` /
:meth:`watch_inbox`, and report idleness with :meth:`set_passive`.
Detection is sound (never announces before quiescence) and live
(announces within two token rounds after quiescence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.mailbox.inbox import Inbox
from repro.mailbox.outbox import Outbox
from repro.messages.message import Message, message_type
from repro.net.address import NodeAddress
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.dapplet.dapplet import Dapplet

WHITE = "white"
BLACK = "black"


@message_type("term.token")
@dataclass(frozen=True)
class Token(Message):
    group: str
    count: int
    color: str


@message_type("term.announce")
@dataclass(frozen=True)
class Announce(Message):
    group: str
    hops: int = 0


class TerminationDetector:
    """One member's participation in a Safra ring.

    Parameters
    ----------
    dapplet:
        The hosting dapplet.
    group:
        Name of the detection group (several may coexist).
    ring:
        Node addresses of all members, in ring order, identical at
        every member.
    index:
        This member's position in ``ring``; index 0 is the root.
    """

    def __init__(self, dapplet: "Dapplet", group: str,
                 ring: list[NodeAddress], index: int) -> None:
        if not (0 <= index < len(ring)):
            raise ValueError(f"index {index} out of range for ring of "
                             f"{len(ring)}")
        if ring[index] != dapplet.address:
            raise ValueError("ring[index] must be this dapplet's address")
        self.dapplet = dapplet
        self.kernel = dapplet.kernel
        self.group = group
        self.is_root = index == 0
        self.counter = 0
        self.color = WHITE
        self.passive = False
        self._holding_token: Token | None = None
        self._announced = False
        self._probing = False
        #: Fires (with the root's virtual detection time) when the ring
        #: announces termination.
        self.detected: Event = dapplet.kernel.event()
        self.token_rounds = 0

        inbox_name = f"_term:{group}"
        self.inbox = dapplet.create_inbox(name=inbox_name)
        self.next_outbox = dapplet.create_outbox()
        self.next_outbox.add(ring[(index + 1) % len(ring)].inbox(inbox_name))
        self.server = dapplet.spawn(self._serve(), name=f"term:{group}")

    # -- counting hooks ---------------------------------------------------

    def watch_outbox(self, outbox: Outbox) -> None:
        """Count basic messages sent through ``outbox``."""
        def hook(message: Message) -> Message:
            self.counter += 1
            return message
        outbox.send_hooks.append(hook)

    def watch_inbox(self, inbox: Inbox) -> None:
        """Count basic messages delivered to ``inbox``."""
        def hook(message: Message) -> "Message":
            self.counter -= 1
            self.color = BLACK
            self.passive = False
            return message
        inbox.delivery_hooks.append(hook)

    # -- activity ------------------------------------------------------------

    def set_passive(self) -> None:
        """Report that this member has no local work left."""
        self.passive = True
        self._maybe_forward()
        if self.is_root:
            self._maybe_probe()

    def set_active(self) -> None:
        self.passive = False

    # -- the ring ------------------------------------------------------------

    def _maybe_probe(self) -> None:
        """Root: launch a probe when passive and none is circulating."""
        if self.is_root and self.passive and self._holding_token is None \
                and not self._announced and not self._probing:
            self._probing = True
            # A fresh probe: white token, count 0. The root's own counter
            # and colour are folded in when the token returns.
            self.next_outbox.send(Token(self.group, 0, WHITE))

    def _serve(self):
        while True:
            msg = yield self.inbox.receive()
            if isinstance(msg, Token) and msg.group == self.group:
                self._holding_token = msg
                self._maybe_forward()
            elif isinstance(msg, Announce) and msg.group == self.group:
                self._announce(msg)

    def _maybe_forward(self) -> None:
        token = self._holding_token
        if token is None or not self.passive or self._announced:
            return
        self._holding_token = None
        if self.is_root:
            self.token_rounds += 1
            self._probing = False
            terminated = (token.color == WHITE and self.color == WHITE
                          and token.count + self.counter == 0)
            if terminated:
                self._announced = True
                self.detected.succeed(self.kernel.now)
                self.next_outbox.send(Announce(self.group, hops=1))
            else:
                self.color = WHITE
                self._maybe_probe()
        else:
            color = BLACK if self.color == BLACK else token.color
            self.next_outbox.send(Token(self.group,
                                        token.count + self.counter, color))
            self.color = WHITE

    def _announce(self, msg: Announce) -> None:
        if self._announced:
            return  # the announcement completed the ring at the root
        self._announced = True
        if not self.detected.triggered:
            self.detected.succeed(self.kernel.now)
        self.next_outbox.send(Announce(self.group, hops=msg.hops + 1))
