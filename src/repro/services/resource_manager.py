"""The per-machine resource manager (the paper's complementary approach).

§4 of the paper: "There are complementary ways of providing services to
dapplets. We can provide a collection of service objects that a designer
can include in a dapplet. In addition, we can have a **resource manager
process executing on each machine** that provides a rich collection of
services to dapplets executing on that machine. Our focus in this paper
is on the former approach."

This module implements the latter, as an extension: one
:class:`ResourceManager` dapplet per host, reachable behind a global
pointer at the well-known inbox ``_rm``, offering

* a host-local service registry (register / lookup / list),
* on-demand hosting of shared servlets — token pools
  (:class:`~repro.services.tokens.TokenCoordinator`) and
  synchronization hosts (:class:`~repro.services.sync.SyncHost`) —
  created once and shared by every requester.

Dapplets use :class:`ResourceManagerClient` (an RPC proxy with typed
helpers) to talk to the manager on their own machine — or any other; the
pointer is an ordinary inbox address.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.dapplet.dapplet import Dapplet
from repro.net.address import InboxAddress
from repro.rpc.proxy import RemoteProxy
from repro.rpc.remote import export
from repro.services.sync.distributed import SyncHost
from repro.services.tokens.manager import POLICIES, TokenCoordinator
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.world import World

#: Well-known name of the manager's RPC inbox.
RM_INBOX = "_rm"


class _ManagerApi:
    """The RPC-facing surface. All values are wire-encodable."""

    def __init__(self, manager: "ResourceManager") -> None:
        self._manager = manager

    def list_services(self) -> dict:
        """All registered service names and their pointers."""
        return dict(self._manager.services)

    def lookup(self, name: str) -> "InboxAddress | None":
        """Pointer for ``name``, or ``None``."""
        return self._manager.services.get(name)

    def register(self, name: str, pointer: InboxAddress) -> bool:
        """Register a dapplet-provided service; False if the name is
        taken by a different pointer."""
        existing = self._manager.services.get(name)
        if existing is not None and existing != pointer:
            return False
        self._manager.services[name] = pointer
        return True

    def create_token_pool(self, name: str, initial: dict,
                          policy: str = "fifo") -> InboxAddress:
        """Get-or-create a token coordinator hosted by the manager.

        ``initial`` fixes the colour totals on first creation; later
        calls return the existing pool's pointer regardless of
        arguments (a shared resource has one owner).
        """
        existing = self._manager.services.get(f"tokens:{name}")
        if existing is not None:
            return existing
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}")
        coordinator = TokenCoordinator(
            self._manager, {str(c): int(n) for c, n in initial.items()},
            policy=policy, name=f"_tokens:{name}")
        self._manager.coordinators[name] = coordinator
        self._manager.services[f"tokens:{name}"] = coordinator.pointer
        return coordinator.pointer

    def create_sync_host(self, name: str) -> InboxAddress:
        """Get-or-create a synchronization host (barriers etc.)."""
        existing = self._manager.services.get(f"sync:{name}")
        if existing is not None:
            return existing
        host = SyncHost(self._manager, name=f"_sync:{name}")
        self._manager.sync_hosts[name] = host
        self._manager.services[f"sync:{name}"] = host.pointer
        return host.pointer


class ResourceManager(Dapplet):
    """One per machine; install with :func:`install_resource_manager`."""

    kind = "resource-manager"

    def setup(self) -> None:
        self.services: dict[str, InboxAddress] = {}
        self.coordinators: dict[str, TokenCoordinator] = {}
        self.sync_hosts: dict[str, SyncHost] = {}
        self.api = _ManagerApi(self)
        self.remote = export(self, self.api, name=RM_INBOX)

    @property
    def pointer(self) -> InboxAddress:
        return self.remote.pointer


def install_resource_manager(world: "World", host: str) -> ResourceManager:
    """Create the resource manager for ``host`` (once per machine)."""
    return world.dapplet(ResourceManager, host, f"rm@{host}")


def manager_pointer(host: str, port: int = 2000) -> InboxAddress:
    """Convention-based pointer to a host's manager (first port)."""
    from repro.net.address import NodeAddress
    return NodeAddress(host, port).inbox(RM_INBOX)


class ResourceManagerClient:
    """A dapplet's typed handle on a resource manager."""

    def __init__(self, dapplet: Dapplet, pointer: InboxAddress) -> None:
        self.dapplet = dapplet
        self.proxy = RemoteProxy(dapplet, pointer)

    def list_services(self, timeout: float | None = 30.0) -> Event:
        return self.proxy.call("list_services", timeout=timeout)

    def lookup(self, name: str, timeout: float | None = 30.0) -> Event:
        return self.proxy.call("lookup", name, timeout=timeout)

    def register(self, name: str, pointer: InboxAddress,
                 timeout: float | None = 30.0) -> Event:
        return self.proxy.call("register", name, pointer, timeout=timeout)

    def token_pool(self, name: str, initial: dict, policy: str = "fifo",
                   timeout: float | None = 30.0) -> Event:
        """Pointer to the named shared token pool (created on demand)."""
        return self.proxy.call("create_token_pool", name, initial, policy,
                               timeout=timeout)

    def sync_host(self, name: str,
                  timeout: float | None = 30.0) -> Event:
        """Pointer to the named shared sync host (created on demand)."""
        return self.proxy.call("create_sync_host", name, timeout=timeout)
