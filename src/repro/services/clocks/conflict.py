"""Timestamp-priority conflict resolution (§4.2, second use of clocks).

"Each request for a set of resources is timestamped with the time at
which the request is made. Conflicts between two or more requests for a
common indivisible resource are resolved in favor of the request with
the earlier timestamp. Ties are broken in favor of the process with the
lower id. If dapplets release all resources before requesting resources,
and release all resources within finite time, then all requests will be
satisfied."

The mechanism lives in the token coordinator's ``policy="timestamp"``
(requests carry the dapplet's Lamport time automatically); this module
provides the two-phase usage wrapper whose discipline the quoted
guarantee assumes: acquire the whole set at once, release the whole set.
Experiment E11 measures the no-starvation property against the
opportunistic FIFO policy.
"""

from __future__ import annotations

from repro.errors import TokenError
from repro.services.tokens.manager import TokenAgent
from repro.sim.events import Event


class PrioritizedResources:
    """Two-phase acquisition of a resource set under timestamp priority.

    Point it at a coordinator created with ``policy="timestamp"``; the
    request timestamp is the dapplet's logical clock at request time, so
    contention resolves globally by (logical time, dapplet id).
    """

    def __init__(self, agent: TokenAgent, resources: dict[str, int]) -> None:
        if not resources:
            raise TokenError("resource set must not be empty")
        self.agent = agent
        self.resources = dict(resources)
        self.held = False
        self.acquisitions = 0
        self.wait_times: list[float] = []
        self._requested_at = 0.0

    def acquire(self) -> Event:
        """Request the whole set atomically (yield the returned event)."""
        if self.held:
            raise TokenError("resource set is already held (two-phase use: "
                             "release before requesting again)")
        self._requested_at = self.agent.kernel.now
        event = self.agent.request(dict(self.resources))
        event.callbacks.append(self._granted)
        return event

    def _granted(self, event: Event) -> None:
        if event.ok:
            self.held = True
            self.acquisitions += 1
            self.wait_times.append(self.agent.kernel.now - self._requested_at)

    def release(self) -> None:
        """Release the whole set (within finite time, per the paper)."""
        if not self.held:
            raise TokenError("resource set is not held")
        self.held = False
        self.agent.release(dict(self.resources))

    @property
    def max_wait(self) -> float:
        return max(self.wait_times, default=0.0)
