"""Logical clocks and what the paper builds on them (§4.2).

"Our message-passing layer is designed to provide local clocks that
satisfy the global snapshot criterion. Our local clocks can be used for
checkpointing and conflict resolution just as though they were global
clocks."

* :class:`LamportClock` — attached to **every** dapplet by the layer
  itself: each message is timestamped by a send hook, and "upon
  receiving a message, if the receiver's clock value does not exceed
  the timestamp of the message, then the receiver's clock is set to a
  value greater than the timestamp" (the paper's algorithm, after
  Lamport 1978).
* :class:`CheckpointService` — the paper's first use: "a global state
  can be easily checkpointed: all processes checkpoint their local
  states at some predetermined time T, and the states of the channels
  are the sequences of messages sent on the channels before T and
  received after T."
* :class:`ChandyLamportSnapshot` — the marker-based distributed
  snapshot of the paper's reference [3] (Chandy & Lamport 1985), run
  over a session's FIFO channels.
* The paper's second use, timestamp conflict resolution, is the token
  coordinator's ``policy="timestamp"``;
  :class:`~repro.services.clocks.conflict.PrioritizedResources` is the
  convenience wrapper.
* :class:`VectorClock` — an extension (not in the paper) used by the
  collaborative-design application to detect concurrent edits.
"""

from repro.services.clocks.checkpoint import (
    Checkpoint,
    CheckpointService,
    GlobalCheckpoint,
)
from repro.services.clocks.conflict import PrioritizedResources
from repro.services.clocks.lamport import LamportClock, Stamped
from repro.services.clocks.snapshot import (
    ChandyLamportSnapshot,
    LocalSnapshot,
    incoming_channels,
)
from repro.services.clocks.vector import VectorClock

__all__ = [
    "ChandyLamportSnapshot",
    "Checkpoint",
    "CheckpointService",
    "GlobalCheckpoint",
    "LamportClock",
    "LocalSnapshot",
    "PrioritizedResources",
    "Stamped",
    "VectorClock",
    "incoming_channels",
]
