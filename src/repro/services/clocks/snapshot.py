"""The Chandy–Lamport distributed snapshot (the paper's reference [3]).

Runs over a session's channels, which the transport guarantees are FIFO
— the algorithm's precondition. Any member may initiate:

1. The initiator records its local state and sends a *marker* on every
   session outbox.
2. On the first marker a member receives, it records its state, marks
   that incoming channel empty, sends markers on all its outboxes, and
   starts recording every other incoming channel.
3. Messages arriving on a channel after the member recorded its state
   but before that channel's marker are that channel's in-transit state.
4. A member's snapshot is complete when a marker has arrived on every
   incoming channel.

Channel identification: session inboxes may have several writers, so
each participant tags outgoing application messages with its channel id
(``member/outbox``); tags and markers are stripped by delivery hooks
before the application sees anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ClockError
from repro.messages.message import Message, message_type
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.session.session import SessionContext
    from repro.session.spec import SessionSpec


@message_type("snap.marker")
@dataclass(frozen=True)
class Marker(Message):
    snap_id: str
    channel: str  # "member/outbox" of the sending side


@message_type("snap.tagged")
@dataclass(frozen=True)
class Tagged(Message):
    """Channel-attribution envelope around application messages."""

    channel: str
    inner: Message


def incoming_channels(spec: "SessionSpec",
                      member: str) -> dict[str, tuple[str, ...]]:
    """Map each of ``member``'s inboxes to its incoming channel ids."""
    incoming: dict[str, list[str]] = {}
    for b in spec.bindings:
        if b.dst_member == member:
            incoming.setdefault(b.inbox, []).append(
                f"{b.src_member}/{b.outbox}")
    return {name: tuple(sorted(chans)) for name, chans in incoming.items()}


@dataclass
class LocalSnapshot:
    """One member's recorded state plus per-channel in-transit messages."""

    member: str
    snap_id: str
    state: dict[str, Any]
    #: channel id -> messages recorded in transit, in arrival order
    channels: dict[str, list[Message]] = field(default_factory=dict)


class ChandyLamportSnapshot:
    """One member's participation in marker snapshots.

    Parameters
    ----------
    ctx:
        The member's session context (ports must exist, i.e. construct
        from ``on_session_start``).
    incoming:
        inbox name -> incoming channel ids, from :func:`incoming_channels`.
    state_fn:
        Zero-argument callable producing this member's recordable state.
        Defaults to snapshotting the dapplet's persistent state.
    """

    def __init__(self, ctx: "SessionContext",
                 incoming: dict[str, tuple[str, ...]],
                 state_fn: Callable[[], dict] | None = None) -> None:
        self.ctx = ctx
        self.kernel = ctx.dapplet.kernel
        self.incoming = {inbox: tuple(chans)
                         for inbox, chans in incoming.items()}
        self.state_fn = state_fn or ctx.dapplet.state.snapshot
        self._all_channels = {c for chans in self.incoming.values()
                              for c in chans}
        self.snapshot: LocalSnapshot | None = None
        self.done: Event | None = None
        self._recording: set[str] = set()
        self._snap_id: str | None = None
        for name in ctx.outbox_names():
            # Wrap *before* the clock stamps (insert at 0): the wire is
            # Stamped(Tagged(app)) and unwrap order is clock, then us.
            ctx.outbox(name).send_hooks.insert(
                0, self._make_send_hook(name))
        for name in ctx.inbox_names():
            inbox = ctx.inbox(name)
            inbox.delivery_hooks.append(self._on_deliver)
            # Messages that raced ahead of this constructor are queued
            # still wrapped; normalize them (no snapshot is running yet,
            # so recording does not apply and markers cannot occur).
            inbox.transform_queued(
                lambda m: m.inner if isinstance(m, Tagged) else m)

    # -- hooks ------------------------------------------------------------

    def _make_send_hook(self, outbox_name: str):
        channel = f"{self.ctx.member}/{outbox_name}"

        def hook(message: Message) -> Message:
            if isinstance(message, Marker):
                return message
            return Tagged(channel=channel, inner=message)

        return hook

    def _on_deliver(self, message: Message) -> "Message | None":
        if isinstance(message, Marker):
            self._on_marker(message)
            return None  # the application never sees markers
        if isinstance(message, Tagged):
            if message.channel in self._recording:
                self.snapshot.channels[message.channel].append(message.inner)
            return message.inner
        return message

    # -- the algorithm ---------------------------------------------------------

    def initiate(self, snap_id: str) -> Event:
        """Record state and flood markers; returns the ``done`` event."""
        if self._snap_id is not None:
            raise ClockError(
                f"member {self.ctx.member!r} is already in snapshot "
                f"{self._snap_id!r}")
        self._record_and_flood(snap_id)
        return self.done

    def _on_marker(self, marker: Marker) -> None:
        if self._snap_id is None:
            self._record_and_flood(marker.snap_id)
        elif marker.snap_id != self._snap_id:
            return  # a different snapshot generation; ignore
        # The channel the marker arrived on is now fully recorded.
        self._recording.discard(marker.channel)
        if not self._recording and self.done is not None \
                and not self.done.triggered:
            self.done.succeed(self.snapshot)

    def _record_and_flood(self, snap_id: str) -> None:
        self._snap_id = snap_id
        self.done = self.kernel.event()
        self.snapshot = LocalSnapshot(
            member=self.ctx.member, snap_id=snap_id, state=self.state_fn(),
            channels={c: [] for c in self._all_channels})
        self._recording = set(self._all_channels)
        for name in self.ctx.outbox_names():
            self.ctx.outbox(name).send(
                Marker(snap_id=snap_id,
                       channel=f"{self.ctx.member}/{name}"))
        if not self._recording:
            self.done.succeed(self.snapshot)

    def reset(self) -> None:
        """Forget the last snapshot so a new generation can run."""
        self._snap_id = None
        self.snapshot = None
        self.done = None
        self._recording = set()
