"""Lamport logical clocks with the global snapshot criterion.

"The global snapshot criterion is satisfied provided every message that
is sent when the sender's clock is T is received when the receiver's
clock exceeds T. A simple algorithm to establish this criterion is:
every message is timestamped with the sender's clock; upon receiving a
message, if the receiver's clock value does not exceed the timestamp of
the message, then the receiver's clock is set to a value greater than
the timestamp."

Implementation: the clock installs a send hook on every outbox (tick,
then wrap the message in :class:`Stamped`) and a delivery hook on every
inbox (unwrap, apply the receive rule). Both hooks are installed via the
dapplet's ``port_hooks``, so ports created later — e.g. session ports —
are covered automatically. Every dapplet gets a clock at construction:
the paper is explicit that clocks are a property of the message-passing
layer, not an opt-in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.mailbox.inbox import Inbox
from repro.mailbox.outbox import Outbox
from repro.messages.message import Message, message_type

if TYPE_CHECKING:  # pragma: no cover
    from repro.dapplet.dapplet import Dapplet


@message_type("clk.stamped")
@dataclass(frozen=True)
class Stamped(Message):
    """The wire envelope carrying the sender's timestamp."""

    ts: int
    sender: str
    inner: Message


ClockObserver = Callable[[int, int], None]


class LamportClock:
    """One dapplet's logical clock."""

    def __init__(self, dapplet: "Dapplet") -> None:
        self.dapplet = dapplet
        self.time = 0
        #: Called with (old, new) after every advance; checkpointing
        #: triggers off this.
        self.observers: list[ClockObserver] = []
        #: Timestamp of the message currently being delivered (read by
        #: the checkpoint service's delivery hook, which runs next).
        self.last_received_ts: int | None = None
        self.messages_stamped = 0
        dapplet.port_hooks.append(self._hook_port)
        for inbox in dapplet.inboxes.values():
            self._hook_port(inbox)
        for outbox in dapplet.outboxes.values():
            self._hook_port(outbox)

    # -- the clock ---------------------------------------------------------

    def tick(self) -> int:
        """Advance for a local event; returns the new time."""
        self._set(self.time + 1)
        return self.time

    def _set(self, value: int) -> None:
        old = self.time
        self.time = value
        for observer in self.observers:
            observer(old, value)

    # -- port hooks ---------------------------------------------------------

    def _hook_port(self, port: object) -> None:
        if isinstance(port, Outbox):
            port.send_hooks.append(self._on_send)
        elif isinstance(port, Inbox):
            # The clock's hook must run first so later hooks (snapshot,
            # checkpoint) see an unwrapped message and a fresh clock.
            port.delivery_hooks.insert(0, self._on_deliver)

    def _on_send(self, message: Message) -> Message:
        self.tick()
        self.messages_stamped += 1
        return Stamped(ts=self.time, sender=self.dapplet.name, inner=message)

    def _on_deliver(self, message: Message) -> Message:
        if not isinstance(message, Stamped):
            # From a clockless sender (e.g. a hand-rolled endpoint in a
            # test); deliver as-is, no clock information.
            self.last_received_ts = None
            return message
        self.last_received_ts = message.ts
        if self.time <= message.ts:
            self._set(message.ts + 1)
        return message.inner

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LamportClock {self.dapplet.name} t={self.time}>"
