"""Checkpointing at a predetermined logical time T.

The paper (§4.2): "a global state can be easily checkpointed: all
processes checkpoint their local states at some predetermined time T,
and the states of the channels are the sequences of messages sent on the
channels before T and received after T."

One :class:`CheckpointService` per dapplet, all constructed with the
same ``at_time``. The snapshot criterion guarantees the cut is
consistent: a message stamped at or after T is necessarily received
after the receiver's clock passed T, i.e. after the receiver
checkpointed, so no checkpointed state reflects a post-cut message.
Messages stamped *before* T but delivered after the local checkpoint are
exactly the channel state, and are logged here.

Durability: when the dapplet's state has a durable layer (worlds built
with ``store=``), the time-T cut is *flushed* as it forms — the local
state into the named snapshot object ``ckpt@T`` the moment the clock
crosses T, and each in-transit channel message appended to the
``ckpt@T.chan`` log as it is delivered. The whole session then has a
coordinated durable restore point: ``World.restart_dapplet(name,
from_checkpoint=T)`` rolls a crashed member back to its cut, and
:meth:`GlobalCheckpoint.load` rebuilds the collected checkpoint
straight from a backend, even for dapplets that no longer exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import ClockError
from repro.mailbox.inbox import Inbox
from repro.messages.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.dapplet.dapplet import Dapplet
    from repro.store.backend import StorageBackend


@dataclass
class Checkpoint:
    """One dapplet's contribution to the global checkpoint."""

    dapplet: str
    at_time: int
    clock_when_taken: int
    sim_time: float
    state: dict[str, dict[str, Any]]
    #: Messages in transit across the cut, in arrival order.
    channel_messages: list[Message] = field(default_factory=list)


def checkpoint_key(at_time: int) -> str:
    """The durable object key of the time-T cut (``ckpt@T``)."""
    return f"ckpt@{at_time}"


class CheckpointService:
    """Checkpoints one dapplet when its clock first reaches ``at_time``.

    Taking the checkpoint is idempotent: duplicate clock advances past
    T, a late installation, or an explicit re-trigger all leave exactly
    one cut (and exactly one durable snapshot of it). With ``persist``
    (the default) and a durable state, the cut is flushed to the store
    as it forms.
    """

    def __init__(self, dapplet: "Dapplet", at_time: int, *,
                 persist: bool = True) -> None:
        if at_time <= 0:
            raise ValueError("checkpoint time must be positive")
        self.dapplet = dapplet
        self.at_time = at_time
        self.persist = persist
        self.taken: Checkpoint | None = None
        dapplet.clock.observers.append(self._on_advance)
        dapplet.port_hooks.append(self._hook_port)
        for inbox in dapplet.inboxes.values():
            self._hook_port(inbox)
        # The clock may already be past T (late installation).
        if dapplet.clock.time >= at_time:
            self._take()

    @property
    def _durable(self):
        return self.dapplet.state.durable if self.persist else None

    def _hook_port(self, port: object) -> None:
        if isinstance(port, Inbox):
            # One delivery hook per inbox, however many times the port
            # gets announced: a message must land in at most one log.
            if self._on_deliver not in port.delivery_hooks:
                port.delivery_hooks.append(self._on_deliver)

    def _on_advance(self, old: int, new: int) -> None:
        if self.taken is None and new >= self.at_time:
            self._take()

    def _take(self) -> None:
        if self.taken is not None:
            return  # duplicate trigger: the cut is already fixed
        self.taken = Checkpoint(
            dapplet=self.dapplet.name, at_time=self.at_time,
            clock_when_taken=self.dapplet.clock.time,
            sim_time=self.dapplet.kernel.now,
            state=self.dapplet.state.snapshot())
        durable = self._durable
        if durable is not None:
            durable.save_object(checkpoint_key(self.at_time), {
                "dapplet": self.taken.dapplet,
                "at_time": self.taken.at_time,
                "clock": self.taken.clock_when_taken,
                "sim_time": self.taken.sim_time,
                "state": self.taken.state,
            })

    def _on_deliver(self, message: Message) -> Message:
        # Runs after the clock's unwrap hook; last_received_ts is the
        # stamp of this message.
        ts = self.dapplet.clock.last_received_ts
        if self.taken is not None and ts is not None and ts < self.at_time:
            self.taken.channel_messages.append(message)
            durable = self._durable
            if durable is not None:
                durable.append_log(
                    checkpoint_key(self.at_time) + ".chan", message)
        return message


class GlobalCheckpoint:
    """A collected set of per-dapplet checkpoints for one time T.

    The paper's recovery use: after a failure, every dapplet restores
    its checkpointed state and the channel messages are replayed — here
    :meth:`restore` puts states back and :meth:`replay` re-delivers the
    captured in-transit messages to a handler of the caller's choice.
    """

    def __init__(self, at_time: int,
                 checkpoints: dict[str, Checkpoint]) -> None:
        self.at_time = at_time
        self.checkpoints = dict(checkpoints)

    @classmethod
    def install(cls, dapplets, at_time: int) -> dict[str, CheckpointService]:
        """Install a :class:`CheckpointService` at ``at_time`` on each
        dapplet; returns the services keyed by dapplet name."""
        return {d.name: CheckpointService(d, at_time) for d in dapplets}

    @classmethod
    def collect(cls, services: dict[str, CheckpointService],
                ) -> "GlobalCheckpoint":
        """Gather the taken checkpoints; raises if any is missing."""
        missing = [name for name, s in services.items() if s.taken is None]
        if missing:
            raise ClockError(
                f"checkpoint not yet taken by: {sorted(missing)}")
        at_times = {s.at_time for s in services.values()}
        if len(at_times) != 1:
            raise ClockError(f"mixed checkpoint times: {sorted(at_times)}")
        return cls(at_times.pop(),
                   {name: s.taken for name, s in services.items()})

    @classmethod
    def load(cls, backend: "StorageBackend",
             at_time: int) -> "GlobalCheckpoint":
        """Rebuild the global checkpoint at ``at_time`` from a backend.

        Scans the backend for every ``dapplet/<name>.ckpt@T`` object a
        :class:`CheckpointService` flushed — including ones written by
        dapplets that have since crashed — and reads each cut's state
        and channel-message log. Raises :class:`~repro.errors
        .ClockError` when no dapplet checkpointed at ``at_time``.
        """
        from repro.store.durable import DurableState
        suffix = f".{checkpoint_key(at_time)}"
        checkpoints: dict[str, Checkpoint] = {}
        for key in backend.keys("dapplet/"):
            if not key.endswith(suffix):
                continue
            name = key[len("dapplet/"):-len(suffix)]
            durable = DurableState(backend, name=f"dapplet/{name}")
            cut = durable.load_object(checkpoint_key(at_time))
            checkpoints[name] = Checkpoint(
                dapplet=cut["dapplet"], at_time=cut["at_time"],
                clock_when_taken=cut["clock"], sim_time=cut["sim_time"],
                state=cut["state"],
                channel_messages=durable.read_log(
                    checkpoint_key(at_time) + ".chan"))
        if not checkpoints:
            raise ClockError(
                f"no durable checkpoints at T={at_time} in this backend")
        return cls(at_time, checkpoints)

    def restore(self, world) -> None:
        """Write every dapplet's checkpointed state back (by name)."""
        for name, checkpoint in self.checkpoints.items():
            world.get(name).state.restore(checkpoint.state)

    def replay(self, handler) -> int:
        """Feed captured channel messages to ``handler(dapplet_name,
        message)`` in per-dapplet arrival order; returns the count."""
        count = 0
        for name in sorted(self.checkpoints):
            for message in self.checkpoints[name].channel_messages:
                handler(name, message)
                count += 1
        return count
