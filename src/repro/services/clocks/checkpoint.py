"""Checkpointing at a predetermined logical time T.

The paper (§4.2): "a global state can be easily checkpointed: all
processes checkpoint their local states at some predetermined time T,
and the states of the channels are the sequences of messages sent on the
channels before T and received after T."

One :class:`CheckpointService` per dapplet, all constructed with the
same ``at_time``. The snapshot criterion guarantees the cut is
consistent: a message stamped at or after T is necessarily received
after the receiver's clock passed T, i.e. after the receiver
checkpointed, so no checkpointed state reflects a post-cut message.
Messages stamped *before* T but delivered after the local checkpoint are
exactly the channel state, and are logged here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import ClockError
from repro.mailbox.inbox import Inbox
from repro.messages.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.dapplet.dapplet import Dapplet


@dataclass
class Checkpoint:
    """One dapplet's contribution to the global checkpoint."""

    dapplet: str
    at_time: int
    clock_when_taken: int
    sim_time: float
    state: dict[str, dict[str, Any]]
    #: Messages in transit across the cut, in arrival order.
    channel_messages: list[Message] = field(default_factory=list)


class CheckpointService:
    """Checkpoints one dapplet when its clock first reaches ``at_time``."""

    def __init__(self, dapplet: "Dapplet", at_time: int) -> None:
        if at_time <= 0:
            raise ValueError("checkpoint time must be positive")
        self.dapplet = dapplet
        self.at_time = at_time
        self.taken: Checkpoint | None = None
        dapplet.clock.observers.append(self._on_advance)
        dapplet.port_hooks.append(self._hook_port)
        for inbox in dapplet.inboxes.values():
            self._hook_port(inbox)
        # The clock may already be past T (late installation).
        if dapplet.clock.time >= at_time:
            self._take()

    def _hook_port(self, port: object) -> None:
        if isinstance(port, Inbox):
            port.delivery_hooks.append(self._on_deliver)

    def _on_advance(self, old: int, new: int) -> None:
        if self.taken is None and new >= self.at_time:
            self._take()

    def _take(self) -> None:
        self.taken = Checkpoint(
            dapplet=self.dapplet.name, at_time=self.at_time,
            clock_when_taken=self.dapplet.clock.time,
            sim_time=self.dapplet.kernel.now,
            state=self.dapplet.state.snapshot())

    def _on_deliver(self, message: Message) -> Message:
        # Runs after the clock's unwrap hook; last_received_ts is the
        # stamp of this message.
        ts = self.dapplet.clock.last_received_ts
        if self.taken is not None and ts is not None and ts < self.at_time:
            self.taken.channel_messages.append(message)
        return message


class GlobalCheckpoint:
    """A collected set of per-dapplet checkpoints for one time T.

    The paper's recovery use: after a failure, every dapplet restores
    its checkpointed state and the channel messages are replayed — here
    :meth:`restore` puts states back and :meth:`replay` re-delivers the
    captured in-transit messages to a handler of the caller's choice.
    """

    def __init__(self, at_time: int,
                 checkpoints: dict[str, Checkpoint]) -> None:
        self.at_time = at_time
        self.checkpoints = dict(checkpoints)

    @classmethod
    def install(cls, dapplets, at_time: int) -> dict[str, CheckpointService]:
        """Install a :class:`CheckpointService` at ``at_time`` on each
        dapplet; returns the services keyed by dapplet name."""
        return {d.name: CheckpointService(d, at_time) for d in dapplets}

    @classmethod
    def collect(cls, services: dict[str, CheckpointService],
                ) -> "GlobalCheckpoint":
        """Gather the taken checkpoints; raises if any is missing."""
        missing = [name for name, s in services.items() if s.taken is None]
        if missing:
            raise ClockError(
                f"checkpoint not yet taken by: {sorted(missing)}")
        at_times = {s.at_time for s in services.values()}
        if len(at_times) != 1:
            raise ClockError(f"mixed checkpoint times: {sorted(at_times)}")
        return cls(at_times.pop(),
                   {name: s.taken for name, s in services.items()})

    def restore(self, world) -> None:
        """Write every dapplet's checkpointed state back (by name)."""
        for name, checkpoint in self.checkpoints.items():
            world.get(name).state.restore(checkpoint.state)

    def replay(self, handler) -> int:
        """Feed captured channel messages to ``handler(dapplet_name,
        message)`` in per-dapplet arrival order; returns the count."""
        count = 0
        for name in sorted(self.checkpoints):
            for message in self.checkpoints[name].channel_messages:
                handler(name, message)
                count += 1
        return count
