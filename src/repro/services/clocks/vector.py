"""Vector clocks (an extension beyond the paper).

Lamport clocks order events consistently but cannot *detect*
concurrency; vector clocks can, which the collaborative-design
application uses to flag conflicting edits to the same document part.
Pure data structure — no ports involved — so it travels inside messages
as a plain dict.
"""

from __future__ import annotations

from typing import Mapping


class VectorClock:
    """An immutable-by-convention mapping of process id -> counter."""

    __slots__ = ("_counts",)

    def __init__(self, counts: Mapping[str, int] | None = None) -> None:
        self._counts = {k: int(v) for k, v in (counts or {}).items() if v}

    def get(self, process: str) -> int:
        return self._counts.get(process, 0)

    def tick(self, process: str) -> "VectorClock":
        """A new clock with ``process``'s component advanced."""
        counts = dict(self._counts)
        counts[process] = counts.get(process, 0) + 1
        return VectorClock(counts)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Component-wise maximum (the receive rule)."""
        counts = dict(self._counts)
        for k, v in other._counts.items():
            if v > counts.get(k, 0):
                counts[k] = v
        return VectorClock(counts)

    # -- ordering -----------------------------------------------------------

    def __le__(self, other: "VectorClock") -> bool:
        return all(v <= other.get(k) for k, v in self._counts.items())

    def happens_before(self, other: "VectorClock") -> bool:
        """Strictly causally precedes."""
        return self <= other and self._counts != other._counts

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not self <= other and not other <= self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        return hash(frozenset(self._counts.items()))

    # -- wire -----------------------------------------------------------------

    def to_dict(self) -> dict[str, int]:
        return dict(self._counts)

    @classmethod
    def from_dict(cls, data: Mapping[str, int]) -> "VectorClock":
        return cls(data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(self._counts.items()))
        return f"VC({inner})"
