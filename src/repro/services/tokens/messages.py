"""Wire messages of the token protocol.

Token counts travel as ``{color: n}`` dicts; ``n`` is a positive int or
the string ``"all"`` (the paper: "a specific positive number of tokens
of a given color can be requested, or the request can ask for all tokens
of a given color").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.messages.message import Message, message_type
from repro.net.address import InboxAddress


@message_type("tok.request")
@dataclass(frozen=True)
class Request(Message):
    req_id: int
    agent: str
    tokens: dict  # color -> int | "all"
    reply_to: InboxAddress = None
    timestamp: int = 0  # logical time, used by the "timestamp" policy


@message_type("tok.grant")
@dataclass(frozen=True)
class Grant(Message):
    req_id: int
    tokens: dict  # color -> int actually granted


@message_type("tok.deadlock")
@dataclass(frozen=True)
class DeadlockNotice(Message):
    req_id: int
    cycle: tuple = ()


@message_type("tok.release")
@dataclass(frozen=True)
class Release(Message):
    agent: str
    tokens: dict


@message_type("tok.transfer")
@dataclass(frozen=True)
class Transfer(Message):
    """Move held tokens from ``agent`` directly to ``to_agent``."""

    agent: str
    to_agent: str
    tokens: dict


@message_type("tok.transfer_notice")
@dataclass(frozen=True)
class TransferNotice(Message):
    from_agent: str
    tokens: dict


@message_type("tok.totals_query")
@dataclass(frozen=True)
class TotalsQuery(Message):
    req_id: int
    agent: str = ""
    reply_to: InboxAddress = None


@message_type("tok.totals")
@dataclass(frozen=True)
class Totals(Message):
    req_id: int
    totals: dict = field(default_factory=dict)
