"""Wire messages of the token protocol.

Token counts travel as ``{color: n}`` dicts; ``n`` is a positive int or
the string ``"all"`` (the paper: "a specific positive number of tokens
of a given color can be requested, or the request can ask for all tokens
of a given color").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.messages.message import Message, message_type
from repro.net.address import InboxAddress


@message_type("tok.request")
@dataclass(frozen=True)
class Request(Message):
    req_id: int
    agent: str
    tokens: dict  # color -> int | "all"
    reply_to: InboxAddress = None
    timestamp: int = 0  # logical time, used by the "timestamp" policy
    #: Requesting dapplet's owning principal ("" when unowned). Sharded
    #: managers check ``token.request:<color>`` grants and per-principal
    #: quotas against it; the default keeps pre-registry frames
    #: serializing byte-identically.
    principal: str = ""


@message_type("tok.denied")
@dataclass(frozen=True)
class Denied(Message):
    """A request refused outright (no queueing): the requesting
    principal lacks a ``token.request:<color>`` grant or would exceed
    its quota. ``reason`` is ``"capability:<verb>"`` or
    ``"quota:<color>"``."""

    req_id: int
    reason: str = ""


@message_type("tok.grant")
@dataclass(frozen=True)
class Grant(Message):
    req_id: int
    tokens: dict  # color -> int actually granted


@message_type("tok.deadlock")
@dataclass(frozen=True)
class DeadlockNotice(Message):
    req_id: int
    cycle: tuple = ()


@message_type("tok.release")
@dataclass(frozen=True)
class Release(Message):
    agent: str
    tokens: dict


@message_type("tok.transfer")
@dataclass(frozen=True)
class Transfer(Message):
    """Move held tokens from ``agent`` directly to ``to_agent``."""

    agent: str
    to_agent: str
    tokens: dict


@message_type("tok.transfer_notice")
@dataclass(frozen=True)
class TransferNotice(Message):
    from_agent: str
    tokens: dict


@message_type("tok.totals_query")
@dataclass(frozen=True)
class TotalsQuery(Message):
    req_id: int
    agent: str = ""
    reply_to: InboxAddress = None


@message_type("tok.totals")
@dataclass(frozen=True)
class Totals(Message):
    req_id: int
    totals: dict = field(default_factory=dict)


# -- manager-to-manager messages (the sharded token network) ----------------
#
# A ring of :class:`~repro.services.tokens.shard.TokenShard` managers
# speaks the messages below among themselves; the agent-facing protocol
# above is unchanged, so a :class:`TokenAgent` cannot tell a shard from
# the single coordinator. ``gid`` is a globally unique grant id minted
# by the shard coordinating a request (``"<shard>/<n>"``).


@message_type("tok.prepare")
@dataclass(frozen=True)
class Prepare(Message):
    """Reserve ``colors`` at their home shard for grant ``gid``.

    Queued at the home shard until satisfiable; answered with
    :class:`Prepared`. ``origin`` is the coordinating shard's ring name.
    ``timestamp``/``agent`` order queued prepares and pick deadlock
    victims.
    """

    gid: str
    agent: str
    colors: dict  # color -> int | "all"
    origin: str = ""
    timestamp: int = 0
    #: Requesting principal, forwarded so home shards account
    #: per-principal quota usage ("" = unowned, never quota'd).
    principal: str = ""


@message_type("tok.prepared")
@dataclass(frozen=True)
class Prepared(Message):
    """Home shard reserved ``colors`` (``"all"`` resolved) for ``gid``."""

    gid: str
    colors: dict


@message_type("tok.prepare_denied")
@dataclass(frozen=True)
class PrepareDenied(Message):
    """Home shard refused ``gid`` outright instead of queueing it: the
    requesting principal's per-colour quota would be exceeded. The
    coordinating shard aborts any already-prepared groups and relays a
    :class:`Denied` to the agent."""

    gid: str
    reason: str = ""


@message_type("tok.commit")
@dataclass(frozen=True)
class Commit(Message):
    """Turn ``gid``'s reservation into holdings of ``agent``."""

    gid: str
    agent: str


@message_type("tok.abort")
@dataclass(frozen=True)
class Abort(Message):
    """Cancel ``gid``: drop its queued prepare or refund its reservation."""

    gid: str


@message_type("tok.release_apply")
@dataclass(frozen=True)
class ReleaseApply(Message):
    """Forwarded release: return ``agent``'s ``tokens`` to this home pool."""

    agent: str
    tokens: dict


@message_type("tok.transfer_apply")
@dataclass(frozen=True)
class TransferApply(Message):
    """Forwarded transfer of home colours from ``agent`` to ``to_agent``."""

    agent: str
    to_agent: str
    tokens: dict


@message_type("tok.agent_register")
@dataclass(frozen=True)
class AgentRegister(Message):
    """Record ``agent``'s reply inbox at the agent's home shard."""

    agent: str
    inbox: InboxAddress = None


@message_type("tok.forward_notice")
@dataclass(frozen=True)
class ForwardNotice(Message):
    """Route a :class:`TransferNotice` via ``to_agent``'s home shard."""

    to_agent: str
    from_agent: str
    tokens: dict


@message_type("tok.probe")
@dataclass(frozen=True)
class Probe(Message):
    """One edge-chasing deadlock probe (Chandy-Misra-Haas, AND model).

    The probe asks: is ``holder`` — who holds tokens the origin's
    blocked request needs — itself blocked, and does the wait chain lead
    back to ``origin_agent``? ``origin_key`` is the victim-priority
    tuple ``(timestamp, agent, gid)``; only the probe of the youngest
    waiter on a cycle survives, so exactly one victim is chosen.
    ``path`` is the agent chain walked so far.
    """

    origin_agent: str
    origin_gid: str
    origin_key: tuple = ()
    origin_coord: str = ""
    holder: str = ""
    path: tuple = ()


@message_type("tok.deadlock_found")
@dataclass(frozen=True)
class DeadlockFound(Message):
    """A probe closed a cycle; ``gid``'s coordinator must abort it."""

    gid: str
    cycle: tuple = ()
