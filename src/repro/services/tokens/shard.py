"""The sharded token service: a real *network* of token managers.

The paper: "A network of token-manager objects manages tokens shared by
all the dapplets in a session." The single :class:`TokenCoordinator` is
that network collapsed to a star; this module is the full shape — a
consistent-hash ring of :class:`TokenShard` managers, each the *home*
of the colours (and agents) that hash onto its arc.

Routing
    Any shard accepts any agent request (agents attach to the shard
    their own name hashes to) and routes each colour to its home
    manager, so adding shards spreads both request load and pool state.

Atomic multi-colour grants
    A request naming colours homed on several shards is split into one
    *group* per home shard and granted all-or-nothing: the coordinating
    shard sends :class:`~repro.services.tokens.messages.Prepare` to each
    home **sequentially in ring-name order** (a global acquisition order,
    so the protocol itself can never deadlock on its own reservations),
    each home reserves its group when its pool allows (queueing behind
    its grant policy otherwise), and once every group is reserved a
    :class:`~repro.services.tokens.messages.Commit` turns the
    reservations into holdings and the agent sees one
    :class:`~repro.services.tokens.messages.Grant`. A deadlock aborts
    the exchange instead (:class:`~repro.services.tokens.messages.Abort`
    refunds every reservation), so a grant is never half-made.

Distributed deadlock detection
    Waits that span shards are invisible to any single manager, so
    detection is edge-chasing (Chandy-Misra-Haas, AND model):
    a shard with a blocked prepare launches
    :class:`~repro.services.tokens.messages.Probe` messages at the
    holders of the colours the waiter is missing; a shard finding the
    probed holder blocked in *its* queue extends the probe along that
    waiter's missing colours. A probe arriving back at its origin agent
    closed a wait cycle. Exactly one victim per cycle: a probe is only
    forwarded past waiters *older* than its origin (priority =
    ``(timestamp, agent, gid)``), and meeting a younger waiter kills the
    probe and launches that waiter's own — so only the youngest waiter
    on the cycle self-detects, and its coordinator aborts it with
    :class:`~repro.errors.DeadlockDetected`.

Multi-tenancy (:mod:`repro.registry`)
    Requests from *owned* dapplets arrive stamped with their principal.
    The coordinating shard refuses a request whose principal lacks a
    ``token.request:<color>`` grant (before any 2PC traffic), and each
    home shard refuses a Prepare that would push the principal's
    reserved + held count of a quota'd colour past its grant — the
    coordinator aborts the half-made exchange and the agent's request
    fails with :class:`~repro.errors.CapabilityDenied`. Unstamped
    requests behave exactly as before the registry existed.

Conservation is *instantaneous*, not just quiescent: tokens move
between ``pool``, ``reserved`` and ``holders`` ledgers inside exactly
one home shard — no message ever carries a token in flight — so
:meth:`ShardedTokenService.check_conservation` may be called at any
point of any schedule.

Agents are oblivious: :class:`~repro.services.tokens.manager.TokenAgent`
(and therefore :class:`~repro.services.tokens.protocols.TokenMutex` and
:class:`~repro.services.tokens.protocols.ReadersWriterLock`) speak the
exact same wire protocol to a shard as to the single coordinator.

Deploy via :meth:`repro.world.World.host_token_shards`, or resolve a
shard through the replicated directory with :func:`resolve_shard` when
the world hosts one (shard hosts are ordinary dapplets and enroll like
any other).
"""

from __future__ import annotations

import itertools
from bisect import bisect_left
from typing import TYPE_CHECKING, Iterable, Mapping
from zlib import crc32

from repro.dapplet.dapplet import Dapplet
from repro.errors import TokenError
from repro.mailbox.outbox import Outbox
from repro.net.address import InboxAddress, NodeAddress
from repro.services.tokens import messages as tm
from repro.services.tokens.manager import ALL, POLICIES, TokenAgent

if TYPE_CHECKING:  # pragma: no cover
    from repro.discovery.resolver import Resolver

#: Well-known inbox name of every token shard.
SHARD_INBOX = "_tokshard"

#: Virtual nodes per shard on the ring — enough to spread a handful of
#: shards evenly without making the ring big.
VNODES = 16


class TokenShardHost(Dapplet):
    """The dapplet a :class:`TokenShard` servlet runs on."""

    kind = "token-shard"


class ShardRing:
    """A consistent-hash ring over shard names.

    Both colours and agent names are placed with crc32 (the same spread
    function the discovery subsystem uses), each shard contributing
    :data:`VNODES` points. ``home(key)`` is the owner of the first ring
    point at or after the key's hash — stable under shard addition or
    removal for all keys not on the moved arcs.
    """

    def __init__(self, names: Iterable[str], *, vnodes: int = VNODES) -> None:
        self.names = tuple(sorted(set(names)))
        if not self.names:
            raise TokenError("a shard ring needs at least one shard")
        self.vnodes = vnodes
        points = []
        for name in self.names:
            for v in range(vnodes):
                points.append((crc32(f"{name}#{v}".encode()), name))
        points.sort()
        self._points = points

    def home(self, key: str) -> str:
        """The shard name owning ``key`` (a colour or an agent name)."""
        h = crc32(str(key).encode())
        i = bisect_left(self._points, (h, ""))
        return self._points[i % len(self._points)][1]

    def split(self, tokens: Mapping[str, object]) -> list[tuple[str, dict]]:
        """Group a token list by home shard, in ring-name order.

        The order is the protocol's global acquisition order: every
        coordinator prepares groups in this sequence, so reservations
        alone can never form a wait cycle.
        """
        groups: dict[str, dict] = {}
        for color in sorted(tokens):
            groups.setdefault(self.home(color), {})[color] = tokens[color]
        return sorted(groups.items())

    def __len__(self) -> int:
        return len(self.names)


class _Queued:
    """Home-shard record of one blocked (un-reservable) prepare."""

    __slots__ = ("gid", "agent", "colors", "origin", "timestamp", "seq",
                 "principal")

    def __init__(self, msg: tm.Prepare, seq: int) -> None:
        self.gid = msg.gid
        self.agent = msg.agent
        self.colors = dict(msg.colors)
        self.origin = msg.origin
        self.timestamp = msg.timestamp
        self.seq = seq
        self.principal = msg.principal

    @property
    def key(self) -> tuple:
        """Deadlock-victim priority: youngest (largest) loses."""
        return (self.timestamp, self.agent, self.gid)


class _Coordinated:
    """Coordinator-side record of one in-flight multi-shard grant."""

    __slots__ = ("gid", "req_id", "agent", "reply_to", "timestamp",
                 "groups", "idx", "prepared", "t0", "principal")

    def __init__(self, gid: str, msg: tm.Request,
                 groups: list[tuple[str, dict]], t0: float) -> None:
        self.gid = gid
        self.req_id = msg.req_id
        self.agent = msg.agent
        self.reply_to = msg.reply_to
        self.timestamp = msg.timestamp
        self.groups = groups
        self.idx = 0                       # next group to prepare
        self.prepared: dict[str, dict] = {}  # shard -> resolved counts
        self.t0 = t0
        self.principal = msg.principal


class TokenShard:
    """One manager of the sharded token network.

    Speaks the agent-facing protocol of
    :class:`~repro.services.tokens.manager.TokenCoordinator` on the same
    wire messages, plus the manager-to-manager protocol (prepare /
    commit / abort, forwarded release and transfer, probes). ``peers``
    maps every ring name — including this shard's own — to the node its
    host dapplet runs on.
    """

    def __init__(self, dapplet: Dapplet, ring: ShardRing, shard_name: str,
                 peers: Mapping[str, NodeAddress],
                 initial: Mapping[str, int], *, policy: str = "fifo",
                 name: str = SHARD_INBOX) -> None:
        if policy not in POLICIES:
            raise TokenError(f"policy must be one of {POLICIES}")
        for color, n in initial.items():
            if not isinstance(n, int) or isinstance(n, bool) or n < 0:
                raise TokenError(
                    f"initial count for colour {color!r} must be an int >= 0")
        if set(peers) != set(ring.names):
            raise TokenError("peers must name every shard on the ring")
        self.dapplet = dapplet
        self.ring = ring
        self.name = shard_name
        self.policy = policy
        self.peers = {n: InboxAddress(a, name) if isinstance(a, NodeAddress)
                      else a for n, a in peers.items()}
        #: The fixed world-wide totals (static: tokens are conserved).
        self.global_totals = dict(initial)
        #: This shard's ledgers, home colours only. pool + reserved +
        #: held == totals for every colour, at every instant.
        self.totals = {c: n for c, n in initial.items()
                       if ring.home(c) == shard_name}
        self.pool = dict(self.totals)
        self.holders: dict[str, dict[str, int]] = {}
        self._reserved: dict[str, tuple[str, dict[str, int]]] = {}
        self._queue: list[_Queued] = []
        self._coordinating: dict[str, _Coordinated] = {}
        #: Reply inboxes of agents homed on this shard.
        self._agent_inboxes: dict[str, InboxAddress] = {}
        #: (agent, inbox) pairs this shard already pushed to their home.
        self._registered: set[tuple[str, InboxAddress]] = set()
        self._outboxes: dict[InboxAddress, Outbox] = {}
        self._gids = itertools.count(1)
        self._seq = itertools.count()
        #: principal -> {color: reserved + held} for home colours; the
        #: ledger quota checks read (see :meth:`_quota_denial`).
        self._principal_held: dict[str, dict[str, int]] = {}
        #: agent -> owning principal, learned from prepares; releases
        #: and transfers only carry the agent name.
        self._agent_principal: dict[str, str] = {}
        self.grants = 0
        self.deadlocks = 0
        self.forwards = 0
        self.denials = 0
        self.probes_sent = 0
        self.probes_received = 0
        self.inbox = dapplet.create_inbox(name=name)
        tr = dapplet.kernel.tracer
        if tr is not None:
            tr.emit("tokens", "shard", node=dapplet.address, shard=shard_name,
                    colors=len(self.totals), ring=len(ring))
        self.server = dapplet.spawn(self._serve(), name=f"tokshard-{shard_name}")

    @property
    def pointer(self) -> InboxAddress:
        """Where agents (and peer shards) connect."""
        return self.inbox.named_address

    # -- invariants --------------------------------------------------------

    def local_totals(self) -> dict[str, int]:
        """Live per-colour accounting: pool + reserved + held."""
        live = dict(self.pool)
        for _, colors, _ in self._reserved.values():
            for color, n in colors.items():
                live[color] = live.get(color, 0) + n
        for held in self.holders.values():
            for color, n in held.items():
                live[color] = live.get(color, 0) + n
        return live

    def check_conservation(self) -> None:
        """Assert pool + reserved + held == totals for every home colour."""
        live = self.local_totals()
        for color, total in self.totals.items():
            if live.get(color, 0) != total:
                raise TokenError(
                    f"shard {self.name!r}: conservation violated for colour "
                    f"{color!r}: live={live.get(color, 0)} total={total}")
        for color in live:
            if color not in self.totals:
                raise TokenError(
                    f"shard {self.name!r} holds foreign colour {color!r}")

    @property
    def quiescent(self) -> bool:
        return not (self._queue or self._reserved or self._coordinating)

    # -- server ------------------------------------------------------------

    def _serve(self):
        while True:
            msg = yield self.inbox.receive()
            self._handle(msg)

    def _handle(self, msg) -> None:
        if isinstance(msg, tm.Request):
            self._on_request(msg)
        elif isinstance(msg, tm.Release):
            self._on_release(msg)
        elif isinstance(msg, tm.Transfer):
            self._on_transfer(msg)
        elif isinstance(msg, tm.TotalsQuery):
            self._learn_agent(msg.agent, msg.reply_to)
            self._send(msg.reply_to,
                       tm.Totals(msg.req_id, dict(self.global_totals)))
        elif isinstance(msg, tm.Prepare):
            self._on_prepare(msg)
        elif isinstance(msg, tm.Prepared):
            self._on_prepared(msg)
        elif isinstance(msg, tm.PrepareDenied):
            self._on_prepare_denied(msg)
        elif isinstance(msg, tm.Commit):
            self._on_commit(msg)
        elif isinstance(msg, tm.Abort):
            self._on_abort(msg)
        elif isinstance(msg, tm.ReleaseApply):
            self._on_release_apply(msg)
        elif isinstance(msg, tm.TransferApply):
            self._on_transfer_apply(msg)
        elif isinstance(msg, tm.AgentRegister):
            self._agent_inboxes[msg.agent] = msg.inbox
        elif isinstance(msg, tm.ForwardNotice):
            self._on_forward_notice(msg)
        elif isinstance(msg, tm.Probe):
            self._on_probe(msg)
        elif isinstance(msg, tm.DeadlockFound):
            self._on_deadlock_found(msg)

    # -- plumbing ----------------------------------------------------------

    def _send(self, to: InboxAddress, message) -> None:
        outbox = self._outboxes.get(to)
        if outbox is None:
            outbox = self.dapplet.create_outbox()
            outbox.add(to)
            self._outboxes[to] = outbox
        outbox.send(message)

    def _send_shard(self, shard_name: str, message) -> None:
        """Route a manager-to-manager message by ring name.

        A message to this shard itself is dispatched directly — the
        shard is single-threaded over its inbox, and every handler is
        synchronous, so inline dispatch preserves the exact semantics of
        a loopback hop without the latency.
        """
        if shard_name == self.name:
            self._handle(message)
            return
        self.forwards += 1
        tr = self.dapplet.kernel.tracer
        if tr is not None:
            tr.emit("tokens", "forward", node=self.dapplet.address,
                    to=shard_name, kind=message.wire_name)
        self._send(self.peers[shard_name], message)

    def _learn_agent(self, agent: str, reply_to: InboxAddress | None) -> None:
        """Push (agent, inbox) to the agent's home shard, once."""
        if not agent or reply_to is None:
            return
        if (agent, reply_to) in self._registered:
            return
        self._registered.add((agent, reply_to))
        self._send_shard(self.ring.home(agent),
                         tm.AgentRegister(agent, reply_to))

    def _trace(self, event: str, **fields) -> None:
        tr = self.dapplet.kernel.tracer
        if tr is not None:
            tr.emit("tokens", event, node=self.dapplet.address, **fields)

    # -- the coordinator role (any shard, for requests it accepted) --------

    def _on_request(self, msg: tm.Request) -> None:
        self._learn_agent(msg.agent, msg.reply_to)
        for color in msg.tokens:
            if color not in self.global_totals:
                self._send(msg.reply_to, tm.DeadlockNotice(msg.req_id, ()))
                return
        reason = self._capability_denial(msg)
        if reason is not None:
            self.denials += 1
            self._trace("denied", agent=msg.agent, principal=msg.principal,
                        reason=reason)
            self._send(msg.reply_to, tm.Denied(msg.req_id, reason))
            return
        gid = f"{self.name}/{next(self._gids)}"
        groups = self.ring.split(msg.tokens)
        multi = _Coordinated(gid, msg, groups, self.dapplet.kernel.now)
        self._coordinating[gid] = multi
        self._prepare_next(multi)

    def _capability_denial(self, msg: tm.Request) -> str | None:
        """Coordinator-side capability gate (quota is the home shards').

        A stamped request needs a ``token.request:<color>`` grant for
        every colour it names; unstamped requests (``principal == ""``,
        the pre-registry world) always pass. Checked before any 2PC
        traffic, so a denied request costs no cross-shard messages.
        """
        if not msg.principal:
            return None
        world = getattr(self.dapplet, "world", None)
        if world is None:
            return None
        from repro.registry.registry import TOKEN_RESOURCE
        registry = world.registry
        for color in sorted(msg.tokens):
            verb = f"token.request:{color}"
            if not registry.check(msg.principal, TOKEN_RESOURCE, verb,
                                  node=self.dapplet.address):
                return f"capability:{verb}"
        return None

    def _prepare_next(self, multi: _Coordinated) -> None:
        shard, colors = multi.groups[multi.idx]
        self._send_shard(shard, tm.Prepare(
            gid=multi.gid, agent=multi.agent, colors=colors,
            origin=self.name, timestamp=multi.timestamp,
            principal=multi.principal))

    def _on_prepared(self, msg: tm.Prepared) -> None:
        multi = self._coordinating.get(msg.gid)
        if multi is None:
            # Raced an abort: the reservation was made for a grant that
            # no longer exists — refund it at its home shard.
            self._send_shard(msg.gid.split("/", 1)[0], tm.Abort(msg.gid))
            return
        shard, _ = multi.groups[multi.idx]
        multi.prepared[shard] = dict(msg.colors)
        multi.idx += 1
        if multi.idx < len(multi.groups):
            self._prepare_next(multi)
            return
        del self._coordinating[multi.gid]
        need: dict[str, int] = {}
        for shard, _ in multi.groups:
            self._send_shard(shard, tm.Commit(multi.gid, multi.agent))
            need.update(multi.prepared[shard])
        self.grants += 1
        self._trace("grant", agent=multi.agent,
                    tokens=dict(sorted(need.items())),
                    route=self.dapplet.kernel.now - multi.t0,
                    hops=len(multi.groups))
        self._send(multi.reply_to, tm.Grant(multi.req_id, need))

    def _on_prepare_denied(self, msg: tm.PrepareDenied) -> None:
        """A home shard refused a group on quota: fail the whole grant.

        Groups before ``idx`` hold reservations — refund them with
        aborts; the denying shard reserved nothing. The agent sees one
        :class:`~repro.services.tokens.messages.Denied`, exactly as if
        the coordinator had refused the request itself.
        """
        multi = self._coordinating.pop(msg.gid, None)
        if multi is None:
            return  # raced an abort: nothing left to refund here
        self.denials += 1
        for shard, _ in multi.groups[:multi.idx]:
            self._send_shard(shard, tm.Abort(multi.gid))
        self._trace("denied", agent=multi.agent, principal=multi.principal,
                    reason=msg.reason)
        self._send(multi.reply_to, tm.Denied(multi.req_id, msg.reason))

    def _on_deadlock_found(self, msg: tm.DeadlockFound) -> None:
        multi = self._coordinating.pop(msg.gid, None)
        if multi is None:
            return  # stale probe result: already granted or aborted
        self.deadlocks += 1
        for shard, _ in multi.groups[:multi.idx + 1]:
            self._send_shard(shard, tm.Abort(multi.gid))
        self._trace("deadlock", agent=multi.agent, cycle=list(msg.cycle))
        self._send(multi.reply_to,
                   tm.DeadlockNotice(multi.req_id, tuple(msg.cycle)))

    def _on_release(self, msg: tm.Release) -> None:
        self._trace("release", agent=msg.agent,
                    tokens=dict(sorted(msg.tokens.items())))
        for shard, colors in self.ring.split(msg.tokens):
            self._send_shard(shard, tm.ReleaseApply(msg.agent, colors))

    def _on_transfer(self, msg: tm.Transfer) -> None:
        for shard, colors in self.ring.split(msg.tokens):
            self._send_shard(shard, tm.TransferApply(
                msg.agent, msg.to_agent, colors))

    # -- the home-manager role (this shard's own colours) ------------------

    def _resolve(self, colors: Mapping[str, object]) -> dict[str, int]:
        """Concrete counts for a home group (resolving ``"all"``)."""
        return {c: (self.totals.get(c, 0) if n == ALL else n)
                for c, n in colors.items()}

    def _satisfiable(self, entry: _Queued) -> bool:
        need = self._resolve(entry.colors)
        return all(self.pool.get(c, 0) >= n for c, n in need.items())

    def _on_prepare(self, msg: tm.Prepare) -> None:
        if msg.principal:
            self._agent_principal[msg.agent] = msg.principal
            reason = self._quota_denial(msg)
            if reason is not None:
                self.denials += 1
                self._trace("quota_denied", agent=msg.agent,
                            principal=msg.principal, reason=reason)
                self._send_shard(msg.origin,
                                 tm.PrepareDenied(msg.gid, reason))
                return
        entry = _Queued(msg, next(self._seq))
        self._queue.append(entry)
        if not self._drain():
            # Still queued: the wait-for graph grew an edge.
            self._probe_sweep()

    def _quota_denial(self, msg: tm.Prepare) -> str | None:
        """Would reserving this group exceed the principal's quota?

        Home shards own the ledgers, so the quota gate lives here, not
        at the coordinator: ``_principal_held`` counts this principal's
        reserved + held tokens of each home colour, and a group that
        would push any quota'd colour past its
        :meth:`~repro.registry.registry.Registry.quota_for` is refused
        outright (no queueing — a quota'd wait could never be granted
        by releases of *other* principals' tokens, so queueing would
        just hide the denial).
        """
        world = getattr(self.dapplet, "world", None)
        if world is None:
            return None
        from repro.registry.registry import TOKEN_RESOURCE
        registry = world.registry
        held = self._principal_held.get(msg.principal, {})
        need = self._resolve(msg.colors)
        for color in sorted(need):
            quota = registry.quota_for(msg.principal, TOKEN_RESOURCE,
                                       f"token.request:{color}")
            if quota is not None and held.get(color, 0) + need[color] > quota:
                return f"quota:{color}"
        return None

    def _quota_charge(self, principal: str, colors: Mapping[str, int]) -> None:
        if not principal:
            return
        held = self._principal_held.setdefault(principal, {})
        for color, n in colors.items():
            held[color] = held.get(color, 0) + n

    def _quota_refund(self, principal: str, colors: Mapping[str, int]) -> None:
        # Clamped at zero: tokens transferred in from another principal
        # were never charged here (see _on_transfer_apply).
        if not principal:
            return
        held = self._principal_held.get(principal)
        if held is None:
            return
        for color, n in colors.items():
            left = max(0, held.get(color, 0) - n)
            if left:
                held[color] = left
            else:
                held.pop(color, None)
        if not held:
            del self._principal_held[principal]

    def _reserve(self, entry: _Queued) -> None:
        need = self._resolve(entry.colors)
        for color, n in need.items():
            self.pool[color] = self.pool.get(color, 0) - n
        self._reserved[entry.gid] = (entry.agent, need, entry.principal)
        self._quota_charge(entry.principal, need)
        self._send_shard(entry.origin, tm.Prepared(entry.gid, need))

    def _drain(self) -> bool:
        """Reserve queued prepares per the grant policy.

        Returns True if every queued entry was reserved (queue empty).
        """
        reserved_any = False
        if self.policy == "timestamp":
            # Strict (timestamp, agent, gid) order: only the head may go.
            while self._queue:
                head = min(self._queue, key=lambda e: (e.key, e.seq))
                if not self._satisfiable(head):
                    break
                self._queue.remove(head)
                self._reserve(head)
                reserved_any = True
        else:
            progressed = True
            while progressed:
                progressed = False
                for entry in list(self._queue):
                    if self._satisfiable(entry):
                        self._queue.remove(entry)
                        self._reserve(entry)
                        reserved_any = progressed = True
        if reserved_any and self._queue:
            # New reservations are new "holdings" in the wait-for graph.
            self._probe_sweep()
        return not self._queue

    def _on_commit(self, msg: tm.Commit) -> None:
        reservation = self._reserved.pop(msg.gid, None)
        if reservation is None:
            return  # already aborted; the refund Abort is in flight
        agent, colors, _ = reservation  # reserved already counted to quota
        held = self.holders.setdefault(agent, {})
        for color, n in colors.items():
            held[color] = held.get(color, 0) + n
        # A committed holding can close a wait cycle the reservation
        # already opened under a different gid ordering — re-probe.
        self._probe_sweep()

    def _on_abort(self, msg: tm.Abort) -> None:
        reservation = self._reserved.pop(msg.gid, None)
        if reservation is not None:
            _, colors, principal = reservation
            for color, n in colors.items():
                self.pool[color] = self.pool.get(color, 0) + n
            self._quota_refund(principal, colors)
            self._drain()
            return
        self._queue = [e for e in self._queue if e.gid != msg.gid]

    def _on_release_apply(self, msg: tm.ReleaseApply) -> None:
        held = self.holders.get(msg.agent, {})
        for color, n in msg.tokens.items():
            count = held.get(color, 0) if n == ALL else n
            have = held.get(color, 0)
            if count > have:
                # Agents validate locally; a mismatch is a protocol bug.
                raise TokenError(
                    f"agent {msg.agent!r} released {count} {color!r} tokens "
                    f"at shard {self.name!r} but holds {have}")
            held[color] = have - count
            if held[color] == 0:
                del held[color]
            self.pool[color] = self.pool.get(color, 0) + count
            self._quota_refund(self._agent_principal.get(msg.agent, ""),
                               {color: count})
        self._drain()

    def _on_transfer_apply(self, msg: tm.TransferApply) -> None:
        src = self.holders.get(msg.agent, {})
        moved: dict[str, int] = {}
        for color, n in msg.tokens.items():
            count = src.get(color, 0) if n == ALL else n
            if count > src.get(color, 0):
                raise TokenError(
                    f"agent {msg.agent!r} transferred {count} {color!r} "
                    f"tokens at shard {self.name!r} but holds "
                    f"{src.get(color, 0)}")
            if count == 0:
                continue  # 'all of nothing' moves nothing
            src[color] -= count
            if src[color] == 0:
                del src[color]
            moved[color] = count
        if not moved:
            return
        dst = self.holders.setdefault(msg.to_agent, {})
        for color, count in moved.items():
            dst[color] = dst.get(color, 0) + count
        # Re-attribute quota usage to the receiver's principal — if this
        # shard has never seen a prepare from the receiver, usage lands
        # on "" (untracked): transfers are cooperative, the quota gate
        # bounds what a principal can *request*.
        self._quota_refund(self._agent_principal.get(msg.agent, ""), moved)
        self._quota_charge(self._agent_principal.get(msg.to_agent, ""), moved)
        self._send_shard(self.ring.home(msg.to_agent), tm.ForwardNotice(
            msg.to_agent, msg.agent, moved))
        # Moved holdings can close a wait-for cycle.
        self._probe_sweep()

    def _on_forward_notice(self, msg: tm.ForwardNotice) -> None:
        target = self._agent_inboxes.get(msg.to_agent)
        if target is not None:
            self._send(target, tm.TransferNotice(msg.from_agent,
                                                 dict(msg.tokens)))

    # -- edge-chasing deadlock detection -----------------------------------

    def _scarce_holders(self, entry: _Queued) -> list[str]:
        """Agents holding (or reserving) colours ``entry`` is short of."""
        need = self._resolve(entry.colors)
        scarce = [c for c, n in need.items() if self.pool.get(c, 0) < n]
        holders: set[str] = set()
        for color in scarce:
            for agent, held in self.holders.items():
                if held.get(color, 0) > 0:
                    holders.add(agent)
            for agent, colors, _ in self._reserved.values():
                if colors.get(color, 0) > 0:
                    holders.add(agent)
        holders.discard(entry.agent)
        return sorted(holders)

    def _probe_sweep(self) -> None:
        for entry in list(self._queue):
            self._initiate_probes(entry)

    def _initiate_probes(self, entry: _Queued) -> None:
        for holder in self._scarce_holders(entry):
            self._broadcast_probe(tm.Probe(
                origin_agent=entry.agent, origin_gid=entry.gid,
                origin_key=entry.key, origin_coord=entry.origin,
                holder=holder, path=(entry.agent,)))

    def _broadcast_probe(self, probe: tm.Probe) -> None:
        # Every shard sees the probe: the holder's own blocked prepare
        # can be queued anywhere on the ring.
        self.probes_sent += len(self.ring.names)
        for shard in self.ring.names:
            self._send_shard(shard, probe)

    def _on_probe(self, msg: tm.Probe) -> None:
        self.probes_received += 1
        matched = [e for e in self._queue if e.agent == msg.holder]
        if matched:
            self._trace("probe", origin=msg.origin_agent, holder=msg.holder,
                        hop=len(msg.path))
        for entry in matched:
            if entry.key > tuple(msg.origin_key):
                # The origin is not the youngest waiter on this chain:
                # kill its probe, launch the younger waiter's own.
                self._initiate_probes(entry)
                continue
            for holder in self._scarce_holders(entry):
                if holder == msg.origin_agent:
                    self._send_shard(msg.origin_coord, tm.DeadlockFound(
                        msg.origin_gid, tuple(msg.path) + (msg.holder,)))
                elif holder not in msg.path:
                    self._broadcast_probe(tm.Probe(
                        origin_agent=msg.origin_agent,
                        origin_gid=msg.origin_gid,
                        origin_key=msg.origin_key,
                        origin_coord=msg.origin_coord,
                        holder=holder,
                        path=tuple(msg.path) + (msg.holder,)))


class ShardedTokenService:
    """Facade over one deployed ring of :class:`TokenShard` managers.

    Build it with :meth:`repro.world.World.host_token_shards`; the
    service owns nothing — it is a view over the shard servlets with
    the cross-shard invariant checks the tests and benchmarks use.
    """

    def __init__(self, shards: list[TokenShard],
                 initial: Mapping[str, int]) -> None:
        if not shards:
            raise TokenError("a sharded token service needs >= 1 shard")
        self.shards = list(shards)
        self.ring = shards[0].ring
        self.by_name = {shard.name: shard for shard in shards}
        self.initial = dict(initial)

    def shard_for(self, key: str) -> TokenShard:
        """The home shard of ``key`` (a colour or an agent name)."""
        return self.by_name[self.ring.home(key)]

    def pointer_for(self, key: str) -> InboxAddress:
        """Where an agent named ``key`` should attach."""
        return self.shard_for(key).pointer

    def attach(self, dapplet: Dapplet) -> TokenAgent:
        """A :class:`TokenAgent` for ``dapplet``, attached to its home
        shard — the plain agent class, unchanged."""
        return TokenAgent(dapplet, self.pointer_for(dapplet.name))

    # -- cross-shard invariants -------------------------------------------

    def total_tokens(self) -> dict[str, int]:
        """Live accounting summed over every shard."""
        live: dict[str, int] = {}
        for shard in self.shards:
            for color, n in shard.local_totals().items():
                live[color] = live.get(color, 0) + n
        return live

    def check_conservation(self) -> None:
        """The paper's invariant, network-wide and instantaneous:
        summed over shards, pool + reserved + held equals the initial
        grant for every colour."""
        for shard in self.shards:
            shard.check_conservation()
        live = self.total_tokens()
        for color, total in self.initial.items():
            if live.get(color, 0) != total:
                raise TokenError(
                    f"global conservation violated for colour {color!r}: "
                    f"live={live.get(color, 0)} initial={total}")

    @property
    def quiescent(self) -> bool:
        """No queued, reserved, or coordinating grant anywhere."""
        return all(shard.quiescent for shard in self.shards)

    # -- aggregated counters ----------------------------------------------

    @property
    def grants(self) -> int:
        return sum(shard.grants for shard in self.shards)

    @property
    def deadlocks(self) -> int:
        return sum(shard.deadlocks for shard in self.shards)

    @property
    def denials(self) -> int:
        return sum(shard.denials for shard in self.shards)

    def held_by_principal(self, principal: str) -> dict[str, int]:
        """Quota-accounted (reserved + held) tokens of ``principal``,
        summed over its home-shard ledgers."""
        usage: dict[str, int] = {}
        for shard in self.shards:
            for color, n in shard._principal_held.get(principal, {}).items():
                usage[color] = usage.get(color, 0) + n
        return usage

    @property
    def forwards(self) -> int:
        return sum(shard.forwards for shard in self.shards)

    @property
    def probes_sent(self) -> int:
        return sum(shard.probes_sent for shard in self.shards)


def resolve_shard(resolver: "Resolver", ring: ShardRing, key: str):
    """Resolve the home shard of ``key`` through the directory.

    A generator (``yield from`` it): looks up the shard's *ring name*
    in the replicated directory — shard hosts enroll like any dapplet —
    and returns the :class:`InboxAddress` a
    :class:`~repro.services.tokens.manager.TokenAgent` can attach to.
    """
    node = yield from resolver.resolve(ring.home(key))
    return InboxAddress(node, SHARD_INBOX)
