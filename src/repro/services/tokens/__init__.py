"""Tokens and capabilities (§4.1 of the paper).

"We treat each resource as a token. Tokens are objects that are neither
created nor destroyed: a fixed number of them are communicated and
shared among the processes of a system. Tokens have colors; tokens of
one color cannot be transmuted into tokens of another color."

A :class:`TokenCoordinator` servlet hosts the token pool;
:class:`TokenAgent` is the per-dapplet manager with the paper's
operations — ``request(tokenList)`` (blocking; raises
:class:`~repro.errors.DeadlockDetected` if the managers detect a
deadlock), ``release(tokenList)`` (raises on releasing tokens not held),
and ``totalTokens()``. :mod:`repro.services.tokens.protocols` builds the
paper's two worked examples on top: single-token mutual exclusion and
the all-tokens-to-write readers/writer protocol.

At scale the pool is sharded instead: :mod:`repro.services.tokens.shard`
deploys the paper's actual "network of token managers" — a
consistent-hash ring of :class:`TokenShard` managers with atomic
cross-shard grants and probe-based distributed deadlock detection,
behind the exact same agent protocol (see ``docs/TOKENS.md``).
"""

from repro.services.tokens.manager import (
    ALL,
    TokenAgent,
    TokenCoordinator,
)
from repro.services.tokens.protocols import ReadersWriterLock, TokenMutex
from repro.services.tokens.shard import (
    SHARD_INBOX,
    ShardedTokenService,
    ShardRing,
    TokenShard,
    TokenShardHost,
    resolve_shard,
)

__all__ = [
    "ALL",
    "ReadersWriterLock",
    "SHARD_INBOX",
    "ShardRing",
    "ShardedTokenService",
    "TokenAgent",
    "TokenCoordinator",
    "TokenMutex",
    "TokenShard",
    "TokenShardHost",
    "resolve_shard",
]
