"""The token-manager network.

"A network of token-manager objects manages tokens shared by all the
dapplets in a session. A token is either held by a dapplet or by the
network of token managers."

The network has a star shape: one :class:`TokenCoordinator` servlet
holds the pool and the global wait-for view, and a :class:`TokenAgent`
runs on each participating dapplet, tracking ``holdsTokens`` locally.
Agents and coordinator talk over ordinary channels, so the service works
across the simulated WAN like any dapplet.

Deadlock handling follows the paper exactly: sharing "avoids deadlock if
dapplets release all resources before next requesting resources"
(two-phase use — nothing to detect), "and detect[s] deadlock if it does
occur (if a dapplet holds on to some resources and then requests more)".
Detection builds the wait-for graph (waiter -> holders of colours it
still needs) on every blocked request; any cycle through the new request
fails that request with :class:`DeadlockDetected`.

Grant policies:

* ``"fifo"`` (default) — scan blocked requests in arrival order and
  grant every one that is now satisfiable. Simple, but a stream of
  small requests can starve a large one.
* ``"timestamp"`` — grant strictly in (timestamp, agent-id) order, the
  paper's §4.2 conflict-resolution rule: "Conflicts between two or more
  requests for a common indivisible resource are resolved in favor of
  the request with the earlier timestamp. Ties are broken in favor of
  the process with the lower id." No starvation if holders release in
  finite time; experiment E11 measures the fairness difference.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.errors import CapabilityDenied, DeadlockDetected, TokenError
from repro.mailbox.outbox import Outbox
from repro.net.address import InboxAddress
from repro.services.tokens import messages as tm
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.dapplet.dapplet import Dapplet

#: Sentinel count meaning "all tokens of this colour".
ALL = "all"

#: Well-known inbox name of the coordinator servlet.
COORDINATOR_INBOX = "_tokens"

POLICIES = ("fifo", "timestamp")


def _validate_tokens(tokens: dict) -> dict:
    if not tokens:
        raise TokenError("token list must name at least one colour")
    for color, n in tokens.items():
        if n == ALL:
            continue
        if not isinstance(n, int) or isinstance(n, bool) or n <= 0:
            raise TokenError(
                f"count for colour {color!r} must be a positive int or "
                f"'all', got {n!r}")
    return dict(tokens)


class _Blocked:
    """Coordinator-side record of one blocked request."""

    __slots__ = ("req_id", "agent", "tokens", "reply_to", "timestamp", "seq")

    def __init__(self, msg: tm.Request, seq: int) -> None:
        self.req_id = msg.req_id
        self.agent = msg.agent
        self.tokens = dict(msg.tokens)
        self.reply_to = msg.reply_to
        self.timestamp = msg.timestamp
        self.seq = seq


class TokenCoordinator:
    """The pool-holding servlet of the token-manager network.

    Host it on any dapplet::

        coordinator = TokenCoordinator(host, {"file-a": 1, "file-b": 3})

    ``initial`` fixes the total number of tokens of each colour for the
    lifetime of the system — the paper's conservation invariant,
    checkable at any instant with :meth:`check_conservation`.
    """

    def __init__(self, dapplet: "Dapplet", initial: dict[str, int],
                 *, policy: str = "fifo", name: str = COORDINATOR_INBOX) -> None:
        if policy not in POLICIES:
            raise TokenError(f"policy must be one of {POLICIES}")
        for color, n in initial.items():
            if not isinstance(n, int) or isinstance(n, bool) or n < 0:
                raise TokenError(
                    f"initial count for colour {color!r} must be an int >= 0")
        self.dapplet = dapplet
        self.policy = policy
        self.totals = dict(initial)
        self.pool = dict(initial)
        #: agent name -> {color: held}
        self.holders: dict[str, dict[str, int]] = {}
        self._blocked: list[_Blocked] = []
        self._seq = itertools.count()
        self._agent_inboxes: dict[str, InboxAddress] = {}
        self._outboxes: dict[InboxAddress, Outbox] = {}
        self.inbox = dapplet.create_inbox(name=name)
        self.grants = 0
        self.deadlocks = 0
        self.denials = 0
        #: agent -> owning principal, learned from stamped requests; used
        #: for per-principal quota accounting (see :meth:`_denied_reason`).
        self._agent_principal: dict[str, str] = {}
        self.server = dapplet.spawn(self._serve(), name="token-coordinator")

    @property
    def pointer(self) -> InboxAddress:
        """Where agents connect."""
        return self.inbox.named_address

    # -- invariants ----------------------------------------------------------

    def check_conservation(self) -> None:
        """Assert the paper's invariant: totals never change."""
        for color, total in self.totals.items():
            held = sum(h.get(color, 0) for h in self.holders.values())
            pending_none = self.pool.get(color, 0)
            if held + pending_none != total:
                raise TokenError(
                    f"conservation violated for colour {color!r}: "
                    f"pool={pending_none} held={held} total={total}")

    # -- server ----------------------------------------------------------------

    def _serve(self):
        while True:
            msg = yield self.inbox.receive()
            if isinstance(msg, tm.Request):
                self._on_request(msg)
            elif isinstance(msg, tm.Release):
                self._on_release(msg)
            elif isinstance(msg, tm.Transfer):
                self._on_transfer(msg)
            elif isinstance(msg, tm.TotalsQuery):
                if msg.agent:
                    self._agent_inboxes[msg.agent] = msg.reply_to
                self._send(msg.reply_to,
                           tm.Totals(msg.req_id, dict(self.totals)))

    def _send(self, to: InboxAddress, message) -> None:
        outbox = self._outboxes.get(to)
        if outbox is None:
            outbox = self.dapplet.create_outbox()
            outbox.add(to)
            self._outboxes[to] = outbox
        outbox.send(message)

    # -- request handling -----------------------------------------------------

    def _need(self, blocked: _Blocked) -> dict[str, int]:
        """Concrete counts for a request (resolving ``"all"``)."""
        need = {}
        for color, n in blocked.tokens.items():
            total = self.totals.get(color, 0)
            need[color] = total if n == ALL else n
        return need

    def _satisfiable(self, blocked: _Blocked) -> bool:
        need = self._need(blocked)
        return all(self.pool.get(c, 0) >= n for c, n in need.items())

    def _grant(self, blocked: _Blocked) -> None:
        need = self._need(blocked)
        held = self.holders.setdefault(blocked.agent, {})
        for color, n in need.items():
            self.pool[color] = self.pool.get(color, 0) - n
            held[color] = held.get(color, 0) + n
        self.grants += 1
        tr = self.dapplet.kernel.tracer
        if tr is not None:
            tr.emit("tokens", "grant", node=self.dapplet.address,
                    agent=blocked.agent, tokens=dict(sorted(need.items())))
        self._agent_inboxes[blocked.agent] = blocked.reply_to
        self._send(blocked.reply_to, tm.Grant(blocked.req_id, need))

    def _on_request(self, msg: tm.Request) -> None:
        for color in msg.tokens:
            if color not in self.totals:
                self._send(msg.reply_to, tm.DeadlockNotice(msg.req_id, ()))
                return
        reason = self._denied_reason(msg)
        if reason is not None:
            self.denials += 1
            tr = self.dapplet.kernel.tracer
            if tr is not None:
                tr.emit("tokens", "denied", node=self.dapplet.address,
                        agent=msg.agent, principal=msg.principal,
                        reason=reason)
            self._send(msg.reply_to, tm.Denied(msg.req_id, reason))
            return
        blocked = _Blocked(msg, next(self._seq))
        self._agent_inboxes[msg.agent] = msg.reply_to
        self._blocked.append(blocked)
        self._drain()
        self._detect_all()

    def _denied_reason(self, msg: tm.Request) -> str | None:
        """Why an owned dapplet's request must be refused, or None.

        Unstamped requests (``principal == ""``) pass untouched — the
        pre-registry world. A stamped request needs a
        ``token.request:<color>`` grant per colour, and must not push
        the principal's concurrently-held count of any quota'd colour
        past its quota. The quota check is admission-time: requests the
        principal already has *blocked* are not counted, only grants it
        holds — release-before-re-request (the paper's deadlock-free
        discipline) makes the two equivalent.
        """
        if not msg.principal:
            return None
        world = getattr(self.dapplet, "world", None)
        if world is None:
            return None
        from repro.registry.registry import TOKEN_RESOURCE
        registry = world.registry
        self._agent_principal[msg.agent] = msg.principal
        for color in sorted(msg.tokens):
            verb = f"token.request:{color}"
            if not registry.check(msg.principal, TOKEN_RESOURCE, verb,
                                  node=self.dapplet.address):
                return f"capability:{verb}"
        for color in sorted(msg.tokens):
            quota = registry.quota_for(msg.principal, TOKEN_RESOURCE,
                                       f"token.request:{color}")
            if quota is None:
                continue
            n = msg.tokens[color]
            need = self.totals.get(color, 0) if n == ALL else n
            held = sum(h.get(color, 0)
                       for agent, h in self.holders.items()
                       if self._agent_principal.get(agent, "") == msg.principal)
            if held + need > quota:
                return f"quota:{color}"
        return None

    def _detect_all(self) -> None:
        """Fail every blocked request on a wait-for cycle.

        Cycles can appear both when a request arrives and when a grant
        makes a colour scarce, so this sweeps after every pool change.
        Failing a request removes its edges, which can break other
        cycles, hence the loop-until-stable.
        """
        changed = True
        while changed:
            changed = False
            for blocked in list(self._blocked):
                cycle = self._find_cycle(blocked)
                if cycle:
                    self.deadlocks += 1
                    self._blocked.remove(blocked)
                    tr = self.dapplet.kernel.tracer
                    if tr is not None:
                        tr.emit("tokens", "deadlock",
                                node=self.dapplet.address,
                                agent=blocked.agent, cycle=list(cycle))
                    self._send(blocked.reply_to,
                               tm.DeadlockNotice(blocked.req_id, tuple(cycle)))
                    changed = True
                    break

    def _on_release(self, msg: tm.Release) -> None:
        held = self.holders.get(msg.agent, {})
        for color, n in msg.tokens.items():
            count = held.get(color, 0) if n == ALL else n
            have = held.get(color, 0)
            if count > have:
                # The agent validated locally; a mismatch here means a
                # protocol bug — surface loudly.
                raise TokenError(
                    f"agent {msg.agent!r} released {count} {color!r} tokens "
                    f"but holds {have}")
            held[color] = have - count
            if held[color] == 0:
                del held[color]
            self.pool[color] = self.pool.get(color, 0) + count
        tr = self.dapplet.kernel.tracer
        if tr is not None:
            tr.emit("tokens", "release", node=self.dapplet.address,
                    agent=msg.agent, tokens=dict(sorted(msg.tokens.items())))
        self._drain()
        self._detect_all()  # a grant inside drain can create new scarcity

    def _on_transfer(self, msg: tm.Transfer) -> None:
        src = self.holders.get(msg.agent, {})
        moved: dict[str, int] = {}
        for color, n in msg.tokens.items():
            count = src.get(color, 0) if n == ALL else n
            if count > src.get(color, 0):
                raise TokenError(
                    f"agent {msg.agent!r} transferred {count} {color!r} "
                    f"tokens but holds {src.get(color, 0)}")
            if count == 0:
                continue  # 'all of nothing' moves nothing
            src[color] -= count
            if src[color] == 0:
                del src[color]
            moved[color] = count
        if not moved:
            return
        dst = self.holders.setdefault(msg.to_agent, {})
        for color, count in moved.items():
            dst[color] = dst.get(color, 0) + count
        target = self._agent_inboxes.get(msg.to_agent)
        if target is not None:
            self._send(target, tm.TransferNotice(msg.agent, moved))
        self._detect_all()  # moved holdings can close a wait-for cycle

    def _drain(self) -> None:
        """Grant blocked requests according to the policy."""
        if self.policy == "timestamp":
            # Strict (timestamp, agent) order: only the head may go.
            while self._blocked:
                head = min(self._blocked,
                           key=lambda b: (b.timestamp, b.agent, b.seq))
                if not self._satisfiable(head):
                    return
                self._blocked.remove(head)
                self._grant(head)
        else:
            progressed = True
            while progressed:
                progressed = False
                for blocked in list(self._blocked):
                    if self._satisfiable(blocked):
                        self._blocked.remove(blocked)
                        self._grant(blocked)
                        progressed = True

    # -- deadlock detection ----------------------------------------------------

    def _find_cycle(self, start: _Blocked) -> list[str] | None:
        """A wait-for cycle through ``start``'s agent, if one exists.

        Edge w -> h iff w has a blocked request needing more of some
        colour than the pool offers while h holds at least one token of
        that colour (AND-request model).
        """
        edges: dict[str, set[str]] = {}
        for blocked in self._blocked:
            need = self._need(blocked)
            for color, n in need.items():
                if self.pool.get(color, 0) >= n:
                    continue
                for holder, held in self.holders.items():
                    if holder != blocked.agent and held.get(color, 0) > 0:
                        edges.setdefault(blocked.agent, set()).add(holder)

        # DFS from the requesting agent looking for a path back to it.
        target = start.agent
        path: list[str] = []
        seen: set[str] = set()

        def dfs(node: str) -> list[str] | None:
            for nxt in sorted(edges.get(node, ())):
                if nxt == target:
                    return path + [node, target]
                if nxt not in seen:
                    seen.add(nxt)
                    path.append(node)
                    found = dfs(nxt)
                    path.pop()
                    if found:
                        return found
            return None

        return dfs(target)


class TokenAgent:
    """The per-dapplet token manager.

    ``holds`` is the paper's ``holdsTokens`` data member. The paper's
    three operations map to :meth:`request` (an event to yield on),
    :meth:`release`, and :meth:`total_tokens` (an event).
    """

    def __init__(self, dapplet: "Dapplet", coordinator: InboxAddress) -> None:
        self.dapplet = dapplet
        self.kernel = dapplet.kernel
        self.name = dapplet.name
        self.holds: dict[str, int] = {}
        self._req_ids = itertools.count(1)
        self._pending: dict[int, Event] = {}
        self.inbox = dapplet.create_inbox()
        self.outbox = dapplet.create_outbox()
        self.outbox.add(coordinator)
        self.transfers_received: list[tuple[str, dict[str, int]]] = []
        self.dispatcher = dapplet.spawn(self._dispatch(), name="token-agent")

    @property
    def _principal(self) -> str:
        """The owning principal every request is stamped with ("" when
        the dapplet is unowned — such requests are never gated)."""
        owner = self.dapplet.owner
        return owner.name if owner is not None else ""

    def request(self, tokens: dict) -> Event:
        """Block until the requested tokens are granted.

        Yields the granted ``{color: count}`` map (with ``"all"``
        resolved). Fails with :class:`DeadlockDetected` if the managers
        detect a deadlock involving this request, or with
        :class:`~repro.errors.CapabilityDenied` if the owning principal
        lacks a ``token.request:<color>`` grant or would exceed its
        quota (see :mod:`repro.registry`).
        """
        tokens = _validate_tokens(tokens)
        req_id = next(self._req_ids)
        event = self.kernel.event()
        self._pending[req_id] = event
        self.outbox.send(tm.Request(
            req_id=req_id, agent=self.name, tokens=tokens,
            reply_to=self.inbox.address, timestamp=self._timestamp(),
            principal=self._principal))
        return event

    def release(self, tokens: dict) -> None:
        """Return tokens to the managers; raises if not held."""
        tokens = _validate_tokens(tokens)
        resolved: dict[str, int] = {}
        for color, n in tokens.items():
            have = self.holds.get(color, 0)
            count = have if n == ALL else n
            if count > have:
                raise TokenError(
                    f"dapplet {self.name!r} holds {have} {color!r} tokens, "
                    f"cannot release {count}")
            resolved[color] = count
        for color, count in resolved.items():
            if count == 0:
                continue
            self.holds[color] -= count
            if self.holds[color] == 0:
                del self.holds[color]
        self.outbox.send(tm.Release(agent=self.name, tokens=resolved))

    def transfer(self, to_agent: str, tokens: dict) -> None:
        """Hand held tokens directly to another dapplet's agent.

        (The paper: tokens "are communicated and shared among the
        processes of a system".)
        """
        tokens = _validate_tokens(tokens)
        resolved: dict[str, int] = {}
        for color, n in tokens.items():
            have = self.holds.get(color, 0)
            count = have if n == ALL else n
            if count > have:
                raise TokenError(
                    f"dapplet {self.name!r} holds {have} {color!r} tokens, "
                    f"cannot transfer {count}")
            resolved[color] = count
        for color, count in resolved.items():
            if count == 0:
                continue
            self.holds[color] -= count
            if self.holds[color] == 0:
                del self.holds[color]
        self.outbox.send(tm.Transfer(agent=self.name, to_agent=to_agent,
                                     tokens=resolved))

    def total_tokens(self) -> Event:
        """The paper's ``totalTokens()``: yields ``{color: total}``."""
        req_id = next(self._req_ids)
        event = self.kernel.event()
        self._pending[req_id] = event
        self.outbox.send(tm.TotalsQuery(req_id=req_id, agent=self.name,
                                        reply_to=self.inbox.address))
        return event

    def _timestamp(self) -> int:
        clock = getattr(self.dapplet, "clock", None)
        return clock.time if clock is not None else 0

    def _dispatch(self):
        while True:
            msg = yield self.inbox.receive()
            if isinstance(msg, tm.Grant):
                waiter = self._pending.pop(msg.req_id, None)
                for color, n in msg.tokens.items():
                    self.holds[color] = self.holds.get(color, 0) + n
                if waiter is not None:
                    waiter.succeed(dict(msg.tokens))
            elif isinstance(msg, tm.DeadlockNotice):
                waiter = self._pending.pop(msg.req_id, None)
                if waiter is not None:
                    waiter.fail(DeadlockDetected(
                        f"token request of {self.name!r} is deadlocked "
                        f"(cycle: {' -> '.join(msg.cycle) or 'unknown colour'})",
                        cycle=msg.cycle))
            elif isinstance(msg, tm.Denied):
                waiter = self._pending.pop(msg.req_id, None)
                if waiter is not None:
                    waiter.fail(CapabilityDenied(
                        f"token request of {self.name!r} denied: "
                        f"{msg.reason}",
                        principal=self._principal,
                        verb=msg.reason.removeprefix("capability:"),
                        target="tokens"))
            elif isinstance(msg, tm.TransferNotice):
                for color, n in msg.tokens.items():
                    self.holds[color] = self.holds.get(color, 0) + n
                self.transfers_received.append((msg.from_agent,
                                                dict(msg.tokens)))
            elif isinstance(msg, tm.Totals):
                waiter = self._pending.pop(msg.req_id, None)
                if waiter is not None:
                    waiter.succeed(dict(msg.totals))
