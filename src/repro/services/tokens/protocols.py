"""Resource-control protocols built from tokens.

The paper gives two examples (§4.1):

* "suppose we want at most one process to modify an object at any point
  in the computation. We associate a single token with that object and
  only the process holding the token can modify the object" —
  :class:`TokenMutex`.
* "tokens can be used to implement a simple read/write control protocol
  that allows multiple concurrent reads of an object, but at most one
  concurrent write, and no reads concurrent with a write ... A dapplet
  writes the object only if it has **all** tokens associated with the
  object, and a dapplet reads the object only if it has **at least
  one** token" — :class:`ReadersWriterLock`.

Both are thin, faithful wrappers over :class:`TokenAgent`; use them from
a process with ``yield``::

    yield mutex.acquire()
    ...critical section...
    mutex.release()

The wrappers never look past the agent, so they run unchanged against
the single :class:`~repro.services.tokens.manager.TokenCoordinator` or
a sharded ring (attach the agent via
:meth:`~repro.services.tokens.shard.ShardedTokenService.attach`); the
``ALL`` write request is resolved against the colour's totals at its
home shard either way.
"""

from __future__ import annotations

from repro.errors import TokenError
from repro.services.tokens.manager import ALL, TokenAgent
from repro.sim.events import Event


class TokenMutex:
    """Mutual exclusion on one colour holding a single token.

    Create the colour with total count 1 at the coordinator.
    """

    def __init__(self, agent: TokenAgent, color: str) -> None:
        self.agent = agent
        self.color = color
        self.held = False

    def acquire(self) -> Event:
        """Blocks until the token is granted."""
        event = self.agent.request({self.color: 1})
        event.callbacks.append(self._mark_held)
        return event

    def _mark_held(self, event: Event) -> None:
        if event.ok:
            self.held = True

    def release(self) -> None:
        if not self.held:
            raise TokenError(
                f"mutex on {self.color!r} released without being held")
        self.held = False
        self.agent.release({self.color: 1})


class ReadersWriterLock:
    """The paper's all-tokens-to-write protocol on one colour.

    The colour's total count bounds the number of concurrent readers
    (each reader holds one token; a writer holds them all).
    """

    def __init__(self, agent: TokenAgent, color: str) -> None:
        self.agent = agent
        self.color = color
        self.read_held = 0
        self.write_held = False

    # -- readers -----------------------------------------------------------

    def acquire_read(self) -> Event:
        """Blocks until one token (a read share) is granted."""
        event = self.agent.request({self.color: 1})
        event.callbacks.append(self._mark_read)
        return event

    def _mark_read(self, event: Event) -> None:
        if event.ok:
            self.read_held += 1

    def release_read(self) -> None:
        if self.read_held <= 0:
            raise TokenError(
                f"read lock on {self.color!r} released without being held")
        self.read_held -= 1
        self.agent.release({self.color: 1})

    # -- the writer -----------------------------------------------------------

    def acquire_write(self) -> Event:
        """Blocks until *all* tokens of the colour are granted."""
        event = self.agent.request({self.color: ALL})
        event.callbacks.append(self._mark_write)
        return event

    def _mark_write(self, event: Event) -> None:
        if event.ok:
            self.write_held = True

    def release_write(self) -> None:
        if not self.write_held:
            raise TokenError(
                f"write lock on {self.color!r} released without being held")
        self.write_held = False
        self.agent.release({self.color: ALL})
