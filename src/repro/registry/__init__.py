"""``repro.registry`` — principals, capabilities, and the DAppStore.

The multi-tenant layer over the dapplet stack: :class:`Principal`
identities own dapplets (``World.dapplet(..., owner=principal)``),
:class:`Capability` grants held in a world's :class:`Registry` gate
session establishment, per-method RPC dispatch and per-colour token
quotas, and the replicated :class:`DAppStoreReplica` catalogs dapplet
manifests under hierarchical ``org/app/instance`` names with TTL'd
manifest leases (the directory's lease/gossip machinery, reused).

Every allow/deny decision emits a ``reg`` audit trace event with a
``reg.check`` latency histogram; see ``docs/REGISTRY.md``.
"""

from repro.registry.manifest import Manifest, ManifestRecord
from repro.registry.principal import (
    Capability,
    Principal,
    pattern_matches,
    verb_matches,
)
from repro.registry.registry import TOKEN_RESOURCE, Registry, RegistryStats
from repro.registry.store import (
    DAPPSTORE_INBOX,
    DAppStoreReplica,
    PublishAgent,
    StoreClient,
    StoreStats,
)

__all__ = [
    "Capability",
    "DAPPSTORE_INBOX",
    "DAppStoreReplica",
    "Manifest",
    "ManifestRecord",
    "Principal",
    "PublishAgent",
    "Registry",
    "RegistryStats",
    "StoreClient",
    "StoreStats",
    "TOKEN_RESOURCE",
    "pattern_matches",
    "verb_matches",
]
