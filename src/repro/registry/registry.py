"""The capability registry: grant storage, cached checks, audit trail.

One :class:`Registry` per world holds every capability grant and
answers the single question every enforcement point asks::

    registry.check(principal, target, verb, owner=..., node=...)

The check is **cached**: grant evaluation walks the principal's grant
list once, then the ``(principal, target, verb, owner)`` decision is a
dictionary hit until the next :meth:`grant` or :meth:`revoke` clears
the cache — so the session-establish and RPC hot paths stay O(1) and a
revocation takes effect on the very next check.

Every decision — allow or deny, cached or not — emits a ``reg`` audit
trace event carrying the principal, verb, target and the check latency
(``clat``, folded into the ``reg.check`` histogram). On the simulated
substrate the latency is exactly ``0.0`` (virtual time does not advance
inside synchronous code), so audited traces stay byte-deterministic;
on asyncio it is the real wall-clock cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import RegistryError
from repro.registry.principal import Capability, Principal, verb_matches

#: The resource name token-quota verbs are checked against (the token
#: service is a shared facility, not an owned dapplet).
TOKEN_RESOURCE = "tokens"


@dataclass
class RegistryStats:
    """Monotonic counters over one registry's lifetime."""

    allows: int = 0
    denies: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    grants: int = 0
    revokes: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(vars(self))


class Registry:
    """Grant store + cached capability checks for one world."""

    def __init__(self, substrate: Any = None) -> None:
        self._substrate = substrate
        self._principals: dict[str, Principal] = {}
        self._grants: dict[str, list[Capability]] = {}
        #: (principal, target, verb, owner) -> decision; cleared on any
        #: grant/revoke so revocation is visible on the next check.
        self._cache: dict[tuple, bool] = {}
        #: Bumped on every grant/revoke (diagnostics; the cache clear is
        #: what actually invalidates decisions).
        self.epoch = 0
        self.stats = RegistryStats()

    # -- principals ------------------------------------------------------

    def principal(self, name: str, org: str = "") -> Principal:
        """The registered principal ``name`` (created on first use).

        Re-requesting an existing principal with a different ``org`` is
        an error — namespaces are part of the identity.
        """
        existing = self._principals.get(name)
        if existing is not None:
            if org and existing.org != org:
                raise RegistryError(
                    f"principal {name!r} already registered under org "
                    f"{existing.org!r}, not {org!r}")
            return existing
        principal = Principal(name, org)
        self._principals[name] = principal
        return principal

    def principals(self) -> tuple[Principal, ...]:
        return tuple(self._principals[n] for n in sorted(self._principals))

    # -- grants ----------------------------------------------------------

    def grant(self, principal: "Principal | str", dapplet_pattern: str,
              verbs: Iterable[str], *, quota: int | None = None) -> Capability:
        """Record a capability; returns the stored :class:`Capability`."""
        cap = Capability(str(principal), dapplet_pattern, tuple(verbs),
                         quota=quota)
        if not cap.verbs:
            raise RegistryError("a capability grant needs >= 1 verb")
        self._grants.setdefault(cap.principal, []).append(cap)
        self._invalidate()
        self.stats.grants += 1
        self._audit("grant", cap.principal, cap.dapplet_pattern,
                    ",".join(cap.verbs))
        return cap

    def revoke(self, principal: "Principal | str", *,
               dapplet_pattern: str | None = None,
               verb: str | None = None) -> int:
        """Delete grants of ``principal``; returns how many were dropped.

        With no filters every grant goes; ``dapplet_pattern`` keeps only
        grants on other patterns; ``verb`` drops grants covering that
        verb (pattern-matched, so revoking ``rpc.call:read`` removes an
        ``rpc.call:*`` grant too).
        """
        held = self._grants.get(str(principal), [])
        kept = [cap for cap in held
                if (dapplet_pattern is not None
                    and cap.dapplet_pattern != dapplet_pattern)
                or (verb is not None
                    and not any(verb_matches(g, verb) for g in cap.verbs))]
        if dapplet_pattern is None and verb is None:
            kept = []
        dropped = len(held) - len(kept)
        if dropped:
            self._grants[str(principal)] = kept
            self._invalidate()
            self.stats.revokes += dropped
            self._audit("revoke", str(principal),
                        dapplet_pattern or "*", verb or "*", dropped=dropped)
        return dropped

    def grants_for(self, principal: "Principal | str") -> tuple[Capability, ...]:
        return tuple(self._grants.get(str(principal), ()))

    # -- the enforcement-point query -------------------------------------

    def check(self, principal: str, target: str, verb: str, *,
              owner: str | None = None, node: Any = None) -> bool:
        """Whether ``principal`` may perform ``verb`` on ``target``.

        ``owner`` is the target's owning principal (owners always pass
        their own dapplets); ``node`` attributes the audit event to the
        enforcing dapplet's address. Decisions are cached until the next
        grant/revoke; every call emits a ``reg`` allow/deny audit event.
        """
        t0 = self._now()
        key = (principal, target, verb, owner)
        allowed = self._cache.get(key)
        if allowed is None:
            self.stats.cache_misses += 1
            allowed = self._evaluate(principal, target, verb, owner)
            self._cache[key] = allowed
            hit = 0
        else:
            self.stats.cache_hits += 1
            hit = 1
        if allowed:
            self.stats.allows += 1
        else:
            self.stats.denies += 1
        tracer = getattr(self._substrate, "tracer", None)
        if tracer is not None:
            tracer.emit("reg", "allow" if allowed else "deny", node=node,
                        principal=principal, verb=verb, target=target,
                        hit=hit, clat=self._now() - t0)
        return allowed

    def quota_for(self, principal: str, target: str, verb: str) -> int | None:
        """The token quota granted for ``verb`` on ``target``.

        The most permissive (largest) quota among matching grants wins;
        ``None`` means no matching grant bounds it (unlimited — but
        :meth:`check` still gates whether any request is allowed at all).
        """
        quotas = [cap.quota for cap in self._grants.get(principal, ())
                  if cap.quota is not None and cap.matches(target, verb)]
        return max(quotas) if quotas else None

    def _evaluate(self, principal: str, target: str, verb: str,
                  owner: str | None) -> bool:
        if owner is not None and principal == owner:
            return True
        return any(cap.matches(target, verb)
                   for cap in self._grants.get(principal, ()))

    # -- plumbing --------------------------------------------------------

    def _invalidate(self) -> None:
        self._cache.clear()
        self.epoch += 1

    def _now(self) -> float:
        return self._substrate.now if self._substrate is not None else 0.0

    def _audit(self, event: str, principal: str, pattern: str, verb: str,
               **fields: Any) -> None:
        tracer = getattr(self._substrate, "tracer", None)
        if tracer is not None:
            tracer.emit("reg", event, principal=principal, target=pattern,
                        verb=verb, **fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grants = sum(len(v) for v in self._grants.values())
        return (f"<Registry principals={len(self._principals)} "
                f"grants={grants} epoch={self.epoch}>")
