"""Principals and capability grants: the multi-tenant identity model.

The paper's protection story stops at per-link session ACLs and token
capabilities. This module supplies the identities those checks were
missing: a :class:`Principal` owns dapplets, and a
:class:`Capability` grants a principal the right to perform *verbs*
against dapplets matching a hierarchical name pattern.

Verbs are dotted action names, optionally qualified after a colon:

* ``session.establish`` — link a session to the target dapplet;
* ``rpc.call:<method>`` — invoke one exported method (``rpc.call:*``
  grants every method);
* ``token.request:<color>`` — request tokens of one colour, optionally
  bounded by the capability's ``quota``.

Dapplet patterns address the DAppStore's ``org/app/instance``
namespace: each ``/``-separated segment is matched literally, ``*``
matches exactly one segment, a trailing ``**`` matches the rest, and
the bare pattern ``"*"`` matches everything.

Grants are *signed-nonce-free*: within one world the transport already
authenticates the sender's node address, so a capability is a plain
fact in the :class:`~repro.registry.registry.Registry` rather than a
bearer token — revocation is deleting the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Principal:
    """An identity that can own dapplets and hold capability grants.

    ``org`` names the principal's namespace segment in the DAppStore
    (``org/app/instance``); it defaults to the principal's own name, so
    solo principals get a personal namespace for free.
    """

    name: str
    org: str = ""

    @property
    def namespace(self) -> str:
        """The top-level DAppStore segment this principal publishes under."""
        return self.org or self.name

    def __str__(self) -> str:
        return self.name


def pattern_matches(pattern: str, name: str) -> bool:
    """Whether ``pattern`` covers the hierarchical dapplet ``name``."""
    if pattern == "*" or pattern == name:
        return True
    want = pattern.split("/")
    have = name.split("/")
    for i, seg in enumerate(want):
        if seg == "**":
            return i < len(have) or i == len(have) == len(want) - 1
        if i >= len(have):
            return False
        if seg != "*" and seg != have[i]:
            return False
    return len(want) == len(have)


def verb_matches(granted: str, verb: str) -> bool:
    """Whether the granted verb covers ``verb``.

    ``"*"`` covers every verb; a grant ending in ``:*`` covers every
    qualifier of its action (``rpc.call:*`` covers ``rpc.call:read``).
    """
    if granted == verb or granted == "*":
        return True
    return granted.endswith(":*") and verb.startswith(granted[:-1])


@dataclass(frozen=True, slots=True)
class Capability:
    """One grant: ``principal`` may perform ``verbs`` on dapplets
    matching ``dapplet_pattern``.

    ``quota``, when set, bounds how many tokens of a matching colour
    the principal may hold at once (enforced by the sharded token
    service for ``token.request:<color>`` verbs; ignored elsewhere).
    """

    principal: str
    dapplet_pattern: str
    verbs: tuple[str, ...] = field(default=())
    quota: int | None = None

    def __post_init__(self) -> None:
        # Accept a Principal (or anything str-able) and any iterable of
        # verbs; normalize so equality and wire forms are canonical.
        object.__setattr__(self, "principal", str(self.principal))
        object.__setattr__(self, "verbs", tuple(self.verbs))

    def matches(self, target: str, verb: str) -> bool:
        """Whether this grant allows ``verb`` against dapplet ``target``."""
        return (pattern_matches(self.dapplet_pattern, target)
                and any(verb_matches(g, verb) for g in self.verbs))
