"""Dapplet manifests and their TTL'd store records.

A :class:`Manifest` is what a principal publishes about one dapplet:
who owns it, what schema its state speaks, which RPC methods it
exports, and which capability verbs a would-be peer must hold. The
DAppStore catalogs manifests under hierarchical ``org/app/instance``
names.

A :class:`ManifestRecord` is the replicated-store row: a
:class:`~repro.discovery.lease.LeaseRecord` (same ``(epoch, version,
tombstone)`` stamp, same relative-TTL wire form, merged by the same
last-writer-wins rule) extended with the manifest payload — the
DAppStore reuses the directory's entire lease/anti-entropy machinery
rather than inventing a second consistency story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.discovery.lease import LeaseRecord
from repro.net.address import NodeAddress

if TYPE_CHECKING:  # pragma: no cover
    from repro.dapplet.dapplet import Dapplet


@dataclass(frozen=True, slots=True)
class Manifest:
    """What the DAppStore knows about one published dapplet."""

    #: Hierarchical store name: ``org/app/instance``.
    name: str
    #: Owning principal's name.
    owner: str
    #: The dapplet's world-unique instance name (directory name).
    dapplet: str
    #: Free-form schema tag for the dapplet's state/messages.
    schema: str = ""
    #: RPC methods the dapplet exports (``rpc.call:<method>`` targets).
    methods: tuple[str, ...] = ()
    #: Capability verbs a peer must hold to link a session.
    requires: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "methods", tuple(self.methods))
        object.__setattr__(self, "requires", tuple(self.requires))

    def to_dict(self) -> dict:
        return {"name": self.name, "owner": self.owner,
                "dapplet": self.dapplet, "schema": self.schema,
                "methods": list(self.methods),
                "requires": list(self.requires)}

    @classmethod
    def from_dict(cls, data: dict) -> "Manifest":
        return cls(name=data["name"], owner=data["owner"],
                   dapplet=data["dapplet"], schema=data.get("schema", ""),
                   methods=tuple(data.get("methods", ())),
                   requires=tuple(data.get("requires", ())))

    @classmethod
    def for_dapplet(cls, dapplet: "Dapplet") -> "Manifest":
        """The manifest a world auto-publishes for an owned dapplet."""
        owner = dapplet.owner
        if owner is None:
            raise ValueError(f"dapplet {dapplet.name!r} has no owner")
        return cls(name=dapplet.manifest_name, owner=owner.name,
                   dapplet=dapplet.name, schema=dapplet.schema,
                   methods=tuple(dapplet.exports),
                   requires=tuple(dapplet.requires))


@dataclass(frozen=True, slots=True)
class ManifestRecord(LeaseRecord):
    """One version-stamped DAppStore row (a lease + its manifest)."""

    manifest: dict = field(default_factory=dict)

    def to_wire(self, now: float) -> dict:
        # Explicit base call: ``dataclass(slots=True)`` rebuilds the
        # class, which breaks zero-argument ``super()``.
        data = LeaseRecord.to_wire(self, now)
        data["m"] = dict(self.manifest)
        return data

    @classmethod
    def from_wire(cls, data: dict, now: float) -> "ManifestRecord":
        return cls(name=data["n"], address=NodeAddress.parse(data["a"]),
                   kind=data["k"], epoch=int(data["e"]),
                   version=int(data["v"]), alive=bool(data["al"]),
                   expires_at=now + float(data["tl"]),
                   manifest=dict(data.get("m", {})))
