"""Wire messages of the DAppStore protocol.

Mirrors the discovery protocol's three conversations on the replicas'
well-known ``_dappstore`` inbox, with manifests riding along:

* **manifest leases** — a publishing agent sends :class:`Publish` /
  :class:`RenewManifest` / :class:`Unpublish`; the replica answers
  :class:`ManifestGrant` or :class:`ManifestDenied`;
* **catalog queries** — :class:`StoreLookup` resolves one hierarchical
  name to its manifest; :class:`StoreList` enumerates a namespace
  prefix;
* **anti-entropy** — replicas exchange :class:`StoreGossip` carrying
  wire-encoded :class:`~repro.registry.manifest.ManifestRecord` rows.

Requests carry a ``req_id`` echoed by the reply so clients that failed
over mid-request can discard answers from a slow earlier replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.messages.message import Message, message_type
from repro.net.address import InboxAddress, NodeAddress


@message_type("reg.publish")
@dataclass(frozen=True)
class Publish(Message):
    """Claim (or re-claim) a store name for a manifest."""

    req_id: int
    name: str
    address: NodeAddress
    manifest: dict
    reply_to: InboxAddress
    epoch_hint: int = 0


@message_type("reg.renew")
@dataclass(frozen=True)
class RenewManifest(Message):
    """Heartbeat extending the manifest lease of ``name``."""

    req_id: int
    name: str
    epoch: int
    reply_to: InboxAddress


@message_type("reg.unpublish")
@dataclass(frozen=True)
class Unpublish(Message):
    """Graceful withdrawal: tombstone the manifest now (no reply)."""

    name: str
    epoch: int


@message_type("reg.manifest_grant")
@dataclass(frozen=True)
class ManifestGrant(Message):
    """The manifest lease is (still) held: valid for ``ttl`` from receipt."""

    req_id: int
    name: str
    epoch: int
    version: int
    ttl: float


@message_type("reg.manifest_denied")
@dataclass(frozen=True)
class ManifestDenied(Message):
    """Publication/renewal refused (``"name-taken"``, ``"stale-epoch"``,
    or ``"unknown"`` — same taxonomy as the directory's lease denials)."""

    req_id: int
    name: str
    reason: str


@message_type("reg.lookup")
@dataclass(frozen=True)
class StoreLookup(Message):
    """Resolve one hierarchical store name to its manifest."""

    req_id: int
    name: str
    reply_to: InboxAddress


@message_type("reg.lookup_reply")
@dataclass(frozen=True)
class StoreReply(Message):
    """Answer to a :class:`StoreLookup`; ``manifest`` is empty when not
    found. ``ttl_left`` bounds how long the caller may cache it."""

    req_id: int
    name: str
    found: bool
    manifest: dict = field(default_factory=dict)
    ttl_left: float = 0.0
    epoch: int = 0


@message_type("reg.list")
@dataclass(frozen=True)
class StoreList(Message):
    """Enumerate live store names under a namespace ``prefix``
    (``""`` lists everything)."""

    req_id: int
    prefix: str
    reply_to: InboxAddress


@message_type("reg.list_reply")
@dataclass(frozen=True)
class StoreListReply(Message):
    """Sorted live names matching the requested prefix."""

    req_id: int
    prefix: str
    names: tuple = ()


@message_type("reg.gossip")
@dataclass(frozen=True)
class StoreGossip(Message):
    """One anti-entropy exchange between store replicas (push-pull)."""

    origin: NodeAddress
    entries: tuple
    want_reply: bool
