"""The DAppStore: a replicated catalog of dapplet manifests.

Each :class:`DAppStoreReplica` is an ordinary dapplet serving the
manifest protocol on its well-known ``_dappstore`` inbox — the same
shape as :class:`~repro.discovery.replica.DirectoryReplica`, and built
on the same lease machinery: manifests live as TTL'd
:class:`~repro.registry.manifest.ManifestRecord` rows, a failure
detector tombstones the rows of silent publishers, and push-pull
anti-entropy gossip (last-writer-wins on the ``(epoch, version,
tombstone)`` stamp) reconciles replicas in a bounded number of rounds.

A :class:`PublishAgent` is the publisher-side sidecar: it claims the
manifest's hierarchical name with one replica (crc32 of the name picks
the home replica), heartbeats renewals, and fails over with a higher
epoch hint when the home replica stops answering — so a crashed-and-
restarted dapplet's fresh agent supersedes its old manifest everywhere.

A :class:`StoreClient` gives any dapplet lookup/list access to the
catalog with replica failover.

Every state change emits a typed ``reg`` trace event.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.dapplet.dapplet import Dapplet
from repro.discovery.lease import LeaseConfig, merge
from repro.errors import AddressError, ReceiveTimeout, RegistryError
from repro.mailbox.outbox import Outbox
from repro.net.address import InboxAddress, NodeAddress
from repro.registry import messages as rm
from repro.registry.manifest import Manifest, ManifestRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.world import World

#: Well-known inbox name every store replica serves the protocol on.
DAPPSTORE_INBOX = "_dappstore"


@dataclass
class StoreStats:
    """Protocol counters for one store replica (all monotonic)."""

    publishes: int = 0
    renewals: int = 0
    denials: int = 0
    unpublishes: int = 0
    expiries: int = 0
    lookups: int = 0
    lookup_hits: int = 0
    lists: int = 0
    gossip_rounds: int = 0
    gossip_merged: int = 0

    def snapshot(self) -> dict[str, int]:
        return dict(vars(self))


class DAppStoreReplica(Dapplet):
    """One replica of the replicated manifest catalog."""

    kind = "dappstore"

    def __init__(self, world: "World", address: NodeAddress, name: str,
                 *, config: LeaseConfig | None = None,
                 peers: Iterable[NodeAddress] = ()) -> None:
        self.config = config or LeaseConfig()
        self._initial_peers = tuple(peers)
        super().__init__(world, address, name)

    def setup(self) -> None:
        #: store name -> newest known ManifestRecord (live or tombstone).
        self.store: dict[str, ManifestRecord] = {}
        self.stats = StoreStats()
        self._peer_ring: list[NodeAddress] = []
        self._gossip_ix = 0
        self._gossiping = False
        self._outboxes: dict[InboxAddress, Outbox] = {}
        self.inbox = self.create_inbox(name=DAPPSTORE_INBOX)
        self.spawn(self._serve(), name="store-serve")
        self.spawn(self._sweep_loop(), name="store-sweep")
        if self._initial_peers:
            self.set_peers(self._initial_peers)

    # -- wiring ----------------------------------------------------------

    def set_peers(self, peers: Iterable[NodeAddress]) -> None:
        """Set the replica ring this replica gossips with (sorted for a
        deterministic round-robin); starts gossip on first use."""
        self._peer_ring = sorted(set(peers))
        if self._peer_ring and not self._gossiping:
            self._gossiping = True
            self.spawn(self._gossip_loop(), name="store-gossip")

    @property
    def peers(self) -> tuple[NodeAddress, ...]:
        return tuple(self._peer_ring)

    # -- views -----------------------------------------------------------

    def live_manifests(self) -> dict[str, Manifest]:
        """The manifests this replica would currently serve, by name."""
        now = self.kernel.now
        return {name: Manifest.from_dict(r.manifest)
                for name, r in sorted(self.store.items()) if r.live_at(now)}

    def names(self, prefix: str = "") -> list[str]:
        """Live store names under ``prefix``, sorted."""
        now = self.kernel.now
        return sorted(r.name for r in self.store.values()
                      if r.live_at(now) and _under(prefix, r.name))

    # -- server ----------------------------------------------------------

    def _serve(self):
        while True:
            msg = yield self.inbox.receive()
            if isinstance(msg, rm.Publish):
                self._on_publish(msg)
            elif isinstance(msg, rm.RenewManifest):
                self._on_renew(msg)
            elif isinstance(msg, rm.Unpublish):
                self._on_unpublish(msg)
            elif isinstance(msg, rm.StoreLookup):
                self._on_lookup(msg)
            elif isinstance(msg, rm.StoreList):
                self._on_list(msg)
            elif isinstance(msg, rm.StoreGossip):
                self._on_gossip(msg)

    def _send(self, to: InboxAddress, message) -> None:
        outbox = self._outboxes.get(to)
        if outbox is None:
            outbox = self._bind_outbox(to)
        result = outbox.send(message)
        if any(r.is_failed for r in result.receipts):
            # Broken channel (e.g. the peer restarted): rebind and retry
            # once; periodic traffic heals the rest.
            self.outboxes.pop(outbox.ref, None)
            del self._outboxes[to]
            self._bind_outbox(to).send(message)

    def _bind_outbox(self, to: InboxAddress) -> Outbox:
        outbox = self.create_outbox()
        outbox.add(to)
        self._outboxes[to] = outbox
        return outbox

    # -- manifest leases -------------------------------------------------

    def _on_publish(self, msg: rm.Publish) -> None:
        now = self.kernel.now
        existing = self.store.get(msg.name)
        if existing is not None and existing.live_at(now) \
                and existing.address != msg.address:
            self.stats.denials += 1
            self._trace("manifest_denied", manifest=msg.name,
                        reason="name-taken")
            self._send(msg.reply_to,
                       rm.ManifestDenied(msg.req_id, msg.name, "name-taken"))
            return
        epoch = max(existing.epoch if existing is not None else 0,
                    msg.epoch_hint) + 1
        owner = str(msg.manifest.get("owner", ""))
        self.store[msg.name] = ManifestRecord(
            msg.name, msg.address, owner, epoch, 0, True,
            now + self.config.ttl, manifest=dict(msg.manifest))
        self.stats.publishes += 1
        self._trace("manifest_grant", manifest=msg.name, epoch=epoch,
                    principal=owner)
        self._send(msg.reply_to, rm.ManifestGrant(
            msg.req_id, msg.name, epoch, 0, self.config.ttl))

    def _on_renew(self, msg: rm.RenewManifest) -> None:
        now = self.kernel.now
        existing = self.store.get(msg.name)
        if existing is None or not existing.alive \
                or existing.epoch != msg.epoch:
            reason = "unknown" if existing is None else "stale-epoch"
            self.stats.denials += 1
            self._trace("manifest_denied", manifest=msg.name, reason=reason)
            self._send(msg.reply_to,
                       rm.ManifestDenied(msg.req_id, msg.name, reason))
            return
        record = replace(existing, version=existing.version + 1,
                         expires_at=now + self.config.ttl)
        self.store[msg.name] = record
        self.stats.renewals += 1
        self._trace("manifest_renew", manifest=msg.name, epoch=record.epoch,
                    version=record.version)
        self._send(msg.reply_to, rm.ManifestGrant(
            msg.req_id, msg.name, record.epoch, record.version,
            self.config.ttl))

    def _on_unpublish(self, msg: rm.Unpublish) -> None:
        existing = self.store.get(msg.name)
        if existing is None or not existing.alive \
                or existing.epoch != msg.epoch:
            return
        self.store[msg.name] = existing.expired(
            self.kernel.now, tombstone_ttl=self.config.tombstone_ttl)
        self.stats.unpublishes += 1
        self._trace("manifest_unpublish", manifest=msg.name, epoch=msg.epoch)

    # -- catalog queries -------------------------------------------------

    def _on_lookup(self, msg: rm.StoreLookup) -> None:
        now = self.kernel.now
        record = self.store.get(msg.name)
        self.stats.lookups += 1
        if record is not None and record.live_at(now):
            self.stats.lookup_hits += 1
            self._send(msg.reply_to, rm.StoreReply(
                msg.req_id, msg.name, True, dict(record.manifest),
                record.expires_at - now, record.epoch))
        else:
            self._send(msg.reply_to,
                       rm.StoreReply(msg.req_id, msg.name, False))

    def _on_list(self, msg: rm.StoreList) -> None:
        self.stats.lists += 1
        self._send(msg.reply_to, rm.StoreListReply(
            msg.req_id, msg.prefix, tuple(self.names(msg.prefix))))

    # -- failure detector ------------------------------------------------

    def _sweep_loop(self):
        while True:
            yield self.kernel.timeout(self.config.sweep_interval)
            if self.stopped:
                return
            self.sweep()

    def sweep(self) -> int:
        """Expire overdue manifest leases; drop overdue tombstones."""
        now = self.kernel.now
        expired = 0
        for name, record in list(self.store.items()):
            if record.alive and record.expires_at <= now:
                self.store[name] = record.expired(
                    now, tombstone_ttl=self.config.tombstone_ttl)
                self.stats.expiries += 1
                expired += 1
                self._trace("manifest_expire", manifest=name,
                            epoch=record.epoch)
            elif not record.alive and record.expires_at <= now:
                del self.store[name]
        return expired

    # -- anti-entropy gossip ---------------------------------------------

    def _gossip_loop(self):
        while True:
            yield self.kernel.timeout(self.config.gossip_interval)
            if self.stopped:
                return
            if not self._peer_ring or not self.store:
                continue
            peer = self._peer_ring[self._gossip_ix % len(self._peer_ring)]
            self._gossip_ix += 1
            now = self.kernel.now
            entries = tuple(r.to_wire(now)
                            for _, r in sorted(self.store.items()))
            self.stats.gossip_rounds += 1
            self._send(InboxAddress(peer, DAPPSTORE_INBOX),
                       rm.StoreGossip(self.address, entries, True))

    def _on_gossip(self, msg: rm.StoreGossip) -> None:
        now = self.kernel.now
        merged = 0
        seen: dict[str, tuple[int, int, int]] = {}
        for data in msg.entries:
            incoming = ManifestRecord.from_wire(data, now)
            seen[incoming.name] = incoming.stamp
            updated = merge(self.store.get(incoming.name), incoming)
            if updated is not None:
                self.store[incoming.name] = updated
                merged += 1
        self.stats.gossip_merged += merged
        self._trace("gossip_sync", peer=str(msg.origin),
                    received=len(msg.entries), merged=merged)
        if msg.want_reply:
            fresher = tuple(
                r.to_wire(now) for name, r in sorted(self.store.items())
                if name not in seen or r.stamp > seen[name])
            if fresher:
                self._send(InboxAddress(msg.origin, DAPPSTORE_INBOX),
                           rm.StoreGossip(self.address, fresher, False))

    # -- plumbing --------------------------------------------------------

    def _trace(self, event: str, **fields) -> None:
        tr = self.kernel.tracer
        if tr is not None:
            tr.emit("reg", event, node=self.address, **fields)


def _under(prefix: str, name: str) -> bool:
    if not prefix:
        return True
    return name == prefix or name.startswith(prefix.rstrip("/") + "/")


class PublishAgent:
    """Keeps one dapplet's manifest lease alive in the DAppStore.

    The publisher-side twin of
    :class:`~repro.discovery.agent.RegistrationAgent`: register with
    the home replica (crc32 of the store name), heartbeat renewals,
    fail over with a rising epoch hint. When the owning dapplet stops —
    or crashes — the heartbeats stop, the lease runs out, and every
    replica tombstones the manifest.
    """

    def __init__(self, dapplet: Dapplet, replicas: Sequence[NodeAddress],
                 *, manifest: Manifest | None = None,
                 config: LeaseConfig | None = None) -> None:
        if not replicas:
            raise RegistryError("PublishAgent needs >= 1 store replica")
        self.dapplet = dapplet
        self.kernel = dapplet.kernel
        self.config = config or LeaseConfig()
        self.replicas = tuple(replicas)
        self.manifest = manifest or Manifest.for_dapplet(dapplet)
        self.name = self.manifest.name
        self._ix = zlib.crc32(self.name.encode()) % len(self.replicas)
        self.epoch = 0
        self.renewals = 0
        self.failovers = 0
        self._req_ids = itertools.count(1)
        self._done = False
        self.inbox = dapplet.create_inbox()
        self._outbox = dapplet.create_outbox()
        self._outbox.add(self._replica_inbox())
        #: Fires (with the granting replica's address) after the first
        #: successful publication.
        self.published = self.kernel.event()
        self.process = dapplet.spawn(self._run(), name="manifest-agent")

    @property
    def replica(self) -> NodeAddress:
        """The replica currently holding this agent's manifest lease."""
        return self.replicas[self._ix % len(self.replicas)]

    def unpublish(self) -> None:
        """Tombstone the manifest now instead of waiting out the TTL."""
        if self._done:
            return
        self._done = True
        if self.epoch and not self.dapplet.stopped:
            try:
                self._outbox.send(rm.Unpublish(self.name, self.epoch))
            except AddressError:
                pass

    # -- the agent process -----------------------------------------------

    def _run(self):
        granted = yield from self._publish()
        if granted:
            yield from self._heartbeat()

    def _publish(self):
        while not self._halted():
            req_id = next(self._req_ids)
            try:
                self._outbox.send(rm.Publish(
                    req_id, self.name, self.dapplet.address,
                    self.manifest.to_dict(), self.inbox.address,
                    epoch_hint=self.epoch))
            except AddressError:
                return False
            reply = yield from self._await_reply(req_id)
            if self._halted():
                return False
            if isinstance(reply, rm.ManifestGrant):
                self.epoch = reply.epoch
                if not self.published.triggered:
                    self.published.succeed(self.replica)
                self._trace("publish", epoch=reply.epoch)
                return True
            if isinstance(reply, rm.ManifestDenied) \
                    and reply.reason == "name-taken":
                # A predecessor's lease (typically our own, pre-restart)
                # is still live; it expires within one TTL.
                yield self.kernel.timeout(self.config.renew_interval)
                continue
            if reply is None:
                self._failover()
        return False

    def _heartbeat(self):
        while True:
            yield self.kernel.timeout(self.config.renew_interval)
            if self._halted():
                return
            req_id = next(self._req_ids)
            try:
                self._outbox.send(rm.RenewManifest(
                    req_id, self.name, self.epoch, self.inbox.address))
            except AddressError:
                return
            reply = yield from self._await_reply(req_id)
            if self._halted():
                return
            if isinstance(reply, rm.ManifestGrant):
                self.renewals += 1
                continue
            if reply is None:
                self._failover()
            # Denied or timed out: the fix is a fresh publication.
            if not (yield from self._publish()):
                return

    def _await_reply(self, req_id: int):
        deadline = self.kernel.now + self.config.request_timeout
        while True:
            remaining = deadline - self.kernel.now
            if remaining <= 0:
                return None
            try:
                msg = yield self.inbox.receive(timeout=remaining)
            except (ReceiveTimeout, AddressError):
                return None
            if isinstance(msg, (rm.ManifestGrant, rm.ManifestDenied)) \
                    and msg.req_id == req_id:
                return msg

    # -- failover --------------------------------------------------------

    def _failover(self) -> None:
        old = self._replica_inbox()
        self._ix += 1
        self.failovers += 1
        self._outbox.delete(old)
        self._outbox.add(self._replica_inbox())
        self._trace("failover", to=str(self.replica))

    def _halted(self) -> bool:
        return self._done or self.dapplet.stopped

    def _replica_inbox(self) -> InboxAddress:
        return InboxAddress(self.replica, DAPPSTORE_INBOX)

    def _trace(self, event: str, **fields) -> None:
        tr = self.kernel.tracer
        if tr is not None:
            tr.emit("reg", event, node=self.dapplet.address,
                    manifest=self.name, **fields)


class StoreClient:
    """Catalog queries (lookup/list) from any dapplet, with failover."""

    def __init__(self, dapplet: Dapplet, replicas: Sequence[NodeAddress],
                 *, config: LeaseConfig | None = None) -> None:
        if not replicas:
            raise RegistryError("StoreClient needs >= 1 store replica")
        self.dapplet = dapplet
        self.kernel = dapplet.kernel
        self.config = config or LeaseConfig()
        self.replicas = tuple(replicas)
        self._ix = 0
        self._req_ids = itertools.count(1)
        self.inbox = dapplet.create_inbox()
        self._outbox = dapplet.create_outbox()
        self._outbox.add(self._replica_inbox())

    def lookup(self, name: str):
        """Resolve ``name``; returns the :class:`Manifest` or ``None``.

        A generator — ``manifest = yield from client.lookup(name)``.
        """
        reply = yield from self._query(
            lambda req_id: rm.StoreLookup(req_id, name, self.inbox.address),
            rm.StoreReply)
        if reply is None or not reply.found:
            return None
        return Manifest.from_dict(reply.manifest)

    def list(self, prefix: str = ""):
        """Live store names under ``prefix`` (sorted tuple)."""
        reply = yield from self._query(
            lambda req_id: rm.StoreList(req_id, prefix, self.inbox.address),
            rm.StoreListReply)
        return tuple(reply.names) if reply is not None else ()

    def _query(self, build, reply_type):
        for _ in range(len(self.replicas)):
            req_id = next(self._req_ids)
            try:
                self._outbox.send(build(req_id))
            except AddressError:
                return None
            deadline = self.kernel.now + self.config.request_timeout
            while True:
                remaining = deadline - self.kernel.now
                if remaining <= 0:
                    break
                try:
                    msg = yield self.inbox.receive(timeout=remaining)
                except (ReceiveTimeout, AddressError):
                    break
                if isinstance(msg, reply_type) and msg.req_id == req_id:
                    return msg
            self._failover()
        return None

    def _failover(self) -> None:
        old = self._replica_inbox()
        self._ix += 1
        self._outbox.delete(old)
        self._outbox.add(self._replica_inbox())

    def _replica_inbox(self) -> InboxAddress:
        return InboxAddress(self.replicas[self._ix % len(self.replicas)],
                            DAPPSTORE_INBOX)
