"""Event objects for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence with a value (or an
exception). Processes wait on events by yielding them; arbitrary code can
wait by registering a callback. Composite events (:class:`AnyOf`,
:class:`AllOf`) fire when any/all of their children have fired.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.kernel import Kernel

_PENDING = object()


class Event:
    """A one-shot occurrence in virtual time.

    Lifecycle: *pending* -> *triggered* (``succeed``/``fail`` called and
    the event is queued) -> *processed* (callbacks have run). An event
    can only be triggered once.
    """

    __slots__ = ("kernel", "callbacks", "_value", "_ok", "defused")

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        #: Callables invoked with this event when it is processed.
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool | None = None
        #: Set to True when a failure has been delivered to a waiter; an
        #: unprocessed failed event with no waiter crashes the run so
        #: errors are never silently dropped.
        self.defused = False

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value or an exception."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError("event is not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise RuntimeError("event is not yet triggered")
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.kernel._enqueue(self, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside any process waiting on the
        event; if nothing ever waits, the kernel surfaces it at
        :meth:`Kernel.run` time.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.kernel._enqueue(self, 0.0)
        return self

    # -- composition ---------------------------------------------------

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.kernel, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.kernel, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` units of virtual time after creation."""

    __slots__ = ("delay",)

    def __init__(self, kernel: "Kernel", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(kernel)
        self.delay = delay
        self._ok = True
        self._value = value
        kernel._enqueue(self, delay)


class _Condition(Event):
    """Common machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, kernel: "Kernel", events: Iterable[Event]) -> None:
        super().__init__(kernel)
        self.events = tuple(events)
        for ev in self.events:
            if ev.kernel is not kernel:
                raise ValueError("cannot mix events from different kernels")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._results())
            return
        for ev in self.events:
            if ev.processed:
                self._child_fired(ev)
            else:
                ev.callbacks.append(self._child_fired)

    def _results(self) -> dict[Event, Any]:
        return {ev: ev.value for ev in self.events if ev.processed and ev.ok}

    def _child_fired(self, event: Event) -> None:
        raise NotImplementedError

    def _fail_from(self, event: Event) -> None:
        event.defused = True
        if not self.triggered:
            self.fail(event.value)


class AnyOf(_Condition):
    """Fires as soon as any child event fires.

    Value: a dict mapping the fired events to their values. A child
    failure fails the condition.
    """

    __slots__ = ()

    def _child_fired(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event.defused = True
            return
        if not event.ok:
            self._fail_from(event)
        else:
            self.succeed(self._results())


class AllOf(_Condition):
    """Fires when every child event has fired.

    Value: a dict mapping all events to their values. The first child
    failure fails the condition immediately.
    """

    __slots__ = ()

    def _child_fired(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event.defused = True
            return
        if not event.ok:
            self._fail_from(event)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._results())
