"""Deterministic discrete-event simulation kernel.

This package is the substrate on which the whole reproduction runs: the
paper's dapplets are Java threads talking over the Internet; here they
are generator coroutines driven by a virtual-time event loop, which
exercises the same blocking/ordering code paths while keeping every run
reproducible from a seed (see DESIGN.md §2 for the substitution
argument).

The programming model is SimPy-like:

* A *process* is a generator function that ``yield``\\ s :class:`Event`
  objects; the kernel resumes the generator when the event fires, sending
  the event's value in (or throwing its exception).
* :meth:`Kernel.timeout` produces an event that fires after a virtual
  delay; :meth:`Kernel.event` produces a manually-triggered event.
* :class:`Store` is a blocking FIFO queue (the building block of the
  paper's inboxes); :class:`Gate` is a broadcast condition.

Determinism: events scheduled for the same instant fire in scheduling
order, and all randomness flows through :class:`RandomStreams`, a tree of
named seeded generators.
"""

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.sim.primitives import Gate, Store
from repro.sim.rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Gate",
    "Kernel",
    "Process",
    "RandomStreams",
    "Store",
    "Timeout",
]
