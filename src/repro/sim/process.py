"""Processes: generator coroutines driven by the kernel.

A process plays the role of a Java thread in the paper's implementation.
Its body is a generator that yields :class:`~repro.sim.events.Event`
objects; the kernel resumes it with the event's value (or throws the
event's exception into it). A process is itself an event that fires when
the generator returns, so processes can ``yield`` other processes to
join them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import InterruptError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel

ProcessBody = Generator[Event, Any, Any]


class Process(Event):
    """A running generator coroutine.

    Created via :meth:`Kernel.process`. As an event, it succeeds with the
    generator's return value, or fails with the generator's unhandled
    exception (wrapped in :class:`ProcessCrashed` when surfaced by the
    kernel).
    """

    __slots__ = ("body", "name", "_waiting_on")

    def __init__(self, kernel: "Kernel", body: ProcessBody,
                 name: str | None = None) -> None:
        if not hasattr(body, "send") or not hasattr(body, "throw"):
            raise TypeError(
                f"process body must be a generator, got {type(body).__name__}; "
                "did you forget to call the generator function?")
        super().__init__(kernel)
        self.body = body
        self.name = name or getattr(body, "__name__", "process")
        self._waiting_on: Event | None = None
        kernel._register_process(self)
        # Bootstrap: resume the generator at time-now with a trivial event.
        start = Event(kernel)
        start.callbacks.append(self._resume)
        start.succeed(None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not yet finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptError` into the process.

        Mirrors ``Thread.interrupt`` in the paper's Java substrate: a
        process blocked on any event is woken with the exception; the
        interrupted wait is cancelled.
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        target = self._waiting_on
        if target is None:
            raise RuntimeError(
                f"process {self.name!r} is not waiting; cannot interrupt")
        # Detach from the event we were waiting on, then resume with the
        # interrupt as a failed one-shot event.
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        wake = Event(self.kernel)
        wake.callbacks.append(self._resume)
        wake.fail(InterruptError(cause))

    # -- kernel plumbing -------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event.ok:
                target = self.body.send(event.value)
            else:
                event.defused = True
                target = self.body.throw(event.value)
        except StopIteration as stop:
            self.kernel._unregister_process(self)
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - crash is recorded
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.kernel._unregister_process(self)
            # Fail with the *original* exception so joiners can catch the
            # domain type; the kernel wraps it in ProcessCrashed only if
            # nobody ever handles it.
            self.fail(exc)
            return

        if not isinstance(target, Event):
            crash = TypeError(f"process {self.name!r} yielded {target!r}, "
                              "which is not an Event")
            self.kernel._unregister_process(self)
            try:
                self.body.close()
            finally:
                self.fail(crash)
            return
        if target.kernel is not self.kernel:
            raise RuntimeError("process yielded an event from another kernel")

        self._waiting_on = target
        if target.callbacks is None:
            # Already processed: resume immediately (same instant).
            wake = Event(self.kernel)
            wake.callbacks.append(self._resume)
            if target.ok:
                wake.succeed(target.value)
            else:
                target.defused = True
                wake.fail(target.value)
        else:
            target.callbacks.append(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.is_alive else ("ok" if self.ok else "crashed")
        return f"<Process {self.name!r} {state}>"
