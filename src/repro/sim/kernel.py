"""The discrete-event kernel: virtual clock plus event queue.

One :class:`Kernel` instance hosts an entire simulated world — every
node, dapplet, network link and service of a run. Time is a float (we
interpret it as seconds throughout the package). Events scheduled for the
same instant are processed in scheduling order, which together with
seeded randomness (:mod:`repro.sim.rng`) makes whole-system runs
bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import time as _wallclock
from typing import Any, Callable, Iterable

from repro.errors import ProcessCrashed, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessBody
from repro.sim.rng import RandomStreams

# Bound once at import: the event queue push/pop run for every single
# event of every run, where even the ``heapq.`` attribute lookup shows
# up in profiles.
_heappush = heapq.heappush
_heappop = heapq.heappop


class Kernel:
    """Virtual-time event loop.

    Parameters
    ----------
    seed:
        Root seed for :attr:`rng`, the tree of named random streams. Two
        kernels with the same seed and the same program produce identical
        traces.
    realtime:
        If true, :meth:`run` sleeps so that virtual time advances no
        faster than wall-clock time scaled by ``realtime_factor``. Used
        by the examples to make WAN delays tangible; benchmarks and tests
        always run at full speed.
    realtime_factor:
        Virtual seconds per wall-clock second in realtime mode.
    """

    def __init__(self, seed: int = 0, *, realtime: bool = False,
                 realtime_factor: float = 1.0) -> None:
        self.now: float = 0.0
        self.rng = RandomStreams(seed)
        self._queue: list[tuple[float, int, Event]] = []
        self._sequence = 0
        self._processes: set[Process] = set()
        self._realtime = realtime
        self._realtime_factor = realtime_factor
        #: Monitors notified of every processed event (used by tests and
        #: by execution monitors such as the interference checker).
        self.trace_hooks: list[Callable[[float, Event], None]] = []
        #: Optional :class:`repro.obs.Tracer`; every layer's emit sites
        #: are guarded by ``tracer is not None`` so the unattached fast
        #: path costs one attribute load and a branch.
        self.tracer = None

    # -- event constructors ---------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` virtual seconds from now."""
        return Timeout(self, delay, value)

    def process(self, body: ProcessBody, name: str | None = None) -> Process:
        """Start a generator coroutine as a process."""
        return Process(self, body, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ------------------------------------------------------

    def _enqueue(self, event: Event, delay: float) -> None:
        self._sequence += 1
        _heappush(self._queue, (self.now + delay, self._sequence, event))
        tr = self.tracer
        if tr is not None:
            tr.emit("kernel", "schedule", at=self.now + delay,
                    kind=type(event).__name__)

    def call_later(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` virtual seconds (fire-and-forget)."""
        ev = self.timeout(delay)
        ev.callbacks.append(lambda _ev: fn())
        return ev

    def _register_process(self, process: Process) -> None:
        self._processes.add(process)

    def _unregister_process(self, process: Process) -> None:
        self._processes.discard(process)

    @property
    def active_process_count(self) -> int:
        """Number of processes that have not yet finished."""
        return len(self._processes)

    # -- the loop --------------------------------------------------------

    def step(self) -> None:
        """Process exactly one event. Raises ``IndexError`` if idle."""
        at, _seq, event = _heappop(self._queue)
        if self._realtime:
            lag = (at - self.now) / self._realtime_factor
            if lag > 0:
                _wallclock.sleep(lag)
        self.now = at
        tr = self.tracer
        if tr is not None:
            tr.emit("kernel", "fire", kind=type(event).__name__)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event.ok and not event.defused:
            exc = event.value
            if isinstance(exc, ProcessCrashed):
                raise exc
            crash = ProcessCrashed(
                f"unhandled failure in simulation at t={self.now:.6f}: {exc!r}")
            raise crash from exc
        for hook in self.trace_hooks:
            hook(self.now, event)

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain (quiescence);
        * a number — run until virtual time reaches it;
        * an :class:`Event` — run until that event is processed, then
          return its value (raising its exception if it failed). Passing
          a :class:`Process` therefore runs until the process finishes
          and returns its result.
        """
        if until is None:
            step, queue = self.step, self._queue
            while queue:
                step()
            return None

        if isinstance(until, Event):
            target = until
            finished: list[Event] = []
            def _capture(ev: Event) -> None:
                # The caller handles this event's outcome (re-raised
                # below), so a failure here is not "unhandled".
                ev.defused = True
                finished.append(ev)

            if target.processed:
                finished.append(target)
            else:
                target.callbacks.append(_capture)
            step, queue = self.step, self._queue
            while not finished and queue:
                step()
            if not finished:
                raise SimulationError(
                    f"simulation ran out of events at t={self.now:.6f} before "
                    f"{target!r} fired; {self.active_process_count} process(es) "
                    "still blocked (possible deadlock)")
            if target.ok:
                return target.value
            target.defused = True
            raise target.value

        deadline = float(until)
        if deadline < self.now:
            raise ValueError(f"until={deadline} is in the past (now={self.now})")
        step, queue = self.step, self._queue
        while queue and queue[0][0] <= deadline:
            step()
        self.now = deadline
        return None

    @property
    def idle(self) -> bool:
        """True when no events are pending."""
        return not self._queue

    def peek(self) -> float:
        """Virtual time of the next pending event (``inf`` when idle)."""
        return self._queue[0][0] if self._queue else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Kernel t={self.now:.6f} pending={len(self._queue)} "
                f"processes={len(self._processes)}>")
