"""Blocking coordination primitives for processes on one kernel.

These are the kernel-level building blocks from which the paper-level
constructs are made: :class:`Store` backs inboxes (a FIFO queue with a
blocking ``get``), and :class:`Gate` backs broadcast conditions such as
``awaitNonEmpty`` wake-ups and barrier releases.

These primitives coordinate *processes within one kernel*; the
paper-level synchronization constructs for threads within a dapplet live
in :mod:`repro.services.sync.local` and the cross-dapplet ones in
:mod:`repro.services.sync.distributed`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel


class Store:
    """An unbounded FIFO queue with blocking ``get``.

    ``put`` never blocks (the paper's channels have unbounded buffering;
    outboxes/inboxes are unbounded message queues). ``get`` returns an
    event that fires with the oldest item as soon as one is available —
    immediately if the store is non-empty. Waiting getters are served in
    FIFO order.
    """

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._drain_scheduled = False
        #: Optional observer called with each item as it is handed to a
        #: getter (inboxes use it to trace dequeues at the true moment
        #: of consumption, whichever path — immediate get or drain —
        #: served the item).
        self.on_get: "Any | None" = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    def put(self, item: Any) -> None:
        """Append ``item``; wakes the oldest waiting getter, if any.

        The item stays visible in the queue until the getter's wake-up
        event is processed (a zero-delay drain). This matters for
        consistency: observers that inspect the queue synchronously
        during a delivery cascade (e.g. snapshot state functions) must
        never see an item vanish into a not-yet-resumed process.
        """
        self._items.append(item)
        self._schedule_drain()

    def put_front(self, item: Any) -> None:
        """Prepend ``item`` (used to undo a consumed-but-unwanted get)."""
        self._items.appendleft(item)
        self._schedule_drain()

    def get(self) -> Event:
        """An event firing with the item at the head of the queue."""
        ev = Event(self.kernel)
        if self._items and not self._getters:
            item = self._items.popleft()
            if self.on_get is not None:
                self.on_get(item)
            ev.succeed(item)
        else:
            self._getters.append(ev)
            self._schedule_drain()
        return ev

    def _schedule_drain(self) -> None:
        if self._getters and self._items and not self._drain_scheduled:
            self._drain_scheduled = True
            self.kernel.call_later(0.0, self._drain)

    def _drain(self) -> None:
        self._drain_scheduled = False
        while self._getters and self._items:
            item = self._items.popleft()
            if self.on_get is not None:
                self.on_get(item)
            self._getters.popleft().succeed(item)
        self._schedule_drain()

    def peek(self) -> Any:
        """The head item without removing it (raises if empty)."""
        if not self._items:
            raise LookupError("store is empty")
        return self._items[0]

    def cancel(self, event: Event) -> None:
        """Withdraw a pending ``get`` (used by timed receives)."""
        try:
            self._getters.remove(event)
        except ValueError:
            pass


class Gate:
    """A broadcast condition: ``wait()`` events all fire on ``open()``.

    After ``open()`` the gate stays open (subsequent waits return
    immediately) until ``reset()``. The value passed to ``open`` becomes
    each waiter's event value.
    """

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self._waiters: list[Event] = []
        self._open = False
        self._value: Any = None

    @property
    def is_open(self) -> bool:
        return self._open

    def wait(self) -> Event:
        ev = Event(self.kernel)
        if self._open:
            ev.succeed(self._value)
        else:
            self._waiters.append(ev)
        return ev

    def open(self, value: Any = None) -> None:
        if self._open:
            return
        self._open = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(value)

    def reset(self) -> None:
        self._open = False
        self._value = None
