"""Named, seeded random streams.

Every source of randomness in the simulated world (each network link's
latency model, each fault injector, each application workload) draws from
its own named stream derived deterministically from the kernel's root
seed. This keeps components statistically independent while making whole
runs reproducible, and — critically for benchmarking — means adding a new
random consumer does not perturb the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random


class RandomStreams:
    """A tree of independent :class:`random.Random` generators.

    ``streams.get("net/link/caltech->rice")`` always returns the same
    generator object for the same name, seeded by a SHA-256 hash of the
    root seed and the name.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """The generator for ``name``, created on first use."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(
                f"{self.seed}\x00{name}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomStreams":
        """A child tree rooted at ``name`` (for nested components)."""
        digest = hashlib.sha256(f"{self.seed}\x00fork\x00{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStreams seed={self.seed} streams={len(self._streams)}>"
