"""Exception hierarchy for the ``repro`` distributed-system layer.

The paper specifies several situations that must surface as exceptions
rather than silent failures:

* a message not delivered within a specified time (outbox ``send``),
* deleting an inbox address that is not bound (outbox ``delete``),
* releasing tokens the dapplet does not hold (token manager ``release``),
* a deadlock among token requests (token manager ``request``).

Every exception raised by this package derives from :class:`ReproError`
so applications can catch the whole family with one handler.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event kernel."""


class ProcessCrashed(SimulationError):
    """A simulated process terminated with an unhandled exception.

    The original exception is available as ``__cause__``.
    """


class InterruptError(SimulationError):
    """Raised inside a process when another process interrupts it.

    Mirrors the thread-interruption facility the paper's Java
    implementation inherits from ``java.lang.Thread``.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class AddressError(ReproError):
    """An address is malformed, unknown, or already in use."""


class TransportError(ReproError):
    """Base class for transport-layer failures (framing, codec, channel).

    Separates wire/codec problems from :class:`AddressError` (which is
    about address *values*, not frames): :class:`repro.net.wire.FrameError`
    is a :class:`WireFormatError` only. Catch :class:`TransportError` (or
    :class:`WireFormatError`) for codec failures.
    """


class WireFormatError(TransportError):
    """A frame could not be encoded to or decoded from its wire bytes."""


class PayloadTooLarge(WireFormatError):
    """A single payload cannot fit one frame even unbatched.

    Raised (or carried by a failed delivery receipt) at *send* time on
    every substrate, so the simulated network and real UDP sockets agree
    on the frame-size ceiling instead of diverging at encode time.
    ``limit`` is the ceiling (:data:`repro.net.wire.MAX_FRAME_BYTES`),
    ``size`` the frame size the payload would have needed.
    """

    def __init__(self, message: str, *, size: int = 0,
                 limit: int = 0) -> None:
        super().__init__(message)
        self.size = size
        self.limit = limit


class SerializationError(ReproError):
    """A message could not be converted to or from its wire string."""


class StoreError(ReproError):
    """A durable-storage invariant was violated.

    Torn WAL tails are *not* errors (recovery tolerates them by
    construction); this covers genuine misuse or corruption — a snapshot
    object that is not one clean checksummed record, attaching two
    durable layers to one state, journaling through a crashed backend.
    """


class BackendCrash(StoreError):
    """An injected crash point fired inside a storage backend.

    Raised by :class:`repro.store.CrashPoint`-instrumented backends the
    moment the configured byte or record budget is exhausted; the write
    in flight is applied only up to the budget (a torn tail), and every
    later operation raises again until the backend's
    ``reset_crash()`` is called — modelling a host that died and was
    then restarted against the same disk. ``at_byte`` is the total
    durable byte count at which the crash fired.
    """

    def __init__(self, message: str, *, at_byte: int = 0) -> None:
        super().__init__(message)
        self.at_byte = at_byte


class DeliveryTimeout(ReproError):
    """A message was not delivered within the specified time.

    The paper: "if a message is not delivered within a specified time an
    exception is raised".
    """

    def __init__(self, message: str, *, destination: object = None,
                 timeout: float | None = None) -> None:
        super().__init__(message)
        self.destination = destination
        self.timeout = timeout


class ReceiveTimeout(ReproError):
    """A timed ``receive`` on an inbox expired before a message arrived."""

    def __init__(self, message: str, *, timeout: float | None = None) -> None:
        super().__init__(message)
        self.timeout = timeout


class BindingError(ReproError):
    """An outbox binding operation failed.

    The paper: ``delete(ipa)`` "removes the specified global address from
    the list inboxes if it is in the list and otherwise throws an
    exception".
    """


class DappletError(ReproError):
    """A dapplet lifecycle or configuration error."""


class SessionError(ReproError):
    """A session could not be established, grown, shrunk or terminated."""


class SessionRejected(SessionError):
    """A participant rejected a link request.

    Carries the participant and the machine-readable reason:
    ``"acl"`` — requester not on the access-control list, or
    ``"interference"`` — a concurrent session would interfere (the two
    rejection causes the paper enumerates), or
    ``"capability:<verb>"`` — the initiating principal lacks a registry
    grant for ``<verb>`` on an owned member (see :mod:`repro.registry`).
    """

    def __init__(self, message: str, *, participant: object = None,
                 reason: str = "") -> None:
        super().__init__(message)
        self.participant = participant
        self.reason = reason


class InterferenceError(SessionError):
    """Two sessions with conflicting state regions were scheduled together."""


class RpcError(ReproError):
    """A remote invocation failed at the callee; carries the remote reason."""

    def __init__(self, message: str, *, remote_type: str = "",
                 remote_message: str = "") -> None:
        super().__init__(message)
        self.remote_type = remote_type
        self.remote_message = remote_message


class RpcTimeout(RpcError):
    """A synchronous remote call did not return within its timeout."""


class TokenError(ReproError):
    """An invalid token operation (e.g. releasing tokens not held)."""


class DeadlockDetected(TokenError):
    """The token managers detected a deadlock among blocked requests.

    ``cycle`` lists the dapplet identifiers on the detected wait-for
    cycle, in order.
    """

    def __init__(self, message: str, *, cycle: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.cycle = tuple(cycle)


class DiscoveryError(ReproError):
    """A discovery-subsystem configuration or protocol error."""


class LeaseExpired(DiscoveryError):
    """Resolution failed because the name has no live lease.

    Raised by :meth:`repro.discovery.Resolver.resolve` when a replica
    answers authoritatively that the name is unknown, expired, or
    unregistered. ``name`` is the name that failed to resolve.
    """

    def __init__(self, message: str, *, name: str = "") -> None:
        super().__init__(message)
        self.name = name


class RegistryError(ReproError):
    """A registry-subsystem configuration or protocol error."""


class CapabilityDenied(RegistryError):
    """A capability check refused the requested action.

    ``principal`` is the requester, ``verb`` the denied verb (e.g.
    ``"rpc.call:read"`` or ``"token.request:gold"``), ``target`` the
    dapplet or resource the verb was checked against. The same denial
    surfaces as ``SessionRejected(reason="capability:<verb>")`` on the
    session path and as a ``PermissionError``-typed
    :class:`RpcError` on the RPC path; token requests raise this
    directly.
    """

    def __init__(self, message: str, *, principal: str = "",
                 verb: str = "", target: str = "") -> None:
        super().__init__(message)
        self.principal = principal
        self.verb = verb
        self.target = target


class ClockError(ReproError):
    """A logical-clock or snapshot protocol error."""


class SynchronizationError(ReproError):
    """An intra- or inter-dapplet synchronization construct was misused."""


class SingleAssignmentError(SynchronizationError):
    """A single-assignment variable was written more than once."""
