"""Wire messages of the RPC protocol."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.messages.message import Message, message_type
from repro.net.address import InboxAddress


@message_type("rpc.invoke")
@dataclass(frozen=True)
class Invoke(Message):
    """A method invocation. ``reply_to`` of ``None`` makes it one-way."""

    call_id: int
    method: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    reply_to: "InboxAddress | None" = None
    #: Calling dapplet's owning principal ("" when unowned). Owned
    #: callees check ``rpc.call:<method>`` against it; the default
    #: keeps pre-registry frames serializing byte-identically.
    principal: str = ""


@message_type("rpc.reply")
@dataclass(frozen=True)
class Reply(Message):
    call_id: int
    ok: bool
    value: object = None
    error_type: str = ""
    error_message: str = ""
