"""Global pointers and remote procedure calls.

The paper (§3.2, "Communication Layer Features"): "Associate an inbox
*b* with an object *p*. Messages in *b* are directions to invoke
appropriate methods on *p*. Associate a thread with *b* and *p*: the
thread receives a message from *b* and then invokes the method specified
in the message on *p*. Thus the address of the inbox serves as a global
pointer to an object associated with the inbox, and messages serve the
role of asynchronous RPCs. Synchronous RPCs are implemented as pairwise
asynchronous RPCs."

:func:`export` publishes an object exactly that way and returns its
global pointer (an inbox address); :class:`RemoteProxy` invokes methods
through a pointer, one-way (:meth:`~RemoteProxy.invoke`) or
request/reply (:meth:`~RemoteProxy.call`).
"""

from repro.rpc.remote import RemoteObject, export
from repro.rpc.proxy import RemoteProxy

__all__ = ["RemoteObject", "RemoteProxy", "export"]
