"""The caller side: invoking through a global pointer.

``invoke`` is the paper's asynchronous RPC — a message, nothing comes
back. ``call`` is the synchronous form, "implemented as pairwise
asynchronous RPCs": the proxy attaches a reply-to inbox and a call id,
and a dispatcher thread matches replies to waiting callers.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any

from repro.errors import RpcError, RpcTimeout
from repro.net.address import InboxAddress
from repro.rpc.messages import Invoke, Reply
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.dapplet.dapplet import Dapplet


class RemoteProxy:
    """A handle on a remote object, given its global pointer."""

    def __init__(self, dapplet: "Dapplet", pointer: InboxAddress) -> None:
        self.dapplet = dapplet
        self.kernel = dapplet.kernel
        self.pointer = pointer
        self._outbox = dapplet.create_outbox()
        self._outbox.add(pointer)
        self._reply_inbox = dapplet.create_inbox()
        self._call_ids = itertools.count(1)
        self._pending: dict[int, Event] = {}
        self.calls_sent = 0
        self._dispatcher = dapplet.spawn(self._dispatch(),
                                         name=f"rpc-proxy:{pointer}")

    @property
    def _principal(self) -> str:
        """The owning principal every Invoke is stamped with ("" when
        the calling dapplet is unowned)."""
        owner = self.dapplet.owner
        return owner.name if owner is not None else ""

    def invoke(self, method: str, *args: Any, **kwargs: Any) -> None:
        """Asynchronous RPC: send and forget."""
        self.calls_sent += 1
        self._outbox.send(Invoke(call_id=next(self._call_ids), method=method,
                                 args=args, kwargs=kwargs, reply_to=None,
                                 principal=self._principal))

    def call(self, method: str, *args: Any, timeout: float | None = None,
             **kwargs: Any) -> Event:
        """Synchronous RPC: an event that fires with the return value.

        Yield it from a process. Fails with :class:`RpcError` if the
        callee raised (carrying the remote exception type and message),
        or :class:`RpcTimeout` if no reply arrives in ``timeout``.
        """
        call_id = next(self._call_ids)
        self.calls_sent += 1
        result = self.kernel.event()
        self._pending[call_id] = result
        self._outbox.send(Invoke(call_id=call_id, method=method, args=args,
                                 kwargs=kwargs,
                                 reply_to=self._reply_inbox.address,
                                 principal=self._principal))
        if timeout is not None:
            def expire() -> None:
                pending = self._pending.pop(call_id, None)
                if pending is not None and not pending.triggered:
                    pending.fail(RpcTimeout(
                        f"call {method!r} on {self.pointer} timed out "
                        f"after {timeout}s"))
            self.kernel.call_later(timeout, expire)
        return result

    def _dispatch(self):
        while True:
            msg = yield self._reply_inbox.receive()
            if not isinstance(msg, Reply):
                continue
            waiter = self._pending.pop(msg.call_id, None)
            if waiter is None or waiter.triggered:
                continue  # late reply after timeout: drop
            if msg.ok:
                waiter.succeed(msg.value)
            else:
                waiter.fail(RpcError(
                    f"remote call failed: {msg.error_type}: "
                    f"{msg.error_message}",
                    remote_type=msg.error_type,
                    remote_message=msg.error_message))

    def close(self) -> None:
        """Stop dispatching; outstanding calls will time out."""
        self.dapplet.close_inbox(self._reply_inbox)
