"""The callee side: exporting an object behind an inbox.

Only public methods (no leading underscore) are invocable; on an
*owned* dapplet the calling principal must additionally hold an
``rpc.call:<method>`` capability grant (see :mod:`repro.registry`).
The server thread applies one invocation at a time, so exported objects
get the paper's monitor-like mutual exclusion for free within one
export. A callee exception is reported back to synchronous callers (and
counted but dropped for one-way invocations, matching fire-and-forget
semantics).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.mailbox.outbox import Outbox
from repro.net.address import InboxAddress
from repro.rpc.messages import Invoke, Reply

if TYPE_CHECKING:  # pragma: no cover
    from repro.dapplet.dapplet import Dapplet


class RemoteObject:
    """An object published behind an inbox; the inbox address is the
    paper's *global pointer* to it."""

    def __init__(self, dapplet: "Dapplet", obj: Any,
                 name: str | None = None) -> None:
        self.dapplet = dapplet
        self.obj = obj
        self.inbox = dapplet.create_inbox(name=name)
        self._reply_outboxes: dict[InboxAddress, Outbox] = {}
        self.invocations = 0
        self.errors = 0
        self.server = dapplet.spawn(self._serve(), name=f"export:{name or id(obj)}")

    @property
    def pointer(self) -> InboxAddress:
        """The global pointer callers hand to :class:`RemoteProxy`."""
        return self.inbox.named_address if self.inbox.name else self.inbox.address

    def _serve(self):
        while True:
            msg = yield self.inbox.receive()
            if not isinstance(msg, Invoke):
                continue  # stray message; global pointers ignore noise
            self.invocations += 1
            reply = self._apply(msg)
            if msg.reply_to is not None:
                self._send_reply(msg.reply_to, reply)

    def _apply(self, msg: Invoke) -> Reply:
        if msg.method.startswith("_"):
            self.errors += 1
            return Reply(msg.call_id, ok=False, error_type="PermissionError",
                         error_message=f"method {msg.method!r} is not public")
        owner = self.dapplet.owner
        if owner is not None:
            # Owned exporter: the calling principal needs a per-method
            # grant (audited as a reg allow/deny event either way).
            verb = f"rpc.call:{msg.method}"
            if not self.dapplet.world.registry.check(
                    msg.principal, self.dapplet.manifest_name, verb,
                    owner=owner.name, node=self.dapplet.address):
                self.errors += 1
                return Reply(
                    msg.call_id, ok=False, error_type="PermissionError",
                    error_message=f"capability:{verb} denied for "
                                  f"principal {msg.principal!r}")
        method = getattr(self.obj, msg.method, None)
        if method is None or not callable(method):
            self.errors += 1
            return Reply(msg.call_id, ok=False, error_type="AttributeError",
                         error_message=f"no remote method {msg.method!r}")
        try:
            value = method(*msg.args, **msg.kwargs)
        except Exception as exc:  # noqa: BLE001 - reported to the caller
            self.errors += 1
            return Reply(msg.call_id, ok=False,
                         error_type=type(exc).__name__,
                         error_message=str(exc))
        return Reply(msg.call_id, ok=True, value=value)

    def _send_reply(self, to: InboxAddress, reply: Reply) -> None:
        outbox = self._reply_outboxes.get(to)
        if outbox is None:
            outbox = self.dapplet.create_outbox()
            outbox.add(to)
            self._reply_outboxes[to] = outbox
        outbox.send(reply)

    def unexport(self) -> None:
        """Withdraw the object; the pointer dangles from then on."""
        self.dapplet.close_inbox(self.inbox)


def export(dapplet: "Dapplet", obj: Any, name: str | None = None) -> RemoteObject:
    """Publish ``obj`` on ``dapplet``; see :class:`RemoteObject`."""
    return RemoteObject(dapplet, obj, name=name)
