"""The real substrate: asyncio event loop + real UDP sockets.

The paper's layer ran over UDP on the real Internet between Caltech,
Rice, Tennessee and Australia. :class:`AsyncioSubstrate` is that
deployment mode for this reproduction: the same generator processes,
events, endpoints, mailboxes and dapplets run unmodified, but ``now`` is
wall-clock time, timers are asyncio timers, and every
:class:`~repro.net.datagram.Datagram` is encoded by
:mod:`repro.net.wire` and put on a real UDP socket.

Scheduling semantics mirror the kernel's: an event is *triggered*
(``succeed``/``fail``), then its callbacks run in a loop callback; an
unhandled failed event aborts the run with
:class:`~repro.errors.ProcessCrashed`, exactly as
:meth:`repro.sim.Kernel.step` would. What changes is only what must:
time is real so same-instant ordering is best-effort, and quiescence is
a heuristic (an idle grace window) because real packets are invisible
until they arrive.

:class:`UdpDatagramService` keeps a local route table from virtual node
addresses (``host:port`` in paper terms) to the real socket addresses
they are bound to. In-process nodes are routed automatically on
``register``; peers in other processes can be wired in with
:meth:`UdpDatagramService.add_route`. An optional
:class:`~repro.net.faults.FaultPlan` injects loss/duplication/jitter at
the sender — same plan object, same named RNG streams as the simulated
network — so loss-recovery behaviour is testable on real sockets.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Callable, Iterable

from repro.errors import ProcessCrashed, SimulationError
from repro.net.address import NodeAddress
from repro.net.datagram import Datagram, NetworkStats
from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency
from repro.net.wire import FrameError, decode_frame, encode_frame
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessBody
from repro.sim.rng import RandomStreams

#: Assumed one-way loopback delay; only used to size initial RTOs.
LOOPBACK_LATENCY_HINT = 0.005


class AsyncioSubstrate:
    """Wall-clock substrate over an asyncio event loop and UDP sockets.

    Parameters
    ----------
    seed:
        Root seed for :attr:`rng` (application randomness and fault
        injection stay reproducible even though packet timing is not).
    bind_host:
        Real interface the per-node sockets bind to (default loopback).
    faults:
        Optional :class:`FaultPlan` applied to outgoing datagrams —
        deliberate loss/duplication/jitter for tests and demos.
    loop:
        An existing event loop to schedule on; a fresh one is created
        (and owned, i.e. closed by :meth:`close`) when omitted.
    """

    def __init__(self, seed: int = 0, *, bind_host: str = "127.0.0.1",
                 faults: FaultPlan | None = None,
                 loop: asyncio.AbstractEventLoop | None = None) -> None:
        self.rng = RandomStreams(seed)
        self._loop = loop if loop is not None else asyncio.new_event_loop()
        self._owns_loop = loop is None
        self._epoch = self._loop.time()
        self._processes: set[Process] = set()
        self._pending = 0
        self._crash: BaseException | None = None
        self._run_future: asyncio.Future | None = None
        self._quiescing = False
        self._idle_grace = 0.05
        self.closed = False
        #: Monitors notified of every processed event (kernel parity).
        self.trace_hooks: list[Callable[[float, Event], None]] = []
        #: Optional :class:`repro.obs.Tracer` (kernel parity).
        self.tracer = None
        #: Armed timer handles, cancelled by :meth:`close` so a closed
        #: substrate never leaks timers into a caller-owned loop.
        self._handles: set[asyncio.TimerHandle] = set()
        #: The datagram half of the substrate.
        self.datagrams = UdpDatagramService(self, bind_host=bind_host,
                                            faults=faults)

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Seconds of wall-clock time since this substrate was created."""
        return self._loop.time() - self._epoch

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    # -- event constructors (kernel-identical API) -----------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` real seconds from now."""
        return Timeout(self, delay, value)

    def process(self, body: ProcessBody, name: str | None = None) -> Process:
        """Start a generator coroutine as a process."""
        return Process(self, body, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def call_later(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` real seconds (fire-and-forget)."""
        ev = self.timeout(delay)
        ev.callbacks.append(lambda _ev: fn())
        return ev

    # -- plumbing used by Event/Process ----------------------------------

    def _enqueue(self, event: Event, delay: float) -> None:
        if self.closed:
            # Teardown race: layers above may still trigger events while
            # shutting down (e.g. Endpoint.close failing receipts after
            # the substrate was closed). The loop may already be gone;
            # dropping the schedule is correct — nothing runs a closed
            # substrate, and the events' values stay readable.
            return
        self._pending += 1
        tr = self.tracer
        if tr is not None:
            tr.emit("kernel", "schedule", at=self.now + delay,
                    kind=type(event).__name__)
        handle: asyncio.TimerHandle | None = None

        def run() -> None:
            self._handles.discard(handle)
            self._process_event(event)

        handle = self._loop.call_later(max(0.0, delay), run)
        self._handles.add(handle)

    def _register_process(self, process: Process) -> None:
        self._processes.add(process)

    def _unregister_process(self, process: Process) -> None:
        self._processes.discard(process)

    @property
    def active_process_count(self) -> int:
        """Number of processes that have not yet finished."""
        return len(self._processes)

    # -- the loop --------------------------------------------------------

    def _process_event(self, event: Event) -> None:
        self._pending -= 1
        if self._crash is not None:
            return
        tr = self.tracer
        if tr is not None:
            tr.emit("kernel", "fire", kind=type(event).__name__)
        callbacks, event.callbacks = event.callbacks, None
        try:
            for callback in callbacks:
                callback(event)
        except BaseException as exc:  # noqa: BLE001 - surfaced to run()
            self._report_crash(exc)
            return
        if not event.ok and not event.defused:
            exc = event.value
            if isinstance(exc, ProcessCrashed):
                self._report_crash(exc)
            else:
                crash = ProcessCrashed(
                    f"unhandled failure at t={self.now:.6f}: {exc!r}")
                crash.__cause__ = exc
                self._report_crash(crash)
            return
        for hook in self.trace_hooks:
            hook(self.now, event)
        self._maybe_quiesce()

    def _report_crash(self, exc: BaseException) -> None:
        if self._crash is None:
            self._crash = exc
        fut = self._run_future
        if fut is not None and not fut.done():
            fut.set_exception(self._crash)

    def _maybe_quiesce(self) -> None:
        if not self._quiescing or self._pending > 0:
            return
        fut = self._run_future
        if fut is None or fut.done():
            return

        def check() -> None:
            if (self._quiescing and self._pending == 0
                    and fut is self._run_future and not fut.done()):
                fut.set_result(None)

        # Grace window: a datagram already in the OS buffer (invisible
        # to the scheduler) gets a chance to arrive and re-arm work.
        self._loop.call_later(self._idle_grace, check)

    def run(self, until: "float | Event | None" = None, *,
            wall_timeout: float | None = None,
            idle_grace: float = 0.05) -> Any:
        """Drive the event loop (kernel-compatible signature).

        ``until`` may be ``None`` (run until the scheduler has been idle
        for ``idle_grace`` seconds — a heuristic for quiescence, since
        in-flight real packets cannot be seen), a number (run until that
        many seconds since substrate creation), or an :class:`Event`
        (run until it fires, then return its value or raise its
        exception). ``wall_timeout`` bounds the whole call, failing it
        with :class:`SimulationError` on expiry so a lost packet or a
        wedged peer can never hang the caller forever.
        """
        if self._crash is not None:
            raise self._crash
        if self.closed:
            raise SimulationError("substrate is closed")
        loop = self._loop
        fut: asyncio.Future = loop.create_future()
        result_of_event = False
        target: Event | None = None

        if isinstance(until, Event):
            target = until
            result_of_event = True
            if target.processed:
                if target.ok:
                    return target.value
                target.defused = True
                raise target.value

            def _capture(ev: Event) -> None:
                ev.defused = True
                if not fut.done():
                    if ev.ok:
                        fut.set_result(ev.value)
                    else:
                        fut.set_exception(ev.value)

            target.callbacks.append(_capture)
        elif until is None:
            self._quiescing = True
            self._idle_grace = idle_grace
        else:
            deadline = float(until)
            if deadline < self.now:
                raise ValueError(
                    f"until={deadline} is in the past (now={self.now})")
            loop.call_later(deadline - self.now,
                            lambda: fut.done() or fut.set_result(None))

        timeout_handle = None
        if wall_timeout is not None:
            timeout_handle = loop.call_later(
                wall_timeout,
                lambda: fut.done() or fut.set_exception(SimulationError(
                    f"run() exceeded wall_timeout={wall_timeout}s at "
                    f"t={self.now:.6f}; {self.active_process_count} "
                    "process(es) still alive")))

        self._run_future = fut
        try:
            if until is None:
                self._maybe_quiesce()
            result = loop.run_until_complete(fut)
            return result if result_of_event else None
        finally:
            self._run_future = None
            self._quiescing = False
            if timeout_handle is not None:
                timeout_handle.cancel()
            if target is not None and not target.processed \
                    and target.callbacks is not None:
                # A timed-out wait must not leave the capture armed.
                target.callbacks[:] = [cb for cb in target.callbacks
                                       if cb is not _capture]

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Close every socket (and the loop, when owned). Idempotent."""
        if self.closed:
            return
        self.closed = True
        self.datagrams._close()
        # Disarm every outstanding timer: a closed substrate must not
        # keep firing retransmissions or delayed acks into a loop the
        # caller still owns.
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()
        self._pending = 0
        if self._owns_loop and not self._loop.is_closed():
            self._loop.close()

    def __enter__(self) -> "AsyncioSubstrate":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<AsyncioSubstrate t={self.now:.6f} pending={self._pending} "
                f"processes={len(self._processes)}>")


class UdpDatagramService:
    """Real UDP datagram delivery between registered node addresses.

    Implements the same :class:`~repro.runtime.substrate.DatagramService`
    contract as the simulated :class:`~repro.net.datagram.DatagramNetwork`:
    best-effort, unordered, silent loss. Each registered node gets its
    own non-blocking UDP socket on ``bind_host``; frames carry the
    virtual source/destination addresses (see :mod:`repro.net.wire`), so
    node identity is independent of the ephemeral port the OS assigns.
    """

    def __init__(self, substrate: AsyncioSubstrate, *,
                 bind_host: str = "127.0.0.1",
                 faults: FaultPlan | None = None) -> None:
        self.substrate = substrate
        self.bind_host = bind_host
        self.faults = faults if faults is not None else FaultPlan()
        self.stats = NetworkStats()
        #: RTO-sizing hint only — real packets move at real speed.
        self.latency = ConstantLatency(LOOPBACK_LATENCY_HINT)
        #: Taps observing every datagram put on the wire (testing aid).
        self.wire_taps: list[Callable[[float, Datagram], None]] = []
        self._handlers: dict[NodeAddress, Callable[[Datagram], None]] = {}
        self._socks: dict[NodeAddress, socket.socket] = {}
        self._routes: dict[NodeAddress, tuple[str, int]] = {}
        self._tx_sock: socket.socket | None = None

    # -- membership -----------------------------------------------------

    def register(self, address: NodeAddress,
                 handler: Callable[[Datagram], None]) -> None:
        """Bind a real UDP socket for ``address`` and attach ``handler``."""
        from repro.errors import AddressError
        if address in self._handlers:
            raise AddressError(f"address {address} is already registered")
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.bind((self.bind_host, 0))
        sock.setblocking(False)
        self._handlers[address] = handler
        self._socks[address] = sock
        self._routes[address] = sock.getsockname()
        self.substrate.loop.add_reader(
            sock.fileno(), self._on_readable, address, sock)

    def unregister(self, address: NodeAddress) -> None:
        self._handlers.pop(address, None)
        sock = self._socks.pop(address, None)
        self._routes.pop(address, None)
        if sock is not None:
            self.substrate.loop.remove_reader(sock.fileno())
            sock.close()

    def is_registered(self, address: NodeAddress) -> bool:
        return address in self._handlers

    def add_route(self, address: NodeAddress,
                  real_address: tuple[str, int]) -> None:
        """Route a *remote* virtual node to its real ``(host, port)``.

        In-process nodes are routed automatically; this wires up peers
        living in other processes or on other machines.
        """
        self._routes[address] = real_address

    def real_address(self, address: NodeAddress) -> tuple[str, int]:
        """The real socket address a registered node is bound to."""
        return self._routes[address]

    # -- sending --------------------------------------------------------

    def send(self, datagram: Datagram) -> None:
        """Fire-and-forget transmission of one datagram."""
        self.stats.sent += 1
        self.stats.bytes_sent += datagram.size
        for tap in self.wire_taps:
            tap(self.substrate.now, datagram)
        tr = self.substrate.tracer
        if tr is not None:
            header = datagram.header
            parts = header.get("parts")
            tr.emit("net", "send", node=datagram.src, dst=str(datagram.dst),
                    kind=header.get("kind"), ch=header.get("ch"),
                    seq=header.get("seq"), size=datagram.size,
                    **({"n": len(parts)} if parts else {}))

        route = self._routes.get(datagram.dst)
        if route is None:
            self.stats.undeliverable += 1
            if tr is not None:
                tr.emit("net", "undeliverable", node=datagram.dst,
                        src=str(datagram.src),
                        kind=datagram.header.get("kind"))
            return

        # Same fault model and stream naming as the simulated network,
        # so loss-recovery tests translate across substrates verbatim.
        link = f"net/{datagram.src}->{datagram.dst}"
        fault_rng = self.substrate.rng.get(link + "/faults")
        extra_delays = self.faults.copies(fault_rng, datagram.src,
                                          datagram.dst, datagram)
        if not extra_delays:
            self.stats.dropped += 1
            if tr is not None:
                header = datagram.header
                tr.emit("net", "drop", node=datagram.src,
                        dst=str(datagram.dst), kind=header.get("kind"),
                        ch=header.get("ch"), seq=header.get("seq"))
            return
        if len(extra_delays) > 1:
            self.stats.duplicated += 1
            if tr is not None:
                header = datagram.header
                tr.emit("net", "dup", node=datagram.src,
                        dst=str(datagram.dst), kind=header.get("kind"),
                        ch=header.get("ch"), seq=header.get("seq"))

        data = encode_frame(datagram)
        for extra in extra_delays:
            if extra <= 0:
                self._sendto(datagram.src, data, route)
            else:
                self.substrate.call_later(
                    extra, lambda d=data, r=route, s=datagram.src:
                    self._sendto(s, d, r))

    def _sendto(self, src: NodeAddress, data: bytes,
                route: tuple[str, int]) -> None:
        sock = self._socks.get(src)
        if sock is None:
            sock = self._shared_tx_sock()
        try:
            sock.sendto(data, route)
        except (BlockingIOError, OSError):
            self.stats.dropped += 1  # full buffer == congestion loss

    def _shared_tx_sock(self) -> socket.socket:
        if self._tx_sock is None:
            self._tx_sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            self._tx_sock.setblocking(False)
        return self._tx_sock

    # -- receiving ------------------------------------------------------

    def _on_readable(self, address: NodeAddress,
                     sock: socket.socket) -> None:
        # Hot path: every lookup that is loop-invariant is hoisted out of
        # the drain loop (the handler, the stats record, the tracer and
        # the bound recvfrom), so per-datagram work is the codec plus the
        # protocol machinery itself.
        recvfrom = sock.recvfrom
        handler = self._handlers.get(address)
        stats = self.stats
        tr = self.substrate.tracer
        while True:
            try:
                data, _peer = recvfrom(65536)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # socket closed under us
            try:
                datagram = decode_frame(data)
            except FrameError as exc:
                stats.bad_frames += 1
                if tr is not None:
                    tr.emit("net", "bad_frame", size=len(data),
                            err=str(exc))
                continue
            if handler is None:
                stats.undeliverable += 1
                continue
            stats.delivered += 1
            stats.bytes_delivered += datagram.size
            if tr is not None:
                header = datagram.header
                parts = header.get("parts")
                tr.emit("net", "deliver", node=datagram.dst,
                        src=str(datagram.src), kind=header.get("kind"),
                        ch=header.get("ch"), seq=header.get("seq"),
                        size=datagram.size,
                        **({"n": len(parts)} if parts else {}))
            try:
                handler(datagram)
            except BaseException as exc:  # noqa: BLE001 - kernel parity
                self.substrate._report_crash(exc)
                return

    def _close(self) -> None:
        for address in list(self._socks):
            self.unregister(address)
        if self._tx_sock is not None:
            self._tx_sock.close()
            self._tx_sock = None
