"""The simulated substrate: virtual-time kernel + simulated network.

:class:`SimSubstrate` bundles the discrete-event
:class:`~repro.sim.Kernel` with a
:class:`~repro.net.datagram.DatagramNetwork` into one
:class:`~repro.runtime.substrate.Substrate`. It *is* a kernel (by
inheritance), so behaviour is byte-for-byte identical to constructing
the two pieces by hand — same event ordering, same named random streams,
same traces — and every pre-substrate test passes unchanged.
"""

from __future__ import annotations

from repro.net.datagram import DatagramNetwork
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel
from repro.sim.kernel import Kernel


class SimSubstrate(Kernel):
    """Deterministic virtual-time substrate (the default).

    Parameters
    ----------
    seed:
        Root seed for all randomness in the run.
    latency / faults:
        The simulated network's latency model and fault plan (see
        :mod:`repro.net`).
    encoded:
        Opt-in: round-trip every datagram through the binary wire codec
        at the send/deliver boundary, exactly as the real UDP substrate
        does — proves sim/asyncio byte-parity (see
        :class:`~repro.net.datagram.DatagramNetwork`). Default off: the
        simulator hands `Datagram` objects around in memory.
    realtime / realtime_factor:
        Pace virtual time against the wall clock (for demos); see
        :class:`~repro.sim.Kernel`.
    """

    def __init__(self, seed: int = 0, *,
                 latency: LatencyModel | None = None,
                 faults: FaultPlan | None = None,
                 encoded: bool = False,
                 realtime: bool = False,
                 realtime_factor: float = 1.0) -> None:
        super().__init__(seed=seed, realtime=realtime,
                         realtime_factor=realtime_factor)
        #: The datagram half of the substrate.
        self.datagrams = DatagramNetwork(self, latency=latency, faults=faults,
                                         encoded=encoded)

    def close(self) -> None:
        """Nothing to release: the simulator holds no external resources."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SimSubstrate t={self.now:.6f} pending={len(self._queue)} "
                f"processes={len(self._processes)}>")
