"""The substrate interface: what every layer above ``net`` may assume.

The paper's layer ran the same program text over real UDP between
Caltech, Rice, Tennessee and Australia; this reproduction runs it over a
virtual-time simulator — and, via this interface, over both. A
*substrate* bundles the two services the upper layers (transport,
mailboxes, dapplets, sessions, services) need:

* a **scheduler** — clock, one-shot events, timeouts, generator
  processes and named random streams (the interface
  :class:`repro.sim.Kernel` has always exposed); and
* a **datagram service** — best-effort, unordered delivery of
  :class:`~repro.net.datagram.Datagram` frames between registered node
  addresses (the interface of
  :class:`~repro.net.datagram.DatagramNetwork`).

Everything above ``net`` depends only on these protocols, never on the
concrete simulator classes — enforced by a layering test that greps
import statements. Two implementations ship:

* :class:`repro.runtime.SimSubstrate` — the discrete-event kernel plus
  the simulated network; deterministic, virtual time.
* :class:`repro.runtime.AsyncioSubstrate` — an asyncio event loop plus
  real UDP sockets; wall-clock time, real packets.

The protocols are structural (:class:`typing.Protocol`): the existing
``Kernel`` and ``DatagramNetwork`` conform as they are, so hand-wired
code and tests keep working unchanged.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Any, Callable, Iterable, Protocol,
                    runtime_checkable)

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.net.address import NodeAddress
    from repro.net.datagram import Datagram
    from repro.sim.events import AllOf, AnyOf, Event, Timeout
    from repro.sim.process import Process, ProcessBody
    from repro.sim.rng import RandomStreams


@runtime_checkable
class Scheduler(Protocol):
    """Clock + event scheduling: the kernel-shaped half of a substrate.

    ``now`` is the current time in seconds — virtual on the simulator,
    wall-clock-since-start on a real event loop. The underscore methods
    are the plumbing contract used by :class:`~repro.sim.events.Event`
    and :class:`~repro.sim.process.Process`, which are substrate-agnostic
    and run on any scheduler.
    """

    rng: "RandomStreams"

    #: Optional :class:`repro.obs.Tracer`; ``None`` when unattached.
    #: Emit sites throughout the stack guard on ``tracer is not None``,
    #: which is the whole cost of the instrumentation when tracing is
    #: off.
    tracer: Any

    @property
    def now(self) -> float: ...

    def event(self) -> "Event": ...

    def timeout(self, delay: float, value: Any = None) -> "Timeout": ...

    def process(self, body: "ProcessBody",
                name: str | None = None) -> "Process": ...

    def any_of(self, events: "Iterable[Event]") -> "AnyOf": ...

    def all_of(self, events: "Iterable[Event]") -> "AllOf": ...

    def call_later(self, delay: float, fn: Callable[[], None]) -> "Event": ...

    def run(self, until: "float | Event | None" = None) -> Any: ...

    # -- plumbing used by Event/Process ---------------------------------

    def _enqueue(self, event: "Event", delay: float) -> None: ...

    def _register_process(self, process: "Process") -> None: ...

    def _unregister_process(self, process: "Process") -> None: ...


@runtime_checkable
class DatagramService(Protocol):
    """Best-effort datagram delivery between registered node addresses.

    The contract of the paper's bottom layer ("the initial implementation
    uses UDP"): unordered, at-most-once-per-copy, silent loss. ``stats``
    carries :class:`~repro.net.datagram.NetworkStats`-shaped counters and
    ``latency`` (when present) offers ``mean_estimate(src_host,
    dst_host)`` so the transport can size initial retransmission
    timeouts.
    """

    stats: Any
    wire_taps: list

    def register(self, address: "NodeAddress",
                 handler: "Callable[[Datagram], None]") -> None: ...

    def unregister(self, address: "NodeAddress") -> None: ...

    def is_registered(self, address: "NodeAddress") -> bool: ...

    def send(self, datagram: "Datagram") -> None: ...


class Substrate(Scheduler, Protocol):
    """A scheduler plus its datagram service — one deployable runtime.

    ``World(substrate=...)`` accepts anything with this shape; the
    default is :class:`repro.runtime.SimSubstrate`.
    """

    datagrams: DatagramService

    def close(self) -> None:
        """Release external resources (sockets, loops). Idempotent."""
