"""Substrate layer: one dapplet stack, two runtimes.

The interfaces (:class:`Scheduler`, :class:`DatagramService`,
:class:`Substrate`) define what the layers above ``net`` may assume; the
implementations plug a :class:`World` into either the deterministic
discrete-event simulator (:class:`SimSubstrate`, the default) or a real
asyncio event loop with UDP sockets (:class:`AsyncioSubstrate`).
"""

from repro.runtime.aio import AsyncioSubstrate, UdpDatagramService
from repro.runtime.sim import SimSubstrate
from repro.runtime.substrate import DatagramService, Scheduler, Substrate

__all__ = [
    "AsyncioSubstrate",
    "DatagramService",
    "Scheduler",
    "SimSubstrate",
    "Substrate",
    "UdpDatagramService",
]
