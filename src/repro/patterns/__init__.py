"""Patterns of collaboration (§2.2 of the paper).

"We can ease the programmer's burden of writing correct distributed
applications if modifying one distributed application to obtain another
one with the same patterns of communication and synchronization can be
done by modifying only the sequential parts of the application, while
leaving the concurrent and distributed parts unchanged. Our challenge is
to identify these patterns, develop class libraries that encapsulate
these patterns..."

* :mod:`repro.patterns.topology` — session-spec builders for the common
  shapes: star, ring, fully-connected mesh, chain.
* :mod:`repro.patterns.coordinator` — the coordinator/participants
  pattern: rounds of scatter (one request per participant) and gather
  (one reply each), with the request construction and reply combination
  as the *sequential* plug-in points.
* :mod:`repro.patterns.pipeline` — linear dataflow, with each stage's
  transform as the sequential plug-in.

The application library (:mod:`repro.apps`) demonstrates the claim: the
calendar scheduler and the collaborative-design poll are both the
coordinator pattern with different sequential parts.
"""

from repro.patterns.coordinator import CoordinatorRounds, participant_loop
from repro.patterns.pipeline import pipeline_spec, stage_loop
from repro.patterns.topology import chain_spec, mesh_spec, ring_spec, star_spec

__all__ = [
    "CoordinatorRounds",
    "chain_spec",
    "mesh_spec",
    "participant_loop",
    "pipeline_spec",
    "ring_spec",
    "stage_loop",
    "star_spec",
]
