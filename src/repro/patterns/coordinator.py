"""The coordinator/participants pattern.

The distributed part — scatter one request per participant, gather one
reply each, tolerate stragglers with a timeout — is written once here.
The sequential parts are plug-ins:

* the coordinator supplies ``make_request(member) -> Message`` per round
  and combines the replies however it likes;
* each participant supplies ``handler(body) -> Message`` mapping a
  request payload to a reply payload (:func:`participant_loop`).

The calendar secretary (query free days, then book) and the design
review poll are both this pattern with different sequential parts,
which is precisely the paper's §2.2 claim.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Generator

from repro.errors import ReceiveTimeout
from repro.messages.message import Message
from repro.patterns.messages import PatternReply, PatternRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.session.session import SessionContext


class CoordinatorRounds:
    """Hub-side scatter/gather over a star session.

    Expects the :func:`~repro.patterns.topology.star_spec` port naming:
    per-spoke outboxes ``to:<member>`` and a hub inbox ``in``.
    """

    def __init__(self, ctx: "SessionContext", members: list[str]) -> None:
        self.ctx = ctx
        self.members = list(members)
        self._rounds = itertools.count(1)

    def round(self, make_request: Callable[[str], Message],
              timeout: float | None = None,
              members: list[str] | None = None) -> Generator:
        """One scatter/gather round (generator; ``yield from`` it).

        Returns ``{member: reply_body}``; members that missed the
        timeout are absent. Without a timeout, blocks until every member
        replies.
        """
        members = list(self.members if members is None else members)
        round_id = next(self._rounds)
        for member in members:
            self.ctx.outbox(f"to:{member}").send(PatternRequest(
                round_id=round_id, member=member,
                body=make_request(member)))
        replies: dict[str, Message] = {}
        deadline = (None if timeout is None
                    else self.ctx.dapplet.kernel.now + timeout)
        awaiting = set(members)
        while awaiting:
            if deadline is None:
                msg = yield self.ctx.inbox("in").receive()
            else:
                remaining = deadline - self.ctx.dapplet.kernel.now
                if remaining <= 0:
                    break
                try:
                    msg = yield self.ctx.inbox("in").receive(
                        timeout=remaining)
                except ReceiveTimeout:
                    break
            if isinstance(msg, PatternReply) and msg.round_id == round_id \
                    and msg.member in awaiting:
                awaiting.discard(msg.member)
                replies[msg.member] = msg.body
            # Late replies from earlier rounds and stray traffic are
            # dropped; the pattern owns the hub inbox during rounds.
        return replies

    def sequential_round(self, make_request: Callable[[str], Message],
                         timeout_per_member: float | None = None,
                         ) -> Generator:
        """The 'traditional approach' of the paper's Example One: ask
        each member *in turn*, waiting for each reply before the next
        request. Same sequential parts, serialized distribution — used
        as the baseline in experiment E1."""
        replies: dict[str, Message] = {}
        for member in self.members:
            round_id = next(self._rounds)
            self.ctx.outbox(f"to:{member}").send(PatternRequest(
                round_id=round_id, member=member,
                body=make_request(member)))
            while True:
                try:
                    msg = yield self.ctx.inbox("in").receive(
                        timeout=timeout_per_member)
                except ReceiveTimeout:
                    break
                if isinstance(msg, PatternReply) \
                        and msg.round_id == round_id:
                    replies[member] = msg.body
                    break
        return replies


def participant_loop(ctx: "SessionContext",
                     handler: Callable[[Message], "Message | None"],
                     ) -> Generator:
    """Spoke-side request server: run as the member's session process.

    ``handler`` is the sequential part: request body in, reply body out
    (``None`` replies nothing). The loop ends when the session ends
    (its inbox closes and the process is simply never resumed again).
    """
    while ctx.active:
        msg = yield ctx.inbox("in").receive()
        if not isinstance(msg, PatternRequest):
            continue
        body = handler(msg.body)
        if body is not None:
            ctx.outbox("out").send(PatternReply(
                round_id=msg.round_id, member=ctx.member, body=body))
