"""Envelopes used by the pattern runtimes.

Application payloads are ordinary :class:`Message` objects; the pattern
runtimes wrap them so rounds and senders can be correlated without
constraining the payload types.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.messages.message import Message, message_type


@message_type("pat.request")
@dataclass(frozen=True)
class PatternRequest(Message):
    round_id: int
    member: str  # addressee
    body: Message = None


@message_type("pat.reply")
@dataclass(frozen=True)
class PatternReply(Message):
    round_id: int
    member: str  # replier
    body: Message = None


@message_type("pat.item")
@dataclass(frozen=True)
class PipelineItem(Message):
    seq: int
    body: Message = None


@message_type("pat.eos")
@dataclass(frozen=True)
class PipelineEnd(Message):
    """End-of-stream marker flowing through a pipeline."""

    count: int  # items that preceded it
