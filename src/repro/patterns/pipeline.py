"""The pipeline pattern: linear dataflow across dapplets.

The distributed part — forwarding items stage to stage in order and
propagating end-of-stream — is here; each stage's ``transform`` is the
sequential plug-in. Built on :func:`~repro.patterns.topology.chain_spec`
port names (inbox ``in``, outbox ``out``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator

from repro.messages.message import Message
from repro.patterns.messages import PipelineEnd, PipelineItem

if TYPE_CHECKING:  # pragma: no cover
    from repro.session.session import SessionContext

from repro.patterns.topology import chain_spec

__all__ = ["pipeline_spec", "stage_loop", "feed", "collect"]

#: Re-exported builder so pipeline users need one import.
pipeline_spec = chain_spec


def stage_loop(ctx: "SessionContext",
               transform: Callable[[Message], "Message | None"],
               ) -> Generator:
    """An intermediate stage: transform and forward each item.

    ``transform`` returning ``None`` filters the item out. The
    end-of-stream marker is forwarded with the count of items that were
    actually passed along.
    """
    forwarded = 0
    while ctx.active:
        msg = yield ctx.inbox("in").receive()
        if isinstance(msg, PipelineEnd):
            ctx.outbox("out").send(PipelineEnd(count=forwarded))
            forwarded = 0
            continue
        if not isinstance(msg, PipelineItem):
            continue
        body = transform(msg.body)
        if body is not None:
            ctx.outbox("out").send(PipelineItem(seq=msg.seq, body=body))
            forwarded += 1


def feed(ctx: "SessionContext", items: list[Message]) -> None:
    """Source side: push a finite stream followed by end-of-stream."""
    for seq, body in enumerate(items):
        ctx.outbox("out").send(PipelineItem(seq=seq, body=body))
    ctx.outbox("out").send(PipelineEnd(count=len(items)))


def collect(ctx: "SessionContext") -> Generator:
    """Sink side: gather bodies until end-of-stream (generator)."""
    results: list[Message] = []
    while True:
        msg = yield ctx.inbox("in").receive()
        if isinstance(msg, PipelineEnd):
            return results
        if isinstance(msg, PipelineItem):
            results.append(msg.body)
